#!/usr/bin/env python3
"""Full Figure 2-style characterization of one workload.

Prints the four views of the paper's Figure 2 for a single benchmark
across processor counts: combined execution time, the overhead breakdown
(kernel / load imbalance / sequential / suppressed / synchronization),
the MCPI breakdown by miss class, and bus utilization.

Run:  python examples/characterization.py [workload]
"""

import sys

from repro import run_benchmark, sgi_base
from repro.analysis.report import render_table
from repro.sim.tracegen import SimProfile


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "applu"
    profile = SimProfile.fast()

    results = {
        cpus: run_benchmark(
            workload, sgi_base(cpus).scaled(16), policy="page_coloring",
            profile=profile,
        )
        for cpus in (1, 2, 4, 8, 16)
    }

    print(f"combined execution time — {workload} (page coloring, 1MB DM)")
    print(
        render_table(
            ["cpus", "combined ms", "wall ms", "speedup"],
            [
                [cpus, round(r.combined_execution_ns / 1e6, 2),
                 round(r.wall_ns / 1e6, 2),
                 round(results[1].wall_ns / r.wall_ns, 2)]
                for cpus, r in results.items()
            ],
        )
    )

    print("\noverheads (combined over processors, ms)")
    categories = ("kernel", "load_imbalance", "sequential", "suppressed",
                  "synchronization")
    print(
        render_table(
            ["cpus"] + list(categories),
            [
                [cpus] + [round(r.overhead_breakdown_ns()[c] / 1e6, 3)
                          for c in categories]
                for cpus, r in results.items()
            ],
        )
    )

    print("\nmemory system behaviour (MCPI by miss class)")
    parts = ("l1", "cold", "capacity", "conflict", "true_sharing",
             "false_sharing")
    print(
        render_table(
            ["cpus", "MCPI"] + list(parts),
            [
                [cpus, round(r.mcpi(), 2)]
                + [round(r.mcpi_breakdown().get(p, 0.0), 3) for p in parts]
                for cpus, r in results.items()
            ],
        )
    )

    print("\nbus utilization")
    print(
        render_table(
            ["cpus", "total", "data", "writeback", "upgrade"],
            [
                [cpus, round(r.bus_utilization(), 3)]
                + [round(r.bus_utilization_breakdown().get(k, 0.0), 3)
                   for k in ("data", "writeback", "upgrade")]
                for cpus, r in results.items()
            ],
        )
    )


if __name__ == "__main__":
    main()
