#!/usr/bin/env python3
"""Render the paper's Figures 3 and 5 as ASCII dot plots.

Figure 3: which virtual pages each processor touches, in virtual-address
order — sparse stripes spanning many cache-sized extents.  Figure 5: the
same accesses in CDPC's coloring order — one dense block per processor.

Run:  python examples/figure3_and_5.py [workload] [num_cpus]
"""

import sys

from repro import sgi_base
from repro.analysis.access_maps import (
    coloring_order_map,
    page_access_map,
    va_order_map,
)
from repro.analysis.access_plot import render_access_map
from repro.compiler.padding import layout_arrays
from repro.compiler.summaries import extract_summary
from repro.core.coloring import generate_page_colors
from repro.sim.engine import _loop_group_pairs
from repro.workloads import get_workload


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "tomcatv"
    num_cpus = int(sys.argv[2]) if len(sys.argv) > 2 else 16

    config = sgi_base(num_cpus).scaled(16)
    program = get_workload(workload, config.scale_factor).program
    layout = layout_arrays(
        program.arrays, config.l2.line_size, config.l1d.size,
        groups=_loop_group_pairs(program),
    )
    summary = extract_summary(program, layout)
    access_map = page_access_map(summary, config.page_size, num_cpus)
    coloring = generate_page_colors(
        summary, config.page_size, config.num_colors, num_cpus
    )
    cache_pages = config.l2.size // config.page_size

    print(f"Figure 3 — {workload}, {num_cpus} CPUs, virtual-address order")
    print(render_access_map(va_order_map(access_map), num_cpus,
                            cache_pages=cache_pages))
    print()
    print(f"Figure 5 — same accesses in CDPC coloring order")
    print(render_access_map(coloring_order_map(coloring, access_map), num_cpus,
                            cache_pages=cache_pages))


if __name__ == "__main__":
    main()
