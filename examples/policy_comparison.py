#!/usr/bin/env python3
"""Processor-count sweep: how page-mapping policy interacts with scaling.

Reproduces in miniature the paper's central observation: as processors are
added, each processor's share of the data shrinks, and a mapping that
packs that share densely into the cache (CDPC) turns the growing aggregate
cache into an actual advantage — while the static policies leave it
under-utilized.

Run:  python examples/policy_comparison.py [workload]
"""

import sys

from repro import run_benchmark, sgi_base
from repro.analysis.report import render_table
from repro.sim.tracegen import SimProfile
from repro.workloads import get_workload


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "swim"
    profile = SimProfile.fast()
    model = get_workload(workload)
    print(
        f"{model.spec_id}: {model.data_set_mb:.0f}MB reference data set — "
        f"{model.description}"
    )

    rows = []
    uni_wall = None
    for num_cpus in (1, 2, 4, 8, 16):
        config = sgi_base(num_cpus).scaled(16)
        pc = run_benchmark(workload, config, policy="page_coloring",
                           profile=profile)
        bh = run_benchmark(workload, config, policy="bin_hopping",
                           profile=profile)
        cdpc = run_benchmark(workload, config, policy="page_coloring",
                             cdpc=True, profile=profile)
        if uni_wall is None:
            uni_wall = min(pc.wall_ns, bh.wall_ns, cdpc.wall_ns)
        aggregate_mb = num_cpus * config.l2.size * config.scale_factor / 2**20
        rows.append(
            [
                num_cpus,
                f"{aggregate_mb:.0f}MB",
                round(uni_wall / pc.wall_ns, 2),
                round(uni_wall / bh.wall_ns, 2),
                round(uni_wall / cdpc.wall_ns, 2),
                pc.replacement_misses(),
                cdpc.replacement_misses(),
            ]
        )
    print()
    print(
        render_table(
            ["cpus", "agg cache", "speedup pc", "speedup bh", "speedup cdpc",
             "repl misses pc", "repl misses cdpc"],
            rows,
        )
    )
    print(
        "\n(speedups are relative to the best uniprocessor run; 'agg cache' "
        "is the full-scale aggregate cache size vs the data set above)"
    )


if __name__ == "__main__":
    main()
