#!/usr/bin/env python3
"""From loop nests with subscripts to CDPC hints — the full compiler path.

Writes a tomcatv-like kernel as *affine loop nests* (arrays indexed by
explicit subscript expressions, the way the real SUIF compiler sees it),
lets the analysis derive the access patterns, and runs the derived program
under page coloring and CDPC.

    do i = 1, N          ! parallelized and distributed
      do j = 1, N
        rx(j,i) = x(j,i+1) - 2*x(j,i) + x(j,i-1) + w(j)
        ry(j,i) = y(j,i+1) - 2*y(j,i) + y(j,i-1)

Run:  python examples/affine_analysis.py
"""

from repro import run_program, sgi_base
from repro.analysis.report import render_table
from repro.compiler.affine import (
    AffineNest,
    AffinePhase,
    AffineProgram,
    AffineRef,
    Array2D,
    C,
    I,
    J,
    lower,
)
from repro.sim.engine import EngineOptions


def main() -> None:
    # 512x512 double grids are exactly 2MB: a whole number of color
    # cycles on the 1MB/256-color machine, the paper's conflict pathology.
    n = 512
    grids = [Array2D(name, n, n) for name in ("x", "y", "rx", "ry")]
    vector = Array2D("w", n, 1)

    stencil = AffineNest(
        name="stencil",
        i_extent=n,
        j_extent=n,
        refs=(
            AffineRef("x", row=J(), col=I()),
            AffineRef("x", row=J(), col=I(-1)),
            AffineRef("x", row=J(), col=I(+1)),
            AffineRef("y", row=J(), col=I()),
            AffineRef("y", row=J(), col=I(-1)),
            AffineRef("y", row=J(), col=I(+1)),
            AffineRef("rx", row=J(), col=I(), is_write=True),
            AffineRef("ry", row=J(), col=I(), is_write=True),
            AffineRef("w", row=J(), col=C(0)),
        ),
        instructions_per_point=24.0,
    )
    affine = AffineProgram(
        "affine_stencil",
        grids + [vector],
        [AffinePhase("steady", (stencil,), occurrences=8)],
    )

    program = lower(affine)
    print("derived access patterns:")
    for loop in program.phases[0].loops:
        for access in loop.accesses:
            print(f"  {type(access).__name__:18s} {access}")

    rows = []
    for num_cpus in (4, 16):
        config = sgi_base(num_cpus).scaled(16)
        # The affine program declares full-scale sizes; shrink it to match
        # the geometrically scaled machine.
        scaled = program.scaled(config.scale_factor)
        base = run_program(scaled, config, EngineOptions())
        cdpc = run_program(scaled, config, EngineOptions(cdpc=True))
        rows.append(
            [num_cpus, round(base.wall_ns / 1e6, 2), round(cdpc.wall_ns / 1e6, 2),
             round(base.wall_ns / cdpc.wall_ns, 2)]
        )
    print()
    print(render_table(["cpus", "page_coloring ms", "cdpc ms", "speedup"], rows))


if __name__ == "__main__":
    main()
