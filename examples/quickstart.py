#!/usr/bin/env python3
"""Quickstart: run one benchmark under three page-mapping policies.

This is the 60-second tour of the library: build the paper's base machine
(geometrically scaled so it runs in seconds), run the tomcatv workload
under page coloring, bin hopping and compiler-directed page coloring, and
print the wall-clock times, conflict-miss counts and bus utilization.

Run:  python examples/quickstart.py [workload] [num_cpus]
"""

import sys

from repro import Session
from repro.analysis.report import render_table
from repro.machine.stats import MissKind


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "tomcatv"
    num_cpus = int(sys.argv[2]) if len(sys.argv) > 2 else 8

    # The paper's base machine: 1MB direct-mapped external cache, 4KB
    # pages, 256 page colors, 1.2 GB/s bus — scaled 1/16 (the color count,
    # which is what page mapping is about, is preserved).  A Session binds
    # the workload to that machine; each run() below overrides only the
    # mapping policy.
    session = Session(workload, cpus=num_cpus, scale=16)
    config = session.config
    print(
        f"machine: {num_cpus} CPUs, {config.l2.size // 1024}KB external cache, "
        f"{config.num_colors} page colors (geometric scale 1/{config.scale_factor})"
    )

    runs = {
        "page coloring (IRIX)": session.run(policy="page_coloring"),
        "bin hopping (Digital UNIX)": session.run(policy="bin_hopping"),
        "compiler-directed (CDPC)": session.run(
            policy="page_coloring", cdpc=True
        ),
    }

    rows = []
    for label, result in runs.items():
        rows.append(
            [
                label,
                round(result.wall_ns / 1e6, 2),
                result.misses(MissKind.CONFLICT),
                result.misses(MissKind.CAPACITY),
                round(result.mcpi(), 2),
                round(result.bus_utilization(), 2),
            ]
        )
    print()
    print(
        render_table(
            ["policy", "wall ms", "conflict", "capacity", "MCPI", "bus util"],
            rows,
        )
    )

    from repro.analysis.figures import bar_chart

    print()
    print(bar_chart({label: r.wall_ns / 1e6 for label, r in runs.items()},
                    width=40, unit="ms"))

    base = runs["page coloring (IRIX)"]
    cdpc = runs["compiler-directed (CDPC)"]
    print(f"\nCDPC speedup over page coloring: {cdpc.speedup_over(base):.2f}x")


if __name__ == "__main__":
    main()
