#!/usr/bin/env python3
"""Walk through the five steps of the CDPC algorithm (paper Figure 4).

Builds a small two-array, two-processor program, runs each stage of the
hint-generation pipeline separately, and prints what every step produced:

1. uniform access segments and sets,
2. the access-set ordering (shared pages between the singletons),
3. segment ordering within each set (group-access interleaving),
4. cyclic page assignment (separating conflicting array starts),
5. the final round-robin colors.

Run:  python examples/algorithm_walkthrough.py
"""

from repro.analysis.report import render_table
from repro.compiler.ir import (
    ArrayDecl,
    Loop,
    LoopKind,
    PartitionedAccess,
    Phase,
    Program,
)
from repro.compiler.padding import layout_arrays
from repro.compiler.summaries import extract_summary
from repro.core.coloring import generate_page_colors
from repro.core.cyclic import assign_cyclic
from repro.core.ordering import order_access_sets, order_segments_within_set
from repro.core.segments import compute_segments, group_into_sets

PAGE = 4096
PAGES = 8  # pages per array
NUM_CPUS = 2
NUM_COLORS = 8


def main() -> None:
    # --- the program: two arrays read/written together in a parallel loop
    arrays = (ArrayDecl("A", PAGES * PAGE), ArrayDecl("B", PAGES * PAGE))
    loop = Loop(
        "main",
        LoopKind.PARALLEL,
        (
            PartitionedAccess("A", units=PAGES, is_write=True),
            PartitionedAccess("B", units=PAGES),
        ),
    )
    program = Program("fig4", arrays, (Phase("steady", (loop,)),))

    # --- compiler side: layout + access pattern summaries (Section 5.1)
    layout = layout_arrays(arrays, line_size=128, l1_size=32 * 1024)
    summary = extract_summary(program, layout)
    print("access pattern summaries:")
    for part in summary.partitionings:
        print(
            f"  {part.array}: start={part.start:#x} size={part.size} "
            f"unit={part.unit} policy={part.partitioning.value}"
        )
    print(f"  groups: {[(g.array_a, g.array_b) for g in summary.groups]}")

    # --- Step 1: uniform access segments and sets
    segments = compute_segments(summary, PAGE, NUM_CPUS)
    print("\nstep 1 — uniform access segments:")
    print(
        render_table(
            ["array", "pages", "cpus"],
            [
                [s.array, f"{s.start_page}..{s.end_page - 1}",
                 ",".join(map(str, sorted(s.cpus)))]
                for s in segments
            ],
        )
    )
    sets = group_into_sets(segments)

    # --- Step 2: order the access sets along the greedy intersection path
    ordered_sets = order_access_sets(sets)
    print("\nstep 2 — access-set order:",
          [tuple(sorted(s.cpus)) for s in ordered_sets])

    # --- Step 3: order segments within each set via group-access info
    ordered_segments = []
    for access_set in ordered_sets:
        chain = order_segments_within_set(access_set.segments, summary)
        ordered_segments.extend(chain)
        print(
            f"step 3 — within {tuple(sorted(access_set.cpus))}: "
            f"{[seg.array for seg in chain]}"
        )

    # --- Step 4: cyclic assignment
    page_order, rotations = assign_cyclic(ordered_segments, summary, NUM_COLORS)
    print("\nstep 4 — rotations:",
          {f"{s.array}@{s.start_page}": r for s, r in rotations.items()})
    print("final page order:", page_order)

    # --- Step 5: round-robin colors (full pipeline for comparison)
    coloring = generate_page_colors(summary, PAGE, NUM_COLORS, NUM_CPUS)
    print("\nstep 5 — page colors:")
    print(
        render_table(
            ["page", "array", "color"],
            [
                [page, layout.array_at(page * PAGE), color]
                for page, color in sorted(coloring.colors.items())
            ],
        )
    )
    start_a = min(layout.pages("A", PAGE))
    start_b = min(layout.pages("B", PAGE))
    print(
        f"\narray starts: A -> color {coloring.colors[start_a]}, "
        f"B -> color {coloring.colors[start_b]} (separated, unlike a "
        f"page-coloring policy which would give both color 0)"
    )


if __name__ == "__main__":
    main()
