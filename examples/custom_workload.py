#!/usr/bin/env python3
"""Model your own parallel application and test it under CDPC.

Shows the full user-facing workflow on a workload that is NOT part of
SPEC95fp: a red/black Gauss-Seidel solver with two grids and a coefficient
table.  You declare arrays and loop access patterns; the library does the
compiler analyses, generates the page-color hints, and simulates the
result on the machine of your choice.

Run:  python examples/custom_workload.py
"""

from repro import EngineOptions, run_program, sgi_base
from repro.analysis.report import render_table
from repro.compiler.ir import (
    ArrayDecl,
    BoundaryAccess,
    Communication,
    Loop,
    LoopKind,
    PartitionedAccess,
    Phase,
    Program,
    WholeArrayAccess,
)

MB = 1024 * 1024


def build_program(scale: int) -> Program:
    """A red/black relaxation: two 4MB grids + a shared coefficient table.

    Both grids are exactly 1024 pages — a multiple of the base machine's
    256 colors — so a page-coloring policy aligns them in the cache, the
    same pathology the paper shows for tomcatv and swim.
    """
    grids = (
        ArrayDecl("red", 4 * MB // scale),
        ArrayDecl("black", 4 * MB // scale),
    )
    coeff = ArrayDecl("coeff", 256 * 1024 // scale)
    relax_red = Loop(
        "relax_red",
        LoopKind.PARALLEL,
        (
            PartitionedAccess("red", units=256, is_write=True),
            PartitionedAccess("black", units=256),
            BoundaryAccess("black", units=256, comm=Communication.SHIFT,
                           boundary_fraction=1.0),
            WholeArrayAccess("coeff"),
        ),
        instructions_per_word=5.0,
    )
    relax_black = Loop(
        "relax_black",
        LoopKind.PARALLEL,
        (
            PartitionedAccess("black", units=256, is_write=True),
            PartitionedAccess("red", units=256),
            BoundaryAccess("red", units=256, comm=Communication.SHIFT,
                           boundary_fraction=1.0),
            WholeArrayAccess("coeff"),
        ),
        instructions_per_word=5.0,
    )
    return Program(
        name="redblack",
        arrays=grids + (coeff,),
        phases=(Phase("sweep", (relax_red, relax_black), occurrences=10),),
        init_groups=(("red", "black"), ("coeff",)),
    )


def main() -> None:
    scale = 16
    program = build_program(scale)
    print(
        f"custom workload '{program.name}': "
        f"{program.data_set_bytes * scale / MB:.1f}MB full-scale data set"
    )

    rows = []
    for num_cpus in (2, 8, 16):
        config = sgi_base(num_cpus).scaled(scale)
        base = run_program(program, config,
                           EngineOptions(policy="page_coloring"))
        cdpc = run_program(program, config,
                           EngineOptions(policy="page_coloring", cdpc=True))
        rows.append(
            [
                num_cpus,
                round(base.wall_ns / 1e6, 2),
                round(cdpc.wall_ns / 1e6, 2),
                round(base.wall_ns / cdpc.wall_ns, 2),
                base.replacement_misses(),
                cdpc.replacement_misses(),
            ]
        )
    print()
    print(
        render_table(
            ["cpus", "page_coloring ms", "cdpc ms", "speedup",
             "repl misses (pc)", "repl misses (cdpc)"],
            rows,
        )
    )


if __name__ == "__main__":
    main()
