"""Figure 4 — the CDPC algorithm walk-through.

Reconstructs the paper's didactic example: two arrays partitioned across
two processors, with the arrays used together in the same loop.  Checks
each algorithm step's output: the uniform access segments (4a), the
access-set ordering placing shared pages between the singletons (4b), the
cyclic assignment separating conflicting array starts (4c), and the final
round-robin colors (4d).
"""

from conftest import publish

from repro.analysis.report import render_table
from repro.compiler.ir import ArrayDecl, Loop, LoopKind, PartitionedAccess, Phase, Program
from repro.compiler.padding import layout_arrays
from repro.compiler.summaries import extract_summary
from repro.core.coloring import generate_page_colors

PAGE = 4096
PAGES_PER_ARRAY = 8
NUM_COLORS = 8  # small color space so the cyclic step is exercised
NUM_CPUS = 2


def run_example():
    arrays = (
        ArrayDecl("A", PAGES_PER_ARRAY * PAGE),
        ArrayDecl("B", PAGES_PER_ARRAY * PAGE),
    )
    loop = Loop(
        "main",
        LoopKind.PARALLEL,
        (
            PartitionedAccess("A", units=PAGES_PER_ARRAY, is_write=True),
            PartitionedAccess("B", units=PAGES_PER_ARRAY),
        ),
    )
    program = Program("fig4", arrays, (Phase("steady", (loop,)),))
    layout = layout_arrays(arrays, 128, 32 * 1024)
    summary = extract_summary(program, layout)
    coloring = generate_page_colors(summary, PAGE, NUM_COLORS, NUM_CPUS)
    return layout, summary, coloring


def test_fig4(bench_once):
    layout, summary, coloring = bench_once(run_example)

    seg_rows = [
        [s.array, s.start_page, s.end_page, ",".join(map(str, sorted(s.cpus)))]
        for s in coloring.segments
    ]
    publish("fig4a_segments",
            render_table(["array", "start", "end", "cpus"], seg_rows))

    order_rows = [
        [",".join(map(str, sorted(s.cpus))), s.num_pages]
        for s in coloring.ordered_sets
    ]
    publish("fig4b_set_order", render_table(["cpus", "pages"], order_rows))

    color_rows = [
        [page, layout.array_at(page * PAGE) or "?", color]
        for page, color in sorted(coloring.colors.items())
    ]
    publish("fig4d_colors", render_table(["page", "array", "color"], color_rows))

    # 4a: one segment per (array, cpu) half.
    assert len(coloring.segments) == 4
    assert {s.cpus for s in coloring.segments} == {
        frozenset({0}), frozenset({1})
    }

    # 4b: each processor's pages are contiguous in the final order.
    a_pages = set(layout.pages("A", PAGE))
    cpu0_pages = [
        i for i, page in enumerate(coloring.page_order)
        if any(page in s.pages and 0 in s.cpus for s in coloring.segments)
    ]
    assert cpu0_pages == list(range(len(cpu0_pages)))

    # 4c/4d: the two arrays' starting pages receive different colors
    # (Figure 4's pages 0 and 8 no longer share a color).
    start_a = min(layout.pages("A", PAGE))
    start_b = min(layout.pages("B", PAGE))
    assert coloring.colors[start_a] != coloring.colors[start_b]

    # 4d: colors are round-robin over the final order.
    for index, page in enumerate(coloring.page_order):
        assert coloring.colors[page] == index % NUM_COLORS

    # Per-processor conflict freedom: 8 pages per CPU over 8 colors.
    per_cpu = {0: set(), 1: set()}
    for segment in coloring.segments:
        for page in segment.pages:
            for cpu in segment.cpus:
                color = coloring.colors[page]
                assert color not in per_cpu[cpu], "same-color pages for one CPU"
                per_cpu[cpu].add(color)
