"""Shared infrastructure for the paper-reproduction benchmarks.

Every module regenerates one table or figure of the paper on the 1/16
geometrically-scaled machine (DESIGN.md documents the scaling invariants).
Runs are memoized across modules — Table 2 reuses Figure 9's runs exactly
as the paper derives its table from the same experiments.

Each benchmark prints its table (run pytest with ``-s`` to see it) and
writes it to ``benchmarks/results/<name>.txt``.

Setting ``REPRO_BENCH_STORE=<dir>`` additionally persists every run to a
crash-consistent :class:`repro.harness.ResultStore`: an interrupted or
crashed benchmark session resumes from the completed runs instead of
regenerating every figure from scratch.  Entries are keyed by full task
fingerprints, so changing a machine config or engine option can never
reuse a stale run — but results do NOT track source-code changes, so
clear the directory after modifying the simulator.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.harness.store import ResultStore, task_fingerprint
from repro.machine.config import MachineConfig, alpha_server, sgi_2way, sgi_4mb, sgi_base
from repro.sim.engine import EngineOptions, run_benchmark
from repro.sim.results import RunResult
from repro.sim.tracegen import SimProfile

#: Geometric scale of all benchmark runs (preserves color counts).
BENCH_SCALE = 16

FAST = SimProfile.fast()

_CONFIGS = {
    "sgi_base": sgi_base,
    "sgi_2way": sgi_2way,
    "sgi_4mb": sgi_4mb,
    "alpha": alpha_server,
}

_RESULTS_DIR = pathlib.Path(__file__).parent / "results"

_run_cache: dict[tuple, RunResult] = {}

#: Optional durable store: completed runs survive a crashed or
#: interrupted benchmark session (opt-in via REPRO_BENCH_STORE=<dir>).
_STORE_DIR = os.environ.get("REPRO_BENCH_STORE")
_STORE: ResultStore | None = ResultStore(_STORE_DIR) if _STORE_DIR else None


def make_config(name: str, num_cpus: int) -> MachineConfig:
    return _CONFIGS[name](num_cpus).scaled(BENCH_SCALE)


def cached_run(
    workload: str,
    config_name: str,
    num_cpus: int,
    policy: str = "page_coloring",
    cdpc: bool = False,
    prefetch: bool = False,
    aligned: bool = True,
) -> RunResult:
    """Run one benchmark configuration, memoized for the whole session
    (and across sessions when ``REPRO_BENCH_STORE`` is set)."""
    key = (workload, config_name, num_cpus, policy, cdpc, prefetch, aligned)
    result = _run_cache.get(key)
    if result is not None:
        return result
    config = make_config(config_name, num_cpus)
    options = EngineOptions(
        policy=policy,
        cdpc=cdpc,
        prefetch=prefetch,
        aligned=aligned,
        profile=FAST,
    )
    fingerprint = task_fingerprint((workload, config, options))
    if _STORE is not None:
        stored = _STORE.get(fingerprint)
        if stored is not None:
            _run_cache[key] = stored
            return stored
    result = run_benchmark(workload, config, options)
    if _STORE is not None:
        _STORE.put(fingerprint, result, label=result.label())
    _run_cache[key] = result
    return result


def publish(name: str, text: str) -> None:
    """Print a result table and persist it under benchmarks/results/."""
    print(f"\n=== {name} ===\n{text}\n")
    _RESULTS_DIR.mkdir(exist_ok=True)
    (_RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


@pytest.fixture
def bench_once(benchmark):
    """Run a callable exactly once under pytest-benchmark and return its value."""

    def runner(func):
        return benchmark.pedantic(func, rounds=1, iterations=1, warmup_rounds=0)

    return runner
