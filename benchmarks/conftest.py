"""Shared infrastructure for the paper-reproduction benchmarks.

Every module regenerates one table or figure of the paper on the 1/16
geometrically-scaled machine (DESIGN.md documents the scaling invariants).
Runs are memoized across modules — Table 2 reuses Figure 9's runs exactly
as the paper derives its table from the same experiments.

Each benchmark prints its table (run pytest with ``-s`` to see it) and
writes it to ``benchmarks/results/<name>.txt``.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.machine.config import MachineConfig, alpha_server, sgi_2way, sgi_4mb, sgi_base
from repro.sim.engine import EngineOptions, run_benchmark
from repro.sim.results import RunResult
from repro.sim.tracegen import SimProfile

#: Geometric scale of all benchmark runs (preserves color counts).
BENCH_SCALE = 16

FAST = SimProfile.fast()

_CONFIGS = {
    "sgi_base": sgi_base,
    "sgi_2way": sgi_2way,
    "sgi_4mb": sgi_4mb,
    "alpha": alpha_server,
}

_RESULTS_DIR = pathlib.Path(__file__).parent / "results"

_run_cache: dict[tuple, RunResult] = {}


def make_config(name: str, num_cpus: int) -> MachineConfig:
    return _CONFIGS[name](num_cpus).scaled(BENCH_SCALE)


def cached_run(
    workload: str,
    config_name: str,
    num_cpus: int,
    policy: str = "page_coloring",
    cdpc: bool = False,
    prefetch: bool = False,
    aligned: bool = True,
) -> RunResult:
    """Run one benchmark configuration, memoized for the whole session."""
    key = (workload, config_name, num_cpus, policy, cdpc, prefetch, aligned)
    result = _run_cache.get(key)
    if result is None:
        config = make_config(config_name, num_cpus)
        options = EngineOptions(
            policy=policy,
            cdpc=cdpc,
            prefetch=prefetch,
            aligned=aligned,
            profile=FAST,
        )
        result = run_benchmark(workload, config, options)
        _run_cache[key] = result
    return result


def publish(name: str, text: str) -> None:
    """Print a result table and persist it under benchmarks/results/."""
    print(f"\n=== {name} ===\n{text}\n")
    _RESULTS_DIR.mkdir(exist_ok=True)
    (_RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


@pytest.fixture
def bench_once(benchmark):
    """Run a callable exactly once under pytest-benchmark and return its value."""

    def runner(func):
        return benchmark.pedantic(func, rounds=1, iterations=1, warmup_rounds=0)

    return runner
