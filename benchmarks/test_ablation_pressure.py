"""Ablation: CDPC hint honoring under competing memory pressure (§5.3).

The paper's OS interface treats compiler page colors as *hints*: when the
preferred color's free list is empty the kernel falls back to the nearest
color rather than failing the allocation.  This experiment injects a
competing address space that seizes a color-skewed fraction of physical
memory before (and during) the run, then sweeps that fraction to trace
the degradation curve: hint honor rate falls and fallback distances grow
as pressure rises, yet every run completes and page-table/physmem
invariants hold throughout.

The interesting shape is graceful degradation — there is no cliff.  At
low pressure nearly every hint is honored; rising pressure pushes
allocations onto the spiral fallback and the honor rate decays.  Once
pressure is high enough that whole free lists empty out, the reclaim
path engages and evicts competitor-held frames *of the hinted color*,
which partially restores the honor rate — the curve dips, then recovers
as reclaim takes over from fallback.  Every run completes either way,
exactly the behavior §5.3 asks of a real kernel.
"""

from conftest import FAST, make_config, publish

from repro.analysis.report import render_table
from repro.robustness.faults import FaultPlan
from repro.sim.engine import EngineOptions, run_benchmark

NUM_CPUS = 8

PRESSURES = (0.0, 0.2, 0.4, 0.6, 0.8)


def run_sweep():
    config = make_config("sgi_base", NUM_CPUS)
    results = {}
    for pressure in PRESSURES:
        plan = FaultPlan(seed=7, pressure=pressure) if pressure else None
        options = EngineOptions(
            policy="page_coloring",
            cdpc=True,
            profile=FAST,
            fault_plan=plan,
            check_invariants=True,
        )
        results[pressure] = run_benchmark("tomcatv", config, options)
    return results


def test_pressure_degradation_curve(bench_once):
    results = bench_once(run_sweep)
    rows = []
    for pressure, r in results.items():
        d = r.degradation
        rows.append([
            f"{pressure:.1f}",
            round(r.hint_honor_rate, 3),
            d.fallback_allocations,
            d.reclaims,
            d.frames_seized,
            round(r.wall_ns / 1e6, 2),
        ])
    publish(
        "ablation_pressure",
        render_table(
            ["pressure", "honor rate", "fallbacks", "reclaims",
             "seized", "wall ms"],
            rows,
        ),
    )

    honor = {p: r.hint_honor_rate for p, r in results.items()}

    # Unpressured runs honor essentially every hint.
    assert honor[0.0] > 0.99

    # While free lists still have frames the curve degrades monotonically
    # with pressure (small tolerance: adjacent levels can tie).
    fallback_region = [p for p in PRESSURES if not results[p].degradation.reclaims]
    for lo, hi in zip(fallback_region, fallback_region[1:]):
        assert honor[hi] <= honor[lo] + 0.02

    # Mid-range pressure visibly hurts: hints start landing off-color.
    assert honor[0.6] < honor[0.0]
    assert results[0.6].degradation.fallback_allocations > 0

    # At the heaviest pressure whole free lists empty out and the reclaim
    # path engages; evicting held frames of the hinted color partially
    # recovers the honor rate relative to the pure-fallback regime.
    assert results[0.8].degradation.reclaims > 0
    assert honor[0.8] > honor[0.6]
    assert honor[0.8] < honor[0.0]

    # Degradation is graceful, never fatal: every run completes and the
    # page-table/physmem invariants held at every epoch.
    for r in results.values():
        assert r.wall_ns > 0
        assert r.degradation.invariant_checks > 0
