"""Ablation: dynamic page recoloring vs CDPC (Section 2.1's alternative).

The paper argues that dynamic policies — which detect conflicts via miss
counters and recolor pages by copying — face two multiprocessor problems:
recoloring costs (per-processor TLB shootdowns, copy traffic) are much
larger than on uniprocessors, and conflict misses are harder to attribute.
This experiment measures exactly that: a miss-counter recolorer against
CDPC on the benchmark with the clearest conflict pathology.

Expected outcome (and the paper's prediction): the dynamic policy either
does nothing (conservative threshold — per-frame counters stay below it
because the conflicts are spread uniformly across each processor's pages,
not concentrated in hot frames) or pays heavy migration costs for little
gain (aggressive threshold).  CDPC's compile-time knowledge of the
per-processor access patterns is what the run-time counters cannot
recover.
"""

from conftest import FAST, cached_run, make_config, publish

from repro.analysis.report import render_table
from repro.sim.engine import EngineOptions, run_benchmark

NUM_CPUS = 16


def run_variants():
    config = make_config("sgi_base", NUM_CPUS)
    results = {
        "page_coloring": cached_run("tomcatv", "sgi_base", NUM_CPUS),
        "cdpc": cached_run("tomcatv", "sgi_base", NUM_CPUS, cdpc=True),
    }
    for label, threshold in (("dynamic (conservative)", 16),
                             ("dynamic (aggressive)", 4)):
        options = EngineOptions(
            policy="page_coloring",
            dynamic_recolor=True,
            recolor_threshold=threshold,
            recolor_max_per_step=64,
            profile=FAST,
        )
        results[label] = run_benchmark("tomcatv", config, options)
    return results


def test_dynamic_recoloring(bench_once):
    results = bench_once(run_variants)
    rows = [
        [label, round(r.wall_ns / 1e6, 2), r.miss_breakdown()["conflict"],
         round(r.overhead_breakdown_ns()["kernel"] / 1e6, 2)]
        for label, r in results.items()
    ]
    publish(
        "ablation_dynamic_recoloring",
        render_table(["policy", "wall ms", "conflicts", "kernel ms"], rows),
    )

    base = results["page_coloring"]
    cdpc = results["cdpc"]
    conservative = results["dynamic (conservative)"]
    aggressive = results["dynamic (aggressive)"]

    # CDPC dominates every dynamic variant.
    assert cdpc.wall_ns < conservative.wall_ns
    assert cdpc.wall_ns < aggressive.wall_ns

    # The conservative threshold never fires: tomcatv's conflicts are
    # uniform over each processor's footprint, not hot-frame concentrated.
    assert conservative.wall_ns == base.wall_ns

    # The aggressive variant pays real kernel time (TLB shootdowns on all
    # sixteen processors plus copies) without removing the conflicts.
    assert aggressive.wall_ns > base.wall_ns
    assert (
        aggressive.miss_breakdown()["conflict"]
        > 0.8 * base.miss_breakdown()["conflict"]
    )
    assert (
        aggressive.overhead_breakdown_ns()["kernel"]
        > base.overhead_breakdown_ns()["kernel"]
    )
