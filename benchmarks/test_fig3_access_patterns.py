"""Figure 3 — page-level access patterns in virtual-address order.

The paper plots, for tomcatv/swim/hydro2d on 16 processors, which virtual
pages each processor touches: sparse stripes spanning far more address
space than one cache.  We reproduce the quantitative content: per-processor
footprint (pages), positional span, and density (pages/span), showing the
sparsity that defeats a page-coloring policy.
"""

from conftest import BENCH_SCALE, make_config, publish

from repro.analysis.access_maps import footprint_density, page_access_map, va_order_map
from repro.analysis.report import render_table
from repro.compiler.padding import layout_arrays
from repro.compiler.summaries import extract_summary
from repro.sim.engine import _loop_group_pairs
from repro.workloads import get_workload

WORKLOADS = ("tomcatv", "swim", "hydro2d")
NUM_CPUS = 16


def build_maps():
    config = make_config("sgi_base", NUM_CPUS)
    maps = {}
    for name in WORKLOADS:
        program = get_workload(name, BENCH_SCALE).program
        layout = layout_arrays(
            program.arrays, config.l2.line_size, config.l1d.size,
            groups=_loop_group_pairs(program),
        )
        summary = extract_summary(program, layout)
        access_map = page_access_map(summary, config.page_size, NUM_CPUS)
        maps[name] = (config, access_map)
    return maps


def test_fig3(bench_once):
    maps = bench_once(build_maps)
    rows = []
    for name in WORKLOADS:
        config, access_map = maps[name]
        ordered = va_order_map(access_map)
        cache_pages = config.l2.size // config.page_size
        for cpu in (0, NUM_CPUS // 2, NUM_CPUS - 1):
            pages = sum(1 for _p, cpus in ordered if cpu in cpus)
            density = footprint_density(ordered, cpu)
            span = pages / density if density else 0
            rows.append([name, cpu, pages, int(span), round(density, 3),
                         round(span / cache_pages, 1)])
    publish(
        "fig3_access_patterns_va_order",
        render_table(
            ["bench", "cpu", "pages", "span", "density", "span/cache"], rows
        ),
    )
    # Section 4.2: each processor accesses less than one cache worth of
    # data, but spread over a range significantly larger than the cache.
    for name, cpu, pages, span, density, span_ratio in rows:
        config, _ = maps[name]
        cache_pages = config.l2.size // config.page_size
        assert pages < 1.2 * cache_pages, (name, cpu)
        assert span_ratio > 3.0, (name, cpu)
        assert density < 0.5, (name, cpu)
