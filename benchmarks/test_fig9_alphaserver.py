"""Figure 9 — validation on the AlphaServer 8400 configuration.

Four page-mapping configurations on the Alpha machine model (350MHz
21164-class CPUs, 4MB direct-mapped external cache): bin hopping with
unaligned data, bin hopping, page coloring, and CDPC (delivered by
touching pages in coloring order on the native bin-hopping kernel, as the
paper did on Digital UNIX).
"""

from conftest import cached_run, publish

from repro.analysis.report import render_table
from repro.workloads import WORKLOAD_NAMES

CPU_COUNTS = (1, 2, 4, 8)
VARIANTS = (
    ("bh_unaligned", dict(policy="bin_hopping", aligned=False)),
    ("bin_hopping", dict(policy="bin_hopping")),
    ("page_coloring", dict(policy="page_coloring")),
    ("cdpc", dict(policy="bin_hopping", cdpc=True)),
)


def run_fig9():
    results = {}
    for name in WORKLOAD_NAMES:
        for cpus in CPU_COUNTS:
            for label, kwargs in VARIANTS:
                results[(name, cpus, label)] = cached_run(
                    name, "alpha", cpus, **kwargs
                )
    return results


def test_fig9(bench_once):
    results = bench_once(run_fig9)
    rows = []
    for name in WORKLOAD_NAMES:
        for cpus in CPU_COUNTS:
            uni = min(
                results[(name, 1, label)].wall_ns for label, _ in VARIANTS
            )
            row = [name, cpus]
            for label, _ in VARIANTS:
                row.append(round(uni / results[(name, cpus, label)].wall_ns, 2))
            rows.append(row)
    publish(
        "fig9_alphaserver",
        render_table(
            ["bench", "cpus", "bh (unaligned)", "bin hopping", "page coloring",
             "cdpc"], rows
        ),
    )

    def wall(name, cpus, label):
        return results[(name, cpus, label)].wall_ns

    # swim and tomcatv are the most sensitive benchmarks; CDPC
    # significantly outperforms both static policies at 8 CPUs.
    for name in ("swim", "tomcatv"):
        assert wall(name, 8, "cdpc") < wall(name, 8, "bin_hopping"), name
        assert wall(name, 8, "cdpc") < wall(name, 8, "page_coloring"), name
        # ...and bin hopping beats page coloring for them.
        assert wall(name, 8, "bin_hopping") < wall(name, 8, "page_coloring"), name

    # Neither static policy dominates the other across the suite.
    bh_wins = sum(
        1 for name in WORKLOAD_NAMES
        if wall(name, 8, "bin_hopping") < wall(name, 8, "page_coloring") * 0.98
    )
    pc_wins = sum(
        1 for name in WORKLOAD_NAMES
        if wall(name, 8, "page_coloring") < wall(name, 8, "bin_hopping") * 0.98
    )
    assert bh_wins >= 1 and pc_wins >= 1

    # CDPC performs at least about as well as the best static policy in
    # most cases (Table 2's claim).
    close_or_better = sum(
        1 for name in WORKLOAD_NAMES
        if wall(name, 8, "cdpc")
        <= 1.1 * min(wall(name, 8, "bin_hopping"), wall(name, 8, "page_coloring"))
    )
    assert close_or_better >= 8

    # Alignment matters for the benchmarks most sensitive to layout
    # (Figure 9 calls out swim and tomcatv): unaligned data under bin
    # hopping is slower than the aligned default.
    for name in ("tomcatv", "swim"):
        assert (
            wall(name, 8, "bh_unaligned") > wall(name, 8, "bin_hopping")
        ), name
        # And never as good as CDPC.
        assert wall(name, 8, "bh_unaligned") > wall(name, 8, "cdpc"), name
