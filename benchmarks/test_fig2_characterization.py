"""Figure 2 — high-level characterization of the workloads.

Regenerates the four views of Figure 2 (combined execution time, overhead
breakdown, MCPI breakdown, bus utilization) for the whole suite under the
base configuration (1MB direct-mapped external cache, IRIX-style page
coloring), at 1, 4 and 16 processors.
"""

from conftest import cached_run, publish

from repro.analysis.report import render_table
from repro.workloads import WORKLOAD_NAMES

CPU_COUNTS = (1, 4, 16)


def run_suite():
    results = {}
    for name in WORKLOAD_NAMES:
        for cpus in CPU_COUNTS:
            results[(name, cpus)] = cached_run(name, "sgi_base", cpus)
    return results


def test_fig2(bench_once):
    results = bench_once(run_suite)

    exec_rows, overhead_rows, mcpi_rows, bus_rows = [], [], [], []
    for name in WORKLOAD_NAMES:
        for cpus in CPU_COUNTS:
            r = results[(name, cpus)]
            exec_rows.append(
                [name, cpus, round(r.combined_execution_ns / 1e6, 2),
                 round(r.wall_ns / 1e6, 2)]
            )
            ov = r.overhead_breakdown_ns()
            overhead_rows.append(
                [name, cpus]
                + [round(ov[k] / 1e6, 2)
                   for k in ("kernel", "load_imbalance", "sequential",
                             "suppressed", "synchronization")]
            )
            parts = r.mcpi_breakdown()
            mcpi_rows.append(
                [name, cpus, round(r.mcpi(), 2)]
                + [round(parts.get(k, 0.0), 3)
                   for k in ("l1", "capacity", "conflict", "true_sharing",
                             "false_sharing")]
            )
            bus_rows.append([name, cpus, round(r.bus_utilization(), 3)])

    publish("fig2_combined_execution",
            render_table(["bench", "cpus", "combined ms", "wall ms"], exec_rows))
    publish("fig2_overheads",
            render_table(["bench", "cpus", "kernel", "imbalance", "sequential",
                          "suppressed", "sync"], overhead_rows))
    publish("fig2_mcpi",
            render_table(["bench", "cpus", "mcpi", "l1", "capacity", "conflict",
                          "true_shr", "false_shr"], mcpi_rows))
    publish("fig2_bus_utilization",
            render_table(["bench", "cpus", "utilization"], bus_rows))

    # Shape assertions from Section 4.1.
    # Most benchmarks speed up; apsi/fpppp/wave5 do not.
    for name in ("tomcatv", "swim", "hydro2d", "su2cor", "mgrid", "turb3d"):
        assert results[(name, 16)].wall_ns < results[(name, 1)].wall_ns * 0.6, name
    for name in ("fpppp", "apsi"):
        assert results[(name, 16)].wall_ns > results[(name, 1)].wall_ns * 0.5, name
    # Bus utilization grows with processor count for the bandwidth-bound codes.
    for name in ("tomcatv", "swim"):
        assert (
            results[(name, 16)].bus_utilization()
            > results[(name, 1)].bus_utilization()
        ), name
    # Replacement misses dominate communication misses (the compiler has
    # eliminated most sharing).
    for name in ("tomcatv", "swim", "hydro2d"):
        r = results[(name, 16)]
        assert r.replacement_misses() > 5 * r.communication_misses(), name
    # fpppp is instruction-bound and does not load the bus.
    fp = results[("fpppp", 16)]
    assert fp.bus_utilization() < 0.2
    assert fp.stats.cpus[0].l1i_misses > 0
