"""Ablation: does geometric scaling preserve the results' shape?

The whole reproduction rests on the substitution documented in DESIGN.md:
running at 1/16 geometric scale (cache, page and data sizes divided
together, color count preserved) keeps the quantities page mapping
depends on.  This experiment measures the same policy comparison at two
different scale factors and checks that the *ratios* — CDPC speedup over
each static policy, and the replacement-miss reduction — are stable
across scales, even though absolute times differ.
"""

from conftest import FAST, publish

from repro.analysis.report import render_table
from repro.machine.config import sgi_base
from repro.sim.engine import EngineOptions, run_benchmark

WORKLOADS = ("tomcatv", "hydro2d")
NUM_CPUS = 16
SCALES = (8, 16)


def run_scales():
    results = {}
    for scale in SCALES:
        config = sgi_base(NUM_CPUS).scaled(scale)
        assert config.num_colors == 256  # the invariant under test
        for name in WORKLOADS:
            for cdpc in (False, True):
                options = EngineOptions(
                    policy="page_coloring", cdpc=cdpc, profile=FAST
                )
                results[(scale, name, cdpc)] = run_benchmark(
                    name, config, options
                )
    return results


def test_scaling_invariance(bench_once):
    results = bench_once(run_scales)
    rows = []
    speedups = {}
    for name in WORKLOADS:
        for scale in SCALES:
            base = results[(scale, name, False)]
            cdpc = results[(scale, name, True)]
            speedup = base.wall_ns / cdpc.wall_ns
            speedups[(name, scale)] = speedup
            miss_ratio = (cdpc.replacement_misses() + 1) / (
                base.replacement_misses() + 1
            )
            rows.append(
                [name, f"1/{scale}", round(base.wall_ns / 1e6, 2),
                 round(cdpc.wall_ns / 1e6, 2), round(speedup, 2),
                 round(miss_ratio, 4)]
            )
    publish(
        "ablation_scaling_invariance",
        render_table(
            ["bench", "scale", "pc ms", "cdpc ms", "cdpc speedup",
             "miss ratio"], rows
        ),
    )

    for name in WORKLOADS:
        fine = speedups[(name, SCALES[0])]
        coarse = speedups[(name, SCALES[1])]
        # Both scales agree on the direction and on a clear effect.
        assert fine > 1.5 and coarse > 1.5, (name, fine, coarse)
        # CDPC eliminates essentially all replacement misses at either
        # scale — the mapping-level result is exactly scale-invariant.
        for scale in SCALES:
            base = results[(scale, name, False)]
            cdpc = results[(scale, name, True)]
            assert cdpc.replacement_misses() < 0.02 * base.replacement_misses()

    # For the exactly color-aligned pathology (tomcatv) the wall-clock
    # speedup is also stable across scales; hydro2d's birthday-collision
    # baseline interacts with sub-page padding, so only its direction and
    # miss elimination are scale-invariant (see EXPERIMENTS.md).
    fine, coarse = speedups[("tomcatv", SCALES[0])], speedups[("tomcatv", SCALES[1])]
    assert abs(fine - coarse) / max(fine, coarse) < 0.3
