"""Figure 7 — CDPC with a two-way set-associative cache and a 4MB cache.

The paper's findings: CDPC's improvements on a 1MB two-way cache are
similar to the direct-mapped case (associativity reduces hot spots but not
under-utilization), and with a 4MB cache the benefits appear at *fewer*
processors — including for applu, which saw no benefit at 1MB.
"""

from conftest import cached_run, publish

from repro.analysis.report import render_table

WORKLOADS = ("tomcatv", "swim", "hydro2d", "su2cor", "mgrid", "applu", "turb3d")
CPU_COUNTS = (4, 8, 16)
CONFIGS = ("sgi_base", "sgi_2way", "sgi_4mb")


def run_fig7():
    results = {}
    for config in CONFIGS:
        for name in WORKLOADS:
            for cpus in CPU_COUNTS:
                results[(config, name, cpus, False)] = cached_run(name, config, cpus)
                results[(config, name, cpus, True)] = cached_run(
                    name, config, cpus, cdpc=True
                )
    return results


def test_fig7(bench_once):
    results = bench_once(run_fig7)
    rows = []
    for name in WORKLOADS:
        for cpus in CPU_COUNTS:
            row = [name, cpus]
            for config in CONFIGS:
                base = results[(config, name, cpus, False)]
                cdpc = results[(config, name, cpus, True)]
                row.append(round(base.wall_ns / cdpc.wall_ns, 2))
            rows.append(row)
    publish(
        "fig7_associativity_and_size",
        render_table(
            ["bench", "cpus", "speedup @1MB DM", "speedup @1MB 2-way",
             "speedup @4MB DM"], rows
        ),
    )

    def speedup(config, name, cpus):
        return (
            results[(config, name, cpus, False)].wall_ns
            / results[(config, name, cpus, True)].wall_ns
        )

    # Two-way associativity does not remove CDPC's advantage for the
    # conflict-bound benchmarks (tomcatv needs 8-way to fix 7 arrays).
    assert speedup("sgi_2way", "tomcatv", 16) > 1.5
    assert speedup("sgi_2way", "swim", 16) > 1.5
    # With 4MB caches the benefits appear at fewer processors...
    assert speedup("sgi_4mb", "tomcatv", 4) > speedup("sgi_base", "tomcatv", 4)
    # ...and applu, capacity-bound at 1MB, now benefits.
    assert speedup("sgi_base", "applu", 8) < 1.25
    assert speedup("sgi_4mb", "applu", 8) > 1.3
    # hydro2d (8MB) fits early at 4MB: the default policy is already
    # adequate there, so CDPC's extra gain is modest.
    assert speedup("sgi_4mb", "hydro2d", 16) < speedup("sgi_base", "hydro2d", 8) + 0.5
