"""Section 3.2 — validating the representative-execution-window method.

The paper justifies simulating a short window by measuring, on the
high-speed simulator, that each phase behaves consistently across
occurrences: "in all but one case (wave5), the standard deviation of both
the number of instructions and the miss rate is less than 1% of the mean".
This benchmark repeats the measurement on our simulator: each phase of
each workload is re-measured several times in the steady state and the
coefficient of variation reported.
"""

from conftest import BENCH_SCALE, FAST, make_config, publish

from repro.analysis.report import render_table
from repro.sim.engine import EngineOptions, measure_occurrence_variation
from repro.workloads import WORKLOAD_NAMES, get_workload

NUM_CPUS = 4
REPEATS = 4


def run_all():
    config = make_config("sgi_base", NUM_CPUS)
    report = {}
    variable_phases = set()
    for name in WORKLOAD_NAMES:
        program = get_workload(name, BENCH_SCALE).program
        for phase in program.phases:
            if phase.miss_variation:
                variable_phases.add((name, phase.name))
        report[name] = measure_occurrence_variation(
            program, config, EngineOptions(profile=FAST), repeats=REPEATS
        )
    return report, variable_phases


def test_window_methodology(bench_once):
    report, variable_phases = bench_once(run_all)
    rows = []
    for name, phases in report.items():
        for phase, metrics in phases.items():
            instr_mean, _istd, instr_cv = metrics["instructions"]
            miss_mean, _mstd, miss_cv = metrics["misses"]
            rows.append(
                [name, phase, int(instr_mean), round(instr_cv, 4),
                 int(miss_mean), round(miss_cv, 4)]
            )
    publish(
        "methodology_window_variation",
        render_table(
            ["bench", "phase", "instr (mean)", "instr cv",
             "misses (mean)", "miss cv"], rows
        ),
    )
    for name, phase, instr_mean, instr_cv, miss_mean, miss_cv in rows:
        if (name, phase) in variable_phases:
            # The wave5 anomaly (Section 3.2): the paper measured 4%
            # instruction and 30% miss variation for one phase; our model
            # reproduces a clear outlier here.
            assert miss_cv > 0.05, (name, phase)
            continue
        # Instruction counts are stable to well under 1% for every phase.
        assert instr_cv < 0.01, (name, phase)
        # Miss rates are stable wherever misses are substantial (relative
        # variation of near-zero counts is meaningless).
        if miss_mean > 1000:
            assert miss_cv < 0.05, (name, phase)
