"""Figure 5 — access patterns in coloring order.

The same three workloads as Figure 3, re-plotted in the page order CDPC
produces: each processor's pages become one dense block.  We verify the
density increase quantitatively and that the mapping is conflict-free
(at most one page per color per processor) at 16 processors, where each
processor's footprint fits within the color space.
"""

from conftest import BENCH_SCALE, make_config, publish

from repro.analysis.access_maps import (
    coloring_order_map,
    conflict_depth,
    footprint_density,
    page_access_map,
    va_order_map,
)
from repro.analysis.report import render_table
from repro.compiler.padding import layout_arrays
from repro.compiler.summaries import extract_summary
from repro.core.coloring import generate_page_colors
from repro.sim.engine import _loop_group_pairs
from repro.workloads import get_workload

WORKLOADS = ("tomcatv", "swim", "hydro2d")
NUM_CPUS = 16


def build():
    config = make_config("sgi_base", NUM_CPUS)
    out = {}
    for name in WORKLOADS:
        program = get_workload(name, BENCH_SCALE).program
        layout = layout_arrays(
            program.arrays, config.l2.line_size, config.l1d.size,
            groups=_loop_group_pairs(program),
        )
        summary = extract_summary(program, layout)
        access_map = page_access_map(summary, config.page_size, NUM_CPUS)
        coloring = generate_page_colors(
            summary, config.page_size, config.num_colors, NUM_CPUS
        )
        out[name] = (config, access_map, coloring)
    return out


def test_fig5(bench_once):
    data = bench_once(build)
    rows = []
    for name in WORKLOADS:
        config, access_map, coloring = data[name]
        va = va_order_map(access_map)
        cdpc = coloring_order_map(coloring, access_map)
        depth = conflict_depth(coloring.colors, access_map, config.num_colors)
        for cpu in (0, NUM_CPUS // 2, NUM_CPUS - 1):
            rows.append(
                [name, cpu,
                 round(footprint_density(va, cpu), 3),
                 round(footprint_density(cdpc, cpu), 3),
                 depth]
            )
    publish(
        "fig5_coloring_order",
        render_table(
            ["bench", "cpu", "density (VA order)", "density (CDPC order)",
             "max pages/color"], rows
        ),
    )
    for name, cpu, va_density, cdpc_density, depth in rows:
        # Figure 5: "the access patterns are significantly denser".  Edge
        # processors under *rotate* communication own pages at both ends of
        # every array (a cycle no linear order can keep adjacent), so the
        # positional-density check applies to interior processors; the
        # conflict-depth bound covers everyone.
        if cpu == NUM_CPUS // 2:
            assert cdpc_density > 3 * va_density, (name, cpu)
            assert cdpc_density > 0.9, (name, cpu)
        # At most one extra page per color from shared boundary pages.
        assert depth <= 2, (name, cpu)
    # tomcatv (shift communication, fits 16 ways): fully conflict-free.
    assert rows[0][4] == 1
