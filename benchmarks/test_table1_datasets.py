"""Table 1 — reference data-set sizes of SPEC95fp."""

from conftest import publish

from repro.analysis.report import render_table
from repro.workloads import WORKLOAD_NAMES, get_workload

PAPER_TABLE1_MB = {
    "tomcatv": 14,
    "swim": 14,
    "su2cor": 23,
    "hydro2d": 8,
    "mgrid": 7,
    "applu": 31,
    "turb3d": 24,
    "apsi": 9,
    "fpppp": 1,  # paper: "< 1"
    "wave5": 40,
}


def build_table():
    rows = []
    for name in WORKLOAD_NAMES:
        workload = get_workload(name)
        rows.append([workload.spec_id, round(workload.data_set_mb, 1),
                     PAPER_TABLE1_MB[name]])
    return rows


def test_table1(bench_once):
    rows = bench_once(build_table)
    publish(
        "table1_datasets",
        render_table(["benchmark", "model MB", "paper MB"], rows),
    )
    for spec_id, model_mb, paper_mb in rows:
        if spec_id == "145.fpppp":
            assert model_mb < 1.0
        else:
            assert abs(model_mb - paper_mb) / paper_mb < 0.07, spec_id
