"""The churn figure: CDPC under multi-programmed dynamic capacity.

The paper evaluates CDPC on a dedicated machine.  This benchmark runs the
comparison the paper never measured: the same plan under co-runner churn
and host capacity revocation, in three modes — adaptive CDPC (windowed
honor-rate watchdog + transactional color re-planning), dynamic recolor
(watchdog trip abandons the plan to the §2.1 miss-counter recolorer), and
Digital-UNIX bin hopping.

Expected outcome: the dynamic-recolor mode's *cumulative* watchdog never
sees the mid-phase honor-rate collapse the revocation causes (the
cumulative rate never dips below the threshold), so its hints keep
missing; the adaptive mode's windowed watchdog catches the collapse and
folds the faulting color classes onto the surviving capacity band —
higher honor rate at comparable MCPI, and no crash anywhere: every
capacity event lands as accounting in the DegradationReport.
"""

from conftest import publish

from repro.analysis.report import render_table
from repro.machine.config import sgi_base
from repro.scenarios import preset, run_scenario
from repro.sim.engine import EngineOptions
from repro.sim.tracegen import SimProfile

NUM_CPUS = 4
SCALE = 8


def run_smoke_scenario():
    return run_scenario(
        preset("smoke"),
        sgi_base(NUM_CPUS).scaled(SCALE),
        options=EngineOptions(profile=SimProfile.fast()),
        max_workers=1,
    )


def test_churn_scenario_comparison(bench_once):
    report = bench_once(run_smoke_scenario)
    honor = report.honor_rates()
    mcpi = report.mcpi()
    degradation = report.degradation_summary()

    rows = [
        [
            label,
            round(honor[label], 4),
            round(mcpi[label], 3),
            degradation[label]["frames_revoked"],
            degradation[label]["adaptive_replans"],
            degradation[label]["watchdog_trips"],
        ]
        for label in report.results
    ]
    publish(
        "churn_scenarios",
        render_table(
            ["mode", "honor", "MCPI", "revoked", "replans", "trips"], rows
        )
        + "\n\n"
        + report.figure(width=40),
    )

    # Every mode survived the full churn schedule: capacity revocation is
    # accounting, not a crash.
    assert sorted(report.results) == [
        "bin-hopping", "cdpc-adaptive", "dynamic-recolor"
    ]
    for label, summary in degradation.items():
        assert summary["frames_revoked"] > 0, label
        assert summary["frames_restored"] > 0, label
        assert summary["capacity_timeline"], label

    # The headline: adaptive re-planning recovers honor rate the
    # trip-and-abandon fallback loses under churn.
    assert honor["cdpc-adaptive"] > honor["dynamic-recolor"]

    # The adaptive mode actually re-planned (rather than winning by luck),
    # and the re-plans were transactional — nothing aborted mid-commit
    # without being recorded.
    adaptive = degradation["cdpc-adaptive"]
    assert adaptive["adaptive_replans"] >= 1
    assert adaptive["replan_migrations"] >= 0
    # Cost stayed sane: the adaptive mode is not buying honor with a
    # blown-up miss rate (allow 10% slack over the recolor fallback).
    assert mcpi["cdpc-adaptive"] <= mcpi["dynamic-recolor"] * 1.10
