"""Ablation: the paper's footnote-1 prefetch extension.

Section 6.2, footnote 1: "This suggests that a version of a prefetch that
is not dropped on a TLB miss may be desirable for large matrix-based
codes where TLB faults are common."  We implement that prefetch
(`prefetch_fills_tlb`) and measure the suggestion:

* su2cor — large-stride but *pipelinable* prefetches; 30% of them are
  dropped on TLB misses by the R10000 rule, so the footnote's prefetch
  should recover real time;
* applu — also large-stride, but its tiling blocks software pipelining,
  the paper's *other* applu problem; un-dropping its prefetches should
  not rescue it;
* tomcatv — unit-stride, no drops: the extension must be a no-op.
"""

from conftest import FAST, cached_run, make_config, publish

from repro.analysis.report import render_table
from repro.sim.engine import EngineOptions, run_benchmark

NUM_CPUS = 8
WORKLOADS = ("su2cor", "applu", "tomcatv")


def run_variants():
    config = make_config("sgi_base", NUM_CPUS)
    results = {}
    for name in WORKLOADS:
        results[(name, "base")] = cached_run(name, "sgi_base", NUM_CPUS)
        results[(name, "pf")] = cached_run(
            name, "sgi_base", NUM_CPUS, prefetch=True
        )
        results[(name, "pf+tlbfill")] = run_benchmark(
            name,
            config,
            EngineOptions(prefetch=True, prefetch_fills_tlb=True, profile=FAST),
        )
    return results


def test_tlbfill_prefetch(bench_once):
    results = bench_once(run_variants)
    rows = []
    for name in WORKLOADS:
        stats = results[(name, "pf")].stats.cpus[0]
        drop_rate = stats.prefetches_dropped_tlb / max(1, stats.prefetches_issued)
        rows.append(
            [name,
             round(results[(name, "base")].wall_ns / 1e6, 2),
             round(results[(name, "pf")].wall_ns / 1e6, 2),
             round(results[(name, "pf+tlbfill")].wall_ns / 1e6, 2),
             round(drop_rate, 2)]
        )
    publish(
        "ablation_tlbfill_prefetch",
        render_table(
            ["bench", "base ms", "pf ms", "pf+tlbfill ms", "pf drop rate"],
            rows,
        ),
    )

    def wall(name, label):
        return results[(name, label)].wall_ns

    # su2cor: drops are frequent and the prefetches are pipelinable, so
    # the footnote's prefetch recovers measurable time.
    su2cor_stats = results[("su2cor", "pf")].stats.cpus[0]
    assert su2cor_stats.prefetches_dropped_tlb > 0.2 * su2cor_stats.prefetches_issued
    assert wall("su2cor", "pf+tlbfill") < 0.97 * wall("su2cor", "pf")

    # applu: tiling still inhibits pipelining; no rescue.
    assert wall("applu", "pf+tlbfill") > 0.95 * wall("applu", "pf")

    # tomcatv: no drops to begin with; the extension is a no-op.
    tomcatv_stats = results[("tomcatv", "pf")].stats.cpus[0]
    assert tomcatv_stats.prefetches_dropped_tlb == 0
    assert wall("tomcatv", "pf+tlbfill") == wall("tomcatv", "pf")
