"""Ablations of CDPC's design choices (DESIGN.md section 5).

Not figures from the paper, but experiments isolating the contribution of
individual steps of the algorithm and the hint mechanism:

* cyclic assignment (Step 4) on/off;
* greedy access-set ordering (Step 2) vs. naive virtual-address order;
* memory pressure: how gracefully CDPC degrades as hints stop being
  honored.
"""

from conftest import FAST, cached_run, make_config, publish

from repro.analysis.report import render_table
from repro.core import coloring as coloring_mod
from repro.core import cyclic as cyclic_mod
from repro.sim.engine import EngineOptions, run_benchmark


def _run_with_patched(monkey_patches, workload="tomcatv", cpus=16):
    """Run a CDPC benchmark with parts of the algorithm disabled."""
    config = make_config("sgi_base", cpus)
    originals = {}
    try:
        for (module, attr), replacement in monkey_patches.items():
            originals[(module, attr)] = getattr(module, attr)
            setattr(module, attr, replacement)
        options = EngineOptions(policy="page_coloring", cdpc=True, profile=FAST)
        return run_benchmark(workload, config, options)
    finally:
        for (module, attr), original in originals.items():
            setattr(module, attr, original)


def _no_rotation(segment, position, conflicting, num_colors):
    return 0


def _va_order_sets(sets):
    return sorted(
        sets,
        key=lambda s: min(seg.start_page for seg in s.segments),
    )


def run_ablations():
    results = {}
    results["full"] = cached_run("tomcatv", "sgi_base", 16, cdpc=True)
    results["baseline"] = cached_run("tomcatv", "sgi_base", 16)
    results["no_cyclic"] = _run_with_patched(
        {(cyclic_mod, "choose_rotation"): _no_rotation}
    )
    results["va_set_order"] = _run_with_patched(
        {(coloring_mod, "order_access_sets"): _va_order_sets}
    )
    for pressure in (0.0, 0.3, 0.6):
        config = make_config("sgi_base", 16)
        options = EngineOptions(
            policy="page_coloring", cdpc=True, memory_pressure=pressure,
            profile=FAST,
        )
        results[f"pressure_{pressure:.1f}"] = run_benchmark(
            "tomcatv", config, options
        )
    return results


def test_ablations(bench_once):
    results = bench_once(run_ablations)
    rows = [
        [label, round(r.wall_ns / 1e6, 2), r.replacement_misses(),
         round(r.hint_honor_rate, 2)]
        for label, r in results.items()
    ]
    publish(
        "ablations",
        render_table(["variant", "wall ms", "repl misses", "hints honored"],
                     rows),
    )

    # Every ablated variant must still beat the no-CDPC baseline...
    for label in ("no_cyclic", "va_set_order"):
        assert results[label].wall_ns < results["baseline"].wall_ns, label
    # ...but the full algorithm is at least as good as each ablation.
    for label in ("no_cyclic", "va_set_order"):
        assert results["full"].wall_ns <= results[label].wall_ns * 1.05, label

    # Graceful degradation under pressure: monotone loss of honored hints,
    # performance between full-CDPC and the baseline.
    assert results["pressure_0.0"].hint_honor_rate == 1.0
    assert (
        results["pressure_0.6"].hint_honor_rate
        < results["pressure_0.3"].hint_honor_rate
    )
    assert results["pressure_0.6"].wall_ns <= results["baseline"].wall_ns * 1.1
