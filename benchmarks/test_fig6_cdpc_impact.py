"""Figure 6 — impact of compiler-directed page coloring.

For each benchmark and processor count, compare a standard page-coloring
policy against CDPC on the base machine (1MB direct-mapped).  As in the
paper, apsi and fpppp are omitted (CDPC has no effect on them; their
insensitivity is asserted separately in the test suite).
"""

from conftest import cached_run, publish

from repro.analysis.report import render_table
from repro.machine.stats import MissKind

WORKLOADS = ("tomcatv", "swim", "su2cor", "hydro2d", "mgrid", "applu",
             "turb3d", "wave5")
CPU_COUNTS = (1, 2, 4, 8, 16)


def run_fig6():
    results = {}
    for name in WORKLOADS:
        for cpus in CPU_COUNTS:
            results[(name, cpus, False)] = cached_run(name, "sgi_base", cpus)
            results[(name, cpus, True)] = cached_run(
                name, "sgi_base", cpus, cdpc=True
            )
    return results


def test_fig6(bench_once):
    results = bench_once(run_fig6)
    rows = []
    for name in WORKLOADS:
        for cpus in CPU_COUNTS:
            base = results[(name, cpus, False)]
            cdpc = results[(name, cpus, True)]
            rows.append(
                [name, cpus,
                 round(base.wall_ns / 1e6, 2),
                 round(cdpc.wall_ns / 1e6, 2),
                 round(base.wall_ns / cdpc.wall_ns, 2),
                 base.replacement_misses(),
                 cdpc.replacement_misses()]
            )
    publish(
        "fig6_cdpc_impact",
        render_table(
            ["bench", "cpus", "page_coloring ms", "cdpc ms", "speedup",
             "repl misses (pc)", "repl misses (cdpc)"], rows
        ),
    )

    speedup = {
        (name, cpus): results[(name, cpus, False)].wall_ns
        / results[(name, cpus, True)].wall_ns
        for name in WORKLOADS
        for cpus in CPU_COUNTS
    }
    # Large gains for tomcatv/swim/hydro2d once the aggregate cache holds
    # the working set; gains grow with processor count.
    assert speedup[("tomcatv", 16)] > 2.0
    assert speedup[("swim", 16)] > 2.0
    assert speedup[("tomcatv", 16)] > speedup[("tomcatv", 2)]
    assert speedup[("swim", 8)] > 1.2  # swim's gains begin at eight CPUs
    assert speedup[("hydro2d", 8)] > 1.2
    # No benefit at one processor.
    for name in WORKLOADS:
        assert 0.9 < speedup[(name, 1)] < 1.1, name
    # applu is capacity-bound at 1MB: no benefit at any processor count.
    for cpus in CPU_COUNTS:
        assert speedup[("applu", cpus)] < 1.25
    # su2cor: CDPC is applied only to the contiguous arrays and does not
    # produce the large gains of the conflict-bound codes.
    assert speedup[("su2cor", 8)] < 1.25
    # CDPC greatly reduces replacement misses where it wins.
    for name in ("tomcatv", "swim"):
        base = results[(name, 16, False)].replacement_misses()
        cdpc = results[(name, 16, True)].replacement_misses()
        assert cdpc < base / 5, name
