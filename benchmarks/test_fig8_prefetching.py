"""Figure 8 — compiler-inserted prefetching combined with CDPC.

Four configurations per benchmark (base, prefetch, CDPC, CDPC+prefetch) on
the 1MB direct-mapped machine.  The paper's qualitative claims: prefetching
hides the latency of misses CDPC does not eliminate; it is most valuable at
lower processor counts (capacity misses dominate) while CDPC takes over as
the aggregate cache grows; and prefetching does not help applu (tiling
inhibits pipelining, large strides drop prefetches on TLB misses).
"""

from conftest import cached_run, publish

from repro.analysis.report import render_table

WORKLOADS = ("tomcatv", "swim", "hydro2d", "su2cor", "applu")
CPU_COUNTS = (4, 8, 16)
VARIANTS = (
    ("base", dict()),
    ("pf", dict(prefetch=True)),
    ("cdpc", dict(cdpc=True)),
    ("cdpc+pf", dict(cdpc=True, prefetch=True)),
)


def run_fig8():
    results = {}
    for name in WORKLOADS:
        for cpus in CPU_COUNTS:
            for label, kwargs in VARIANTS:
                results[(name, cpus, label)] = cached_run(
                    name, "sgi_base", cpus, **kwargs
                )
    return results


def test_fig8(bench_once):
    results = bench_once(run_fig8)
    rows = []
    for name in WORKLOADS:
        for cpus in CPU_COUNTS:
            base = results[(name, cpus, "base")].wall_ns
            row = [name, cpus]
            for label, _ in VARIANTS:
                row.append(round(base / results[(name, cpus, label)].wall_ns, 2))
            stats = results[(name, cpus, "pf")].stats.cpus[0]
            drop_rate = stats.prefetches_dropped_tlb / max(1, stats.prefetches_issued)
            row.append(round(drop_rate, 2))
            rows.append(row)
    publish(
        "fig8_prefetching",
        render_table(
            ["bench", "cpus", "base", "pf", "cdpc", "cdpc+pf", "pf TLB-drop"],
            rows,
        ),
    )

    def speedup(name, cpus, label):
        return (
            results[(name, cpus, "base")].wall_ns
            / results[(name, cpus, label)].wall_ns
        )

    # Prefetching effectively hides latency for the stencil codes at low P.
    for name in ("tomcatv", "swim"):
        assert speedup(name, 4, "pf") > 1.3, name
    # The relative advantage shifts: prefetching helps more at low P,
    # CDPC more at high P.
    assert speedup("tomcatv", 4, "pf") > speedup("tomcatv", 4, "cdpc")
    assert speedup("tomcatv", 16, "cdpc") > speedup("tomcatv", 16, "pf")
    # Prefetching improves CDPC by hiding the misses it cannot eliminate.
    assert speedup("tomcatv", 4, "cdpc+pf") > speedup("tomcatv", 4, "cdpc")
    # applu: prefetching is ineffective — late (unpipelined) prefetches and
    # TLB drops.
    assert speedup("applu", 8, "pf") < 1.1
    applu_stats = results[("applu", 8, "pf")].stats.cpus[0]
    assert applu_stats.prefetches_dropped_tlb > 0.2 * applu_stats.prefetches_issued
