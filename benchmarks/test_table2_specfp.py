"""Table 2 — execution times and SPEC95fp rating on the AlphaServer model.

Projects each 8-CPU run to a full-benchmark time (steady-state window x
occurrence repeats x geometric scale), computes SPEC ratios against the
SparcStation-10 reference times, and compares the suite rating across bin
hopping, page coloring and CDPC.  The paper reports CDPC raising the
8-processor rating by 8% over bin hopping and 20% over page coloring;
absolute ratios here are synthetic (the substrate is a scaled simulator),
but the ordering and the relative gaps are the reproduction target.
"""

from conftest import cached_run, publish

from repro.analysis.report import render_table
from repro.analysis.spec_ratio import spec_ratio, specfp_rating
from repro.workloads import WORKLOAD_NAMES, get_workload

NUM_CPUS = 8
POLICIES = (
    ("bin_hopping", dict(policy="bin_hopping")),
    ("page_coloring", dict(policy="page_coloring")),
    ("cdpc", dict(policy="bin_hopping", cdpc=True)),
)


def run_table2():
    results = {}
    for name in WORKLOAD_NAMES:
        for label, kwargs in POLICIES:
            results[(name, label)] = cached_run(name, "alpha", NUM_CPUS, **kwargs)
    return results


def test_table2(bench_once):
    results = bench_once(run_table2)
    ratios = {label: {} for label, _ in POLICIES}
    rows = []
    for name in WORKLOAD_NAMES:
        workload = get_workload(name)
        row = [name]
        for label, _ in POLICIES:
            run = results[(name, label)]
            seconds = run.measured_time_s(workload.steady_state_repeats)
            ratio = spec_ratio(workload.reference_time_s, seconds)
            ratios[label][name] = ratio
            row.extend([round(seconds, 1), round(ratio, 1)])
        rows.append(row)
    ratings = {label: specfp_rating(ratios[label]) for label, _ in POLICIES}
    rows.append(
        ["SPEC95fp", "", round(ratings["bin_hopping"], 1), "",
         round(ratings["page_coloring"], 1), "", round(ratings["cdpc"], 1)]
    )
    publish(
        "table2_specfp",
        render_table(
            ["bench", "bh s", "bh ratio", "pc s", "pc ratio", "cdpc s",
             "cdpc ratio"], rows
        ),
    )

    # CDPC delivers the best suite rating, ahead of bin hopping, ahead of
    # page coloring — the paper's +8% / +20% ordering.
    assert ratings["cdpc"] > ratings["bin_hopping"] > ratings["page_coloring"]
    assert ratings["cdpc"] / ratings["bin_hopping"] > 1.02
    assert ratings["cdpc"] / ratings["page_coloring"] > 1.08

    # Per-benchmark highlights: swim and tomcatv are fastest under CDPC.
    for name in ("swim", "tomcatv"):
        assert ratios["cdpc"][name] > ratios["bin_hopping"][name], name
        assert ratios["cdpc"][name] > ratios["page_coloring"][name], name
    # fpppp and apsi: essentially identical across policies.
    for name in ("fpppp", "apsi"):
        values = [ratios[label][name] for label, _ in POLICIES]
        assert max(values) / min(values) < 1.25, name
