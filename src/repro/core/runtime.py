"""The CDPC run-time library (Section 5, stages 2-3).

The compiler emits access-pattern summaries; at program start-up this
library combines them with machine-specific parameters (processor count,
cache configuration, page size) to produce a preferred color for each
virtual page, then delivers the hints to the operating system:

* on an IRIX-style kernel, through the single ``madvise``-style system
  call (:meth:`CdpcRuntime.install_hints`);
* on a Digital-UNIX-style kernel with native bin hopping, by touching
  pages in the coloring order (:meth:`CdpcRuntime.touch_order`) — since
  bin hopping hands out colors cyclically in fault order and CDPC's hints
  are round-robin over its page order, faulting pages in exactly that
  order realizes the mapping with no kernel modification.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.access_summary import AccessSummary

if TYPE_CHECKING:  # imported lazily at run time to avoid a package cycle
    from repro.compiler.ir import Program
    from repro.compiler.padding import Layout
from repro.core.coloring import ColoringResult, generate_page_colors
from repro.machine.config import MachineConfig
from repro.osmodel.vm import VirtualMemory


@dataclass
class CdpcRuntime:
    """Generates and delivers page-color hints for one program instance."""

    summary: AccessSummary
    config: MachineConfig
    num_cpus: int
    coloring: ColoringResult

    @classmethod
    def from_summary(
        cls, summary: AccessSummary, config: MachineConfig, num_cpus: int | None = None
    ) -> "CdpcRuntime":
        cpus = num_cpus or config.num_cpus
        coloring = generate_page_colors(
            summary, config.page_size, config.num_colors, cpus
        )
        return cls(summary=summary, config=config, num_cpus=cpus, coloring=coloring)

    @classmethod
    def from_program(
        cls,
        program: Program,
        layout: Layout,
        config: MachineConfig,
        num_cpus: int | None = None,
    ) -> "CdpcRuntime":
        """Convenience constructor running the compiler pass first."""
        from repro.compiler.summaries import extract_summary

        summary = extract_summary(program, layout)
        return cls.from_summary(summary, config, num_cpus)

    @property
    def hints(self) -> dict[int, int]:
        return self.coloring.colors

    def install_hints(self, vm: VirtualMemory) -> int:
        """Deliver hints through the madvise-style kernel interface."""
        return vm.madvise_colors(self.hints)

    def touch_order(self) -> list[int]:
        """The page-fault order realizing the mapping on bin hopping.

        Bin hopping assigns color ``k mod num_colors`` to the k-th fault;
        CDPC's round-robin assignment gives the k-th page of its order the
        same color, so the coloring order *is* the touch order.
        """
        return list(self.coloring.page_order)

    def install_by_touching(self, vm: VirtualMemory) -> int:
        """Deliver the mapping on an unmodified bin-hopping kernel."""
        return vm.touch_pages(self.touch_order())

    def replan_colors(self, capacity_by_color: list[int]) -> dict[int, int]:
        """Re-map the plan onto a changed capacity distribution.

        The compile-time plan assumed every color had equal capacity; on
        a machine whose frames are being revoked and restored that stops
        being true.  This returns a fresh vpage → color table obtained by
        a *bijection* on colors: the plan's color classes ranked by page
        count land on the colors ranked by ``capacity_by_color``.  Being
        a permutation, the remap preserves the plan's separation — two
        pages the compiler placed in different cache bins stay in
        different bins — while steering the largest classes toward the
        colors that can still honor them.  Ties break toward the lowest
        color so the remap is deterministic.
        """
        from repro.osmodel.dynamic import remap_plan_colors

        return remap_plan_colors(self.hints, capacity_by_color)
