"""Step 4 — cyclic page assignment within a segment (Section 5.2).

Pages within a segment are not necessarily laid down in ascending virtual
order: a *cyclic* assignment picks a starting point inside the segment,
lays pages out in ascending order to the segment boundary, then wraps
around.  Rotating a segment changes which color its array's starting page
receives, and the rotation is chosen to space the starting locations of
*conflicting* segments as far apart in the color space as possible.

Two segments may conflict when (1) their arrays are used together in the
same loop (group access), (2) their processor sets intersect, and (3) they
partially overlap in the cache — i.e. their color ranges intersect.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.access_summary import AccessSummary
from repro.core.segments import UniformAccessSegment


def segments_conflict(
    a: UniformAccessSegment,
    b: UniformAccessSegment,
    summary: AccessSummary,
    a_position: int,
    b_position: int,
    num_colors: int,
) -> bool:
    """Do two placed segments satisfy the paper's three conflict conditions?"""
    if a.array == b.array or not summary.are_grouped(a.array, b.array):
        return False
    if not (a.cpus & b.cpus):
        return False
    # Segments that fill half the color space or more wrap around it, so
    # their streams can collide anywhere regardless of position range.
    if 2 * min(a.num_pages, b.num_pages) >= num_colors:
        return True
    return _color_ranges_overlap(
        a_position, a.num_pages, b_position, b.num_pages, num_colors
    )


def _color_ranges_overlap(
    pos_a: int, len_a: int, pos_b: int, len_b: int, num_colors: int
) -> bool:
    """Do two position ranges overlap modulo the color count?"""
    if len_a >= num_colors or len_b >= num_colors:
        return True
    start_a, start_b = pos_a % num_colors, pos_b % num_colors
    # Circular interval intersection.
    delta = (start_b - start_a) % num_colors
    return delta < len_a or (num_colors - delta) < len_b


def _circular_distance(a: int, b: int, num_colors: int) -> int:
    d = abs(a - b) % num_colors
    return min(d, num_colors - d)


def choose_rotation(
    segment: UniformAccessSegment,
    position: int,
    conflicting_start_colors: Sequence[int],
    num_colors: int,
) -> int:
    """Pick the rotation maximizing color distance from conflicting starts.

    With rotation ``r``, the page emitted at relative position ``k`` is
    ``start_page + (r + k) mod L``; the segment's first virtual page is
    emitted at relative position ``(L - r) mod L`` and therefore receives
    color ``(position + (L - r) mod L) mod num_colors``.  We choose ``r``
    to maximize the minimum circular color distance between that color and
    the start colors of previously placed conflicting segments.
    """
    length = segment.num_pages
    if not conflicting_start_colors:
        return 0
    best_rotation = 0
    best_score = -1
    max_rotation = min(length, num_colors)
    for rotation in range(max_rotation):
        start_color = (position + (length - rotation) % length) % num_colors
        score = min(
            _circular_distance(start_color, other, num_colors)
            for other in conflicting_start_colors
        )
        if score > best_score:
            best_score = score
            best_rotation = rotation
    return best_rotation


def emit_segment_pages(segment: UniformAccessSegment, rotation: int) -> list[int]:
    """Page sequence for a segment under a given rotation."""
    length = segment.num_pages
    rotation %= length
    pages = list(segment.pages)
    return pages[rotation:] + pages[:rotation]


def assign_cyclic(
    ordered_segments: Sequence[UniformAccessSegment],
    summary: AccessSummary,
    num_colors: int,
) -> tuple[list[int], dict[UniformAccessSegment, int]]:
    """Lay out all segments, choosing rotations to avoid start conflicts.

    Returns the final page order and each segment's chosen rotation.
    """
    page_order: list[int] = []
    rotations: dict[UniformAccessSegment, int] = {}
    placed: list[tuple[UniformAccessSegment, int, int]] = []  # (seg, pos, start color)
    position = 0
    for segment in ordered_segments:
        conflict_colors = [
            start_color
            for other, other_pos, start_color in placed
            if segments_conflict(segment, other, summary, position, other_pos, num_colors)
        ]
        rotation = choose_rotation(segment, position, conflict_colors, num_colors)
        rotations[segment] = rotation
        page_order.extend(emit_segment_pages(segment, rotation))
        length = segment.num_pages
        start_color = (position + (length - rotation) % length) % num_colors
        placed.append((segment, position, start_color))
        position += length
    return page_order, rotations
