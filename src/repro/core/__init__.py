"""Compiler-directed page coloring — the paper's primary contribution.

The five-step hint-generation algorithm of Section 5.2 lives here, split
by step:

* :mod:`repro.core.access_summary` — the compiler→runtime vocabulary
  (array partitionings, communication patterns, group accesses);
* :mod:`repro.core.segments` — Step 1, uniform access segments and sets;
* :mod:`repro.core.ordering` — Steps 2-3, greedy path orderings;
* :mod:`repro.core.cyclic` — Step 4, cyclic assignment within segments;
* :mod:`repro.core.coloring` — Step 5 plus the orchestrator;
* :mod:`repro.core.runtime` — the run-time library delivering hints via
  ``madvise`` (IRIX) or fault-order touching (Digital UNIX).
"""

from repro.core.access_summary import (
    AccessSummary,
    ArrayPartitioning,
    CommunicationPattern,
    GroupAccess,
)
from repro.core.coloring import ColoringResult, generate_page_colors
from repro.core.cyclic import assign_cyclic, choose_rotation, segments_conflict
from repro.core.ordering import order_access_sets, order_segments_within_set
from repro.core.runtime import CdpcRuntime
from repro.core.segments import (
    UniformAccessSegment,
    UniformAccessSet,
    compute_segments,
    group_into_sets,
)

__all__ = [
    "AccessSummary",
    "ArrayPartitioning",
    "CdpcRuntime",
    "ColoringResult",
    "CommunicationPattern",
    "GroupAccess",
    "UniformAccessSegment",
    "UniformAccessSet",
    "assign_cyclic",
    "choose_rotation",
    "compute_segments",
    "generate_page_colors",
    "group_into_sets",
    "order_access_sets",
    "order_segments_within_set",
    "segments_conflict",
]
