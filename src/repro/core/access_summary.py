"""Access pattern summaries — the compiler→runtime interface (Section 5.1).

The compiler extracts three kinds of information from a parallelized
program and passes them, together with startup-time facts like exact array
dimensions, to the CDPC run-time library:

* :class:`ArrayPartitioning` — starting address, total size, partition-unit
  size, partitioning policy (even/blocked) and direction (forward/reverse).
* :class:`CommunicationPattern` — a partitioning plus a communication type
  (shift or rotate) and the width of the boundary region exchanged between
  neighbouring processors.
* :class:`GroupAccess` — pairs of arrays accessed within the same loops.

These are deliberately simple, serializable records: in the paper they
cross the compiler/run-time boundary as generated function calls.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common import Communication, Direction, Partitioning, iteration_ranges


@dataclass(frozen=True)
class ArrayPartitioning:
    """How one array is distributed across processors in parallel loops."""

    array: str
    start: int  # virtual byte address of the array
    size: int  # total bytes
    unit: int  # bytes operated on per loop iteration (e.g. one column)
    partitioning: Partitioning = Partitioning.EVEN
    direction: Direction = Direction.FORWARD

    def __post_init__(self) -> None:
        if self.size <= 0 or self.unit <= 0:
            raise ValueError("size and unit must be positive")
        if self.unit > self.size:
            raise ValueError("unit larger than array")

    @property
    def units(self) -> int:
        return -(-self.size // self.unit)

    def cpu_ranges(self, num_cpus: int) -> list[tuple[int, int]]:
        """Byte range ``[start, end)`` of the array owned by each processor."""
        ranges = iteration_ranges(self.units, num_cpus, self.partitioning, self.direction)
        result = []
        for lo_unit, hi_unit in ranges:
            lo = self.start + lo_unit * self.unit
            hi = min(self.start + hi_unit * self.unit, self.start + self.size)
            result.append((lo, max(lo, hi)))
        return result

    def cpus_for_page(self, page: int, page_size: int, num_cpus: int) -> frozenset[int]:
        """Set of processors whose partition touches the given virtual page."""
        page_lo = page * page_size
        page_hi = page_lo + page_size
        cpus = set()
        for cpu, (lo, hi) in enumerate(self.cpu_ranges(num_cpus)):
            if lo < page_hi and hi > page_lo:
                cpus.add(cpu)
        return frozenset(cpus)


@dataclass(frozen=True)
class CommunicationPattern:
    """Boundary communication between neighbouring processors."""

    partitioning: ArrayPartitioning
    kind: Communication = Communication.SHIFT
    boundary_bytes: int = 0

    def __post_init__(self) -> None:
        if self.kind is Communication.NONE:
            raise ValueError("communication pattern requires shift or rotate")
        if self.boundary_bytes < 0:
            raise ValueError("boundary_bytes must be non-negative")

    def neighbour_cpus(self, cpu: int, num_cpus: int) -> list[int]:
        """Which processors exchange boundary data with ``cpu``."""
        if num_cpus == 1:
            return []
        if self.kind is Communication.ROTATE:
            return [(cpu - 1) % num_cpus, (cpu + 1) % num_cpus]
        return [c for c in (cpu - 1, cpu + 1) if 0 <= c < num_cpus]

    def extra_cpus_for_page(
        self, page: int, page_size: int, num_cpus: int
    ) -> frozenset[int]:
        """Processors that touch this page only through communication.

        A neighbour reads up to ``boundary_bytes`` at each edge of a
        processor's partition, so pages within that distance of a partition
        edge are also accessed by the adjacent processor.
        """
        if self.boundary_bytes == 0 or num_cpus == 1:
            return frozenset()
        page_lo = page * page_size
        page_hi = page_lo + page_size
        extra: set[int] = set()
        ranges = self.partitioning.cpu_ranges(num_cpus)
        for cpu, (lo, hi) in enumerate(ranges):
            if hi <= lo:
                continue
            for neighbour in self.neighbour_cpus(cpu, num_cpus):
                n_lo, n_hi = ranges[neighbour]
                if n_hi <= n_lo:
                    continue
                # cpu reads the strip of the neighbour's partition adjacent
                # to its own: at the neighbour's near edge.
                if neighbour == cpu + 1 or (
                    self.kind is Communication.ROTATE and neighbour == (cpu + 1) % len(ranges)
                ):
                    strip_lo, strip_hi = n_lo, min(n_lo + self.boundary_bytes, n_hi)
                else:
                    strip_lo, strip_hi = max(n_hi - self.boundary_bytes, n_lo), n_hi
                if strip_lo < page_hi and strip_hi > page_lo:
                    extra.add(cpu)
        return frozenset(extra)


@dataclass(frozen=True)
class GroupAccess:
    """Two arrays accessed within the same loop (Section 5.1)."""

    array_a: str
    array_b: str

    def __post_init__(self) -> None:
        if self.array_a == self.array_b:
            raise ValueError("group access must pair distinct arrays")

    @property
    def pair(self) -> frozenset[str]:
        return frozenset((self.array_a, self.array_b))


@dataclass
class AccessSummary:
    """Everything the compiler tells the CDPC run-time library."""

    partitionings: list[ArrayPartitioning] = field(default_factory=list)
    communications: list[CommunicationPattern] = field(default_factory=list)
    groups: list[GroupAccess] = field(default_factory=list)

    def arrays(self) -> list[str]:
        seen: list[str] = []
        for part in self.partitionings:
            if part.array not in seen:
                seen.append(part.array)
        return seen

    def partitionings_of(self, array: str) -> list[ArrayPartitioning]:
        return [p for p in self.partitionings if p.array == array]

    def grouped_with(self, array: str) -> set[str]:
        partners: set[str] = set()
        for group in self.groups:
            if group.array_a == array:
                partners.add(group.array_b)
            elif group.array_b == array:
                partners.add(group.array_a)
        return partners

    def _pair_set(self) -> set[frozenset[str]]:
        # Cached view of the group pairs; rebuilt when groups change.  The
        # CDPC conflict test calls are_grouped O(segments^2) times, so a
        # linear scan here dominates hint generation for 40-array programs.
        cache = self.__dict__.get("_pair_cache")
        if cache is None or self.__dict__.get("_pair_cache_len") != len(self.groups):
            cache = {g.pair for g in self.groups}
            self.__dict__["_pair_cache"] = cache
            self.__dict__["_pair_cache_len"] = len(self.groups)
        return cache

    def are_grouped(self, array_a: str, array_b: str) -> bool:
        return frozenset((array_a, array_b)) in self._pair_set()

    def add_group(self, array_a: str, array_b: str) -> None:
        if array_a != array_b and not self.are_grouped(array_a, array_b):
            self.groups.append(GroupAccess(array_a, array_b))

    def merge(self, other: "AccessSummary") -> "AccessSummary":
        merged = AccessSummary(
            partitionings=list(self.partitionings),
            communications=list(self.communications),
            groups=list(self.groups),
        )
        for part in other.partitionings:
            if part not in merged.partitionings:
                merged.partitionings.append(part)
        for comm in other.communications:
            if comm not in merged.communications:
                merged.communications.append(comm)
        for group in other.groups:
            merged.add_group(group.array_a, group.array_b)
        return merged
