"""Step 5 and the CDPC orchestrator (Section 5.2).

``generate_page_colors`` runs the full five-step algorithm:

1. compute uniform access segments and group them into access sets;
2. order the access sets along a greedy intersection path;
3. order segments within each set using group-access information;
4. rotate each segment cyclically to separate conflicting array starts;
5. assign colors to the final page sequence in round-robin order.

The result carries the complete page order (the "coloring order" of
Figure 5) and the per-page color hints handed to the operating system.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.access_summary import AccessSummary
from repro.core.cyclic import assign_cyclic
from repro.core.ordering import order_access_sets, order_segments_within_set
from repro.core.segments import (
    UniformAccessSegment,
    UniformAccessSet,
    compute_segments,
    group_into_sets,
)


@dataclass
class ColoringResult:
    """Output of the CDPC algorithm."""

    page_order: list[int] = field(default_factory=list)
    colors: dict[int, int] = field(default_factory=dict)
    segments: list[UniformAccessSegment] = field(default_factory=list)
    ordered_sets: list[UniformAccessSet] = field(default_factory=list)
    rotations: dict[UniformAccessSegment, int] = field(default_factory=dict)
    num_colors: int = 0

    @property
    def num_pages(self) -> int:
        return len(self.page_order)

    def color_of(self, page: int) -> int | None:
        return self.colors.get(page)

    def pages_per_color(self) -> list[int]:
        histogram = [0] * self.num_colors
        for color in self.colors.values():
            histogram[color] += 1
        return histogram

    def max_pages_on_one_color(self, cpus_of_page) -> int:
        """Worst-case same-color pages for any single processor.

        ``cpus_of_page`` maps a page to the processors accessing it.  A
        value of 1 means CDPC achieved a conflict-free mapping for every
        processor.
        """
        per_cpu_color: dict[tuple[int, int], int] = {}
        for page, color in self.colors.items():
            for cpu in cpus_of_page(page):
                key = (cpu, color)
                per_cpu_color[key] = per_cpu_color.get(key, 0) + 1
        return max(per_cpu_color.values(), default=0)


def generate_page_colors(
    summary: AccessSummary, page_size: int, num_colors: int, num_cpus: int
) -> ColoringResult:
    """Run the five-step CDPC algorithm and return the hint set."""
    if num_colors < 1:
        raise ValueError("num_colors must be >= 1")
    segments = compute_segments(summary, page_size, num_cpus)  # Step 1
    sets = group_into_sets(segments)
    ordered_sets = order_access_sets(sets)  # Step 2
    ordered_segments: list[UniformAccessSegment] = []
    for access_set in ordered_sets:  # Step 3
        ordered_segments.extend(order_segments_within_set(access_set.segments, summary))
    page_order, rotations = assign_cyclic(ordered_segments, summary, num_colors)  # Step 4
    # Arrays that share an edge page (layout padding is sub-page) produce
    # the page in two segments; keep its first appearance only.
    seen: set[int] = set()
    deduped: list[int] = []
    for page in page_order:
        if page not in seen:
            seen.add(page)
            deduped.append(page)
    page_order = deduped
    colors = {page: index % num_colors for index, page in enumerate(page_order)}  # Step 5
    return ColoringResult(
        page_order=page_order,
        colors=colors,
        segments=segments,
        ordered_sets=ordered_sets,
        rotations=rotations,
        num_colors=num_colors,
    )
