"""Steps 2 and 3 — ordering access sets and segments (Section 5.2).

Step 2 orders the uniform access *sets*.  Each set is a node in an
undirected graph with an edge wherever two sets' processor sets intersect.
The objective is a path visiting every node that uses as many graph edges
as possible, so pages accessed by the same processor end up adjacent in
the final order.  The paper's heuristic, reproduced here: build a greedy
path over the subgraph of sets with one- or two-member processor sets,
starting from a singleton set and extending to an unvisited neighbour
whenever possible; then insert each remaining set next to the path node
with the maximum processor-set overlap.

Step 3 orders the *segments within* each set.  Nodes are segments, with an
edge wherever the compiler's group-access information says the two arrays
are used together.  A greedy path again maximizes edges used; ties are
broken toward the smallest virtual address.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.access_summary import AccessSummary
from repro.core.segments import UniformAccessSegment, UniformAccessSet


def _overlap(a: frozenset[int], b: frozenset[int]) -> int:
    return len(a & b)


def order_access_sets(sets: Sequence[UniformAccessSet]) -> list[UniformAccessSet]:
    """Step 2: order the uniform access sets along a greedy path."""
    if not sets:
        return []
    remaining = list(sets)
    small = [s for s in remaining if len(s.cpus) in (1, 2)]
    large = [s for s in remaining if len(s.cpus) not in (1, 2)]

    path: list[UniformAccessSet] = []
    unvisited = list(small)
    while unvisited:
        if not path or not _adjacent_choices(path[-1], unvisited):
            # Start (or restart) from a singleton when possible.
            singletons = [s for s in unvisited if len(s.cpus) == 1]
            nxt = min(
                singletons or unvisited, key=lambda s: tuple(sorted(s.cpus))
            )
        else:
            choices = _adjacent_choices(path[-1], unvisited)
            # Prefer maximum overlap, then the *smaller* processor set:
            # after a two-member set {p, p+1} this picks the singleton {p+1}
            # rather than {p+1, p+2}, producing the ... {p}, {p,p+1}, {p+1},
            # {p+1,p+2} ... chain of Figure 4(b) that keeps each processor's
            # pages contiguous in the final order.
            nxt = min(
                choices,
                key=lambda s: (
                    -_overlap(s.cpus, path[-1].cpus),
                    len(s.cpus),
                    tuple(sorted(s.cpus)),
                ),
            )
        unvisited.remove(nxt)
        path.append(nxt)

    for s in sorted(large, key=lambda s: (-len(s.cpus), tuple(sorted(s.cpus)))):
        if not path:
            path.append(s)
            continue
        best_index = max(
            range(len(path)), key=lambda i: (_overlap(s.cpus, path[i].cpus), -i)
        )
        path.insert(best_index + 1, s)
    return path


def _adjacent_choices(
    current: UniformAccessSet, unvisited: Sequence[UniformAccessSet]
) -> list[UniformAccessSet]:
    return [s for s in unvisited if current.cpus & s.cpus]


def order_segments_within_set(
    segments: Sequence[UniformAccessSegment], summary: AccessSummary
) -> list[UniformAccessSegment]:
    """Step 3: order segments of one access set using group-access info."""
    if not segments:
        return []
    unvisited = sorted(segments, key=lambda seg: seg.start_page)
    path: list[UniformAccessSegment] = []
    while unvisited:
        if not path:
            nxt = unvisited[0]  # smallest virtual address
        else:
            grouped = [
                seg
                for seg in unvisited
                if seg.array != path[-1].array
                and summary.are_grouped(seg.array, path[-1].array)
            ]
            # Extend with a grouped neighbour when possible; otherwise take
            # the smallest remaining virtual address.
            nxt = grouped[0] if grouped else unvisited[0]
        unvisited.remove(nxt)
        path.append(nxt)
    return path
