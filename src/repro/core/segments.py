"""Step 1 — Uniform access segments and sets (Section 5.2).

A *uniform access segment* is a maximal run of consecutive virtual pages of
one array accessed by the same set of processors.  Segments are computed by
treating the array's page range as a single segment and splitting it
wherever the processor set changes — at partition boundaries and at the
edges of communication strips.  Segments with identical processor sets are
then grouped into *uniform access sets* regardless of which array they
belong to.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.core.access_summary import AccessSummary


@dataclass(frozen=True)
class UniformAccessSegment:
    """Consecutive pages of one array touched by one processor set."""

    array: str
    start_page: int
    end_page: int  # exclusive
    cpus: frozenset[int]

    def __post_init__(self) -> None:
        if self.end_page <= self.start_page:
            raise ValueError("segment must contain at least one page")

    @property
    def num_pages(self) -> int:
        return self.end_page - self.start_page

    @property
    def pages(self) -> range:
        return range(self.start_page, self.end_page)


@dataclass
class UniformAccessSet:
    """All segments (across arrays) sharing one processor set."""

    cpus: frozenset[int]
    segments: list[UniformAccessSegment]

    @property
    def num_pages(self) -> int:
        return sum(seg.num_pages for seg in self.segments)

    def arrays(self) -> list[str]:
        seen: list[str] = []
        for seg in self.segments:
            if seg.array not in seen:
                seen.append(seg.array)
        return seen


def compute_segments(
    summary: AccessSummary, page_size: int, num_cpus: int
) -> list[UniformAccessSegment]:
    """Split each summarized array into uniform access segments."""
    if page_size <= 0:
        raise ValueError("page_size must be positive")
    segments: list[UniformAccessSegment] = []
    for array in summary.arrays():
        parts = summary.partitionings_of(array)
        start = min(p.start for p in parts)
        end = max(p.start + p.size for p in parts)
        first_page = start // page_size
        last_page = (end - 1) // page_size
        page_cpus: dict[int, set[int]] = {
            page: set() for page in range(first_page, last_page + 1)
        }

        for part in parts:
            for cpu, (lo, hi) in enumerate(part.cpu_ranges(num_cpus)):
                if hi <= lo:
                    continue
                for page in range(lo // page_size, (hi - 1) // page_size + 1):
                    page_cpus[page].add(cpu)

        for comm in summary.communications:
            if comm.partitioning.array != array or comm.boundary_bytes == 0:
                continue
            ranges = comm.partitioning.cpu_ranges(num_cpus)
            for cpu in range(num_cpus):
                for neighbour in comm.neighbour_cpus(cpu, num_cpus):
                    n_lo, n_hi = ranges[neighbour]
                    if n_hi <= n_lo:
                        continue
                    # cpu reads the strip of its neighbour's partition that
                    # borders its own partition.
                    if _is_upper_neighbour(cpu, neighbour, num_cpus, comm.kind.value):
                        strip_lo = n_lo
                        strip_hi = min(n_lo + comm.boundary_bytes, n_hi)
                    else:
                        strip_lo = max(n_hi - comm.boundary_bytes, n_lo)
                        strip_hi = n_hi
                    if strip_hi <= strip_lo:
                        continue
                    for page in range(
                        strip_lo // page_size, (strip_hi - 1) // page_size + 1
                    ):
                        if page in page_cpus:
                            page_cpus[page].add(cpu)

        segments.extend(_merge_pages(array, page_cpus))
    return segments


def _is_upper_neighbour(cpu: int, neighbour: int, num_cpus: int, kind: str) -> bool:
    if kind == "rotate":
        return neighbour == (cpu + 1) % num_cpus
    return neighbour == cpu + 1


def _merge_pages(
    array: str, page_cpus: dict[int, set[int]]
) -> Iterable[UniformAccessSegment]:
    """Merge consecutive pages with equal processor sets into segments."""
    run_start = -1  # page numbers are non-negative; -1 means "no open run"
    run_cpus: frozenset[int] = frozenset()
    prev_page = -1
    for page in sorted(page_cpus):
        cpus = frozenset(page_cpus[page])
        if run_start < 0:
            run_start, run_cpus, prev_page = page, cpus, page
            continue
        if cpus == run_cpus and page == prev_page + 1:
            prev_page = page
            continue
        yield UniformAccessSegment(array, run_start, prev_page + 1, run_cpus)
        run_start, run_cpus, prev_page = page, cpus, page
    if run_start >= 0:
        yield UniformAccessSegment(array, run_start, prev_page + 1, run_cpus)


def group_into_sets(segments: Iterable[UniformAccessSegment]) -> list[UniformAccessSet]:
    """Group segments by processor set (Step 1's output, Step 2's input).

    Segments of untouched pages (empty processor set) are dropped: nothing
    accesses them during the steady state, so no hint is needed.
    """
    by_cpus: dict[frozenset[int], list[UniformAccessSegment]] = {}
    for segment in segments:
        if not segment.cpus:
            continue
        by_cpus.setdefault(segment.cpus, []).append(segment)
    sets = [UniformAccessSet(cpus, segs) for cpus, segs in by_cpus.items()]
    # Deterministic base order: by sorted processor tuple.
    sets.sort(key=lambda s: tuple(sorted(s.cpus)))
    return sets
