"""Seedable load generator: traffic shapes, fault injection, SLO math.

The generator is how the service's robustness claims stop being prose.
From one integer seed it deterministically builds a request mix —
multi-tenant, cached-heavy or cache-cold, optionally laced with chaos
knobs (worker ``SIGKILL``, hangs past the watchdog, deterministic
exceptions) and a flooding tenant — drives it closed-loop at a fixed
concurrency through any ``submit`` coroutine (the in-process service or
a TCP :class:`~repro.service.transport.ServiceClient`), and accounts
for every single request by id:

* **zero loss** — every request sent maps to exactly one response
  (result, degraded answer, or explicit rejection); anything else lands
  in ``lost`` and fails the SLO;
* **latency** — client-observed p50/p90/p99/mean/max over answered
  (ok/degraded) requests;
* **shedding** — rejection rate for well-behaved tenants, separately
  from the flooding tenant (whose rejections are the *point*);
* **cache** — hit rate among successful answers.

The report is plain JSON (``repro.service.loadgen/v1``), consumed by the
CLI ``loadgen`` verb, the chaos test suite, the CI smoke job, and the
``service_latency`` bench leg.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import asdict, dataclass
from typing import Any, Awaitable, Callable, Optional

from repro.service.protocol import ColoringRequest, RequestKind, ServiceResponse

__all__ = ["LoadReport", "LoadSpec", "build_requests", "run_loadgen"]

LOADGEN_SCHEMA = "repro.service.loadgen/v1"

Submit = Callable[[ColoringRequest], Awaitable[ServiceResponse]]


@dataclass(frozen=True)
class LoadSpec:
    """One load shape, fully determined by its fields (seed included)."""

    #: Well-behaved requests to send.
    requests: int = 200
    #: Spread across this many tenants (``tenant0..tenantN-1``).
    tenants: int = 4
    #: Closed-loop concurrency (in-flight request cap).
    concurrency: int = 16
    #: Fraction of requests drawn from the hot key set (repeats: cache
    #: and coalescing food); the rest draw fresh cold keys.
    cached_fraction: float = 0.7
    hot_keys: int = 8
    #: Per-request synthetic service time before answering.
    delay_ms: float = 0.0
    #: Chaos cadence: every Nth request carries the knob (0 = never).
    kill_every: int = 0
    hang_every: int = 0
    fail_every: int = 0
    #: How long an injected hang sleeps (must exceed the watchdog).
    hang_s: float = 30.0
    #: Per-request deadline passed to the service (None = its default).
    deadline_s: Optional[float] = None
    #: Flooding tenant: this many extra requests from one abuser.
    flood_requests: int = 0
    flood_tenant: str = "flood"
    workload: str = "loadgen"
    seed: int = 0
    #: SLO gates (None = not enforced).
    max_p99_ms: Optional[float] = None
    max_shed_rate: Optional[float] = None

    def __post_init__(self) -> None:
        if self.requests < 1:
            raise ValueError("requests must be >= 1")
        if self.tenants < 1:
            raise ValueError("tenants must be >= 1")
        if self.concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        if not 0.0 <= self.cached_fraction <= 1.0:
            raise ValueError("cached_fraction must be in [0, 1]")
        if self.hot_keys < 1:
            raise ValueError("hot_keys must be >= 1")
        if self.flood_requests < 0:
            raise ValueError("flood_requests must be >= 0")


def build_requests(
    spec: LoadSpec, scratch: Optional[str] = None
) -> list[ColoringRequest]:
    """The deterministic request mix for ``spec`` (same seed, same mix).

    Chaos-carrying requests get unique keys (their fingerprints must not
    alias clean traffic) and, when ``scratch`` is given, a one-shot
    marker token so ``kill``/``hang`` fire once and then the retry
    succeeds — transient faults.  Without ``scratch`` the fault is
    persistent and will exhaust the retry budget (breaker food).
    """
    rng = random.Random(spec.seed)
    requests: list[ColoringRequest] = []
    for index in range(spec.requests):
        knobs: dict[str, Any] = {}
        chaos = _chaos_for(spec, index)
        if chaos is not None:
            knobs["chaos"] = chaos
            knobs["key"] = f"chaos-{chaos}-{index}"
            if chaos == "hang":
                knobs["hang_s"] = spec.hang_s
            if scratch is not None and chaos in ("kill", "hang"):
                knobs["scratch"] = scratch
                knobs["token"] = f"{spec.seed}-{index}"
        elif rng.random() < spec.cached_fraction:
            knobs["key"] = f"hot-{rng.randrange(spec.hot_keys)}"
        else:
            knobs["key"] = f"cold-{index}"
        if spec.delay_ms > 0:
            knobs["delay_ms"] = spec.delay_ms
        requests.append(
            ColoringRequest(
                workload=spec.workload,
                kind=RequestKind.SYNTHETIC,
                tenant=f"tenant{index % spec.tenants}",
                deadline_s=spec.deadline_s,
                request_id=f"req-{index}",
                synthetic=tuple(sorted(knobs.items())),
            )
        )
    for index in range(spec.flood_requests):
        knobs = {"key": f"hot-{rng.randrange(spec.hot_keys)}"}
        if spec.delay_ms > 0:
            knobs["delay_ms"] = spec.delay_ms
        requests.append(
            ColoringRequest(
                workload=spec.workload,
                kind=RequestKind.SYNTHETIC,
                tenant=spec.flood_tenant,
                deadline_s=spec.deadline_s,
                request_id=f"flood-{index}",
                synthetic=tuple(sorted(knobs.items())),
            )
        )
    rng.shuffle(requests)
    return requests


def _chaos_for(spec: LoadSpec, index: int) -> Optional[str]:
    ordinal = index + 1
    if spec.kill_every and ordinal % spec.kill_every == 0:
        return "kill"
    if spec.hang_every and ordinal % spec.hang_every == 0:
        return "hang"
    if spec.fail_every and ordinal % spec.fail_every == 0:
        return "fail"
    return None


@dataclass
class LoadReport:
    """What happened, as JSON-friendly accounting; see :func:`summarize`."""

    payload: dict

    @property
    def ok(self) -> bool:
        return bool(self.payload["slo"]["ok"])

    def to_dict(self) -> dict:
        return self.payload


async def run_loadgen(
    submit: Submit, spec: LoadSpec, scratch: Optional[str] = None
) -> LoadReport:
    """Drive the mix through ``submit`` closed-loop; account for all."""
    requests = build_requests(spec, scratch=scratch)
    semaphore = asyncio.Semaphore(spec.concurrency)
    answers: dict[str, ServiceResponse] = {}
    latencies: dict[str, float] = {}

    async def one(request: ColoringRequest) -> None:
        async with semaphore:
            started = time.perf_counter()
            response = await submit(request)
            elapsed_ms = (time.perf_counter() - started) * 1000.0
        assert request.request_id is not None
        answers[request.request_id] = response
        latencies[request.request_id] = elapsed_ms

    started = time.perf_counter()
    await asyncio.gather(*(one(request) for request in requests))
    elapsed_s = time.perf_counter() - started
    return LoadReport(summarize(spec, requests, answers, latencies, elapsed_s))


def summarize(
    spec: LoadSpec,
    requests: list[ColoringRequest],
    answers: dict[str, ServiceResponse],
    latencies: dict[str, float],
    elapsed_s: float,
) -> dict:
    """Fold raw responses into the ``repro.service.loadgen/v1`` report."""
    lost = sorted(
        request.request_id
        for request in requests
        if request.request_id not in answers
    )
    by_status: dict[str, int] = {}
    by_reason: dict[str, int] = {}
    cached = coalesced = 0
    answered_ms: list[float] = []
    normal_sent = normal_rejected = 0
    flood_sent = flood_rejected = 0
    for request in requests:
        response = answers.get(request.request_id or "")
        if response is None:
            continue
        by_status[response.status.value] = (
            by_status.get(response.status.value, 0) + 1
        )
        if response.reason:
            by_reason[response.reason] = by_reason.get(response.reason, 0) + 1
        if response.ok:
            answered_ms.append(latencies[request.request_id or ""])
            if response.cached:
                cached += 1
            if response.coalesced:
                coalesced += 1
        is_flood = request.tenant == spec.flood_tenant
        rejected = response.status.value == "rejected"
        if is_flood:
            flood_sent += 1
            flood_rejected += int(rejected)
        else:
            normal_sent += 1
            normal_rejected += int(rejected)
    answered = len(answered_ms)
    shed_rate = normal_rejected / normal_sent if normal_sent else 0.0
    latency = _latency_summary(answered_ms)
    violations: list[str] = []
    if lost:
        violations.append(f"lost {len(lost)} request(s)")
    if spec.max_p99_ms is not None and answered and latency["p99"] > spec.max_p99_ms:
        violations.append(
            f"p99 {latency['p99']:.1f}ms > SLO {spec.max_p99_ms:.1f}ms"
        )
    if spec.max_shed_rate is not None and shed_rate > spec.max_shed_rate:
        violations.append(
            f"shed rate {shed_rate:.3f} > SLO {spec.max_shed_rate:.3f}"
        )
    return {
        "schema": LOADGEN_SCHEMA,
        "spec": asdict(spec),
        "sent": len(requests),
        "responded": len(requests) - len(lost),
        "lost": lost,
        "by_status": dict(sorted(by_status.items())),
        "by_reason": dict(sorted(by_reason.items())),
        "answered": answered,
        "cached": cached,
        "coalesced": coalesced,
        "cache_hit_rate": cached / answered if answered else 0.0,
        "shed_rate": shed_rate,
        "flood": {"sent": flood_sent, "rejected": flood_rejected},
        "elapsed_s": elapsed_s,
        "throughput_rps": len(requests) / elapsed_s if elapsed_s > 0 else 0.0,
        "latency_ms": latency,
        "slo": {"ok": not violations, "violations": violations},
    }


def _latency_summary(samples: list[float]) -> dict:
    if not samples:
        return {"p50": 0.0, "p90": 0.0, "p99": 0.0, "mean": 0.0, "max": 0.0}
    ordered = sorted(samples)

    def quantile(q: float) -> float:
        return ordered[min(len(ordered) - 1, int(q * len(ordered)))]

    return {
        "p50": quantile(0.50),
        "p90": quantile(0.90),
        "p99": quantile(0.99),
        "mean": sum(ordered) / len(ordered),
        "max": ordered[-1],
    }
