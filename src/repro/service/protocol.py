"""Wire protocol of the coloring service: requests, responses, statuses.

A request names *what* the caller wants — ``simulate`` (a full engine run
producing a color plan and measured miss profile) or ``predict`` (the
symbolic analyzer's static miss profile, no simulation) — plus the target
workload/machine/policy and the robustness envelope (tenant identity for
quota accounting, a per-request deadline).  Everything is a plain frozen
dataclass with lossless ``to_dict``/``from_dict``, so the same objects
ride the in-process transport and the TCP JSON-lines transport.

The full request identity hashes to a :func:`ColoringRequest.fingerprint`
using the same sha256 discipline as the harness store and the trace
cache: identical questions land on identical keys, which is what lets the
service answer repeats O(1) from its plan/result cache, and distinct
questions (different machine, scale, policy, engine knobs) can never
alias.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Optional

from repro.harness.store import task_fingerprint
from repro.machine.config import MACHINE_PRESETS, MachineConfig, alpha_server
from repro.sim.engine import EngineOptions
from repro.sim.sweeps import STANDARD_POLICIES
from repro.sim.tracegen import SimProfile

__all__ = [
    "MACHINE_FACTORIES",
    "ColoringRequest",
    "RejectedOverload",
    "RequestKind",
    "ServiceResponse",
    "Status",
]

#: Machine models a request may name (mirrors the CLI's ``--machine``):
#: every preset geometry, plus the CLI's historical ``alpha`` alias.
MACHINE_FACTORIES: dict[str, Callable[[int], MachineConfig]] = {
    **{name: preset for name, preset in MACHINE_PRESETS.items()},
    "alpha": alpha_server,
}


class RequestKind(str, enum.Enum):
    """What the caller wants computed."""

    #: Full engine run: color plan + measured miss profile (expensive).
    SIMULATE = "simulate"
    #: Symbolic static-miss prediction (cheap, no simulation).
    PREDICT = "predict"
    #: Synthetic work item for load-generation and chaos drills; only
    #: honored by a service configured with ``engine="synthetic"``.
    SYNTHETIC = "synthetic"

    def __str__(self) -> str:
        return self.value


class Status(str, enum.Enum):
    """Terminal disposition of one request.  Every accepted request ends
    in exactly one of ``ok``/``degraded``/``failed``; a shed request ends
    in ``rejected`` — nothing is ever silently dropped."""

    OK = "ok"
    #: Answered from the fallback path (static predictor or cached plan)
    #: because the primary path was unavailable; carries ``reason``.
    DEGRADED = "degraded"
    #: Load-shed before any work was done (overload, quota, deadline,
    #: shutdown); carries ``reason`` and possibly ``retry_after_s``.
    REJECTED = "rejected"
    #: Accepted but unanswerable: work failed after retries and no
    #: fallback was possible.
    FAILED = "failed"

    def __str__(self) -> str:
        return self.value


class RejectedOverload(RuntimeError):
    """Raised client-side (``raise_for_status``) for a shed request.

    The service itself never raises this across the wire — shedding is an
    explicit :class:`ServiceResponse` with ``status="rejected"`` so the
    caller always learns *why* (``overload``, ``quota``, ``deadline``,
    ``shutdown``) and, for quota rejections, when to retry.
    """

    def __init__(self, response: "ServiceResponse") -> None:
        super().__init__(
            f"request {response.request_id or '<anonymous>'} rejected: "
            f"{response.reason}"
            + (
                f" (retry after {response.retry_after_s:.3f}s)"
                if response.retry_after_s is not None
                else ""
            )
        )
        self.response = response


@dataclass(frozen=True)
class ColoringRequest:
    """One "program + machine → color plan / miss profile" question."""

    workload: str = "fpppp"
    kind: RequestKind = RequestKind.SIMULATE
    #: Tenant identity for quota accounting and per-tenant metrics.
    tenant: str = "default"
    cpus: int = 8
    machine: str = "sgi_base"
    scale: int = 16
    #: Policy label: ``page_coloring``, ``bin_hopping`` or ``cdpc``
    #: (the paper's comparison set, as in ``STANDARD_POLICIES``).
    policy: str = "page_coloring"
    #: Simulate with the single-sweep fast profile (the service default:
    #: latency matters more than the two-sweep averaging).
    fast: bool = True
    #: Wall-clock budget from admission to answer.  Propagated into the
    #: harness task timeout; expires queued requests.  ``None`` accepts
    #: the service default.
    deadline_s: Optional[float] = None
    #: Caller-chosen correlation id, echoed on the response.
    request_id: Optional[str] = None
    #: Synthetic-engine behavior knobs (loadgen/chaos only): e.g.
    #: ``{"chaos": "kill", "delay_ms": 5, "key": 3}``.
    synthetic: tuple[tuple[str, Any], ...] = field(default=())

    def __post_init__(self) -> None:
        if isinstance(self.kind, str) and not isinstance(self.kind, RequestKind):
            object.__setattr__(self, "kind", RequestKind(self.kind))
        if self.machine not in MACHINE_FACTORIES:
            raise ValueError(
                f"unknown machine {self.machine!r}; "
                f"one of {', '.join(sorted(MACHINE_FACTORIES))}"
            )
        if self.policy not in STANDARD_POLICIES:
            raise ValueError(
                f"unknown policy {self.policy!r}; "
                f"one of {', '.join(STANDARD_POLICIES)}"
            )
        if self.cpus < 1:
            raise ValueError("cpus must be >= 1")
        if self.scale < 1:
            raise ValueError("scale must be >= 1")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("deadline_s must be positive")
        if self.kind != RequestKind.SYNTHETIC and self.synthetic:
            raise ValueError("synthetic knobs require kind='synthetic'")

    # -- derived identities --------------------------------------------

    def config(self) -> MachineConfig:
        return MACHINE_FACTORIES[self.machine](self.cpus).scaled(self.scale)

    def options(self) -> EngineOptions:
        overrides = STANDARD_POLICIES[self.policy]
        profile = SimProfile.fast() if self.fast else SimProfile()
        return EngineOptions(profile=profile, **overrides)

    def workload_class(self) -> str:
        """The circuit-breaker grouping: failures of one class must not
        open the breaker for unrelated work."""
        return f"{self.kind.value}:{self.workload}"

    def fingerprint(self) -> str:
        """sha256 digest of the full question (tenant/deadline excluded:
        the *answer* does not depend on who asks or how patient they are,
        so repeats across tenants share one cache entry)."""
        if self.kind == RequestKind.SYNTHETIC:
            identity: tuple = ("synthetic", self.workload, self.synthetic)
        else:
            identity = (
                self.kind.value,
                (self.workload, self.config(), self.options()),
            )
        return task_fingerprint(identity)

    # -- serialization -------------------------------------------------

    def to_dict(self) -> dict:
        payload: dict[str, Any] = {
            "workload": self.workload,
            "kind": self.kind.value,
            "tenant": self.tenant,
            "cpus": self.cpus,
            "machine": self.machine,
            "scale": self.scale,
            "policy": self.policy,
            "fast": self.fast,
        }
        if self.deadline_s is not None:
            payload["deadline_s"] = self.deadline_s
        if self.request_id is not None:
            payload["request_id"] = self.request_id
        if self.synthetic:
            payload["synthetic"] = dict(self.synthetic)
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "ColoringRequest":
        if not isinstance(payload, dict):
            raise ValueError("request payload must be a JSON object")
        known = {
            "workload", "kind", "tenant", "cpus", "machine", "scale",
            "policy", "fast", "deadline_s", "request_id", "synthetic",
        }
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(f"unknown request field(s): {', '.join(unknown)}")
        kwargs = dict(payload)
        if "kind" in kwargs:
            try:
                kwargs["kind"] = RequestKind(kwargs["kind"])
            except ValueError:
                raise ValueError(
                    f"unknown kind {kwargs['kind']!r}; one of "
                    f"{', '.join(k.value for k in RequestKind)}"
                ) from None
        if "synthetic" in kwargs:
            knobs = kwargs["synthetic"]
            if not isinstance(knobs, dict):
                raise ValueError("synthetic must be an object")
            kwargs["synthetic"] = tuple(sorted(knobs.items()))
        return cls(**kwargs)

    def with_id(self, request_id: str) -> "ColoringRequest":
        return replace(self, request_id=request_id)


@dataclass
class ServiceResponse:
    """The service's one-and-only answer to one request."""

    status: Status
    request_id: Optional[str] = None
    #: Fingerprint of the question (absent on malformed requests).
    fingerprint: Optional[str] = None
    #: ``RunResult.to_dict()`` / ``StaticMissProfile.to_dict()`` payload
    #: (tagged with ``"kind"``), or ``None`` for rejected/failed.
    result: Optional[dict] = None
    #: Answer served from the fingerprint cache — no harness work spawned.
    cached: bool = False
    #: Request coalesced onto an identical in-flight computation.
    coalesced: bool = False
    #: Why the answer is rejected/degraded/failed (machine-readable:
    #: ``overload``, ``quota``, ``deadline``, ``shutdown``,
    #: ``circuit_open``, ``worker_failure``, ``bad_request``...).
    reason: str = ""
    #: Quota rejections: seconds until the tenant's bucket refills.
    retry_after_s: Optional[float] = None
    #: Admission-to-answer latency as measured by the service.
    elapsed_ms: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status in (Status.OK, Status.DEGRADED)

    @property
    def degraded(self) -> bool:
        return self.status == Status.DEGRADED

    def raise_for_status(self) -> "ServiceResponse":
        if self.status == Status.REJECTED:
            raise RejectedOverload(self)
        if self.status == Status.FAILED:
            raise RuntimeError(
                f"request {self.request_id or '<anonymous>'} failed: {self.reason}"
            )
        return self

    def to_dict(self) -> dict:
        payload: dict[str, Any] = {
            "status": self.status.value,
            "cached": self.cached,
            "coalesced": self.coalesced,
            "elapsed_ms": self.elapsed_ms,
        }
        if self.request_id is not None:
            payload["request_id"] = self.request_id
        if self.fingerprint is not None:
            payload["fingerprint"] = self.fingerprint
        if self.result is not None:
            payload["result"] = self.result
        if self.reason:
            payload["reason"] = self.reason
        if self.retry_after_s is not None:
            payload["retry_after_s"] = self.retry_after_s
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "ServiceResponse":
        return cls(
            status=Status(payload["status"]),
            request_id=payload.get("request_id"),
            fingerprint=payload.get("fingerprint"),
            result=payload.get("result"),
            cached=bool(payload.get("cached", False)),
            coalesced=bool(payload.get("coalesced", False)),
            reason=payload.get("reason", ""),
            retry_after_s=payload.get("retry_after_s"),
            elapsed_ms=float(payload.get("elapsed_ms", 0.0)),
        )
