"""Per-workload-class circuit breakers.

A workload class (``"simulate:fpppp"``, ``"predict:applu"``, ...) that
keeps crashing its harness workers should stop consuming worker capacity
— other classes' requests must keep flowing.  The classic three-state
machine:

``CLOSED``
    Normal operation.  ``failure_threshold`` *consecutive* failures trip
    the breaker to OPEN (one success resets the streak).
``OPEN``
    Requests of this class skip the harness entirely; the service answers
    from the cache or the static predictor with ``status="degraded"``.
    After ``recovery_s`` the next request is allowed through as a probe.
``HALF_OPEN``
    Exactly one probe in flight.  Success closes the breaker; failure
    re-opens it and restarts the recovery clock.

The clock is injectable for deterministic tests.  Not thread-safe on its
own; the service consults breakers only from its event loop.
"""

from __future__ import annotations

import enum
import time
from typing import Callable

__all__ = ["BreakerState", "CircuitBreaker", "WorkloadBreakers"]


class BreakerState(str, enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __str__(self) -> str:
        return self.value


class CircuitBreaker:
    """One class's breaker; see the module docstring for the protocol."""

    def __init__(
        self,
        failure_threshold: int = 3,
        recovery_s: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if recovery_s <= 0:
            raise ValueError("recovery_s must be positive")
        self.failure_threshold = failure_threshold
        self.recovery_s = recovery_s
        self._clock = clock
        self._state = BreakerState.CLOSED
        self._streak = 0
        self._opened_at = 0.0
        #: Lifetime trip count (obs gauge material).
        self.trips = 0

    @property
    def state(self) -> BreakerState:
        self._maybe_half_open()
        return self._state

    def _maybe_half_open(self) -> None:
        if (
            self._state == BreakerState.OPEN
            and self._clock() - self._opened_at >= self.recovery_s
        ):
            self._state = BreakerState.HALF_OPEN

    def allows(self) -> bool:
        """May a request of this class hit the primary path right now?

        In HALF_OPEN this admits the single probe and immediately treats
        further calls as OPEN until the probe reports back.
        """
        self._maybe_half_open()
        if self._state == BreakerState.CLOSED:
            return True
        if self._state == BreakerState.HALF_OPEN:
            # Claim the probe slot: subsequent callers stay degraded
            # until record_success/record_failure resolves it.
            self._state = BreakerState.OPEN
            self._opened_at = self._clock()
            return True
        return False

    def record_success(self) -> None:
        self._streak = 0
        self._state = BreakerState.CLOSED

    def record_failure(self) -> None:
        self._streak += 1
        if self._state != BreakerState.CLOSED or self._streak >= self.failure_threshold:
            # A probe failure re-opens; a closed-state threshold trips.
            if self._state == BreakerState.CLOSED:
                self.trips += 1
            self._state = BreakerState.OPEN
            self._opened_at = self._clock()
            self._streak = 0


class WorkloadBreakers:
    """Lazily materialized per-class breakers sharing one configuration."""

    def __init__(
        self,
        failure_threshold: int = 3,
        recovery_s: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.failure_threshold = failure_threshold
        self.recovery_s = recovery_s
        self._clock = clock
        self._breakers: dict[str, CircuitBreaker] = {}

    def get(self, workload_class: str) -> CircuitBreaker:
        breaker = self._breakers.get(workload_class)
        if breaker is None:
            breaker = CircuitBreaker(
                self.failure_threshold, self.recovery_s, clock=self._clock
            )
            self._breakers[workload_class] = breaker
        return breaker

    def states(self) -> dict[str, str]:
        return {
            cls: breaker.state.value
            for cls, breaker in sorted(self._breakers.items())
        }

    def total_trips(self) -> int:
        return sum(b.trips for b in self._breakers.values())
