"""Per-tenant admission quotas: token buckets with an injectable clock.

One bucket per tenant, refilled continuously at ``rate`` tokens/second up
to ``burst``.  A request costs one token; when the bucket is empty the
admission decision is "reject with ``retry_after_s``" — the service never
queues over-quota work, because a flooding tenant must shed *its own*
requests instead of starving everyone else's place in the bounded queue.

The clock is injectable (default :func:`time.monotonic`) so tests and the
load generator can drive refill deterministically without sleeping.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional

__all__ = ["QuotaDecision", "TenantQuotas", "TokenBucket"]


@dataclass(frozen=True)
class QuotaDecision:
    """Outcome of one admission check."""

    allowed: bool
    #: When denied: seconds until one full token has refilled.
    retry_after_s: Optional[float] = None


class TokenBucket:
    """A continuous-refill token bucket (not thread-safe on its own;
    :class:`TenantQuotas` serializes access from the event loop)."""

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        if burst < 1:
            raise ValueError("burst must allow at least one token")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = self.burst
        self._stamp = clock()

    def _refill(self) -> None:
        now = self._clock()
        elapsed = now - self._stamp
        if elapsed > 0:
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        self._stamp = now

    @property
    def tokens(self) -> float:
        self._refill()
        return self._tokens

    def take(self, cost: float = 1.0) -> QuotaDecision:
        """Spend ``cost`` tokens if available, else deny with a hint."""
        self._refill()
        if self._tokens >= cost:
            self._tokens -= cost
            return QuotaDecision(allowed=True)
        deficit = cost - self._tokens
        return QuotaDecision(allowed=False, retry_after_s=deficit / self.rate)


class TenantQuotas:
    """Lazily materialized per-tenant buckets sharing one rate/burst."""

    def __init__(
        self,
        rate: float = 50.0,
        burst: float = 100.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.rate = rate
        self.burst = burst
        self._clock = clock
        self._buckets: dict[str, TokenBucket] = {}

    def check(self, tenant: str, cost: float = 1.0) -> QuotaDecision:
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = TokenBucket(self.rate, self.burst, clock=self._clock)
            self._buckets[tenant] = bucket
        return bucket.take(cost)

    def tenants(self) -> list[str]:
        return sorted(self._buckets)
