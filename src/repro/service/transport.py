"""TCP JSON-lines transport: one request per line, one response per line.

The wire format is deliberately boring — UTF-8 JSON objects separated by
newlines — so ``nc`` and five lines of any language are a client:

.. code-block:: text

    → {"op": "submit", "request": {"workload": "fpppp", "kind": "predict"}}
    ← {"status": "ok", "fingerprint": "…", "result": {…}, …}
    → {"op": "health"}
    ← {"op": "health", "status": "ok", "queue_depth": 0, …}

Ops: ``submit`` (the payload under ``"request"`` is a
:meth:`~repro.service.protocol.ColoringRequest.to_dict` object),
``health``, ``ready``, ``metrics`` (the ``repro.obs.metrics/v1``
snapshot), ``ping``.  A line that is not valid JSON, names an unknown
op, or carries a malformed request gets an explicit ``rejected`` /
``bad_request`` response with an ``error`` string — the connection is
never dropped as an answer.

Lines on one connection are served *concurrently* (a slow simulate does
not block a health probe pipelined behind it); responses carry the
request's ``request_id`` so pipelining clients can correlate.  The
bundled :class:`ServiceClient` keeps it simpler: one in-flight
round-trip per connection.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Optional

from repro.service.protocol import ColoringRequest, ServiceResponse, Status
from repro.service.server import ColoringService

__all__ = ["ServiceClient", "ServiceListener"]

#: Refuse absurd lines instead of buffering them (64 MiB).
_LINE_LIMIT = 64 * 1024 * 1024


def _encode(payload: dict) -> bytes:
    return (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")


class ServiceListener:
    """The service's TCP front: ``await ServiceListener.start(service)``.

    Binds ``host:port`` (port 0 picks a free one; read it back from
    :attr:`port`) and serves until :meth:`close`.  The listener only
    translates — admission control, quotas and shedding all happen in
    the :class:`~repro.service.server.ColoringService` it wraps.
    """

    def __init__(
        self, service: ColoringService, server: asyncio.base_events.Server
    ) -> None:
        self.service = service
        self._server = server
        self._connections: set[asyncio.Task] = set()

    @classmethod
    async def start(
        cls,
        service: ColoringService,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> "ServiceListener":
        listener: "ServiceListener"

        async def handle(
            reader: asyncio.StreamReader, writer: asyncio.StreamWriter
        ) -> None:
            await listener._handle(reader, writer)

        server = await asyncio.start_server(
            handle, host=host, port=port, limit=_LINE_LIMIT
        )
        listener = cls(service, server)
        return listener

    @property
    def host(self) -> str:
        return self._server.sockets[0].getsockname()[0]

    @property
    def port(self) -> int:
        return self._server.sockets[0].getsockname()[1]

    async def close(self) -> None:
        """Stop accepting connections and finish the in-flight lines."""
        self._server.close()
        await self._server.wait_closed()
        while self._connections:
            await asyncio.gather(*list(self._connections), return_exceptions=True)

    # -- connection handling -------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        lock = asyncio.Lock()
        lines: set[asyncio.Task] = set()
        try:
            while True:
                try:
                    line = await reader.readline()
                except (
                    asyncio.LimitOverrunError,
                    ValueError,
                    ConnectionError,
                ):
                    break
                if not line:
                    break
                stripped = line.strip()
                if not stripped:
                    continue
                task = asyncio.get_running_loop().create_task(
                    self._serve_line(stripped, writer, lock)
                )
                lines.add(task)
                self._connections.add(task)
                task.add_done_callback(lines.discard)
                task.add_done_callback(self._connections.discard)
            if lines:
                await asyncio.gather(*list(lines), return_exceptions=True)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _serve_line(
        self, line: bytes, writer: asyncio.StreamWriter, lock: asyncio.Lock
    ) -> None:
        payload = self._respond(line)
        if payload is None:
            payload = await self._submit(line)
        async with lock:
            try:
                writer.write(_encode(payload))
                await writer.drain()
            except (ConnectionError, OSError):
                pass  # Client went away; the service's answer still counted.

    def _respond(self, line: bytes) -> Optional[dict]:
        """Handle control ops and malformed lines; ``None`` means submit."""
        try:
            message = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return _error_response(None, f"invalid JSON: {exc}")
        if not isinstance(message, dict):
            return _error_response(None, "request line must be a JSON object")
        op = message.get("op", "submit")
        if op == "submit":
            return None
        if op == "health":
            return {"op": "health", **self.service.health()}
        if op == "ready":
            return {"op": "ready", **self.service.ready()}
        if op == "metrics":
            return {"op": "metrics", "metrics": self.service.metrics_snapshot()}
        if op == "ping":
            return {"op": "pong"}
        return _error_response(None, f"unknown op {op!r}")

    async def _submit(self, line: bytes) -> dict:
        message = json.loads(line.decode("utf-8"))
        raw = message.get("request", message)
        if "op" in raw:
            raw = dict(raw)
            raw.pop("op")
        try:
            request = ColoringRequest.from_dict(raw)
        except (TypeError, ValueError) as exc:
            return _error_response(
                raw.get("request_id") if isinstance(raw, dict) else None, str(exc)
            )
        response = await self.service.submit(request)
        return response.to_dict()


def _error_response(request_id: Optional[Any], error: str) -> dict:
    payload = ServiceResponse(
        status=Status.REJECTED,
        request_id=str(request_id) if request_id is not None else None,
        reason="bad_request",
    ).to_dict()
    payload["error"] = error
    return payload


class ServiceClient:
    """Minimal asyncio client: one round-trip in flight per connection."""

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._lock = asyncio.Lock()

    @classmethod
    async def connect(cls, host: str, port: int) -> "ServiceClient":
        reader, writer = await asyncio.open_connection(
            host, port, limit=_LINE_LIMIT
        )
        return cls(reader, writer)

    async def _roundtrip(self, payload: dict) -> dict:
        async with self._lock:
            self._writer.write(_encode(payload))
            await self._writer.drain()
            line = await self._reader.readline()
        if not line:
            raise ConnectionError("service closed the connection")
        message = json.loads(line.decode("utf-8"))
        if not isinstance(message, dict):
            raise ValueError("malformed response line")
        return message

    async def submit(self, request: ColoringRequest) -> ServiceResponse:
        message = await self._roundtrip(
            {"op": "submit", "request": request.to_dict()}
        )
        return ServiceResponse.from_dict(message)

    async def health(self) -> dict:
        return await self._roundtrip({"op": "health"})

    async def ready(self) -> dict:
        return await self._roundtrip({"op": "ready"})

    async def metrics(self) -> dict:
        message = await self._roundtrip({"op": "metrics"})
        return message.get("metrics", {})

    async def ping(self) -> bool:
        return (await self._roundtrip({"op": "ping"})).get("op") == "pong"

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass
