"""Execution engines: how one accepted request becomes one answer.

Every request the service actually works on is lowered to a *service
task* — a plain picklable tuple tagged by kind — and executed by
:func:`execute_service_task`, which is module-level so it crosses the
process boundary of a harness worker pool unchanged.  Batches of tasks
run as one fault-tolerant campaign (:func:`run_service_batch`), which is
where the service inherits the whole harness stack for free: durable
fingerprint-keyed results, bounded retries with backoff, per-task
wall-clock watchdogs that kill hung workers, and crash attribution that
never charges queued bystanders.

Three kinds exist:

* ``simulate`` — a full engine run; the answer is the serialized
  :class:`~repro.sim.results.RunResult`.
* ``predict`` — the symbolic analyzer
  (:mod:`repro.checker.staticmiss`); no simulation, O(ms).
* ``synthetic`` — a deterministic fake used by the load generator, the
  chaos suite and the bench leg.  Its knobs can sleep, crash the worker
  with a real ``SIGKILL`` (once, when given a scratch directory to
  remember the first attempt in), hang past the watchdog deadline, or
  raise — exactly the failure modes the robustness machinery must absorb.
"""

from __future__ import annotations

import hashlib
import os
import signal
import time
from typing import Any, Optional, Sequence

from repro.harness.campaign import Campaign, CampaignOptions, run_campaign
from repro.harness.retry import RetryPolicy
from repro.harness.store import ResultStore, task_fingerprint

__all__ = [
    "ServiceTask",
    "execute_service_task",
    "run_service_batch",
    "service_task",
    "task_label",
]

#: ("simulate", workload, config, options) | ("predict", workload,
#: config, policy, cdpc, profile) | ("synthetic", workload, knobs)
ServiceTask = tuple


def service_task(request: Any) -> ServiceTask:
    """Lower one :class:`~repro.service.protocol.ColoringRequest`."""
    kind = request.kind.value
    if kind == "synthetic":
        return ("synthetic", request.workload, request.synthetic)
    if kind == "predict":
        overrides = _policy_overrides(request.policy)
        return (
            "predict",
            request.workload,
            request.config(),
            overrides["policy"],
            bool(overrides.get("cdpc", False)),
            request.options().profile,
        )
    return ("simulate", request.workload, request.config(), request.options())


def _policy_overrides(label: str) -> dict:
    from repro.sim.sweeps import STANDARD_POLICIES

    return STANDARD_POLICIES[label]


def task_label(task: ServiceTask) -> str:
    kind = task[0]
    if kind == "synthetic":
        knobs = dict(task[2])
        return f"synthetic[{knobs.get('key', 0)}]"
    if kind == "predict":
        return f"predict[{task[1]}@{task[2].num_cpus}cpu/{task[3]}]"
    _, workload, config, options = task
    return f"simulate[{workload}@{config.num_cpus}cpu/{options.policy}]"


def service_fingerprint(task: ServiceTask) -> str:
    """sha256 identity of a service task (same discipline as the store)."""
    return task_fingerprint(task)


def execute_service_task(task: ServiceTask) -> dict:
    """Run one service task; module-level so it pickles to pool workers.

    Returns a JSON-friendly payload dict tagged with ``"kind"`` — this is
    what lands in the response's ``result`` field and in the plan cache.
    """
    kind = task[0]
    if kind == "simulate":
        from repro.sim.engine import run_benchmark

        _, workload, config, options = task
        result = run_benchmark(workload, config, options)
        return {"kind": "simulate", "run": result.to_dict()}
    if kind == "predict":
        from repro.checker.staticmiss import predict_workload

        _, workload, config, policy, cdpc, profile = task
        profile_result = predict_workload(
            workload, config, policy=policy, cdpc=cdpc, profile=profile
        )
        return {"kind": "predict", "profile": profile_result.to_dict()}
    if kind == "synthetic":
        return _execute_synthetic(task)
    raise ValueError(f"unknown service task kind {kind!r}")


def _execute_synthetic(task: ServiceTask) -> dict:
    """The loadgen/chaos fake: deterministic value, injectable failure."""
    _, workload, knob_items = task
    knobs = dict(knob_items)
    chaos = knobs.get("chaos")
    if chaos:
        _apply_chaos(str(chaos), knobs)
    delay_ms = float(knobs.get("delay_ms", 0.0))
    if delay_ms > 0:
        time.sleep(delay_ms / 1000.0)
    key = knobs.get("key", 0)
    digest = hashlib.sha256(f"{workload}|{key}".encode()).hexdigest()
    return {
        "kind": "synthetic",
        "workload": workload,
        "key": key,
        "value": digest[:16],
    }


def _chaos_armed(knobs: dict) -> bool:
    """Whether this attempt should fire the chaos (first attempt only,
    when a scratch directory is available to remember it in).

    The marker file is created with ``O_EXCL`` *before* the fault fires,
    so even a ``SIGKILL`` that lands mid-syscall leaves the marker behind
    and the harness's retry attempt runs clean — transient by
    construction, like a worker lost to the OOM killer.  Without a
    scratch directory the chaos fires on every attempt (a *persistent*
    fault that exhausts the retry budget and feeds the circuit breaker).
    """
    scratch = knobs.get("scratch")
    token = knobs.get("token")
    if not scratch or token is None:
        return True
    os.makedirs(str(scratch), exist_ok=True)
    marker = os.path.join(str(scratch), f"{token}.fired")
    try:
        fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    os.close(fd)
    return True


def _apply_chaos(chaos: str, knobs: dict) -> None:
    if not _chaos_armed(knobs):
        return
    if chaos == "kill":
        # A real SIGKILL: the pool loses this worker mid-task, exactly
        # like an OOM kill, and the supervisor must rebuild and retry.
        os.kill(os.getpid(), signal.SIGKILL)
    elif chaos == "hang":
        # Sleep far past any sane deadline; only the harness watchdog
        # (task timeout -> pool restart) gets the task unstuck.
        time.sleep(float(knobs.get("hang_s", 3600.0)))
    elif chaos == "fail":
        # A deterministic exception: not retryable by default, so this
        # is what trips circuit breakers in tests and the load generator.
        raise RuntimeError(f"injected failure ({knobs.get('key', '?')})")
    else:
        raise ValueError(f"unknown chaos knob {chaos!r}")


def run_service_batch(
    tasks: Sequence[ServiceTask],
    keys: Sequence[str],
    *,
    retry: Optional[RetryPolicy] = None,
    timeout_s: Optional[float] = None,
    store: "ResultStore | str | None" = None,
    max_workers: int = 1,
    tracer: Any = None,
) -> Campaign:
    """Run one admitted batch as a fault-tolerant harness campaign.

    ``keys`` are the requests' fingerprints, so with a durable ``store``
    the campaign itself is the plan cache's write path *and* its resume
    path: a repeat of a previously-answered question is loaded, never
    recomputed, even straight after a service restart.
    """
    options = CampaignOptions(
        store=store,
        resume=store is not None,
        retry=retry if retry is not None else RetryPolicy(),
        timeout_s=timeout_s,
        strict=False,
        tracer=tracer,
    )
    return run_campaign(
        execute_service_task,
        list(tasks),
        labels=[task_label(task) for task in tasks],
        keys=list(keys),
        options=options,
        max_workers=max_workers,
    )
