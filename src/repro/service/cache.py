"""Fingerprint-keyed plan/result cache: memory LRU over a durable store.

The service answers repeats O(1): the first time a question is computed
its payload is published to the (optional) crash-consistent
:class:`~repro.harness.store.ResultStore` by the harness campaign that
ran it, and remembered here in a bounded in-memory LRU.  A later
identical request — same sha256 fingerprint, the exact discipline the
trace cache and the store already share — hits the memory tier in O(1),
or falls back to one store read (and is promoted) after a restart.

The cache never stores degraded answers: a fallback served while a
circuit breaker is open must not masquerade as the real computation once
the breaker closes.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from repro.harness.store import ResultStore

__all__ = ["PlanCache"]


class PlanCache:
    """Bounded LRU of response payloads, optionally backed by a store.

    Consulted only from the service event loop (single-owner, like the
    quota buckets and breakers), so no locking is needed here; the
    durable tier's crash-consistency is the store's own contract.
    """

    def __init__(
        self,
        store: Optional[ResultStore] = None,
        max_entries: int = 1024,
    ) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.store = store
        self.max_entries = max_entries
        self._memory: OrderedDict[str, dict] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._memory)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._memory or (
            self.store is not None and fingerprint in self.store
        )

    def get(self, fingerprint: str) -> Optional[dict]:
        """The cached payload, or ``None``; store hits are promoted."""
        payload = self._memory.get(fingerprint)
        if payload is not None:
            self._memory.move_to_end(fingerprint)
            self.hits += 1
            return payload
        if self.store is not None:
            stored = self.store.get(fingerprint)
            if isinstance(stored, dict):
                self._remember(fingerprint, stored)
                self.hits += 1
                return stored
        self.misses += 1
        return None

    def put(self, fingerprint: str, payload: dict, label: str = "") -> None:
        """Remember one computed answer in the memory tier.

        The durable tier is written by the harness campaign that computed
        the answer (same fingerprint, same store), so this path never
        double-writes; ``put`` only makes the next repeat O(1).
        """
        self._remember(fingerprint, payload)

    def _remember(self, fingerprint: str, payload: dict) -> None:
        self._memory[fingerprint] = payload
        self._memory.move_to_end(fingerprint)
        while len(self._memory) > self.max_entries:
            self._memory.popitem(last=False)

    def stats(self) -> dict:
        return {
            "entries": len(self._memory),
            "hits": self.hits,
            "misses": self.misses,
            "durable": len(self.store) if self.store is not None else 0,
        }
