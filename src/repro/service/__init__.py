"""``repro.service`` — coloring-as-a-service over the harness stack.

The paper's pipeline answers one question at a time: *this program on
this machine — which colors, and how many misses?*  This package turns
that into a long-running, multi-tenant answering service that stays
sane under load and partial failure:

* :mod:`repro.service.protocol` — requests/responses and the sha256
  fingerprint identity shared with the store and trace cache;
* :mod:`repro.service.server` — the asyncio :class:`ColoringService`:
  admission control, batching onto harness campaigns, deadlines,
  circuit-breaker degradation, drain-without-loss;
* :mod:`repro.service.quota` / :mod:`repro.service.breaker` — the
  token buckets and per-workload-class breakers;
* :mod:`repro.service.cache` — the memory-LRU-over-durable-store plan
  cache that makes repeats O(1);
* :mod:`repro.service.engines` — request lowering and the picklable
  task executor (simulate / predict / synthetic-with-chaos);
* :mod:`repro.service.transport` — the TCP JSON-lines listener and
  client;
* :mod:`repro.service.loadgen` — the seedable load generator with
  fault injection and SLO/zero-loss accounting.

Everything is stdlib-only, like the rest of the repo.
"""

from repro.service.breaker import BreakerState, CircuitBreaker, WorkloadBreakers
from repro.service.cache import PlanCache
from repro.service.engines import (
    execute_service_task,
    run_service_batch,
    service_task,
)
from repro.service.protocol import (
    MACHINE_FACTORIES,
    ColoringRequest,
    RejectedOverload,
    RequestKind,
    ServiceResponse,
    Status,
)
from repro.service.loadgen import LoadReport, LoadSpec, build_requests, run_loadgen
from repro.service.quota import QuotaDecision, TenantQuotas, TokenBucket
from repro.service.server import BATCH_SIZE_EDGES, ColoringService
from repro.service.transport import ServiceClient, ServiceListener

__all__ = [
    "BATCH_SIZE_EDGES",
    "BreakerState",
    "CircuitBreaker",
    "ColoringRequest",
    "ColoringService",
    "LoadReport",
    "LoadSpec",
    "MACHINE_FACTORIES",
    "PlanCache",
    "QuotaDecision",
    "RejectedOverload",
    "RequestKind",
    "ServiceClient",
    "ServiceListener",
    "ServiceResponse",
    "Status",
    "TenantQuotas",
    "TokenBucket",
    "WorkloadBreakers",
    "build_requests",
    "execute_service_task",
    "run_loadgen",
    "run_service_batch",
    "service_task",
]
