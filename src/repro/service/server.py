"""The coloring service: an asyncio server over the fault-tolerant harness.

One :class:`ColoringService` owns an event loop's worth of robustness
machinery and turns :class:`~repro.service.protocol.ColoringRequest`\\ s
into :class:`~repro.service.protocol.ServiceResponse`\\ s:

* **Admission control** — a per-tenant token bucket
  (:class:`~repro.service.quota.TenantQuotas`) and a bounded queue; over
  quota or over ``queue_limit`` the request is *shed* with an explicit
  ``rejected`` response (``overload``/``quota`` + ``retry_after_s``),
  never queued unboundedly.
* **O(1) repeats** — the sha256 fingerprint is checked against the
  :class:`~repro.service.cache.PlanCache` at admission; a hit answers
  immediately with ``cached=True`` and spawns no harness work.  An
  identical request already *in flight* is coalesced onto it
  (``coalesced=True``) instead of being recomputed.
* **Batching** — admitted requests are gathered for ``batch_window_s``
  (up to ``max_batch``) and run as one harness campaign
  (:func:`~repro.service.engines.run_service_batch`), inheriting durable
  results, bounded retries with backoff, and watchdog timeouts.
* **Deadlines** — a request's ``deadline_s`` expires it in the queue
  (rejected, reason ``deadline``) and bounds the campaign's per-task
  watchdog once it runs.
* **Degradation** — per-workload-class circuit breakers
  (:class:`~repro.service.breaker.WorkloadBreakers`): a class that keeps
  killing workers stops reaching the harness and is answered from the
  cache or the static predictor with ``status="degraded"`` until its
  recovery probe succeeds.
* **Zero loss** — every admitted request resolves exactly once
  (result, degraded answer, explicit rejection, or failure); drain sheds
  the queue with reason ``shutdown`` and awaits in-flight batches, so
  shutdown never strands a caller or torn-writes the store.

Everything observable lands in the injected
:class:`~repro.obs.MetricsRegistry` (``service.*`` counters/gauges and
the ``service.latency_ms`` histogram) and optional tracer.  The service
is single-loop: quotas, breakers and cache are consulted only from loop
callbacks, so none of them need locks.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from functools import partial
from typing import Any, Callable, Optional

from repro.harness.retry import RetryPolicy
from repro.harness.store import ResultStore
from repro.obs import DEFAULT_MS_EDGES, NULL_TRACER, MetricsRegistry
from repro.service.breaker import WorkloadBreakers
from repro.service.cache import PlanCache
from repro.service.engines import execute_service_task, run_service_batch, service_task
from repro.service.protocol import (
    ColoringRequest,
    RequestKind,
    ServiceResponse,
    Status,
)
from repro.service.quota import TenantQuotas

__all__ = ["BATCH_SIZE_EDGES", "ColoringService"]

#: Bucket edges for the ``service.batch_size`` histogram.
BATCH_SIZE_EDGES = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0)

#: Queue poison pill that tells the batcher to exit after the current item.
_SENTINEL: Any = object()


@dataclass
class _Pending:
    """One admitted request waiting for (or riding on) a computation."""

    request: ColoringRequest
    fingerprint: str
    future: "asyncio.Future[ServiceResponse]"
    admitted_at: float
    deadline_at: Optional[float]
    #: Identical requests coalesced onto this one; they share its outcome.
    riders: list["_Pending"] = field(default_factory=list)


class ColoringService:
    """See the module docstring; construct, ``await start()`` (or use as
    an async context manager), ``await submit(request)`` concurrently,
    ``await drain()`` to shut down without losing anyone."""

    def __init__(
        self,
        *,
        engine: str = "harness",
        workers: int = 1,
        queue_limit: int = 64,
        max_batch: int = 8,
        batch_window_s: float = 0.005,
        max_concurrent_batches: int = 2,
        quota_rate: float = 50.0,
        quota_burst: float = 100.0,
        breaker_threshold: int = 3,
        breaker_recovery_s: float = 5.0,
        default_deadline_s: Optional[float] = None,
        task_timeout_s: Optional[float] = None,
        retry: Optional[RetryPolicy] = None,
        store: "ResultStore | str | None" = None,
        cache_entries: int = 1024,
        clock: Callable[[], float] = time.monotonic,
        registry: Optional[MetricsRegistry] = None,
        tracer: Any = None,
        runner: Optional[Callable[..., Any]] = None,
    ) -> None:
        if engine not in ("harness", "synthetic"):
            raise ValueError("engine must be 'harness' or 'synthetic'")
        if queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_concurrent_batches < 1:
            raise ValueError("max_concurrent_batches must be >= 1")
        self.engine = engine
        self.workers = max(1, workers)
        self.queue_limit = queue_limit
        self.max_batch = max_batch
        self.batch_window_s = batch_window_s
        self.max_concurrent_batches = max_concurrent_batches
        self.default_deadline_s = default_deadline_s
        self.task_timeout_s = task_timeout_s
        self.retry = retry if retry is not None else RetryPolicy()
        self.store = ResultStore(store) if isinstance(store, str) else store
        self.cache = PlanCache(self.store, max_entries=cache_entries)
        self.quotas = TenantQuotas(quota_rate, quota_burst, clock=clock)
        self.breakers = WorkloadBreakers(
            breaker_threshold, breaker_recovery_s, clock=clock
        )
        self.registry = (
            registry if registry is not None else MetricsRegistry(scope="service")
        )
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._runner = runner if runner is not None else run_service_batch
        self._clock = clock
        self._started = False
        self._draining = False
        self._started_at = 0.0
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._queue: Optional[asyncio.Queue] = None
        self._sem: Optional[asyncio.Semaphore] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._batcher: Optional[asyncio.Task] = None
        self._batches: set[asyncio.Task] = set()
        self._inflight: dict[str, _Pending] = {}

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> None:
        if self._started:
            raise RuntimeError("service already started")
        self._loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue()
        self._sem = asyncio.Semaphore(self.max_concurrent_batches)
        self._executor = ThreadPoolExecutor(
            max_workers=self.max_concurrent_batches,
            thread_name_prefix="repro-service",
        )
        self._batches = set()
        self._inflight = {}
        self._draining = False
        self._started_at = self._clock()
        self._batcher = self._loop.create_task(self._batch_loop())
        self._started = True

    async def drain(self) -> None:
        """Stop accepting work, shed the queue, finish what's in flight.

        Queued-but-unstarted requests are rejected with reason
        ``shutdown`` (requeue is the caller's choice); dispatched batches
        run to completion so the store is never left mid-write by us.
        Idempotent; the service cannot be restarted afterwards.
        """
        if not self._started:
            return
        assert self._queue is not None and self._batcher is not None
        self._draining = True
        shed: list[_Pending] = []
        while True:
            try:
                item = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            if item is not _SENTINEL:
                shed.append(item)
        for entry in shed:
            self._finish(entry, Status.REJECTED, reason="shutdown")
        self._queue.put_nowait(_SENTINEL)
        await self._batcher
        while self._batches:
            await asyncio.gather(*list(self._batches), return_exceptions=True)
        if self._executor is not None:
            self._executor.shutdown(wait=True)
        self._started = False

    async def stop(self) -> None:
        await self.drain()

    async def __aenter__(self) -> "ColoringService":
        await self.start()
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.drain()

    # -- the front door ------------------------------------------------

    async def submit(self, request: ColoringRequest) -> ServiceResponse:
        """Admit one request and await its (sole) response."""
        outcome = self._admit(request)
        if isinstance(outcome, ServiceResponse):
            return outcome
        return await outcome.future

    def _admit(self, request: ColoringRequest) -> "ServiceResponse | _Pending":
        if not self._started or self._loop is None or self._queue is None:
            raise RuntimeError("service not started")
        self.registry.counter("service.requests.submitted").inc()
        self.registry.counter(f"service.tenant.{request.tenant}.requests").inc()
        if self._draining:
            return self._reject(request, "shutdown")
        if request.kind == RequestKind.SYNTHETIC and self.engine != "synthetic":
            return self._reject(request, "bad_request")
        decision = self.quotas.check(request.tenant)
        if not decision.allowed:
            return self._reject(request, "quota", retry_after_s=decision.retry_after_s)
        fingerprint = request.fingerprint()
        payload = self._cache_lookup(fingerprint)
        if payload is not None:
            response = ServiceResponse(
                status=Status.OK,
                request_id=request.request_id,
                fingerprint=fingerprint,
                result=payload,
                cached=True,
            )
            self._observe(request, response)
            return response
        primary = self._inflight.get(fingerprint)
        if primary is not None:
            rider = self._pending(request, fingerprint)
            primary.riders.append(rider)
            self.registry.counter("service.coalesced").inc()
            return rider
        if self._queue.qsize() >= self.queue_limit:
            return self._reject(request, "overload")
        entry = self._pending(request, fingerprint)
        self._inflight[fingerprint] = entry
        self._queue.put_nowait(entry)
        self.registry.counter("service.requests.admitted").inc()
        self._gauges()
        return entry

    # -- batching ------------------------------------------------------

    async def _batch_loop(self) -> None:
        assert self._queue is not None and self._sem is not None
        assert self._loop is not None
        while True:
            item = await self._queue.get()
            if item is _SENTINEL:
                break
            batch = [item]
            stop = False
            window_ends = self._loop.time() + self.batch_window_s
            while len(batch) < self.max_batch:
                remaining = window_ends - self._loop.time()
                if remaining <= 0:
                    break
                try:
                    nxt = await asyncio.wait_for(self._queue.get(), timeout=remaining)
                except asyncio.TimeoutError:
                    break
                if nxt is _SENTINEL:
                    stop = True
                    break
                batch.append(nxt)
            self._gauges()
            await self._sem.acquire()
            if self._draining:
                # A drain started while we waited for a batch slot: this
                # batch was never dispatched, so shed it like queued work.
                self._sem.release()
                for entry in batch:
                    if not entry.future.done():
                        self._finish(entry, Status.REJECTED, reason="shutdown")
                if stop:
                    break
                continue
            task = self._loop.create_task(self._run_batch(batch))
            self._batches.add(task)
            task.add_done_callback(self._batch_done)
            if stop:
                break

    def _batch_done(self, task: asyncio.Task) -> None:
        if self._sem is not None:
            self._sem.release()
        self._batches.discard(task)

    async def _run_batch(self, entries: list[_Pending]) -> None:
        try:
            await self._execute_batch(entries)
        except Exception as exc:  # pragma: no cover - zero-loss safety net
            reason = f"internal:{type(exc).__name__}"
            for entry in entries:
                if not entry.future.done():
                    self._finish(entry, Status.FAILED, reason=reason)

    async def _execute_batch(self, entries: list[_Pending]) -> None:
        assert self._loop is not None and self._executor is not None
        now = self._clock()
        runnable: list[_Pending] = []
        for entry in entries:
            if entry.deadline_at is not None and now >= entry.deadline_at:
                self._finish(entry, Status.REJECTED, reason="deadline")
                continue
            payload = self._cache_lookup(entry.fingerprint)
            if payload is not None:
                self._finish(entry, Status.OK, result=payload, cached=True)
                continue
            if not self.breakers.get(entry.request.workload_class()).allows():
                await self._finish_fallback(entry, "circuit_open")
                continue
            runnable.append(entry)
        self._breaker_gauges()
        if not runnable:
            return
        tasks = [service_task(entry.request) for entry in runnable]
        keys = [entry.fingerprint for entry in runnable]
        timeout_s = self._batch_timeout(runnable, now)
        self.registry.counter("service.batches").inc()
        self.registry.histogram("service.batch_size", BATCH_SIZE_EDGES).observe(
            len(runnable)
        )
        run = partial(
            self._runner,
            tasks,
            keys,
            retry=self.retry,
            timeout_s=timeout_s,
            store=self.store,
            max_workers=self.workers,
            tracer=None,
        )
        with self.tracer.span("service.batch", size=len(runnable)) as span:
            try:
                campaign = await self._loop.run_in_executor(self._executor, run)
            except Exception as exc:
                # The runner itself blew up (pool unrecoverable): every
                # entry is charged and degraded, nobody is stranded.
                span.set(error=type(exc).__name__)
                for entry in runnable:
                    self.breakers.get(entry.request.workload_class()).record_failure()
                    await self._finish_fallback(entry, "worker_failure")
                self._breaker_gauges()
                return
            span.set(retries=campaign.report.retries, loaded=campaign.report.loaded)
        report = campaign.report
        self.registry.counter("service.retries").inc(report.retries)
        self.registry.counter("service.cache.durable_hits").inc(report.loaded)
        failures = {failure.index: failure for failure in report.failures}
        for index, entry in enumerate(runnable):
            result = campaign.results[index]
            breaker = self.breakers.get(entry.request.workload_class())
            if isinstance(result, dict):
                breaker.record_success()
                self.cache.put(entry.fingerprint, result)
                self._finish(entry, Status.OK, result=result)
            else:
                failure = failures.get(index)
                if failure is not None:
                    self.registry.counter(
                        f"service.failures.{failure.kind.value}"
                    ).inc()
                breaker.record_failure()
                await self._finish_fallback(entry, "worker_failure")
        self._breaker_gauges()

    def _batch_timeout(
        self, entries: list[_Pending], now: float
    ) -> Optional[float]:
        """Per-task watchdog for this batch: the tightest remaining
        deadline wins, floored so an almost-expired request still gets a
        beat of real work before the watchdog calls it."""
        remaining = [
            entry.deadline_at - now
            for entry in entries
            if entry.deadline_at is not None
        ]
        if not remaining:
            return self.task_timeout_s
        tightest = min(remaining)
        if self.task_timeout_s is not None:
            tightest = min(tightest, self.task_timeout_s)
        return max(0.05, tightest)

    # -- degradation ---------------------------------------------------

    async def _finish_fallback(self, entry: _Pending, reason: str) -> None:
        """Answer without the primary path: cached plan, else the static
        predictor, else an honest ``failed``."""
        assert self._loop is not None and self._executor is not None
        payload = self._cache_lookup(entry.fingerprint)
        if payload is not None:
            self.registry.counter("service.fallback.cached").inc()
            self._finish(
                entry, Status.DEGRADED, result=payload, cached=True, reason=reason
            )
            return
        request = entry.request
        if request.kind == RequestKind.SYNTHETIC:
            knobs = dict(request.synthetic)
            payload = {
                "kind": "synthetic",
                "workload": request.workload,
                "key": knobs.get("key", 0),
                "value": "degraded",
                "fallback": "static",
            }
            self.registry.counter("service.fallback.static").inc()
            self._finish(entry, Status.DEGRADED, result=payload, reason=reason)
            return
        if request.kind == RequestKind.SIMULATE:
            predict = service_task(replace(request, kind=RequestKind.PREDICT))
            try:
                payload = await self._loop.run_in_executor(
                    self._executor, execute_service_task, predict
                )
            except Exception:
                payload = None
            if isinstance(payload, dict):
                payload = dict(payload)
                payload["fallback"] = "static"
                self.registry.counter("service.fallback.static").inc()
                self._finish(entry, Status.DEGRADED, result=payload, reason=reason)
                return
        self._finish(entry, Status.FAILED, reason=reason)

    # -- resolution ----------------------------------------------------

    def _pending(self, request: ColoringRequest, fingerprint: str) -> _Pending:
        assert self._loop is not None
        now = self._clock()
        deadline_s = (
            request.deadline_s
            if request.deadline_s is not None
            else self.default_deadline_s
        )
        return _Pending(
            request=request,
            fingerprint=fingerprint,
            future=self._loop.create_future(),
            admitted_at=now,
            deadline_at=now + deadline_s if deadline_s is not None else None,
        )

    def _finish(
        self,
        entry: _Pending,
        status: Status,
        *,
        result: Optional[dict] = None,
        cached: bool = False,
        reason: str = "",
    ) -> None:
        """Resolve one pending entry (and every rider) exactly once."""
        for pending in (entry, *entry.riders):
            response = ServiceResponse(
                status=status,
                request_id=pending.request.request_id,
                fingerprint=pending.fingerprint,
                result=result,
                cached=cached,
                coalesced=pending is not entry,
                reason=reason,
                elapsed_ms=max(0.0, (self._clock() - pending.admitted_at) * 1000.0),
            )
            if not pending.future.done():
                pending.future.set_result(response)
            self._observe(pending.request, response)
        self._inflight.pop(entry.fingerprint, None)
        self._gauges()

    def _reject(
        self,
        request: ColoringRequest,
        reason: str,
        retry_after_s: Optional[float] = None,
    ) -> ServiceResponse:
        response = ServiceResponse(
            status=Status.REJECTED,
            request_id=request.request_id,
            reason=reason,
            retry_after_s=retry_after_s,
        )
        self._observe(request, response)
        return response

    # -- observability -------------------------------------------------

    def _cache_lookup(self, fingerprint: str) -> Optional[dict]:
        payload = self.cache.get(fingerprint)
        if payload is not None:
            self.registry.counter("service.cache.hits").inc()
        else:
            self.registry.counter("service.cache.misses").inc()
        return payload

    def _observe(self, request: ColoringRequest, response: ServiceResponse) -> None:
        self.registry.counter(f"service.responses.{response.status.value}").inc()
        if response.status == Status.REJECTED:
            self.registry.counter(f"service.rejected.{response.reason}").inc()
            self.registry.counter(f"service.tenant.{request.tenant}.rejected").inc()
        self.registry.histogram("service.latency_ms", DEFAULT_MS_EDGES).observe(
            response.elapsed_ms
        )
        self.tracer.instant(
            "service.request",
            status=response.status.value,
            tenant=request.tenant,
            cached=response.cached,
        )

    def _gauges(self) -> None:
        if self._queue is not None:
            self.registry.gauge("service.queue.depth").set(self._queue.qsize())
        self.registry.gauge("service.inflight").set(len(self._inflight))

    def _breaker_gauges(self) -> None:
        states = self.breakers.states()
        self.registry.gauge("service.breakers.open").set(
            sum(1 for state in states.values() if state != "closed")
        )
        self.registry.gauge("service.breaker.trips").set(self.breakers.total_trips())

    # -- introspection -------------------------------------------------

    def health(self) -> dict:
        """Liveness: current state, uptime, queue/breaker/cache view."""
        if not self._started:
            status = "stopped"
        elif self._draining:
            status = "draining"
        else:
            status = "ok"
        return {
            "status": status,
            "engine": self.engine,
            "uptime_s": (
                max(0.0, self._clock() - self._started_at) if self._started else 0.0
            ),
            "queue_depth": self._queue.qsize() if self._queue is not None else 0,
            "inflight": len(self._inflight),
            "breakers": self.breakers.states(),
            "cache": self.cache.stats(),
        }

    def ready(self) -> dict:
        """Readiness: would a new request be admitted right now?"""
        queue_depth = self._queue.qsize() if self._queue is not None else 0
        return {
            "ready": bool(
                self._started
                and not self._draining
                and queue_depth < self.queue_limit
            ),
            "queue_depth": queue_depth,
            "queue_limit": self.queue_limit,
        }

    def metrics_snapshot(self) -> dict:
        """The ``repro.obs.metrics/v1`` snapshot of ``service.*`` metrics."""
        return self.registry.snapshot()
