"""Observability sinks: in-memory, JSONL files, and the live progress line.

Sinks are where metric snapshots and trace events end up:

* :class:`InMemorySink` — a list, for tests and programmatic inspection;
* :class:`JsonlSink` — one JSON object per line, append-friendly, the
  format long campaigns stream to so a crash loses at most one line;
* :func:`write_metrics_json` / :func:`write_trace_json` — whole-file
  exports (atomic tmp+rename) behind the CLI's ``--metrics-out`` and
  ``--trace-out`` flags; the trace file is the chrome://tracing
  ``traceEvents`` envelope;
* :class:`ProgressLine` — the live one-line campaign status
  (``done/failed/retried`` plus aggregate hint honor rate) rendered to
  stderr while ``python -m repro sweep`` runs.
"""

from __future__ import annotations

import io
import json
import os
import sys
import tempfile
from typing import Optional, TextIO

__all__ = [
    "InMemorySink",
    "JsonlSink",
    "ProgressLine",
    "write_json_atomic",
    "write_metrics_json",
    "write_trace_json",
]


def write_json_atomic(path: str, payload: dict) -> None:
    """Publish ``payload`` as JSON via tmp+rename (never a torn file)."""
    directory = os.path.dirname(os.path.abspath(path)) or "."
    fd, tmp_name = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def write_metrics_json(path: str, snapshot: dict) -> None:
    """Write one registry snapshot (run or campaign scope) to ``path``."""
    write_json_atomic(path, snapshot)


def write_trace_json(path: str, events: list[dict]) -> None:
    """Write trace events in the chrome://tracing JSON envelope."""
    write_json_atomic(
        path,
        {
            "schema": "repro.obs.trace/v1",
            "displayTimeUnit": "ms",
            "traceEvents": events,
        },
    )


class InMemorySink:
    """Collects emitted payloads in order; the test double for sinks."""

    def __init__(self) -> None:
        self.records: list[dict] = []

    def emit(self, payload: dict) -> None:
        self.records.append(payload)

    def close(self) -> None:
        pass


class JsonlSink:
    """Appends one compact JSON object per line to a file.

    Lines are written and flushed individually, so a reader (or a crash)
    observes only whole records.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._handle: Optional[io.TextIOWrapper] = open(path, "a")

    def emit(self, payload: dict) -> None:
        if self._handle is None:
            raise ValueError("sink is closed")
        self._handle.write(json.dumps(payload, separators=(",", ":")) + "\n")
        self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class ProgressLine:
    """A single self-overwriting status line for long campaigns.

    ``update`` takes the campaign progress event dict (see
    :class:`repro.harness.campaign.CampaignOptions.on_progress`) and
    renders ``sweep: 7/12 done, 1 failed, 2 retried, honor 0.98``.  The
    line only renders to a TTY by default (CI logs stay clean);
    ``finish()`` terminates it with a newline so subsequent output starts
    cleanly.
    """

    def __init__(
        self,
        label: str = "sweep",
        stream: Optional[TextIO] = None,
        force: bool = False,
    ) -> None:
        self.label = label
        self.stream = stream if stream is not None else sys.stderr
        self._active = force or bool(getattr(self.stream, "isatty", lambda: False)())
        self._wrote = False

    def render(self, event: dict) -> str:
        parts = [f"{event.get('done', 0)}/{event.get('total', 0)} done"]
        if event.get("failed"):
            parts.append(f"{event['failed']} failed")
        if event.get("retried"):
            parts.append(f"{event['retried']} retried")
        if event.get("loaded"):
            parts.append(f"{event['loaded']} loaded")
        honor = event.get("honor_rate")
        if honor is not None:
            parts.append(f"honor {honor:.2f}")
        return f"{self.label}: " + ", ".join(parts)

    def update(self, event: dict) -> None:
        if not self._active:
            return
        self.stream.write("\r\x1b[K" + self.render(event))
        self.stream.flush()
        self._wrote = True

    def finish(self) -> None:
        if self._active and self._wrote:
            self.stream.write("\n")
            self.stream.flush()
            self._wrote = False
