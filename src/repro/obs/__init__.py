"""``repro.obs`` — the zero-dependency observability layer.

One front door for everything the stack reports about itself:

* :mod:`repro.obs.metrics` — :class:`MetricsRegistry` (counters, gauges,
  fixed-bucket histograms) with per-run and per-campaign scopes, a no-op
  :data:`NULL_REGISTRY` default, and :class:`SampledProfiler` for
  hot-path timings;
* :mod:`repro.obs.tracing` — structured span tracing
  (``compile.summaries``, ``color.assign``, ``sim.loop``,
  ``harness.task``) exported as chrome://tracing ``traceEvents``;
* :mod:`repro.obs.sinks` — in-memory, JSONL, whole-file JSON exports and
  the live campaign :class:`ProgressLine`;
* :mod:`repro.obs.schema` — checked-in schemas and a validator for the
  ``--metrics-out`` / ``--trace-out`` files.

The engine consumes the layer through :class:`ObsConfig` (a frozen,
picklable knob block on ``EngineOptions``) resolved into an
:class:`Observability` bundle.  With ``ObsConfig(...)`` unset everything
collapses to the shared null registry/tracer — simulated results are
bit-identical either way, by construction and by test.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.obs.metrics import (
    DEFAULT_DISTANCE_EDGES,
    DEFAULT_MS_EDGES,
    DEFAULT_NS_EDGES,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    SampledProfiler,
)
from repro.obs.sinks import (
    InMemorySink,
    JsonlSink,
    ProgressLine,
    write_metrics_json,
    write_trace_json,
)
from repro.obs.schema import (
    METRICS_SCHEMA,
    TRACE_SCHEMA,
    SchemaError,
    validate_metrics,
    validate_metrics_file,
    validate_trace,
    validate_trace_file,
)
from repro.obs.tracing import NULL_TRACER, NullTracer, Span, Tracer, merge_trace_events

__all__ = [
    "Counter",
    "DEFAULT_DISTANCE_EDGES",
    "DEFAULT_MS_EDGES",
    "DEFAULT_NS_EDGES",
    "Gauge",
    "Histogram",
    "InMemorySink",
    "JsonlSink",
    "METRICS_SCHEMA",
    "MetricsRegistry",
    "NULL_OBS",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "NullRegistry",
    "NullTracer",
    "ObsConfig",
    "Observability",
    "ProgressLine",
    "SampledProfiler",
    "SchemaError",
    "Span",
    "TRACE_SCHEMA",
    "Tracer",
    "merge_trace_events",
    "validate_metrics",
    "validate_metrics_file",
    "validate_trace",
    "validate_trace_file",
    "write_metrics_json",
    "write_trace_json",
]


@dataclass(frozen=True)
class ObsConfig:
    """Per-run observability knobs (frozen and picklable: it rides on
    ``EngineOptions`` across process boundaries).

    ``profile_sample_rate`` controls the hot-path profilers (engine
    scheduling chunks, physmem allocation spiral): one event in ``rate``
    is wall-clock timed, so instrumented overhead stays bounded (<5% at
    the default rate); ``0`` disables the profilers while keeping plain
    counters and spans.
    """

    metrics: bool = True
    tracing: bool = True
    profile_sample_rate: int = 64

    @property
    def active(self) -> bool:
        return self.metrics or self.tracing


class Observability:
    """Resolved bundle of one run's registry + tracer.

    Built from an :class:`ObsConfig` (or ``None``) by :meth:`from_config`;
    the disabled bundle is the shared :data:`NULL_OBS`, so callers can
    always dereference ``obs.registry`` / ``obs.tracer`` without None
    checks and gate extra work on ``obs.enabled``.
    """

    __slots__ = ("config", "registry", "tracer", "enabled")

    def __init__(self, config: ObsConfig, registry, tracer) -> None:
        self.config = config
        self.registry = registry
        self.tracer = tracer
        self.enabled = bool(registry.enabled or tracer.enabled)

    @classmethod
    def from_config(cls, config: Optional[ObsConfig]) -> "Observability":
        if config is None or not config.active:
            return NULL_OBS
        registry = MetricsRegistry(scope="run") if config.metrics else NULL_REGISTRY
        tracer = Tracer() if config.tracing else NULL_TRACER
        return cls(config, registry, tracer)

    def profiler(self, name: str) -> Optional[SampledProfiler]:
        """A sampled timer feeding ``<name>_ns`` / ``<name>.sampled`` /
        ``<name>.total``, or ``None`` when profiling is off."""
        if not self.registry.enabled or self.config.profile_sample_rate < 1:
            return None
        return SampledProfiler(
            self.registry.histogram(f"{name}_ns"),
            self.registry.counter(f"{name}.sampled"),
            self.registry.counter(f"{name}.total"),
            self.config.profile_sample_rate,
        )

    def report(self) -> Optional[dict]:
        """The serializable per-run observability report, or ``None``."""
        if not self.enabled:
            return None
        report: dict = {}
        if self.registry.enabled:
            report["metrics"] = self.registry.snapshot()
        if self.tracer.enabled:
            report["trace_events"] = self.tracer.export()
        return report


#: Shared disabled bundle (null registry + null tracer).
NULL_OBS = Observability(
    ObsConfig(metrics=False, tracing=False), NULL_REGISTRY, NULL_TRACER
)
