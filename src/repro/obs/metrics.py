"""Metrics registry: counters, gauges and fixed-bucket histograms.

The registry is the single place the stack reports what it did — cache
hit/miss totals, trace-cache effectiveness, hint honor rates, sampled
hot-path timings — so that a run, a sweep or a whole campaign can be
inspected without grepping ad-hoc counters out of simulator internals.

Design constraints, in order:

* **Zero overhead when off.**  The default observability configuration is
  the shared :data:`NULL_REGISTRY`, whose instruments are no-ops; hot
  paths hold one reference and pay one attribute call per event at most,
  and the engine's truly hot loops bypass even that via sampling
  (:class:`SampledProfiler`) or by emitting from already-maintained
  counters at run end.  Simulated *results* never depend on metrics:
  instruments touch wall-clock and Python ints only, so a run with
  metrics enabled is bit-identical to one without.
* **Mergeable scopes.**  A per-run registry snapshot is a plain dict;
  campaign-scope registries :meth:`~MetricsRegistry.merge` run snapshots
  (counters add, gauges take the last value, histograms add bucket-wise),
  which is how worker-process results roll up into one campaign view.
* **Zero dependencies.**  Plain Python, JSON-friendly snapshots.
"""

from __future__ import annotations

import time
from bisect import bisect_left
from typing import Callable, Optional

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NullRegistry",
    "SampledProfiler",
    "DEFAULT_NS_EDGES",
    "DEFAULT_DISTANCE_EDGES",
    "DEFAULT_MS_EDGES",
]

#: Default bucket edges for nanosecond timing histograms: geometric from
#: 1µs to ~1s, coarse enough to stay cheap, fine enough to spot a 2x.
DEFAULT_NS_EDGES = tuple(float(1_000 * 4**i) for i in range(10))

#: Default edges for millisecond request-latency histograms (the coloring
#: service's SLO range): sub-ms fast path up to 30s timeouts.
DEFAULT_MS_EDGES = (
    0.5, 1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0,
    250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0, 30000.0,
)

#: Default edges for small integer distances (spiral fallback, retries).
DEFAULT_DISTANCE_EDGES = (0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)


class Counter:
    """A monotonically increasing count of events."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Fixed-bucket histogram: ``edges`` are upper bounds, plus overflow.

    ``counts[i]`` counts observations ``<= edges[i]``; the final slot
    counts everything above the last edge.  Bucket edges are fixed at
    creation so snapshots from different runs merge bucket-wise.
    """

    __slots__ = ("name", "edges", "counts", "sum", "count")

    def __init__(self, name: str, edges: tuple[float, ...]) -> None:
        if not edges or list(edges) != sorted(edges):
            raise ValueError("histogram edges must be sorted and non-empty")
        self.name = name
        self.edges = tuple(float(e) for e in edges)
        self.counts = [0] * (len(edges) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.edges, value)] += 1
        self.sum += value
        self.count += 1

    def observe_many(self, value: float, times: int) -> None:
        """Record ``times`` identical observations in O(1)."""
        if times <= 0:
            return
        self.counts[bisect_left(self.edges, value)] += times
        self.sum += value * times
        self.count += times

    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


class MetricsRegistry:
    """A named collection of instruments with one scope (run or campaign).

    Instruments are created on first use and cached, so hot code can call
    ``registry.counter("x").inc()`` — though hot paths should hold the
    instrument in a local.  Names are dotted paths
    (``"trace_cache.hits"``); keep label-like variants in the name
    (``"machine.l2_misses.conflict"``) so snapshots stay flat JSON.
    """

    enabled = True

    def __init__(self, scope: str = "run") -> None:
        self.scope = scope
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- instrument factories ------------------------------------------

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(
        self, name: str, edges: tuple[float, ...] = DEFAULT_NS_EDGES
    ) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name, edges)
        elif instrument.edges != tuple(float(e) for e in edges):
            raise ValueError(
                f"histogram {name!r} already registered with different edges"
            )
        return instrument

    # -- serialization and merging -------------------------------------

    def snapshot(self) -> dict:
        """JSON-friendly dump of every instrument in this registry."""
        return {
            "schema": "repro.obs.metrics/v1",
            "scope": self.scope,
            "counters": {
                name: c.value for name, c in sorted(self._counters.items())
            },
            "gauges": {
                name: g.value for name, g in sorted(self._gauges.items())
            },
            "histograms": {
                name: {
                    "edges": list(h.edges),
                    "counts": list(h.counts),
                    "sum": h.sum,
                    "count": h.count,
                }
                for name, h in sorted(self._histograms.items())
            },
        }

    def merge(self, snapshot: dict) -> None:
        """Fold one run-scope snapshot into this (campaign-scope) registry.

        Counters and histogram buckets add; gauges take the merged
        snapshot's value (last write wins, matching gauge semantics).
        """
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, payload in snapshot.get("histograms", {}).items():
            hist = self.histogram(name, tuple(payload["edges"]))
            for index, count in enumerate(payload["counts"]):
                hist.counts[index] += count
            hist.sum += payload["sum"]
            hist.count += payload["count"]


class _NullInstrument:
    """Shared do-nothing instrument returned by the null registry."""

    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def observe_many(self, value: float, times: int) -> None:
        pass

    def mean(self) -> float:
        return 0.0


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry:
    """The disabled registry: every instrument is a shared no-op.

    Keeping the interface identical to :class:`MetricsRegistry` lets
    instrumented code hold instruments unconditionally; the cost of a
    disabled metric is one no-op method call, and code that checks
    ``registry.enabled`` first pays only a truthiness test.
    """

    enabled = False
    scope = "null"

    def counter(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, edges=DEFAULT_NS_EDGES) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def snapshot(self) -> dict:
        return {
            "schema": "repro.obs.metrics/v1",
            "scope": "null",
            "counters": {},
            "gauges": {},
            "histograms": {},
        }

    def merge(self, snapshot: dict) -> None:
        pass


#: Shared no-op registry — the default everywhere observability is off.
NULL_REGISTRY = NullRegistry()


class SampledProfiler:
    """Deterministically sampled wall-clock timer for hot paths.

    Timing every scheduling chunk or allocation would cost more than the
    work being measured, so the profiler times one event in ``rate``:
    ``tick()`` is a counter increment and a modulo; only sampled events
    pay the two ``perf_counter`` calls.  The histogram records
    nanoseconds; ``sampled``/``total`` counters make the sampling rate
    explicit in the output so readers can scale estimates back up.
    """

    __slots__ = ("rate", "_n", "histogram", "sampled", "total", "_clock")

    def __init__(
        self,
        histogram: Histogram,
        sampled: Counter,
        total: Counter,
        rate: int,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        if rate < 1:
            raise ValueError("sample rate must be >= 1")
        self.rate = rate
        self._n = 0
        self.histogram = histogram
        self.sampled = sampled
        self.total = total
        self._clock = clock

    def tick(self) -> Optional[float]:
        """Advance the event counter; return a start time when sampled."""
        self._n += 1
        self.total.inc()
        if self._n % self.rate:
            return None
        self.sampled.inc()
        return self._clock()

    def observe(self, started: float) -> None:
        """Record one sampled event's elapsed time (in nanoseconds)."""
        self.histogram.observe((self._clock() - started) * 1e9)
