"""Structured span tracing with chrome://tracing-compatible export.

A :class:`Tracer` records a tree of wall-clock *spans* — named intervals
like ``compile.summaries``, ``color.assign``, ``sim.loop`` or
``harness.task`` — each carrying optional event counts and attributes.
Spans nest naturally via context managers and are always closed, even
when the body raises (a crashed worker still yields a consistent span
tree for whatever it got through).

Export is the Trace Event Format's complete-event (``"ph": "X"``) list,
loadable directly in ``chrome://tracing`` / Perfetto: timestamps are
microseconds relative to the tracer's creation, ``pid``/``tid`` slot
multiple runs of a campaign side by side, and span attributes land in
``args``.  The :data:`NULL_TRACER` default keeps disabled tracing at one
attribute check per span site.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

__all__ = ["Span", "Tracer", "NullTracer", "NULL_TRACER", "merge_trace_events"]


class Span:
    """One open interval; close it via the tracer's context manager."""

    __slots__ = ("name", "start_us", "args", "_tracer")

    def __init__(self, name: str, start_us: float, tracer: "Tracer") -> None:
        self.name = name
        self.start_us = start_us
        self.args: dict = {}
        self._tracer = tracer

    def set(self, **attrs) -> None:
        """Attach attributes (event counts, labels) to the span."""
        self.args.update(attrs)

    def count(self, name: str, amount: int = 1) -> None:
        """Accumulate a named event count on the span."""
        self.args[name] = self.args.get(name, 0) + amount

    # -- context manager -----------------------------------------------

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.args.setdefault("error", exc_type.__name__)
        self._tracer._close(self)


class Tracer:
    """Records spans as complete trace events, in closing order.

    ``depth`` tracks open spans so exports can assert every span closed;
    the engine and harness always close via context managers, so a
    nonzero depth at export time means a span leaked.
    """

    enabled = True

    def __init__(
        self,
        pid: int = 0,
        tid: int = 0,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.pid = pid
        self.tid = tid
        self._clock = clock
        self._t0 = clock()
        self.events: list[dict] = []
        self.depth = 0

    def _now_us(self) -> float:
        return (self._clock() - self._t0) * 1e6

    def span(self, name: str, **attrs) -> Span:
        """Open a span; use as ``with tracer.span("sim.loop") as sp:``."""
        self.depth += 1
        span = Span(name, self._now_us(), self)
        if attrs:
            span.args.update(attrs)
        return span

    def _close(self, span: Span) -> None:
        self.depth -= 1
        event = {
            "name": span.name,
            "ph": "X",
            "ts": span.start_us,
            "dur": self._now_us() - span.start_us,
            "pid": self.pid,
            "tid": self.tid,
        }
        if span.args:
            event["args"] = dict(span.args)
        self.events.append(event)

    def instant(self, name: str, **attrs) -> None:
        """Record a zero-duration marker event."""
        event = {
            "name": name,
            "ph": "i",
            "ts": self._now_us(),
            "pid": self.pid,
            "tid": self.tid,
            "s": "t",
        }
        if attrs:
            event["args"] = dict(attrs)
        self.events.append(event)

    def export(self) -> list[dict]:
        """The recorded trace events (chrome ``traceEvents`` entries)."""
        return list(self.events)


class _NullSpan:
    """Shared do-nothing span for the disabled tracer."""

    __slots__ = ()

    def set(self, **attrs) -> None:
        pass

    def count(self, name: str, amount: int = 1) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: spans are shared no-ops, export is empty."""

    enabled = False
    depth = 0

    def span(self, name: str, **attrs) -> _NullSpan:
        return _NULL_SPAN

    def instant(self, name: str, **attrs) -> None:
        pass

    def export(self) -> list[dict]:
        return []


#: Shared no-op tracer — the default everywhere tracing is off.
NULL_TRACER = NullTracer()


def merge_trace_events(
    groups: list[tuple[int, Optional[str], list[dict]]],
) -> list[dict]:
    """Combine per-run event lists into one campaign-wide event stream.

    Each group is ``(pid, label, events)``: the events are re-stamped with
    the group's ``pid`` so chrome://tracing shows each run as its own
    process row, and a metadata event names the row after the run label.
    Worker-process tracers measure from their own epoch, which is exactly
    what per-``pid`` rows present correctly.
    """
    merged: list[dict] = []
    for pid, label, events in groups:
        if label is not None:
            merged.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": label},
                }
            )
        for event in events:
            stamped = dict(event)
            stamped["pid"] = pid
            merged.append(stamped)
    return merged
