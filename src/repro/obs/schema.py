"""Checked-in JSON schemas for the observability outputs, plus a validator.

The CI obs-smoke job (and any downstream consumer) needs a contract for
what ``--metrics-out`` and ``--trace-out`` emit.  The schemas below are
expressed in a small JSON-Schema subset (``type``, ``properties``,
``required``, ``items``, ``enum``, ``additionalProperties`` as a schema)
and validated by :func:`validate` — no third-party dependency, same
spirit as the rest of the layer.

Schema versions are embedded in the payloads (``repro.obs.metrics/v1``,
``repro.obs.trace/v1``); bump them when the shape changes incompatibly.
"""

from __future__ import annotations

import json

__all__ = [
    "METRICS_SCHEMA",
    "TRACE_SCHEMA",
    "SchemaError",
    "validate",
    "validate_metrics",
    "validate_trace",
    "validate_metrics_file",
    "validate_trace_file",
]


class SchemaError(ValueError):
    """A payload did not conform to its schema."""


_HISTOGRAM_SCHEMA = {
    "type": "object",
    "required": ["edges", "counts", "sum", "count"],
    "properties": {
        "edges": {"type": "array", "items": {"type": "number"}},
        "counts": {"type": "array", "items": {"type": "integer"}},
        "sum": {"type": "number"},
        "count": {"type": "integer"},
    },
}

#: Shape of a registry snapshot (run or campaign scope).  Campaign-scope
#: files additionally carry per-run snapshots under ``runs``.
METRICS_SCHEMA = {
    "type": "object",
    "required": ["schema", "scope", "counters", "gauges", "histograms"],
    "properties": {
        "schema": {"enum": ["repro.obs.metrics/v1"]},
        "scope": {"type": "string"},
        "counters": {"type": "object", "additionalProperties": {"type": "integer"}},
        "gauges": {"type": "object", "additionalProperties": {"type": "number"}},
        "histograms": {
            "type": "object",
            "additionalProperties": _HISTOGRAM_SCHEMA,
        },
        "runs": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["label"],
                "properties": {"label": {"type": "string"}},
            },
        },
        "campaign": {"type": "object"},
    },
}

_TRACE_EVENT_SCHEMA = {
    "type": "object",
    "required": ["name", "ph", "pid", "tid"],
    "properties": {
        "name": {"type": "string"},
        "ph": {"enum": ["X", "i", "M"]},
        "ts": {"type": "number"},
        "dur": {"type": "number"},
        "pid": {"type": "integer"},
        "tid": {"type": "integer"},
        "args": {"type": "object"},
        "s": {"type": "string"},
    },
}

#: Shape of a ``--trace-out`` file: the chrome://tracing JSON envelope.
TRACE_SCHEMA = {
    "type": "object",
    "required": ["schema", "traceEvents"],
    "properties": {
        "schema": {"enum": ["repro.obs.trace/v1"]},
        "displayTimeUnit": {"type": "string"},
        "traceEvents": {"type": "array", "items": _TRACE_EVENT_SCHEMA},
    },
}

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "number": (int, float),
    "integer": int,
    "boolean": bool,
}


def _check(instance, schema: dict, path: str, errors: list[str]) -> None:
    expected = schema.get("type")
    if expected is not None:
        pytype = _TYPES[expected]
        ok = isinstance(instance, pytype)
        # bool is an int subclass; reject it for numeric types.
        if ok and expected in ("number", "integer") and isinstance(instance, bool):
            ok = False
        if not ok:
            errors.append(f"{path}: expected {expected}, got {type(instance).__name__}")
            return
    if "enum" in schema and instance not in schema["enum"]:
        errors.append(f"{path}: {instance!r} not one of {schema['enum']}")
        return
    if isinstance(instance, dict):
        for name in schema.get("required", ()):
            if name not in instance:
                errors.append(f"{path}: missing required key {name!r}")
        properties = schema.get("properties", {})
        for name, value in instance.items():
            if name in properties:
                _check(value, properties[name], f"{path}.{name}", errors)
            elif isinstance(schema.get("additionalProperties"), dict):
                _check(
                    value, schema["additionalProperties"], f"{path}.{name}", errors
                )
    elif isinstance(instance, list):
        item_schema = schema.get("items")
        if item_schema is not None:
            for index, value in enumerate(instance):
                _check(value, item_schema, f"{path}[{index}]", errors)


def validate(instance, schema: dict, label: str = "payload") -> None:
    """Raise :class:`SchemaError` listing every violation, or return."""
    errors: list[str] = []
    _check(instance, schema, label, errors)
    if errors:
        raise SchemaError("; ".join(errors))


def validate_metrics(payload: dict) -> None:
    validate(payload, METRICS_SCHEMA, "metrics")


def validate_trace(payload: dict) -> None:
    validate(payload, TRACE_SCHEMA, "trace")


def _load(path: str) -> dict:
    with open(path) as handle:
        return json.load(handle)


def validate_metrics_file(path: str) -> dict:
    """Load and validate a ``--metrics-out`` file; returns the payload."""
    payload = _load(path)
    validate_metrics(payload)
    return payload


def validate_trace_file(path: str) -> dict:
    """Load and validate a ``--trace-out`` file; returns the payload."""
    payload = _load(path)
    validate_trace(payload)
    return payload
