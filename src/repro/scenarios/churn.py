"""Flat churn schedules and their executor.

A :class:`ChurnSchedule` is the lowered form of a scenario (see
``repro.scenarios.spec``): a sorted tuple of :class:`ChurnAction` rows,
each "at beat B, do OP with AMOUNT frames".  The schedule is frozen and
has a deterministic ``repr``, which the harness relies on — campaign task
fingerprints hash ``repr(task)``, so two runs of the same scenario find
each other's stored results.

:class:`ChurnDriver` executes the schedule against one simulation's
physical memory.  The engine calls :meth:`on_beat` at every phase
boundary; all randomness (which exact frames a co-runner seizes) comes
from one ``random.Random(schedule.seed)`` stream, so the same schedule
replays identically in serial, parallel, and resumed campaign runs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.osmodel.physmem import PhysicalMemory

#: Operations a churn action may perform, in same-beat execution order.
CHURN_OPS = ("release", "restore", "seize", "revoke")


@dataclass(frozen=True)
class ChurnAction:
    """One scheduled capacity change: at ``beat``, ``op`` ``amount`` frames.

    ``amount`` >= 1 is an absolute frame count; an amount in (0, 1) is a
    *fraction of total physical frames*, resolved against the machine the
    scenario actually runs on — scenarios stay meaningful across machine
    scales and workload footprints.
    """

    beat: int
    op: str
    amount: float
    #: For ``seize``: fraction of the frames concentrated on a low-color
    #: band (the worst case for a colored subject).  Ignored otherwise.
    skew: float = 0.0

    def __post_init__(self) -> None:
        if self.beat < 0:
            raise ValueError("churn action beat must be >= 0")
        if self.op not in CHURN_OPS:
            raise ValueError(f"unknown churn op {self.op!r}")
        if self.amount <= 0:
            raise ValueError("churn action amount must be > 0")
        if not 0.0 <= self.skew <= 1.0:
            raise ValueError("churn action skew must be in [0, 1]")

    def resolve(self, total_frames: int) -> int:
        """Frame count against a concrete machine."""
        if self.amount < 1:
            return int(self.amount * total_frames)
        return int(self.amount)


@dataclass(frozen=True)
class ChurnSchedule:
    """A complete, frozen per-beat capacity schedule."""

    actions: tuple[ChurnAction, ...] = ()
    seed: int = 0
    #: Wrap beats modulo this period (0 → play the schedule once).
    repeat_beats: int = 0

    def __post_init__(self) -> None:
        if self.repeat_beats < 0:
            raise ValueError("repeat_beats must be >= 0")

    @property
    def active(self) -> bool:
        return bool(self.actions)

    @property
    def horizon(self) -> int:
        """Last beat with a scheduled action."""
        return max((a.beat for a in self.actions), default=0)

    def actions_at(self, beat: int) -> tuple[ChurnAction, ...]:
        """Actions due at an (already wrapped) beat, in execution order."""
        return tuple(a for a in self.actions if a.beat == beat)


@dataclass
class ChurnDriver:
    """Executes a :class:`ChurnSchedule` against one simulation's memory.

    Seizes model co-runner arrivals (held frames, exactly the PR-1
    pressure adversary's mechanism), releases model departures, and
    revoke/restore move frames in and out of the host's capacity with
    color-aware victim selection.  Every action is best-effort: a seize
    or revocation that cannot obtain its full amount takes what it can —
    the shortfall shows up in the physmem counters, never as a crash.
    """

    schedule: ChurnSchedule
    physmem: PhysicalMemory
    on_event: Optional[Callable[[str, dict], None]] = None
    beat: int = 0
    frames_seized: int = 0
    frames_released: int = 0
    frames_revoked: int = 0
    frames_restored: int = 0
    #: ``(beat, capacity_frames, free_frames)`` after each beat's actions —
    #: the capacity timeline the obs layer plots.
    timeline: list[tuple[int, int, int]] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._rng = random.Random(self.schedule.seed)
        num_colors = self.physmem.num_colors
        band = max(1, num_colors // 2)
        #: Low-color band that skewed seizes concentrate on; fixed (not
        #: seeded) so a scenario's "shape" is a property of the spec.
        self._skew_colors = set(range(band))

    def _emit(self, kind: str, detail: dict) -> None:
        if self.on_event is not None:
            self.on_event(kind, detail)

    def _apply(self, action: ChurnAction) -> int:
        amount = action.resolve(self.physmem.num_frames)
        if amount <= 0:
            return 0
        if action.op == "seize":
            skewed = int(amount * action.skew)
            taken = self.physmem.seize_frames(
                skewed, self._rng, preferred_colors=self._skew_colors
            )
            taken += self.physmem.seize_frames(amount - len(taken), self._rng)
            self.frames_seized += len(taken)
            return len(taken)
        if action.op == "release":
            released = self.physmem.release_held(amount, self._rng)
            self.frames_released += len(released)
            return len(released)
        if action.op == "revoke":
            revoked = self.physmem.revoke_frames(amount)
            self.frames_revoked += len(revoked)
            return len(revoked)
        restored = self.physmem.restore_frames(amount)
        self.frames_restored += len(restored)
        return len(restored)

    def on_beat(self) -> int:
        """Execute this beat's actions; returns how many frames moved."""
        beat = self.beat
        self.beat += 1
        if self.schedule.repeat_beats > 0:
            beat = beat % self.schedule.repeat_beats
        moved = 0
        for action in self.schedule.actions_at(beat):
            done = self._apply(action)
            moved += done
            self._emit(
                "churn",
                {
                    "beat": beat,
                    "op": action.op,
                    "requested": action.resolve(self.physmem.num_frames),
                    "done": done,
                },
            )
        self.timeline.append(
            (
                self.beat - 1,
                self.physmem.capacity_frames(),
                self.physmem.free_frames(),
            )
        )
        return moved
