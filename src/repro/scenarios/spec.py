"""Declarative, seedable scenario specifications.

A :class:`ScenarioSpec` describes one multi-programmed, dynamic-capacity
experiment: which SPEC95fp-style workload runs as the *subject*, which
co-runner jobs arrive and depart (each seizing a slice of physical memory
while resident), and how the host revokes and restores capacity over
time.  Specs are frozen, hashable, and serialize losslessly through
``to_dict``/``from_dict`` so the harness ``ResultStore`` can rehydrate
them byte-identically.

Time is measured in *beats* — phase boundaries of the simulated program
(each warm-up and measured phase crossing is one beat).  Everything that
happens in a scenario happens at a beat, which is what makes serial,
parallel, and resumed campaign runs of the same seeded scenario
bit-identical.

``compile_churn`` lowers a spec into the flat :class:`ChurnSchedule` the
engine executes; the lowering is a pure function of the spec, so the
schedule never needs to be stored.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Iterable

from repro.scenarios.churn import ChurnAction, ChurnSchedule


@dataclass(frozen=True)
class JobSpec:
    """One co-runner: arrives at a beat, seizes frames, departs, releases.

    The job models a competing address space the way the PR-1 fault
    layer's pressure adversary did, but as a first-class scheduled entity
    rather than a random oscillation: ``frames`` are seized at
    ``arrive_beat`` (skewed toward low colors by ``color_skew``, the
    worst case for a colored subject) and released at ``depart_beat``.
    Beat 0 fires *before* the subject initializes, so a job arriving at
    beat 0 constrains the capacity the program starts under.

    ``frames`` >= 1 is an absolute count; a value in (0, 1) is a fraction
    of the machine's total physical frames, resolved at run time — so one
    spec stays meaningful across machine scales.
    """

    name: str
    arrive_beat: int
    depart_beat: int
    frames: float
    #: 0.0 → uniform over colors; 1.0 → concentrated on low colors.
    color_skew: float = 0.0

    def __post_init__(self) -> None:
        if self.arrive_beat < 0:
            raise ValueError(f"job {self.name!r}: arrive_beat must be >= 0")
        if self.depart_beat <= self.arrive_beat:
            raise ValueError(
                f"job {self.name!r}: depart_beat must be > arrive_beat"
            )
        if self.frames <= 0:
            raise ValueError(f"job {self.name!r}: frames must be > 0")
        if not 0.0 <= self.color_skew <= 1.0:
            raise ValueError(f"job {self.name!r}: color_skew must be in [0, 1]")

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "arrive_beat": self.arrive_beat,
            "depart_beat": self.depart_beat,
            "frames": self.frames,
            "color_skew": self.color_skew,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "JobSpec":
        return cls(**data)


@dataclass(frozen=True)
class CapacityEvent:
    """The host changes physical-memory capacity at a beat.

    ``delta_frames`` < 0 revokes capacity (color-aware victim selection
    drains the richest colors first); > 0 restores previously revoked
    frames.  A magnitude in (0, 1) is a fraction of total physical
    frames, resolved at run time.  Revocation is a first-class event, not
    a fault: it succeeds partially when memory is tight and the shortfall
    is recorded, never raised.
    """

    beat: int
    delta_frames: float

    def __post_init__(self) -> None:
        if self.beat < 0:
            raise ValueError("capacity event beat must be >= 0")
        if self.delta_frames == 0:
            raise ValueError("capacity event delta_frames must be nonzero")

    def to_dict(self) -> dict[str, Any]:
        return {"beat": self.beat, "delta_frames": self.delta_frames}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "CapacityEvent":
        return cls(**data)


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete churn scenario: subject workload + jobs + capacity events."""

    name: str
    #: Registered workload label the subject runs (see ``repro.workloads``).
    workload: str = "swim"
    seed: int = 0
    jobs: tuple[JobSpec, ...] = ()
    capacity_events: tuple[CapacityEvent, ...] = ()
    #: Wrap the schedule every this many beats (0 → play once).
    repeat_beats: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario name must be nonempty")
        if self.seed < 0:
            raise ValueError("scenario seed must be >= 0")
        if self.repeat_beats < 0:
            raise ValueError("repeat_beats must be >= 0")
        names = [job.name for job in self.jobs]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate job names in scenario {self.name!r}")

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "workload": self.workload,
            "seed": self.seed,
            "jobs": [job.to_dict() for job in self.jobs],
            "capacity_events": [ev.to_dict() for ev in self.capacity_events],
            "repeat_beats": self.repeat_beats,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ScenarioSpec":
        return cls(
            name=data["name"],
            workload=data.get("workload", "swim"),
            seed=data.get("seed", 0),
            jobs=tuple(JobSpec.from_dict(j) for j in data.get("jobs", ())),
            capacity_events=tuple(
                CapacityEvent.from_dict(e)
                for e in data.get("capacity_events", ())
            ),
            repeat_beats=data.get("repeat_beats", 0),
        )


def compile_churn(spec: ScenarioSpec) -> ChurnSchedule:
    """Lower a scenario into the flat per-beat schedule the engine runs.

    Pure function of the spec: job arrivals become ``seize`` actions,
    departures ``release``, capacity shrinks ``revoke`` and growths
    ``restore``.  Actions at the same beat execute in a fixed order —
    departures, restores, arrivals, revocations — so freed capacity is
    visible to same-beat demand and the hardest case (revocation) lands
    last.
    """
    departures: list[ChurnAction] = []
    restores: list[ChurnAction] = []
    arrivals: list[ChurnAction] = []
    revocations: list[ChurnAction] = []
    for job in spec.jobs:
        arrivals.append(
            ChurnAction(job.arrive_beat, "seize", job.frames, job.color_skew)
        )
        departures.append(
            ChurnAction(job.depart_beat, "release", job.frames, job.color_skew)
        )
    for event in spec.capacity_events:
        if event.delta_frames < 0:
            revocations.append(
                ChurnAction(event.beat, "revoke", -event.delta_frames, 0.0)
            )
        else:
            restores.append(
                ChurnAction(event.beat, "restore", event.delta_frames, 0.0)
            )
    ordered = tuple(
        sorted(
            departures + restores + arrivals + revocations,
            key=lambda a: (
                a.beat,
                ("release", "restore", "seize", "revoke").index(a.op),
            ),
        )
    )
    return ChurnSchedule(
        actions=ordered, seed=spec.seed, repeat_beats=spec.repeat_beats
    )


def generate_scenario(
    name: str,
    *,
    workload: str = "swim",
    seed: int = 0,
    num_jobs: int = 2,
    beats: int = 8,
    frames_per_job: float = 0.2,
    revoke_fraction: float = 0.35,
) -> ScenarioSpec:
    """Generate a seeded random churn scenario.

    Jobs arrive and depart at beats drawn from ``random.Random(seed)``;
    the schedule also shrinks capacity by ``revoke_fraction`` of total
    frames mid-run and restores it later.  Fractional sizes keep the
    generated scenario meaningful on any machine scale.  The same (name,
    seed, knobs) always yields the same spec.
    """
    if beats < 2:
        raise ValueError("beats must be >= 2")
    rng = random.Random(seed)
    jobs = []
    for index in range(num_jobs):
        arrive = rng.randrange(0, beats - 1)
        depart = rng.randrange(arrive + 1, beats + 1)
        jobs.append(
            JobSpec(
                name=f"job{index}",
                arrive_beat=arrive,
                depart_beat=depart,
                frames=frames_per_job,
                color_skew=round(rng.uniform(0.0, 1.0), 3),
            )
        )
    events = []
    if revoke_fraction > 0:
        shrink_beat = rng.randrange(1, max(2, beats // 2 + 1))
        grow_beat = rng.randrange(shrink_beat + 1, beats + 2)
        events.append(
            CapacityEvent(beat=shrink_beat, delta_frames=-revoke_fraction)
        )
        events.append(
            CapacityEvent(beat=grow_beat, delta_frames=revoke_fraction)
        )
    return ScenarioSpec(
        name=name,
        workload=workload,
        seed=seed,
        jobs=tuple(jobs),
        capacity_events=tuple(events),
    )


def preset(name: str) -> ScenarioSpec:
    """Named scenario presets for the CLI and CI smoke job.

    ``smoke`` is the hostile-but-small schedule CI runs end to end: a
    co-runner squatting on the low colors from *before* initialization
    (beat 0 fires pre-init), a mid-run revocation deep enough to force
    evictions of mapped pages, and a late restore — every churn path in
    one short run.  ``churn`` is a larger generated multi-job schedule.
    """
    if name == "smoke":
        return ScenarioSpec(
            name="smoke",
            workload="swim",
            seed=7,
            jobs=(
                JobSpec(
                    name="coworker",
                    arrive_beat=0,
                    depart_beat=7,
                    frames=0.45,
                    color_skew=0.9,
                ),
            ),
            capacity_events=(
                CapacityEvent(beat=2, delta_frames=-0.35),
                CapacityEvent(beat=5, delta_frames=0.35),
            ),
        )
    if name == "churn":
        return generate_scenario(
            "churn",
            workload="swim",
            seed=11,
            num_jobs=3,
            beats=10,
            frames_per_job=0.18,
            revoke_fraction=0.35,
        )
    raise KeyError(
        f"unknown scenario preset {name!r} (have: smoke, churn)"
    )


PRESETS: tuple[str, ...] = ("smoke", "churn")


def iter_presets() -> Iterable[tuple[str, ScenarioSpec]]:
    for name in PRESETS:
        yield name, preset(name)


def coerce_spec(value: "ScenarioSpec | dict[str, Any] | str") -> ScenarioSpec:
    """Accept a spec, its dict form, or a preset name."""
    if isinstance(value, ScenarioSpec):
        return value
    if isinstance(value, dict):
        return ScenarioSpec.from_dict(value)
    if isinstance(value, str):
        return preset(value)
    raise TypeError(
        f"expected ScenarioSpec, dict, or preset name; got {type(value).__name__}"
    )
