"""Crash-safe scenario execution across the comparison modes.

One scenario runs the same workload under the same churn schedule in
three modes — the comparison the paper never measured:

* ``cdpc-adaptive`` — the static compile-time plan delivered via madvise,
  watched by the hint-honor watchdog, *re-planned* transactionally when
  churn collapses the honor rate;
* ``dynamic-recolor`` — the same plan, but a watchdog trip abandons the
  hints and hands over to the Section 2.1 miss-counter recolorer;
* ``bin-hopping`` — the Digital-UNIX native policy, no plan at all.

Each mode is one picklable ``(workload, config, options)`` task on the
``repro.harness`` campaign orchestrator, so scenarios inherit the full
durability story: atomic fingerprint-keyed result storage, resume after
SIGKILL, retries, and task-order determinism (a parallel run returns the
same results as a serial one).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.harness.campaign import Campaign, CampaignOptions
from repro.machine.config import MachineConfig
from repro.scenarios.spec import ScenarioSpec, compile_churn
from repro.sim.engine import EngineOptions
from repro.sim.results import RunResult
from repro.sim.sweeps import Task, run_task_campaign

#: The three modes every scenario compares.  ``page_coloring`` +
#: ``madvise`` delivery for the two CDPC modes so the hint table is live
#: (and re-installable); the watchdog threshold is deliberately shared so
#: the *response* to honor-rate collapse is the only variable.
SCENARIO_MODES: dict[str, dict] = {
    "cdpc-adaptive": {
        "policy": "page_coloring",
        "cdpc": True,
        "cdpc_delivery": "madvise",
        "hint_watchdog": 0.6,
        "adaptive_cdpc": True,
    },
    "dynamic-recolor": {
        "policy": "page_coloring",
        "cdpc": True,
        "cdpc_delivery": "madvise",
        "hint_watchdog": 0.6,
        "adaptive_cdpc": False,
    },
    "bin-hopping": {
        "policy": "bin_hopping",
    },
}


def scenario_tasks(
    spec: ScenarioSpec,
    config: MachineConfig,
    options: Optional[EngineOptions] = None,
    modes: Optional[dict[str, dict]] = None,
) -> tuple[list[str], list[Task]]:
    """Materialize one campaign task per comparison mode.

    The scenario's churn schedule is compiled once (a pure function of
    the spec) and embedded in every task's options, so the task tuple
    fully describes the run — the harness fingerprint covers workload,
    machine, mode *and* churn, and identical scenarios share stored
    results.
    """
    schedule = compile_churn(spec)
    base = options or EngineOptions()
    # Enough measured epochs that every scheduled beat actually fires
    # (beats = warmup phases + epochs * measured phases; horizon + 2 is a
    # safe overshoot for single-phase windows), unless the caller asked
    # for more.
    epochs = max(base.epochs, schedule.horizon + 2)
    base = replace(base, churn=schedule, seed=spec.seed, epochs=epochs)
    labeled = modes or SCENARIO_MODES
    labels = list(labeled.keys())
    tasks: list[Task] = [
        (spec.workload, config, replace(base, **overrides))
        for overrides in labeled.values()
    ]
    return labels, tasks


@dataclass
class ScenarioReport:
    """Per-mode outcomes of one scenario, plus the campaign that ran it."""

    spec: ScenarioSpec
    results: dict[str, RunResult] = field(default_factory=dict)
    campaign: Optional[Campaign] = None

    def honor_rates(self) -> dict[str, float]:
        return {
            label: result.hint_honor_rate
            for label, result in self.results.items()
        }

    def mcpi(self) -> dict[str, float]:
        """Misses per thousand instructions, the paper's cost currency."""
        return {label: result.mcpi() for label, result in self.results.items()}

    def wall_ns(self) -> dict[str, float]:
        return {label: result.wall_ns for label, result in self.results.items()}

    def degradation_summary(self) -> dict[str, dict]:
        return {
            label: result.degradation.to_dict()
            for label, result in self.results.items()
            if result.degradation is not None
        }

    def churn_events(self, label: Optional[str] = None) -> list[dict]:
        """Capacity-churn events of one mode (default: the first)."""
        if not self.results:
            return []
        if label is None:
            label = next(iter(self.results))
        degradation = self.results[label].degradation
        if degradation is None:
            return []
        return [
            event
            for event in degradation.events
            if event.get("kind") in ("churn", "capacity_revoked",
                                     "capacity_restored")
        ]

    def figure(self, width: int = 40) -> str:
        """The churn figure: honor rate and MCPI per mode, plus timeline."""
        from repro.analysis.churn_report import churn_figure

        return churn_figure(self, width=width)

    def to_dict(self) -> dict:
        payload: dict = {
            "scenario": self.spec.to_dict(),
            "honor_rates": self.honor_rates(),
            "mcpi": self.mcpi(),
            "degradation": self.degradation_summary(),
            "results": {
                label: result.to_dict()
                for label, result in self.results.items()
            },
        }
        if self.campaign is not None:
            payload["campaign"] = self.campaign.report.to_dict()
        return payload


def run_scenario(
    spec: ScenarioSpec,
    config: MachineConfig,
    options: Optional[EngineOptions] = None,
    modes: Optional[dict[str, dict]] = None,
    max_workers: Optional[int] = None,
    campaign: Optional[CampaignOptions] = None,
) -> ScenarioReport:
    """Run one scenario across the comparison modes under the harness.

    Graceful by default when ``campaign`` options are provided (failed
    modes are absent from ``results`` and visible in the campaign
    report); fail-fast otherwise, matching the sweep helpers.
    """
    labels, tasks = scenario_tasks(spec, config, options=options, modes=modes)
    outcome = run_task_campaign(tasks, max_workers=max_workers, campaign=campaign)
    results = {
        label: result
        for label, result in zip(labels, outcome.results)
        if result is not None
    }
    return ScenarioReport(spec=spec, results=results, campaign=outcome)
