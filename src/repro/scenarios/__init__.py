"""Multi-programmed, dynamic-capacity scenario suite.

The paper evaluates CDPC on a dedicated machine; this package models the
hostile conditions a production coloring service actually meets — co-
scheduled jobs arriving and departing, the host revoking and restoring
physical-memory capacity — and runs the policy comparison the paper never
measured: static CDPC with adaptive re-planning vs dynamic recoloring vs
bin hopping, under churn.

* :mod:`repro.scenarios.spec` — the declarative, seedable scenario DSL
  (:class:`ScenarioSpec`, :class:`JobSpec`, :class:`CapacityEvent`),
  generator and presets;
* :mod:`repro.scenarios.churn` — the lowered per-beat schedule
  (:class:`ChurnSchedule`) and its executor (:class:`ChurnDriver`);
* :mod:`repro.scenarios.runner` — crash-safe campaign execution of a
  scenario across the comparison modes, and the churn figure family.
"""

from repro.scenarios.churn import ChurnAction, ChurnDriver, ChurnSchedule
from repro.scenarios.runner import (
    SCENARIO_MODES,
    ScenarioReport,
    run_scenario,
    scenario_tasks,
)
from repro.scenarios.spec import (
    PRESETS,
    CapacityEvent,
    JobSpec,
    ScenarioSpec,
    coerce_spec,
    compile_churn,
    generate_scenario,
    iter_presets,
    preset,
)

__all__ = [
    "CapacityEvent",
    "ChurnAction",
    "ChurnDriver",
    "ChurnSchedule",
    "JobSpec",
    "PRESETS",
    "SCENARIO_MODES",
    "ScenarioReport",
    "ScenarioSpec",
    "coerce_spec",
    "compile_churn",
    "generate_scenario",
    "iter_presets",
    "preset",
    "run_scenario",
    "scenario_tasks",
]
