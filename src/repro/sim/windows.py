"""Representative execution windows (Section 3.2) and sampling plans.

Full SPEC95fp runs are far too long to simulate in detail, so the paper
simulates a *representative execution window*: a slice of the steady state
containing each phase at least once, with per-phase statistics weighted by
the phase's occurrence count in the full steady state, and the first
(cold) execution of each phase discarded.  This module provides that
windowing plus the variation check used to validate that phases behave
consistently across occurrences.

It also provides the *access-vector sampling plan* behind
``EngineOptions.sampling="access_vector"`` — the second level of the same
idea, in the spirit of *Memory Access Vectors* (arXiv 2506.02344).  Where
the phase window exploits repetition *across* phase occurrences, the
sampling plan exploits repetition *within* a reference stream: fixed-size
trace windows are fingerprinted by a quantized per-color / per-set access
vector, windows with equal fingerprints are clustered, and the engine
simulates only one representative (plus one validator) per cluster,
replaying the representative's measured statistics delta for the rest.
:func:`occurrence_variation` — the paper's own variation statistic — is
reused to turn the leader/validator disagreement into the reported error
bound.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.compiler.ir import Phase, Program


@dataclass(frozen=True)
class PhaseWindow:
    """A steady-state window: warmup pass + weighted measured phases."""

    warmup: tuple[Phase, ...]
    measured: tuple[Phase, ...]
    weights: tuple[int, ...]

    @property
    def total_occurrences(self) -> int:
        return sum(self.weights)

    def weight_of(self, phase: Phase) -> int:
        for candidate, weight in zip(self.measured, self.weights):
            if candidate is phase:
                return weight
        raise KeyError(phase.name)


def representative_window(program: Program) -> PhaseWindow:
    """Window containing each phase once, weighted by its occurrences.

    The warmup pass runs every phase once with statistics discarded,
    eliminating cold misses and other transient effects exactly as the
    paper discards the first phases executed with the detailed simulator.
    """
    phases = program.phases
    return PhaseWindow(
        warmup=tuple(phases),
        measured=tuple(phases),
        weights=tuple(phase.occurrences for phase in phases),
    )


# ----------------------------------------------------------------------
# Access-vector sampling plans

#: Roles a trace window can play in a sampling plan.
ROLE_FORCED = 0  #: must simulate (carries slow references, or partial tail)
ROLE_LEADER = 1  #: first window of its cluster — simulate and record delta
ROLE_SKIP = 2  #: replay the last recorded delta instead of simulating
ROLE_VALIDATOR = 3  #: re-simulation: refreshes the delta and contributes
#: an independent sample to the cluster's error bound
ROLE_WARM = 4  #: simulates to re-warm cache state after a run of skips,
#: but its (staleness-distorted) measurements are *replaced* by the
#: cluster's recorded delta, so only fresh-state windows enter results

#: Cluster members cycle through ``REFRESH - 2`` skips, one warm window
#: and one validator.  Skipped windows leave cache/TLB state frozen, so
#: the first window simulated after a skip run measures distorted
#: (stale-state) statistics; the warm window absorbs that distortion and
#: discards its measurements, leaving the validator to measure — and
#: re-record — the cluster delta against honestly warmed state.  Four
#: (two skips per cycle) keeps the worst-case MCPI error under 5% on the
#: Figure 6 workloads at 2-4 processors across all three policies;
#: longer cycles skip more but let adaptively-recolored (CDPC) runs
#: drift past that budget.
REFRESH = 4

#: Cache-set buckets of the access-vector fingerprint.  Coarser than the
#: real set count on purpose: the fingerprint should match windows whose
#: *distribution* over the cache is the same, not demand identical
#: addresses.
_SET_BUCKETS = 32
#: Quantization levels for each histogram bin and for the write/instruction
#: fractions (a 1/16 shift in any component splits the cluster).
_QUANT = 16


@dataclass(frozen=True)
class WindowPlan:
    """Sampling plan for one reference stream.

    Windows are fixed-size, non-overlapping slices of ``window``
    references.  ``clusters[w]`` is the window's access-vector cluster
    (``-1`` for forced-simulate windows) and ``roles[w]`` one of the
    ``ROLE_*`` constants.  Leaders always precede their cluster's skip
    and validator windows in stream order, so by the time the engine
    reaches a skippable window the representative's statistics delta has
    already been measured in the same loop execution.
    """

    window: int
    starts: tuple[int, ...]
    ends: tuple[int, ...]
    clusters: tuple[int, ...]
    roles: tuple[int, ...]
    num_clusters: int

    @property
    def num_windows(self) -> int:
        return len(self.starts)

    def skippable_windows(self) -> int:
        return sum(1 for role in self.roles if role == ROLE_SKIP)


def access_vector_plan(
    trace, window: int, line_size: int, page_size: int, num_colors: int
) -> WindowPlan:
    """Cluster one trace's windows by quantized access-vector signature.

    The signature of a window is the pair of quantized histograms of its
    references over cache-set buckets and over page colors, plus its
    write and instruction fractions — the per-color/per-set access
    vector — extended with two translation-invariant shape components:
    the quantized histogram of successive address deltas (sign and log
    magnitude, which separates unit-stride sweeps from FFT-style strided
    or transposed traversals) and the window's distinct-page footprint.
    The shape components matter for multi-resolution workloads (mgrid's
    grid levels, turb3d's transposes): their windows can have
    near-identical color histograms while touching working sets of very
    different sizes and strides, and clustering those together replays
    deltas from the wrong regime.  Windows carrying slow-path references
    (prefetch carriers, instruction writes) and the partial tail window
    are never clustered: they always simulate, so sampling degrades to
    exact simulation when a stream has no exploitable repetition.

    The plan is memoized on the trace (keyed by window and geometry),
    exactly like ``CpuTrace.ref_stream`` memoizes its column view, so
    the trace cache amortizes plan construction across runs.
    """
    key = (window, line_size, page_size, num_colors, REFRESH)
    cached = trace.__dict__.get("_window_plan")
    if cached is not None and cached[0] == key:
        return cached[1]
    addrs = trace.addrs
    flags = trace.flags
    n = len(addrs)
    writes = (flags & 1) != 0
    instr = (flags & 2) != 0
    slow = writes & instr
    if trace.prefetch is not None:
        slow = slow | (trace.prefetch != 0)
    set_bucket = (addrs // line_size) % _SET_BUCKETS
    color_buckets = max(1, min(num_colors, _SET_BUCKETS))
    color_bucket = (addrs // page_size) % color_buckets

    starts: list[int] = []
    ends: list[int] = []
    clusters: list[int] = []
    roles: list[int] = []
    by_signature: dict[tuple, int] = {}
    member_counts: dict[int, int] = {}
    members: dict[int, list[int]] = {}
    for s in range(0, n, window):
        e = min(s + window, n)
        starts.append(s)
        ends.append(e)
        if e - s < window or bool(slow[s:e].any()):
            clusters.append(-1)
            roles.append(ROLE_FORCED)
            continue
        span = e - s
        set_hist = np.bincount(set_bucket[s:e], minlength=_SET_BUCKETS)
        color_hist = np.bincount(color_bucket[s:e], minlength=color_buckets)
        diffs = np.diff(addrs[s:e])
        magnitude = np.minimum(
            np.log2(np.abs(diffs) + 1).astype(np.int64), 15
        )
        delta_hist = np.bincount(
            np.where(diffs < 0, magnitude + 16, magnitude), minlength=32
        )
        signature = (
            tuple((set_hist * _QUANT // span).tolist()),
            tuple((color_hist * _QUANT // span).tolist()),
            tuple((delta_hist * _QUANT // max(1, span - 1)).tolist()),
            int(np.unique(addrs[s:e] // page_size).size),
            int(writes[s:e].sum()) * _QUANT // span,
            int(instr[s:e].sum()) * _QUANT // span,
        )
        cid = by_signature.setdefault(signature, len(by_signature))
        member = member_counts.get(cid, 0)
        member_counts[cid] = member + 1
        clusters.append(cid)
        members.setdefault(cid, []).append(len(roles))
        if member == 0:
            roles.append(ROLE_LEADER)
        else:
            beat = (member - 1) % REFRESH
            if beat < REFRESH - 2:
                roles.append(ROLE_SKIP)
            elif beat == REFRESH - 2:
                roles.append(ROLE_WARM)
            else:
                roles.append(ROLE_VALIDATOR)
    # Every replaying cluster must *end* with a fresh check: a cluster
    # whose last members are skips (or a warm window, whose measurement
    # is discarded) would replay into the run total with no chance to
    # detect that the stream drifted away from the recorded delta — the
    # failure mode of turb3d's transpose phases, where the last windows
    # of a cluster belong to a different traversal regime than the
    # first.  Promote the final member to a validator, preceded by a
    # warm window when it would otherwise measure stale (post-replay)
    # state.
    for wins in members.values():
        if len(wins) < 3:
            continue
        last = wins[-1]
        if roles[last] in (ROLE_SKIP, ROLE_WARM):
            roles[last] = ROLE_VALIDATOR
            if roles[wins[-2]] == ROLE_SKIP:
                roles[wins[-2]] = ROLE_WARM
    # Forced windows keep their measurements verbatim — they are never
    # snapshotted, substituted or bounded — so they must never run
    # against stale (post-replay) cache state.  Re-warm first: a skip
    # window directly ahead of a forced window becomes a warm window.
    for w in range(1, len(roles)):
        if roles[w] == ROLE_FORCED and roles[w - 1] == ROLE_SKIP:
            roles[w - 1] = ROLE_WARM
    plan = WindowPlan(
        window=window,
        starts=tuple(starts),
        ends=tuple(ends),
        clusters=tuple(clusters),
        roles=tuple(roles),
        num_clusters=len(by_signature),
    )
    trace.__dict__["_window_plan"] = (key, plan)
    return plan


def occurrence_variation(values: Sequence[float]) -> tuple[float, float, float]:
    """Mean, standard deviation and coefficient of variation of a metric.

    Used to validate the representative-window assumption: the paper found
    the per-occurrence instruction counts and miss rates of every phase
    (except one wave5 phase) vary by less than 1% of the mean.
    """
    if not values:
        raise ValueError("need at least one sample")
    mean = sum(values) / len(values)
    if len(values) == 1:
        return mean, 0.0, 0.0
    variance = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
    std = math.sqrt(variance)
    cv = std / mean if mean else 0.0
    return mean, std, cv
