"""Representative execution windows (Section 3.2).

Full SPEC95fp runs are far too long to simulate in detail, so the paper
simulates a *representative execution window*: a slice of the steady state
containing each phase at least once, with per-phase statistics weighted by
the phase's occurrence count in the full steady state, and the first
(cold) execution of each phase discarded.  This module provides that
windowing plus the variation check used to validate that phases behave
consistently across occurrences.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.compiler.ir import Phase, Program


@dataclass(frozen=True)
class PhaseWindow:
    """A steady-state window: warmup pass + weighted measured phases."""

    warmup: tuple[Phase, ...]
    measured: tuple[Phase, ...]
    weights: tuple[int, ...]

    @property
    def total_occurrences(self) -> int:
        return sum(self.weights)

    def weight_of(self, phase: Phase) -> int:
        for candidate, weight in zip(self.measured, self.weights):
            if candidate is phase:
                return weight
        raise KeyError(phase.name)


def representative_window(program: Program) -> PhaseWindow:
    """Window containing each phase once, weighted by its occurrences.

    The warmup pass runs every phase once with statistics discarded,
    eliminating cold misses and other transient effects exactly as the
    paper discards the first phases executed with the detailed simulator.
    """
    phases = program.phases
    return PhaseWindow(
        warmup=tuple(phases),
        measured=tuple(phases),
        weights=tuple(phase.occurrences for phase in phases),
    )


def occurrence_variation(values: Sequence[float]) -> tuple[float, float, float]:
    """Mean, standard deviation and coefficient of variation of a metric.

    Used to validate the representative-window assumption: the paper found
    the per-occurrence instruction counts and miss rates of every phase
    (except one wave5 phase) vary by less than 1% of the mean.
    """
    if not values:
        raise ValueError("need at least one sample")
    mean = sum(values) / len(values)
    if len(values) == 1:
        return mean, 0.0, 0.0
    variance = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
    std = math.sqrt(variance)
    cv = std / mean if mean else 0.0
    return mean, std, cv
