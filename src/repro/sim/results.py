"""Run results: the measured quantities behind every figure and table."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.machine.config import MachineConfig
from repro.machine.stats import OVERHEAD_CATEGORIES, CpuStats, MachineStats, MissKind
from repro.robustness.degradation import DegradationReport


def add_scaled_cpu_stats(dst: CpuStats, src: CpuStats, weight: float) -> None:
    """Accumulate ``weight`` copies of ``src`` into ``dst``."""
    dst.instructions += int(src.instructions * weight)
    dst.l1d_hits += int(src.l1d_hits * weight)
    dst.l1d_misses += int(src.l1d_misses * weight)
    dst.l1i_hits += int(src.l1i_hits * weight)
    dst.l1i_misses += int(src.l1i_misses * weight)
    dst.l2_hits += int(src.l2_hits * weight)
    dst.tlb_misses += int(src.tlb_misses * weight)
    dst.prefetches_issued += int(src.prefetches_issued * weight)
    dst.prefetches_dropped_tlb += int(src.prefetches_dropped_tlb * weight)
    dst.prefetches_useful += int(src.prefetches_useful * weight)
    dst.prefetch_stalls += int(src.prefetch_stalls * weight)
    dst.prefetch_stall_ns += src.prefetch_stall_ns * weight
    dst.l1_stall_ns += src.l1_stall_ns * weight
    dst.busy_ns += src.busy_ns * weight
    for kind in MissKind:
        dst.l2_misses[kind] += int(src.l2_misses[kind] * weight)
        dst.l2_stall_ns[kind] += src.l2_stall_ns[kind] * weight
    for name in OVERHEAD_CATEGORIES:
        dst.overhead_ns[name] += src.overhead_ns[name] * weight


def add_scaled_stats(dst: MachineStats, src: MachineStats, weight: float) -> None:
    for dst_cpu, src_cpu in zip(dst.cpus, src.cpus):
        add_scaled_cpu_stats(dst_cpu, src_cpu, weight)


def copy_cpu_stats(src: CpuStats) -> CpuStats:
    """Deep snapshot of one processor's counters.

    Used by the access-vector sampler to snapshot a CPU's statistics at a
    window boundary; :func:`subtract_cpu_stats` against a later snapshot
    yields the window's delta.
    """
    snap = CpuStats()
    add_scaled_cpu_stats(snap, src, 1.0)
    return snap


def subtract_cpu_stats(a: CpuStats, b: CpuStats) -> CpuStats:
    """Per-field difference ``a - b`` (``b`` is an earlier snapshot)."""
    delta = CpuStats()
    delta.instructions = a.instructions - b.instructions
    delta.l1d_hits = a.l1d_hits - b.l1d_hits
    delta.l1d_misses = a.l1d_misses - b.l1d_misses
    delta.l1i_hits = a.l1i_hits - b.l1i_hits
    delta.l1i_misses = a.l1i_misses - b.l1i_misses
    delta.l2_hits = a.l2_hits - b.l2_hits
    delta.tlb_misses = a.tlb_misses - b.tlb_misses
    delta.prefetches_issued = a.prefetches_issued - b.prefetches_issued
    delta.prefetches_dropped_tlb = (
        a.prefetches_dropped_tlb - b.prefetches_dropped_tlb
    )
    delta.prefetches_useful = a.prefetches_useful - b.prefetches_useful
    delta.prefetch_stalls = a.prefetch_stalls - b.prefetch_stalls
    delta.prefetch_stall_ns = a.prefetch_stall_ns - b.prefetch_stall_ns
    delta.l1_stall_ns = a.l1_stall_ns - b.l1_stall_ns
    delta.busy_ns = a.busy_ns - b.busy_ns
    for kind in MissKind:
        delta.l2_misses[kind] = a.l2_misses[kind] - b.l2_misses[kind]
        delta.l2_stall_ns[kind] = a.l2_stall_ns[kind] - b.l2_stall_ns[kind]
    for name in OVERHEAD_CATEGORIES:
        delta.overhead_ns[name] = a.overhead_ns[name] - b.overhead_ns[name]
    return delta


@dataclass
class PhaseResult:
    """Raw (unweighted) measurements for one phase execution."""

    name: str
    occurrences: int
    stats: MachineStats
    wall_ns: float
    bus_busy_ns: dict[str, float]


@dataclass
class RunResult:
    """Weighted steady-state measurements for one benchmark run."""

    workload: str
    policy: str
    num_cpus: int
    config: MachineConfig
    cdpc: bool = False
    prefetch: bool = False
    aligned: bool = True
    stats: MachineStats = field(default_factory=lambda: MachineStats.for_cpus(1))
    wall_ns: float = 0.0
    init_ns: float = 0.0
    bus_busy_ns: dict[str, float] = field(default_factory=dict)
    phases: list[PhaseResult] = field(default_factory=list)
    hint_honor_rate: float = 1.0
    #: External-cache misses attributed to each array (plus "instructions"
    #: and "other"), unweighted and including warmup — a diagnostic for
    #: which data structures drive the misses.
    array_misses: dict[str, int] = field(default_factory=dict)
    #: Graceful-degradation accounting: reclaims, watchdog trips, aborted
    #: recolor steps, fallback-distance histogram (None when the run was
    #: produced without the engine, e.g. hand-built in tests).
    degradation: Optional[DegradationReport] = None
    #: Observability report (``{"metrics": <registry snapshot>,
    #: "trace_events": [...]}``) when the run was executed with
    #: ``EngineOptions.obs`` enabled, else ``None``.  Deliberately
    #: excluded from :meth:`to_dict`: it carries wall-clock timings, and
    #: ``to_dict`` is the bit-identity contract between the fast and
    #: reference engine paths.
    obs: Optional[dict] = None
    #: Sampled-simulation report (window/cluster counts, extrapolated miss
    #: total and its error bound) when the run used
    #: ``EngineOptions.sampling``; ``None`` for exact runs.  Exact runs
    #: therefore keep ``to_dict()`` bit-identical across engine paths.
    sampling: Optional[dict] = None
    #: The symbolic :class:`repro.checker.StaticMissProfile` this run was
    #: cross-validated against when ``EngineOptions.static_check`` was on;
    #: ``None`` otherwise.  Excluded from :meth:`to_dict` (it carries
    #: analyzer wall-clock time, and ``to_dict`` is the bit-identity
    #: contract between the fast and reference engine paths).
    static_check: Optional[object] = None

    # ------------------------------------------------------------------
    # Figure 2 quantities

    @property
    def combined_execution_ns(self) -> float:
        """Sum of per-processor execution time (Figure 2, first graph)."""
        return self.stats.combined_execution_ns()

    def overhead_breakdown_ns(self) -> dict[str, float]:
        """Combined overhead by category (Figure 2, second graph)."""
        return self.stats.combined_overhead_ns()

    def mcpi(self) -> float:
        """Average memory cycles per instruction (Figure 2, third graph)."""
        return self.stats.mean_mcpi()

    def mcpi_breakdown(self) -> dict[str, float]:
        """MCPI by stall source, averaged over active processors."""
        parts: dict[str, float] = {}
        active = [cpu for cpu in self.stats.cpus if cpu.instructions]
        if not active:
            return parts
        for cpu in active:
            for key, value in cpu.mcpi_breakdown().items():
                parts[key] = parts.get(key, 0.0) + value / len(active)
        return parts

    def bus_utilization(self) -> float:
        """Fraction of the run the bus was busy (Figure 2, fourth graph)."""
        if self.wall_ns <= 0:
            return 0.0
        return min(1.0, sum(self.bus_busy_ns.values()) / self.wall_ns)

    def bus_utilization_breakdown(self) -> dict[str, float]:
        if self.wall_ns <= 0:
            return {k: 0.0 for k in self.bus_busy_ns}
        return {k: v / self.wall_ns for k, v in self.bus_busy_ns.items()}

    # ------------------------------------------------------------------
    # Miss accounting

    def misses(self, kind: MissKind) -> int:
        return self.stats.total_misses(kind)

    def replacement_misses(self) -> int:
        return self.misses(MissKind.CAPACITY) + self.misses(MissKind.CONFLICT)

    def communication_misses(self) -> int:
        return self.misses(MissKind.TRUE_SHARING) + self.misses(MissKind.FALSE_SHARING)

    def miss_breakdown(self) -> dict[str, int]:
        return self.stats.miss_breakdown()

    # ------------------------------------------------------------------
    # Timing

    def measured_time_s(self, steady_state_repeats: float = 1.0) -> float:
        """Projected full-run time in seconds on the modeled machine.

        The steady-state window time is multiplied by the workload's
        repeat factor and by the geometric scale factor (a 1/16-scale data
        set takes ~1/16 the sweep time of the full one).
        """
        return (
            self.wall_ns * steady_state_repeats * self.config.scale_factor / 1e9
        )

    def speedup_over(self, baseline: "RunResult") -> float:
        """Wall-clock speedup of this run relative to ``baseline``."""
        if self.wall_ns <= 0:
            raise ValueError("run has no measured time")
        return baseline.wall_ns / self.wall_ns

    def to_dict(self) -> dict:
        """Serializable summary (JSON-friendly) of the run.

        Used by the CLI's ``--json`` flag and by downstream tooling that
        wants to archive experiment results without pickling simulator
        objects.
        """
        return {
            "workload": self.workload,
            "policy": self.policy,
            "num_cpus": self.num_cpus,
            "cdpc": self.cdpc,
            "prefetch": self.prefetch,
            "aligned": self.aligned,
            "scale_factor": self.config.scale_factor,
            "wall_ns": self.wall_ns,
            "init_ns": self.init_ns,
            "combined_execution_ns": self.combined_execution_ns,
            "mcpi": self.mcpi(),
            "mcpi_breakdown": self.mcpi_breakdown(),
            "misses": self.miss_breakdown(),
            "replacement_misses": self.replacement_misses(),
            "communication_misses": self.communication_misses(),
            "overheads_ns": self.overhead_breakdown_ns(),
            "bus_utilization": self.bus_utilization(),
            "bus_utilization_breakdown": self.bus_utilization_breakdown(),
            "hint_honor_rate": self.hint_honor_rate,
            "array_misses": dict(self.array_misses),
            "degradation": (
                self.degradation.to_dict() if self.degradation is not None else None
            ),
            "phases": [
                {"name": p.name, "occurrences": p.occurrences,
                 "wall_ns": p.wall_ns}
                for p in self.phases
            ],
            "sampling": self.sampling,
        }

    def label(self) -> str:
        tags = [self.policy]
        if self.cdpc:
            tags.append("cdpc")
        if self.prefetch:
            tags.append("pf")
        if not self.aligned:
            tags.append("unaligned")
        return f"{self.workload}@{self.num_cpus}cpu[{'+'.join(tags)}]"
