"""Memoization of generated reference streams (the trace cache).

Trace generation is pure: for a fixed (loop, schedule, layout, machine
geometry, simulation profile, prefetch plan, fraction scale) the numpy
streams :func:`repro.sim.tracegen.loop_traces` produces are bit-identical
every time.  The engine regenerates them constantly — once for the warmup
pass and once for the measured pass of every phase, once per occurrence in
:func:`measure_occurrence_variation`, and once per run in a policy sweep
even though page-mapping policy does not influence *virtual* address
streams at all.

This module provides a bounded LRU cache keyed by a full fingerprint of
every input that can change the generated stream.  Anything that alters
the trace — a different layout (e.g. ``aligned=False``), another
simulation profile, a phase occurrence with a different
``fraction_scale``, a different prefetch plan or processor count — lands
on a different key, so stale traces can never be returned; entries beyond
the capacity are evicted least-recently-used first.

Cached :class:`~repro.sim.tracegen.CpuTrace` objects are shared between
runs, which is safe because the engine treats traces as read-only (its
derived ``ref_stream`` columns are themselves memoized on the trace).

**Concurrency contract.**  The cache is thread-safe: all bookkeeping
(lookup, insertion, LRU reordering, eviction, counters) happens under one
lock, so the coloring service's batcher — which runs serial campaigns on
worker *threads* of one process — can share the process-wide default
cache without corrupting the LRU list or losing hit/miss accounting.
Trace *generation* runs outside the lock (it dominates the cost and must
not serialize independent misses); when two threads miss the same key
concurrently, both generate, the first insertion wins, and the loser's
identical result is discarded — wasted work, never a wrong answer.
Worker *processes* of a parallel sweep each hold their own copy, so
cross-process sharing never arises.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Optional

from repro.compiler.padding import Layout
from repro.compiler.parallelize import LoopSchedule
from repro.compiler.prefetch_pass import PrefetchPlan
from repro.machine.config import MachineConfig
from repro.sim.tracegen import CpuTrace, SimProfile

__all__ = [
    "TraceCache",
    "default_trace_cache",
    "layout_fingerprint",
    "plan_fingerprint",
    "trace_key",
]


def layout_fingerprint(layout: Layout) -> tuple:
    """Hashable identity of a layout: every base, size, and the alignment."""
    return (
        tuple(sorted(layout.bases.items())),
        tuple(sorted(layout.sizes.items())),
        layout.aligned,
        layout.total_bytes,
    )


def plan_fingerprint(plan: Optional[PrefetchPlan]) -> Optional[tuple]:
    """Hashable identity of a prefetch plan (decisions are frozen)."""
    if plan is None:
        return None
    return tuple(plan.decisions)


def trace_key(
    schedule: LoopSchedule,
    layout_fp: tuple,
    config: MachineConfig,
    profile: SimProfile,
    plan_fp: Optional[tuple],
    fraction_scale: float,
) -> tuple:
    """The full cache key for one ``loop_traces`` invocation.

    ``schedule`` embeds the loop (a frozen dataclass) and the per-CPU
    iteration ranges, so loop identity and processor count are covered.
    """
    return (schedule, layout_fp, config, profile, plan_fp, fraction_scale)


class TraceCache:
    """A bounded LRU cache of generated per-loop trace lists."""

    def __init__(self, max_entries: int = 256) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self._entries: OrderedDict[tuple, list[CpuTrace]] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: tuple) -> bool:
        with self._lock:
            return key in self._entries

    def get_or_generate(
        self, key: tuple, generate: Callable[[], list[CpuTrace]]
    ) -> list[CpuTrace]:
        """Return the cached traces for ``key``, generating them on a miss.

        Generation runs outside the lock: concurrent misses on the same
        key each generate (generation is pure, so the results are
        identical), the first insertion wins, and every caller returns
        the winning list so all threads share one object.
        """
        with self._lock:
            traces = self._entries.get(key)
            if traces is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return traces
            self.misses += 1
        traces = generate()
        with self._lock:
            existing = self._entries.get(key)
            if existing is not None:
                # A concurrent thread published first; keep its object so
                # every caller shares one memoized trace list.
                self._entries.move_to_end(key)
                return existing
            self._entries[key] = traces
            if len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1
        return traces

    def clear(self) -> None:
        """Drop every entry (counters are kept for inspection)."""
        with self._lock:
            self._entries.clear()

    def reset_counters(self) -> None:
        with self._lock:
            self.hits = 0
            self.misses = 0
            self.evictions = 0

    def stats(self) -> dict[str, int]:
        """Counters plus a census of derived artifacts riding on entries.

        ``columnar_indexes`` counts cached streams carrying a memoized
        columnar block index (:func:`repro.machine.columnar.block_index`)
        and ``window_plans`` counts cached traces carrying a memoized
        sampling plan (:func:`repro.sim.windows.access_vector_plan`) —
        both are amortized across runs by this cache, so the census shows
        how much static-lowering work warm runs are reusing.
        """
        columnar = 0
        plans = 0
        with self._lock:
            entries = list(self._entries.values())
        for traces in entries:
            for trace in traces:
                d = getattr(trace, "__dict__", None)
                if d is None:
                    continue
                if "_window_plan" in d:
                    plans += 1
                cached_stream = d.get("_ref_stream")
                if cached_stream is not None and "_columnar" in getattr(
                    cached_stream[1], "__dict__", {}
                ):
                    columnar += 1
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "columnar_indexes": columnar,
                "window_plans": plans,
            }


#: Process-wide cache shared by every engine instance with
#: ``EngineOptions(trace_cache=True)``.  Worker processes of a parallel
#: sweep each hold their own copy.
_DEFAULT = TraceCache()


def default_trace_cache() -> TraceCache:
    return _DEFAULT
