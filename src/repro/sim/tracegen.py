"""Reference-stream generation from loop-nest programs.

For each (loop, processor) pair this module produces numpy arrays of
virtual addresses and flags.  The streams of all arrays touched by a loop
are *interleaved proportionally* — iteration ``i`` touches ``a[i]``,
``b[i]``, ... in turn — because that is how compiled loop bodies access
memory, and it is exactly the pattern that turns same-color array starts
into direct-mapped cache thrashing (the paper's objective 2, Section 5.2).

Flags are a bitmask per reference: bit 0 = write, bit 1 = instruction
fetch.  When a prefetch plan covers an access, a parallel array of
prefetch target addresses is produced (0 where no prefetch is issued);
prefetches are emitted once per cache line, ``distance_lines`` ahead for
software-pipelined accesses and 0 lines ahead when tiling inhibited
pipelining (they still cost bus bandwidth but hide nothing — the applu
pathology).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.compiler.ir import (
    BoundaryAccess,
    Communication,
    InstructionStream,
    Loop,
    LoopKind,
    PartitionedAccess,
    StridedAccess,
    WholeArrayAccess,
)
from repro.compiler.padding import Layout
from repro.compiler.parallelize import LoopSchedule
from repro.compiler.prefetch_pass import PrefetchPlan
from repro.machine.config import MachineConfig

FLAG_WRITE = 1
FLAG_INSTR = 2


@dataclass(frozen=True)
class SimProfile:
    """Simulation fidelity knobs.

    ``ref_stride`` is the distance between generated references within a
    bulk stream; ``None`` selects half a cache line (two references per
    line, preserving spatial-locality hits while keeping traces small).
    Communication (boundary) accesses are always generated at word
    granularity so the Dubois word-level sharing classification has real
    offsets to work with.  ``sweep_limit`` caps per-access sweeps, which
    the fast profile uses to shorten runs.
    """

    ref_stride: Optional[int] = None
    sweep_limit: float = 4.0

    def stride_for(self, config: MachineConfig) -> int:
        if self.ref_stride is not None:
            return self.ref_stride
        return max(config.word_size, config.l2.line_size // 2)

    @classmethod
    def fast(cls) -> "SimProfile":
        return cls(ref_stride=None, sweep_limit=1.0)


@dataclass(frozen=True)
class RefStream:
    """A :class:`CpuTrace` decomposed into plain-list columns for the engine.

    The engine's inner loop indexes python lists (cheaper than numpy
    scalars); the derived columns are batch-computed with numpy once per
    (trace, geometry) pair:

    * ``vpages``/``offsets`` — page number and in-page offset of every
      reference, so the simulation loop never divides per reference;
    * ``vlines`` — the external-cache-line-aligned virtual address used by
      the (L2-line-granular) on-chip cache model;
    * ``fast_kinds`` — per-reference hit-filter class: 0 = must take the
      full per-reference path (references carrying a prefetch), 1 = data
      read eligible for the bulk hit filter, 2 = instruction fetch
      eligible for it, 3 = data write eligible for the write filter (the
      filter still rejects it at run time unless the written line is
      already exclusively owned by the referencing processor).
    """

    addrs: list
    flags: list
    prefetch: Optional[list]
    vpages: list
    offsets: list
    vlines: list
    fast_kinds: list


@dataclass
class CpuTrace:
    """One processor's reference stream for one loop."""

    addrs: np.ndarray  # int64 virtual addresses
    flags: np.ndarray  # uint8 bitmask (FLAG_WRITE | FLAG_INSTR)
    prefetch: Optional[np.ndarray] = None  # int64 targets, 0 = none
    words_per_ref: float = 1.0

    def __len__(self) -> int:
        return len(self.addrs)

    def ref_stream(self, page_size: int, line_size: int) -> RefStream:
        """The engine-facing column view, memoized per geometry.

        Traces are immutable once generated, and the trace cache reuses
        them across warmup/measured passes and runs, so the (possibly
        expensive) numpy-to-list conversion is done at most once per
        (page_size, line_size) pair.
        """
        key = (page_size, line_size)
        cached = self.__dict__.get("_ref_stream")
        if cached is not None and cached[0] == key:
            return cached[1]
        addrs = self.addrs
        page_shift = page_size.bit_length() - 1
        vpages = (addrs >> page_shift).tolist()
        offsets = (addrs & (page_size - 1)).tolist()
        vlines = (addrs & ~(line_size - 1)).tolist()
        writes = (self.flags & FLAG_WRITE) != 0
        instr = (self.flags & FLAG_INSTR) != 0
        kinds = np.where(writes, np.where(instr, 0, 3), np.where(instr, 2, 1))
        if self.prefetch is not None:
            kinds = np.where(self.prefetch != 0, 0, kinds)
        fast_kinds = kinds.astype(np.int8).tolist()
        stream = RefStream(
            addrs=addrs.tolist(),
            flags=self.flags.tolist(),
            prefetch=self.prefetch.tolist() if self.prefetch is not None else None,
            vpages=vpages,
            offsets=offsets,
            vlines=vlines,
            fast_kinds=fast_kinds,
        )
        self.__dict__["_ref_stream"] = (key, stream)
        return stream


#: Virtual-address region where instruction footprints are placed (far
#: above any data array so pages never collide).
INSTRUCTION_BASE = 1 << 40


def _bulk_addresses(start: int, nbytes: int, stride: int) -> np.ndarray:
    if nbytes <= 0:
        return np.empty(0, dtype=np.int64)
    return np.arange(start, start + nbytes, stride, dtype=np.int64)


def _access_stream(
    access,
    layout: Layout,
    schedule: LoopSchedule,
    cpu: int,
    config: MachineConfig,
    profile: SimProfile,
    fraction_scale: float = 1.0,
) -> tuple[np.ndarray, int, float]:
    """Addresses, flags and words-per-ref for one access on one processor."""
    stride = profile.stride_for(config)
    num_cpus = schedule.num_cpus

    if isinstance(access, InstructionStream):
        sweeps = min(access.sweeps, profile.sweep_limit)
        fetch_stride = max(4, config.l1i.line_size // 2)
        # Offset the text segment by an odd page count so it does not land
        # color-aligned with the (page-aligned) data arrays under a
        # page-coloring policy — linkers place text at arbitrary colors.
        base = INSTRUCTION_BASE + 173 * config.page_size
        one = _bulk_addresses(base, access.footprint_bytes, fetch_stride)
        addrs = _tile(one, sweeps)
        return addrs, FLAG_INSTR, fetch_stride / config.word_size

    base = layout.base_of(access.array)
    size = layout.sizes[access.array]

    if isinstance(access, PartitionedAccess):
        unit = max(1, size // access.units)
        lo_u, hi_u = _unit_range(schedule, access, cpu, num_cpus)
        chunk = min((hi_u - lo_u) * unit, size - lo_u * unit)
        fraction = min(1.0, max(1e-6, access.fraction * fraction_scale))
        touched = int(chunk * fraction)
        sweeps = min(access.sweeps, profile.sweep_limit)
        one = _bulk_addresses(base + lo_u * unit, touched, stride)
        addrs = _tile(one, sweeps)
        flag = FLAG_WRITE if access.is_write else 0
        return addrs, flag, stride / config.word_size

    if isinstance(access, BoundaryAccess):
        unit = max(1, size // access.units)
        boundary = max(config.word_size, int(unit * access.boundary_fraction))
        ranges = _byte_ranges(schedule, access, num_cpus, size, unit, base)
        neighbours = _neighbour_list(access.comm, cpu, num_cpus)
        pieces = []
        for nb in neighbours:
            n_lo, n_hi = ranges[nb]
            if n_hi <= n_lo:
                continue
            if _is_upper(cpu, nb, num_cpus, access.comm):
                strip = (n_lo, min(n_lo + boundary, n_hi))
            else:
                strip = (max(n_hi - boundary, n_lo), n_hi)
            pieces.append(
                _bulk_addresses(strip[0], strip[1] - strip[0], config.word_size)
            )
        if pieces:
            addrs = np.concatenate(pieces)
        else:
            addrs = np.empty(0, dtype=np.int64)
        flag = FLAG_WRITE if access.is_write else 0
        return addrs, flag, 1.0

    if isinstance(access, StridedAccess):
        block = access.block_bytes
        nblocks = size // block
        mine = np.arange(cpu, nblocks, num_cpus, dtype=np.int64)
        inner = np.arange(0, block, stride, dtype=np.int64)
        one = (base + mine[:, None] * block + inner[None, :]).ravel()
        # Gather/scatter work scales with the per-occurrence working set
        # (particles migrate between occurrences), hence fraction_scale.
        sweeps = min(access.sweeps, profile.sweep_limit) * fraction_scale
        addrs = _tile(one, sweeps)
        flag = FLAG_WRITE if access.is_write else 0
        return addrs, flag, stride / config.word_size

    if isinstance(access, WholeArrayAccess):
        touched = int(size * min(1.0, max(1e-6, access.fraction * fraction_scale)))
        sweeps = min(access.sweeps, profile.sweep_limit)
        one = _bulk_addresses(base, touched, stride)
        addrs = _tile(one, sweeps)
        flag = FLAG_WRITE if access.is_write else 0
        return addrs, flag, stride / config.word_size

    raise TypeError(f"unknown access type: {type(access)!r}")


def _tile(addrs: np.ndarray, sweeps: float) -> np.ndarray:
    if sweeps <= 0 or len(addrs) == 0:
        return np.empty(0, dtype=np.int64)
    whole = int(sweeps)
    frac = sweeps - whole
    parts = [addrs] * whole
    if frac > 0:
        parts.append(addrs[: int(len(addrs) * frac)])
    if not parts:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(parts) if len(parts) > 1 else parts[0].copy()


def _unit_range(schedule: LoopSchedule, access, cpu: int, num_cpus: int) -> tuple[int, int]:
    """The unit range this processor executes, rescaled to this access.

    The loop schedule is expressed in loop iterations; an access whose
    ``units`` differs from the loop's iteration count is scaled
    proportionally (e.g. a half-resolution array in the same loop).
    """
    lo, hi = schedule.ranges[cpu]
    total = max(1, schedule.loop.effective_iterations)
    if access.units == total:
        return lo, hi
    scale = access.units / total
    return int(lo * scale), int(hi * scale)


def _byte_ranges(schedule, access, num_cpus, size, unit, base) -> list[tuple[int, int]]:
    result = []
    for cpu in range(num_cpus):
        lo_u, hi_u = _unit_range(schedule, access, cpu, num_cpus)
        lo = base + lo_u * unit
        hi = min(base + hi_u * unit, base + size)
        result.append((lo, max(lo, hi)))
    return result


def _neighbour_list(comm: Communication, cpu: int, num_cpus: int) -> list[int]:
    if num_cpus == 1:
        return []
    if comm is Communication.ROTATE:
        return sorted({(cpu - 1) % num_cpus, (cpu + 1) % num_cpus})
    return [c for c in (cpu - 1, cpu + 1) if 0 <= c < num_cpus]


def _is_upper(cpu: int, nb: int, num_cpus: int, comm: Communication) -> bool:
    if comm is Communication.ROTATE:
        return nb == (cpu + 1) % num_cpus
    return nb == cpu + 1


def _merge_streams(
    streams: list[tuple[np.ndarray, int]]
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Proportionally interleave streams; returns (addrs, flags, stream ids).

    Element ``k`` of a stream of length ``L`` gets sort key ``(k+0.5)/L``;
    a stable sort over all keys interleaves the streams in proportion to
    their lengths, so equal-length streams alternate strictly — the memory
    behaviour of a loop body touching each array once per iteration.
    """
    streams = [(a, f) for a, f in streams if len(a)]
    if not streams:
        empty = np.empty(0, dtype=np.int64)
        return empty, np.empty(0, dtype=np.uint8), np.empty(0, dtype=np.int32)
    keys = np.concatenate(
        [(np.arange(len(a), dtype=np.float64) + 0.5) / len(a) for a, _ in streams]
    )
    addrs = np.concatenate([a for a, _ in streams])
    flags = np.concatenate(
        [np.full(len(a), f, dtype=np.uint8) for a, f in streams]
    )
    ids = np.concatenate(
        [np.full(len(a), i, dtype=np.int32) for i, (a, _) in enumerate(streams)]
    )
    order = np.argsort(keys, kind="stable")
    return addrs[order], flags[order], ids[order]


def occurrence_scale(variation: float, occurrence: int, salt: str) -> float:
    """Deterministic per-occurrence working-set multiplier in [1-v, 1+v]."""
    if variation <= 0.0:
        return 1.0
    # A small hash-based pseudo-random draw; stable across runs.
    import hashlib

    digest = hashlib.blake2s(
        f"{salt}:{occurrence}".encode(), digest_size=4
    ).digest()
    unit = int.from_bytes(digest, "big") / 0xFFFFFFFF  # [0, 1]
    return 1.0 + variation * (2.0 * unit - 1.0)


def loop_traces(
    loop: Loop,
    schedule: LoopSchedule,
    layout: Layout,
    config: MachineConfig,
    profile: SimProfile,
    prefetch_plan: Optional[PrefetchPlan] = None,
    fraction_scale: float = 1.0,
) -> list[CpuTrace]:
    """Per-processor traces for one loop under a static schedule.

    ``fraction_scale`` scales partitioned/whole-array working-set
    fractions (clamped to (0, 1]); the engine derives it from the phase's
    ``miss_variation`` and the occurrence index.
    """
    num_cpus = schedule.num_cpus
    cpus = range(num_cpus) if loop.kind is LoopKind.PARALLEL else [0]
    line = config.l2.line_size
    traces: list[CpuTrace] = []
    words_per_ref = profile.stride_for(config) / config.word_size
    for cpu in range(num_cpus):
        if cpu not in cpus:
            traces.append(
                CpuTrace(
                    addrs=np.empty(0, dtype=np.int64),
                    flags=np.empty(0, dtype=np.uint8),
                    words_per_ref=words_per_ref,
                )
            )
            continue
        streams: list[tuple[np.ndarray, int]] = []
        pf_distance: list[Optional[int]] = []
        for access in loop.accesses:
            addrs, flag, _wpr = _access_stream(
                access, layout, schedule, cpu, config, profile, fraction_scale
            )
            streams.append((addrs, flag))
            decision = (
                prefetch_plan.decision_for(loop.name, access) if prefetch_plan else None
            )
            if decision is None:
                pf_distance.append(None)
            else:
                pf_distance.append(decision.distance_lines if decision.pipelined else 0)

        merged_addrs, merged_flags, merged_ids = _merge_streams(
            [(a, f) for (a, f) in streams]
        )

        prefetch_targets: Optional[np.ndarray] = None
        if prefetch_plan is not None and any(d is not None for d in pf_distance):
            prefetch_targets = np.zeros(len(merged_addrs), dtype=np.int64)
            live = [i for i, (a, _) in enumerate(streams) if len(a)]
            for live_index, stream_index in enumerate(live):
                distance = pf_distance[stream_index]
                if distance is None:
                    continue
                decision = prefetch_plan.decision_for(
                    loop.name, loop.accesses[stream_index]
                )
                mask = merged_ids == live_index
                stream_addrs = merged_addrs[mask]
                if len(stream_addrs) == 0:
                    continue
                lines = stream_addrs // line
                new_line = np.empty(len(lines), dtype=bool)
                new_line[0] = True
                new_line[1:] = lines[1:] != lines[:-1]
                # Software pipelining prefetches d iterations ahead *in the
                # stream* (A[i+d]), not d lines ahead in the address space:
                # for strided streams the next lines of this processor's
                # stream are in its own future blocks, not its neighbour's.
                line_starts = stream_addrs[new_line]
                lookahead = np.zeros(len(line_starts), dtype=np.int64)
                if distance < len(line_starts):
                    if distance == 0:
                        lookahead = line_starts.copy()
                    else:
                        lookahead[:-distance] = line_starts[distance:]
                targets = np.zeros(len(stream_addrs), dtype=np.int64)
                targets[new_line] = lookahead
                if decision is not None and decision.tlb_hostile:
                    # Word-aligned targets leave bit 0 free: set it to mark
                    # TLB-strict prefetches (see MemorySystem.prefetch).
                    targets = np.where(targets != 0, targets | 1, 0)
                prefetch_targets[mask] = targets

        traces.append(
            CpuTrace(
                addrs=merged_addrs,
                flags=merged_flags,
                prefetch=prefetch_targets,
                words_per_ref=words_per_ref,
            )
        )
    return traces
