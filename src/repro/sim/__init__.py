"""Trace-driven execution engine (the reproduction's SimOS).

* :mod:`repro.sim.tracegen` — turns loop-nest programs into per-processor
  reference streams (numpy address/flag arrays), interleaving the arrays
  touched by a loop the way the generated code would (a[i], b[i], ... per
  iteration) — the interleaving is what makes same-color array starts
  thrash a direct-mapped cache;
* :mod:`repro.sim.windows` — representative execution windows (Section
  3.2) and the access-vector sampling plans behind
  ``EngineOptions(sampling="access_vector")``;
* :mod:`repro.sim.engine` — drives the streams through the memory system
  with per-processor clocks, barrier/sequential/suppressed overhead
  accounting, page-fault servicing and optional prefetching;
* :mod:`repro.sim.results` — the :class:`RunResult` record with the
  Figure 2 breakdowns;
* :mod:`repro.sim.sweeps` — policy/processor-count sweep helpers.
"""

from repro.sim.engine import EngineOptions, run_benchmark, run_program
from repro.sim.results import PhaseResult, RunResult
from repro.sim.sweeps import STANDARD_POLICIES, cpu_sweep, policy_sweep, speedup_table
from repro.sim.tracegen import SimProfile, loop_traces
from repro.sim.windows import (
    PhaseWindow,
    WindowPlan,
    access_vector_plan,
    occurrence_variation,
    representative_window,
)

__all__ = [
    "EngineOptions",
    "STANDARD_POLICIES",
    "cpu_sweep",
    "policy_sweep",
    "speedup_table",
    "access_vector_plan",
    "PhaseResult",
    "PhaseWindow",
    "WindowPlan",
    "RunResult",
    "SimProfile",
    "loop_traces",
    "occurrence_variation",
    "representative_window",
    "run_benchmark",
    "run_program",
]
