"""The execution engine: runs a program on the simulated multiprocessor.

``run_program`` reproduces the paper's methodology end to end:

1. **Layout** — arrays are placed in virtual memory by the compiler's
   layout pass (aligned + group-padded by default; packed unaligned for
   the Figure 9 baseline).
2. **Compilation** — access summaries are extracted and, when enabled,
   the prefetch pass runs.
3. **OS setup** — a virtual-memory instance is created under the chosen
   page-mapping policy.  With CDPC enabled, hints are delivered either
   through the madvise extension (IRIX style) or by pre-touching pages in
   coloring order (Digital UNIX style).
4. **Initialization** — the master touches every array page in the
   program's init order, taking the page faults that determine bin
   hopping's coloring.  An optional jitter models the kernel fault race.
5. **Steady state** — a representative execution window runs: one warmup
   pass (statistics discarded, like the paper's cold-phase discard), then
   one measured pass with per-phase statistics weighted by occurrence
   counts.

Per-processor clocks advance by instruction work plus memory stalls;
parallel loops end at a barrier where arrival spread is charged to load
imbalance; sequential and suppressed loops charge slave idle time to the
matching Figure 2 overhead category.
"""

from __future__ import annotations

import math
import random
import time
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Optional

from repro.compiler.ir import LoopKind, Program
from repro.compiler.padding import layout_arrays
from repro.compiler.parallelize import schedule_loop
from repro.compiler.prefetch_pass import PrefetchPlan, insert_prefetches
from repro.compiler.summaries import extract_summary
from repro.core.runtime import CdpcRuntime
from repro.machine.config import MachineConfig
from repro.machine.columnar import columnar_runner as columnar_loop_runner
from repro.machine.fast_path import loop_runner as fast_loop_runner
from repro.machine.memory_system import MemorySystem
from repro.machine.stats import MachineStats
from repro.obs import DEFAULT_DISTANCE_EDGES, Observability, ObsConfig
from repro.osmodel.physmem import CascadeReclaimer, HeldFrameReclaimer
from repro.osmodel.policies import (
    BinHoppingPolicy,
    CdpcHintPolicy,
    MappingPolicy,
    PageColoringPolicy,
)
from repro.osmodel.vm import VirtualMemory
from repro.robustness.degradation import (
    ColdPageReclaimer,
    DegradationLog,
    DegradationReport,
)
from repro.robustness.faults import FaultInjector, FaultPlan
from repro.robustness.invariants import check_invariants
from repro.sim.results import (
    PhaseResult,
    RunResult,
    add_scaled_cpu_stats,
    add_scaled_stats,
    copy_cpu_stats,
    subtract_cpu_stats,
)
from repro.sim.trace_cache import (
    default_trace_cache,
    layout_fingerprint,
    plan_fingerprint,
    trace_key,
)
from repro.sim.tracegen import (
    INSTRUCTION_BASE,
    RefStream,
    SimProfile,
    loop_traces,
    occurrence_scale,
)
from repro.sim.windows import (
    ROLE_LEADER,
    ROLE_SKIP,
    ROLE_VALIDATOR,
    ROLE_WARM,
    access_vector_plan,
    occurrence_variation,
    representative_window,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.checker.diagnostics import LintReport
    from repro.checker.staticmiss import StaticMissProfile
    from repro.osmodel.dynamic import AdaptiveCdpc, DynamicRecolorer
    from repro.scenarios.churn import ChurnDriver, ChurnSchedule

_CHUNK = 16  # references simulated per processor per scheduling round


@dataclass(frozen=True)
class EngineOptions:
    """Configuration of one benchmark run."""

    policy: str = "page_coloring"  # native OS policy: page_coloring | bin_hopping
    cdpc: bool = False
    cdpc_delivery: str = "auto"  # madvise | touch | auto
    prefetch: bool = False
    aligned: bool = True
    profile: SimProfile = field(default_factory=SimProfile)
    race_seed: Optional[int] = None
    #: Window (pages) of fault-order perturbation modeling the kernel race
    #: bin hopping suffers; 0 disables.
    init_jitter: int = 4
    memory_pressure: float = 0.0
    #: Enable the Section 2.1 alternative: miss-counter-driven dynamic
    #: page recoloring, inspected at every phase boundary.
    dynamic_recolor: bool = False
    #: The paper's footnote-1 extension: prefetches fill missing TLB
    #: entries instead of being dropped (Section 6.2).
    prefetch_fills_tlb: bool = False
    recolor_threshold: int = 16
    recolor_max_per_step: int = 32
    seed: int = 0
    #: Deterministic mid-run perturbations (pressure, hint loss, forced
    #: allocation failures, race storms); None runs fault-free.
    fault_plan: Optional[FaultPlan] = None
    #: Run the page-table/physical-memory/miss-accounting invariant sweep
    #: after initialization and after every phase, raising on violation.
    check_invariants: bool = False
    #: Graceful degradation: on allocator exhaustion, reclaim a competing
    #: address space's frame or evict the coldest mapped page instead of
    #: raising OutOfMemoryError.  (Reclaim only engages where the run
    #: would previously have crashed, so fault-free results are
    #: unchanged.)
    reclaim: bool = True
    #: Hint-honor-rate watchdog: when the rate drops below this threshold
    #: the engine abandons the static CDPC hints and falls back to the
    #: Section 2.1 dynamic recolorer.  None disables the watchdog.
    hint_watchdog: Optional[float] = None
    #: Scheduled capacity churn (co-runner arrivals/departures, host
    #: capacity revocation/restoration), executed at phase boundaries.
    #: None runs churn-free.
    churn: Optional["ChurnSchedule"] = None
    #: Adaptive CDPC: instead of abandoning the static hints when the
    #: watchdog fires, re-plan the coloring transactionally against the
    #: surviving capacity (demand-driven color remap + bounded
    #: migrations) and keep going.  The adaptive watchdog is judged over
    #: a *window* of recent faults — checked after every hinted fault,
    #: not just at phase boundaries — so a mid-phase collapse is repaired
    #: mid-phase.  Requires ``cdpc`` and ``hint_watchdog``.
    adaptive_cdpc: bool = False
    #: Re-plans allowed per run before the adaptive mode concedes and
    #: falls back to the dynamic recolorer like a plain watchdog trip.
    adaptive_max_replans: int = 4
    #: A window only counts as a *collapse* (and triggers a re-plan) when
    #: its honor rate is below ``hint_watchdog`` AND below this fraction
    #: of the best healthy rate observed so far.  The relative test keeps
    #: a plan that is merely mediocre from burning the re-plan budget the
    #: moment the run starts; the watchdog reacts to *drops*.
    adaptive_collapse_ratio: float = 0.8
    #: Times the measured window repeats (statistics are averaged over
    #: epochs, so results stay comparable across epoch counts).  Churn
    #: scenarios need many phase-boundary beats for their schedules to
    #: play out; a plain run keeps the default single epoch, which is
    #: bit-identical to the historical behavior.
    epochs: int = 1
    #: Vectorized hit filter: retire references that provably hit the
    #: on-chip cache and TLB with no coherence side effect in bulk,
    #: bypassing the per-reference memory-system call.  Results are
    #: bit-identical to the reference path (``fast_path=False``), which is
    #: retained as the oracle for the equivalence suite.
    fast_path: bool = True
    #: Columnar epoch kernel on top of the fast path: retire whole
    #: 16-reference column blocks whose references all pass the hit
    #: filter with one block-level membership check and a batch LRU
    #: replay (:mod:`repro.machine.columnar`), falling back to the
    #: scalar filter for the coherence-active residual.  Bit-identical
    #: to both the scalar fast path and the reference oracle; only
    #: meaningful when ``fast_path`` is on.
    columnar: bool = True
    #: Statistical sampling mode: ``None`` simulates every reference
    #: (exact); ``"access_vector"`` clusters fixed-size trace windows by
    #: quantized per-color/per-set access-vector signature, simulates
    #: one leader (plus one validator) per cluster and replays the
    #: leader's measured statistics delta for the rest, reporting an
    #: error bound in :attr:`RunResult.sampling`.  Approximate by
    #: design — never use it where bit-identity matters.
    sampling: Optional[str] = None
    #: References per sampling window; must be a positive multiple of
    #: the 16-reference scheduling chunk.  The default is sized so the
    #: per-loop per-CPU streams of the bundled workloads split into
    #: enough windows to cluster (a window much longer than the stream
    #: degrades sampling to exact simulation).
    sampling_window: int = 256
    #: Memoize generated reference streams in the process-wide trace
    #: cache, reusing them across warmup/measured passes, repeated phase
    #: occurrences and runs with identical trace inputs.
    trace_cache: bool = True
    #: Run the repro.checker static-analysis gate before simulating.  By
    #: default it is warn-only: ERROR diagnostics emit a warning and the
    #: run proceeds.
    lint: bool = True
    #: With ``strict=True`` the engine refuses to simulate a program with
    #: ERROR-severity diagnostics, raising
    #: :class:`repro.checker.LintError` instead.
    strict: bool = False
    #: Cross-validate the symbolic miss predictor against this run: build
    #: a :class:`repro.checker.StaticMissProfile` before simulating and,
    #: after the run, check every measured miss component against the
    #: profile's self-reported ``[lo, hi]`` interval, raising
    #: :class:`repro.checker.StaticCheckError` on any violation.  Only
    #: meaningful for configurations the predictor models (no prefetch,
    #: faults, churn, pressure, sampling or dynamic recoloring); the
    #: engine rejects unsupported combinations up front.
    static_check: bool = False
    #: Observability: metrics registry + span tracing + sampled hot-path
    #: profiling (:class:`repro.obs.ObsConfig`).  ``None`` (the default)
    #: is the shared no-op bundle; simulated results are bit-identical
    #: with observability on or off — instruments only read wall clocks.
    obs: Optional[ObsConfig] = None

    def resolved_delivery(self) -> str:
        if self.cdpc_delivery != "auto":
            return self.cdpc_delivery
        return "touch" if self.policy == "bin_hopping" else "madvise"


def _loop_group_pairs(program: Program) -> list[tuple[str, str]]:
    pairs: list[tuple[str, str]] = []
    seen: set[frozenset[str]] = set()
    for phase in program.phases:
        for loop in phase.loops:
            names = loop.array_names()
            for i, a in enumerate(names):
                for b in names[i + 1 :]:
                    key = frozenset((a, b))
                    if key not in seen:
                        seen.add(key)
                        pairs.append((a, b))
    return pairs


def _build_policy(config: MachineConfig, options: EngineOptions) -> MappingPolicy:
    colors = config.num_colors
    if options.policy == "page_coloring":
        native: MappingPolicy = PageColoringPolicy(colors)
    elif options.policy == "bin_hopping":
        native = BinHoppingPolicy(colors, race_seed=options.race_seed)
    else:
        raise ValueError(f"unknown native policy {options.policy!r}")
    if options.cdpc and options.resolved_delivery() == "madvise":
        return CdpcHintPolicy(colors, fallback=native)
    return native


class _ClusterRecord:
    """One access-vector cluster's measurements within a loop execution.

    ``delta``/``dwall`` always hold the most recent *fresh-state*
    measurement — the leader's, refreshed by each validator (which runs
    right after a ``ROLE_WARM`` window has re-warmed cache state).
    ``samples`` collects those fresh measurements' miss counts for the
    error-bound variation statistic; ``skipped`` counts every window
    whose statistics were replayed from ``delta`` rather than measured.

    A cluster must *earn* the right to be skipped (``qualified``):
    replays begin only after two consecutive fresh measurements agree,
    and any later fresh measurement that drifts past
    :meth:`drifted_from` marks the cluster unstable — its remaining
    members simulate.  This is the dynamic arm of the paper's
    occurrence-variation check: workloads whose equal-signature windows
    behave differently over time (mgrid's grid levels, turb3d's
    transposes, apsi) degrade toward exact simulation instead of
    extrapolating from the wrong regime.
    """

    __slots__ = ("delta", "dwall", "samples", "skipped", "stable", "drift")

    def __init__(self, delta, dwall: float, miss: float):
        self.delta = delta
        self.dwall = dwall
        self.samples = [miss]
        self.skipped = 0
        self.stable = True
        #: Largest observed fresh-sample miss jump (in misses), charged
        #: against every replay in the error bound: replays made before
        #: drift was detected may each be off by this much.
        self.drift = 0.0

    def qualified(self) -> bool:
        return self.stable and len(self.samples) >= 2

    @staticmethod
    def _stall_ns(delta) -> float:
        return (
            delta.l1_stall_ns
            + delta.prefetch_stall_ns
            + sum(delta.l2_stall_ns.values())
        )

    def drifted_from(self, delta, dwall: float, miss: float) -> bool:
        """Has behaviour moved materially since the last fresh sample?

        Misses, wall time and stall time are checked separately: apsi's
        windows keep their miss counts while their stall composition
        moves, and replaying the old delta would hold MCPI at the stale
        regime.
        """
        old_miss = float(sum(self.delta.l2_misses.values()))
        if abs(miss - old_miss) > 0.2 * max(miss, old_miss) + 4.0:
            return True
        if abs(dwall - self.dwall) > 0.2 * max(dwall, self.dwall):
            return True
        old_stall = self._stall_ns(self.delta)
        new_stall = self._stall_ns(delta)
        return abs(new_stall - old_stall) > (
            0.2 * max(new_stall, old_stall) + 1.0
        )


class _StreamSamplerState:
    """Per-(CPU, loop-execution) sampling state.

    Cluster records live only for one loop execution: every execution
    re-simulates its leaders against the machine state it actually runs
    under, so a recorded delta is only ever replayed into the same
    statistics object it was measured from.
    """

    __slots__ = (
        "plan", "open_window", "snap_stats", "snap_clock", "records", "stale",
    )

    def __init__(self, plan):
        self.plan = plan
        self.open_window: Optional[int] = None
        self.snap_stats = None
        self.snap_clock = 0.0
        self.records: dict[int, _ClusterRecord] = {}
        #: True while the machine state trails reality because the
        #: previous window(s) were replayed instead of simulated; the
        #: first simulated window after a replay run measures against
        #: that stale state and must not be trusted as a fresh sample.
        self.stale = False


class _AccessVectorSampler:
    """Run-level bookkeeping for ``sampling="access_vector"``.

    Collects window/cluster counts and accumulates the per-phase miss
    error bound.  The bound per cluster follows the leader/validator
    scheme: clusters with two or more independently simulated members
    use the paper's occurrence variation statistic over those samples
    (``skipped * (3*std + 2% of mean + 1)``); single-sample clusters get
    a conservative flat margin (``skipped * (25% of leader + 1)``).
    Counters and bounds only accumulate during recorded (measured)
    phases; the replay itself also runs during warmup for speed.
    """

    def __init__(self, window: int, line_size: int, page_size: int,
                 num_colors: int):
        self.window = window
        self.line_size = line_size
        self.page_size = page_size
        self.num_colors = num_colors
        self.recording = False
        self.windows = 0
        self.simulated = 0
        self.skipped = 0
        self.clusters_seen = 0
        self.phase_bound = 0.0
        self.total_bound = 0.0

    def state_for(self, trace) -> Optional[_StreamSamplerState]:
        if not len(trace):
            return None
        plan = access_vector_plan(
            trace, self.window, self.line_size, self.page_size,
            self.num_colors,
        )
        return _StreamSamplerState(plan)

    def take_phase_bound(self) -> float:
        bound = self.phase_bound
        self.phase_bound = 0.0
        return bound

    def flush_state(self, state: _StreamSamplerState) -> None:
        """Fold one loop execution's cluster records into the run bound."""
        if not self.recording:
            return
        for record in state.records.values():
            self.clusters_seen += 1
            if not record.skipped:
                continue
            if len(record.samples) >= 2:
                mean, std, _cv = occurrence_variation(record.samples)
                bound = record.skipped * (3.0 * std + 0.02 * mean + 1.0)
            else:
                bound = record.skipped * (0.25 * record.samples[0] + 1.0)
            # Replays made before drift was detected may each be off by
            # the observed jump: charge it against every replay.
            bound += record.skipped * record.drift
            self.phase_bound += bound

    def report(self, estimated_misses: float, mode: str) -> dict:
        windows = self.windows
        bound = self.total_bound
        if estimated_misses > 0:
            relative = max(bound / estimated_misses, 0.05)
            bound = relative * estimated_misses
        else:
            relative = 1.0
        return {
            "mode": mode,
            "window": self.window,
            "windows": windows,
            "simulated_windows": self.simulated,
            "skipped_windows": self.skipped,
            "clusters": self.clusters_seen,
            "skip_ratio": self.skipped / windows if windows else 0.0,
            "estimated_l2_misses": estimated_misses,
            "miss_error_bound": bound,
            "relative_error_bound": relative,
        }


class _Simulation:
    """Mutable state of one run."""

    def __init__(self, program: Program, config: MachineConfig, options: EngineOptions):
        self.program = program
        self.config = config
        self.options = options
        self.num_cpus = config.num_cpus
        self.obs = Observability.from_config(options.obs)
        tracer = self.obs.tracer

        groups = _loop_group_pairs(program)
        with tracer.span("compile.layout"):
            self.layout = layout_arrays(
                program.arrays,
                config.l2.line_size,
                config.l1d.size,
                aligned=options.aligned,
                groups=groups,
            )
        with tracer.span("compile.summaries"):
            self.summary = extract_summary(program, self.layout)
        self.prefetch_plan: Optional[PrefetchPlan] = None
        if options.prefetch:
            with tracer.span("compile.prefetch"):
                self.prefetch_plan = insert_prefetches(
                    program, self.layout, config, self.num_cpus
                )

        policy = _build_policy(config, options)
        frames = self._frame_budget()
        with tracer.span("os.setup", frames=frames):
            self.vm = VirtualMemory(config, policy, memory_frames=frames)
            if options.memory_pressure > 0:
                self.vm.physmem.occupy_fraction(
                    options.memory_pressure, seed=options.seed
                )

        self.degradation_log = DegradationLog()
        self.vm.physmem.event_hook = self.degradation_log.record
        self.injector: Optional[FaultInjector] = None
        if options.fault_plan is not None and options.fault_plan.active:
            self.injector = FaultInjector(
                options.fault_plan,
                self.vm.physmem,
                config.num_colors,
                on_event=self.degradation_log.record,
            )
            self.injector.initial_pressure()

        self.churn: Optional["ChurnDriver"] = None
        if options.churn is not None and options.churn.active:
            from repro.scenarios.churn import ChurnDriver

            self.churn = ChurnDriver(
                options.churn,
                self.vm.physmem,
                on_event=self.degradation_log.record,
            )

        self.runtime: Optional[CdpcRuntime] = None
        if options.cdpc:
            with tracer.span("color.assign"):
                self.runtime = CdpcRuntime.from_summary(
                    self.summary, config, self.num_cpus
                )

        self.lint_report: Optional["LintReport"] = None
        if options.lint:
            with tracer.span("check.lint"):
                self.lint_report = self._run_lint_gate()

        self.static_profile: Optional["StaticMissProfile"] = None
        if options.static_check:
            self._validate_static_check()
            from repro.checker.staticmiss import predict_program

            with tracer.span(
                "check.staticmiss", policy=options.policy, cdpc=options.cdpc
            ):
                self.static_profile = predict_program(
                    self.program,
                    config,
                    num_cpus=self.num_cpus,
                    policy=options.policy,
                    cdpc=options.cdpc,
                    profile=options.profile,
                    seed=options.seed,
                    init_jitter=options.init_jitter,
                    epochs=options.epochs,
                    layout=self.layout,
                    coloring=self.runtime.coloring if self.runtime else None,
                )

        self.ms = MemorySystem(
            config, prefetch_fills_tlb=options.prefetch_fills_tlb
        )
        if options.reclaim:
            cold = ColdPageReclaimer(
                self.vm, self.ms, on_evict=self._on_page_evicted
            )
            self.vm.physmem.reclaim_policy = CascadeReclaimer([
                HeldFrameReclaimer(),
                cold,
            ])
            # Capacity revocation must not confiscate the competing
            # address space's frames — the subject's cold pages pay.
            self.vm.physmem.revocation_policy = cold
        self._invariant_checks = 0
        self._watchdog_tripped = False
        self.adaptive: Optional["AdaptiveCdpc"] = None
        # Windowed honor-rate baseline: counters at the last re-plan (or
        # healthy phase boundary), so each watchdog window judges fresh
        # faults only; the reference rate is the best healthy window seen,
        # against which a collapse is judged.
        self._honor_base_requests = 0
        self._honor_base_honored = 0
        self._honor_ref_rate: Optional[float] = None
        # Per-fault adaptive watchdog hook for the chunk hot loop (None
        # keeps the fault path free of the check entirely).
        self._fault_watch = (
            self._watchdog_fault_hook
            if (options.adaptive_cdpc and options.cdpc
                and options.hint_watchdog is not None)
            else None
        )
        self._trace_cache = default_trace_cache() if options.trace_cache else None
        # Fast-path kernel selection and the optional sampling layer.
        self._runner_factory = (
            columnar_loop_runner if options.columnar else fast_loop_runner
        )
        self._sampler: Optional[_AccessVectorSampler] = None
        if options.sampling is not None:
            if options.sampling != "access_vector":
                raise ValueError(
                    f"unknown sampling mode {options.sampling!r} "
                    "(expected None or 'access_vector')"
                )
            if not options.fast_path:
                raise ValueError("sampling requires fast_path=True")
            if (
                options.sampling_window < _CHUNK
                or options.sampling_window % _CHUNK
            ):
                raise ValueError(
                    "sampling_window must be a positive multiple of "
                    f"{_CHUNK} (got {options.sampling_window})"
                )
            self._sampler = _AccessVectorSampler(
                options.sampling_window,
                config.l2.line_size,
                config.page_size,
                config.num_colors,
            )
        # Observability wiring.  Profilers are ``None`` when disabled so
        # the hot chunk path pays one identity check; the physmem hooks
        # are installed only when metrics are on (one attribute check per
        # hinted allocation otherwise).
        self._chunk_prof = self.obs.profiler("engine.chunk")
        registry = self.obs.registry
        if registry.enabled:
            self._tc_hits: Optional[object] = registry.counter("trace_cache.hits")
            self._tc_misses: Optional[object] = registry.counter("trace_cache.misses")
            self._tracegen_ns: Optional[object] = registry.histogram(
                "tracegen.generate_ns"
            )
            physmem = self.vm.physmem
            physmem.distance_hook = registry.histogram(
                "physmem.fallback_distance", DEFAULT_DISTANCE_EDGES
            ).observe
            physmem.profiler = self.obs.profiler("physmem.alloc")
        else:
            self._tc_hits = None
            self._tc_misses = None
            self._tracegen_ns = None
        self._layout_fp = layout_fingerprint(self.layout)
        self._plan_fp = plan_fingerprint(self.prefetch_plan)
        self.clocks = [0.0] * self.num_cpus
        self.page_cache: dict[int, int] = {}  # vpage -> frame base address
        self._rng = random.Random(options.seed)
        self.init_ns = 0.0
        # Occurrence counters per phase, for miss_variation (Section 3.2's
        # wave5 anomaly: one phase whose miss rate varies per occurrence).
        self._phase_occurrence: dict[str, int] = {}
        self.recolorer: Optional["DynamicRecolorer"] = None
        if options.dynamic_recolor:
            from repro.osmodel.dynamic import DynamicRecolorer

            self.recolorer = DynamicRecolorer(
                self.vm,
                self.ms,
                threshold=options.recolor_threshold,
                max_per_step=options.recolor_max_per_step,
                on_degradation=self.degradation_log.record,
            )

    # ------------------------------------------------------------------

    def _run_lint_gate(self) -> "LintReport":
        """Pre-simulation static gate, reusing the artifacts just built.

        Warn-only by default: ERROR diagnostics emit a warning and the
        simulation proceeds; ``strict=True`` refuses to simulate the
        program.  The already-computed layout, summary and CDPC coloring
        are handed to the checker, so the gate adds no duplicate
        compilation work.
        """
        from repro.checker.lint import lint_context, lint_context_report

        ctx = lint_context(
            self.program,
            self.config,
            num_cpus=self.num_cpus,
            aligned=self.options.aligned,
            cdpc=self.options.cdpc,
            layout=self.layout,
            summary=self.summary,
            coloring=self.runtime.coloring if self.runtime else None,
            static=self.options.static_check,
        )
        report = lint_context_report(ctx)
        if self.options.strict:
            report.raise_if_errors()
        elif report.errors():
            import warnings

            first = report.errors()[0]
            warnings.warn(
                f"static analysis found {len(report.errors())} ERROR "
                f"diagnostic(s) in '{self.program.name}'; simulating anyway "
                f"(strict=False). First: {first.rule_id} {first.span}: "
                f"{first.message}",
                stacklevel=4,
            )
        return report

    def _validate_static_check(self) -> None:
        """Reject option combinations the symbolic predictor cannot model.

        The predictor mirrors the deterministic trace/placement pipeline
        only; anything that perturbs placement or accounting at runtime
        (faults, pressure, churn, recoloring, prefetch, sampling) would
        make the cross-validation gate meaningless, so it is an error to
        combine them rather than a silently vacuous check.
        """
        options = self.options
        unsupported = [
            name
            for name, active in (
                ("prefetch", options.prefetch),
                ("dynamic_recolor", options.dynamic_recolor),
                ("adaptive_cdpc", options.adaptive_cdpc),
                ("churn", options.churn is not None),
                ("fault_plan", options.fault_plan is not None),
                ("memory_pressure", options.memory_pressure > 0),
                ("sampling", options.sampling is not None),
                ("hint_watchdog", options.hint_watchdog is not None),
                ("race_seed", options.race_seed is not None),
            )
            if active
        ]
        if unsupported:
            raise ValueError(
                "static_check does not model these options: "
                + ", ".join(unsupported)
            )
        if options.policy not in ("page_coloring", "bin_hopping"):
            raise ValueError(
                f"static_check does not model policy {options.policy!r}"
            )
        if options.cdpc:
            expected = (
                "touch" if options.policy == "bin_hopping" else "madvise"
            )
            if options.resolved_delivery() != expected:
                raise ValueError(
                    "static_check models the native CDPC delivery only "
                    f"({expected!r} on {options.policy!r}; got "
                    f"{options.resolved_delivery()!r})"
                )

    def _frame_budget(self) -> int:
        psz = self.config.page_size
        data_pages = -(-self.layout.total_bytes // psz)
        instr_bytes = 0
        for phase in self.program.phases:
            for loop in phase.loops:
                for access in loop.accesses:
                    footprint = getattr(access, "footprint_bytes", None)
                    if footprint:
                        instr_bytes = max(instr_bytes, footprint)
        pages = data_pages + -(-instr_bytes // psz)
        colors = self.config.num_colors
        # Three times the footprint, rounded to whole color cycles: enough
        # that the machine never OOMs, while memory_pressure can still make
        # individual colors scarce.
        budget = max(colors * 4, -(-pages * 3 // colors) * colors)
        return budget

    # ------------------------------------------------------------------
    # Robustness hooks

    def _on_page_evicted(self, vpage: int, frame: int) -> None:
        """Cold-page reclaim evicted a mapping; drop the stale translation."""
        self.page_cache.pop(vpage, None)

    #: Honor-rate histogram buckets sampled once per churn beat.
    _HONOR_RATE_EDGES = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9)

    def _churn_beat(self) -> None:
        """Advance the churn schedule one beat and sample churn telemetry.

        Capacity revocation may evict mapped pages through the reclaim
        cascade; the cold-page reclaimer's ``on_evict`` hook already
        drops the engine's stale translations, so nothing else here needs
        to touch the page cache.
        """
        self.churn.on_beat()
        registry = self.obs.registry
        if registry.enabled:
            physmem = self.vm.physmem
            registry.gauge("churn.capacity_frames").set(
                float(physmem.capacity_frames())
            )
            registry.gauge("churn.free_frames").set(float(physmem.free_frames()))
            if physmem.hint_requests:
                registry.histogram(
                    "churn.honor_rate", self._HONOR_RATE_EDGES
                ).observe(physmem.hint_honor_rate)

    def _run_invariant_sweep(self) -> None:
        if not self.options.check_invariants:
            return
        report = check_invariants(self.vm, self.ms)
        self._invariant_checks += 1
        report.raise_if_failed()

    def _watchdog_check(self) -> None:
        """Fall back from static hints to dynamic recoloring when hints rot.

        Once the hint honor rate drops below the watchdog threshold the
        compile-time coloring is no longer being realized — pressure or
        hint loss has scattered the pages — so the static hints are
        abandoned and the Section 2.1 dynamic recolorer takes over,
        repairing the worst conflicts at run time.
        """
        threshold = self.options.hint_watchdog
        if threshold is None or self._watchdog_tripped or not self.options.cdpc:
            return
        if self.options.adaptive_cdpc and self.runtime is not None:
            self._adaptive_check(threshold, boundary=True)
            return
        physmem = self.vm.physmem
        if physmem.hint_requests < 8:  # too few samples to judge
            return
        rate = physmem.hint_honor_rate
        if rate >= threshold:
            return
        self._trip_watchdog(rate, threshold)

    def _trip_watchdog(self, rate: float, threshold: float) -> None:
        physmem = self.vm.physmem
        self._watchdog_tripped = True
        if isinstance(self.vm.policy, CdpcHintPolicy):
            self.vm.policy.clear_hints()
        if self.recolorer is None:
            from repro.osmodel.dynamic import DynamicRecolorer

            self.recolorer = DynamicRecolorer(
                self.vm,
                self.ms,
                threshold=self.options.recolor_threshold,
                max_per_step=self.options.recolor_max_per_step,
                on_degradation=self.degradation_log.record,
            )
        self.degradation_log.record(
            "watchdog_trip",
            {"hint_honor_rate": round(rate, 4), "threshold": threshold,
             "hint_requests": physmem.hint_requests},
        )

    def _watchdog_fault_hook(self) -> None:
        """Intra-phase adaptive watchdog, run after every hinted fault.

        A capacity-revocation storm plays out *within* a phase — by the
        phase boundary every evicted page has already re-faulted and the
        damage is done.  Checking the window per fault lets the re-plan
        fire mid-storm, while there is still unmapped demand to re-aim at
        surviving capacity.
        """
        if self._watchdog_tripped or self.runtime is None:
            return
        threshold = self.options.hint_watchdog
        if threshold is None:
            return
        self._adaptive_check(threshold)

    def _reset_honor_window(self) -> None:
        physmem = self.vm.physmem
        self._honor_base_requests = physmem.hint_requests
        self._honor_base_honored = physmem.hints_honored

    def _adaptive_check(self, threshold: float, boundary: bool = False) -> None:
        """Adaptive CDPC: re-plan colors transactionally instead of giving up.

        The honor rate is judged over a *window* — faults since the last
        re-plan (or healthy phase boundary) — because a re-plan is
        supposed to repair the rate going forward; the cumulative rate
        would keep a single early collapse visible forever and re-trigger
        endlessly.  A window is a *collapse* only when it is below the
        watchdog threshold AND below
        :attr:`EngineOptions.adaptive_collapse_ratio` of the best healthy
        window seen, so a plan that merely starts mediocre (capacity was
        already tight at load time) does not burn the re-plan budget.

        On collapse the plan's faulting classes are packed onto surviving
        grantable capacity (see
        :class:`repro.osmodel.dynamic.AdaptiveCdpc`), the new hints are
        installed, and the hottest stale pages migrate with the same
        shootdown/copy cost model the dynamic recolorer pays.  After
        :attr:`EngineOptions.adaptive_max_replans` re-plans the mode
        concedes and falls back to the dynamic recolorer, exactly like a
        plain watchdog trip.
        """
        physmem = self.vm.physmem
        window_requests = physmem.hint_requests - self._honor_base_requests
        if window_requests < 8:  # too few samples to judge
            return
        window_honored = physmem.hints_honored - self._honor_base_honored
        rate = window_honored / window_requests
        ref = self._honor_ref_rate
        collapsed = (
            rate < threshold
            and ref is not None
            and rate < self.options.adaptive_collapse_ratio * ref
        )
        if not collapsed:
            if boundary or window_requests >= 64:
                # Healthy window: fold it into the reference rate and
                # start fresh.  Rolling the window intra-phase keeps the
                # judgment tracking the *recent* fault stream — without
                # it, the faults of a long healthy stretch average away
                # the first minutes of a collapse and the watchdog reacts
                # only after the damage is done.
                self._honor_ref_rate = rate if ref is None else max(ref, rate)
                self._reset_honor_window()
            return
        if (
            self.adaptive is not None
            and self.adaptive.total_replans >= self.options.adaptive_max_replans
        ):
            self._trip_watchdog(rate, threshold)
            return
        if self.adaptive is None:
            from repro.osmodel.dynamic import AdaptiveCdpc

            self.adaptive = AdaptiveCdpc(
                self.vm,
                self.ms,
                plan_colors=dict(self.runtime.hints),
                max_migrations=self.options.recolor_max_per_step,
                on_degradation=self.degradation_log.record,
            )
        if not any(self.adaptive.demand_by_color()):
            # Nothing unmapped: the collapse already played out and there
            # is no future demand to re-aim.  Start a fresh window rather
            # than burning a re-plan on a no-op.
            self._reset_honor_window()
            return
        with self.obs.tracer.span(
            "cdpc.replan", honor_rate=round(rate, 4)
        ) as span:
            event = self.adaptive.replan(rate)
            span.set(migrations=len(event.migrations), aborted=event.aborted)
        if isinstance(self.vm.policy, CdpcHintPolicy):
            self.vm.policy.install_hints(event.hints)
        for migration in event.migrations:
            self.page_cache.pop(migration.vpage, None)
            self.ms.shootdown(migration.vpage)
        if event.cost_ns:
            stats = self.ms.stats.cpus
            for cpu in range(self.num_cpus):
                stats[cpu].overhead_ns["kernel"] += event.cost_ns
            self._sync_clocks(max(self.clocks) + event.cost_ns)
        # Fresh window: judge the re-planned hints on their own faults.
        self._reset_honor_window()

    # ------------------------------------------------------------------
    # Setup and initialization

    def deliver_cdpc(self) -> None:
        assert self.runtime is not None
        delivery = self.options.resolved_delivery()
        if delivery == "madvise":
            hints = self.runtime.hints
            if self.injector is not None:
                hints = self.injector.filter_hints(hints)
            self.vm.madvise_colors(hints)
        elif delivery == "touch":
            # Serialized user-level faulting, charged to the master.
            order = self.runtime.touch_order()
            if self.injector is not None:
                order = self.injector.filter_touch_order(order)
            t = self.clocks[0]
            stats = self.ms.stats.cpus[0]
            for vpage in order:
                if self.vm.ensure_mapped(vpage, cpu=0):
                    t += self.vm.PAGE_FAULT_NS
                    stats.overhead_ns["kernel"] += self.vm.PAGE_FAULT_NS
            self._sync_clocks(t)
        else:
            raise ValueError(f"unknown CDPC delivery {delivery!r}")

    def init_pages_order(self) -> list[int]:
        """Page fault order of the program's initialization loops."""
        psz = self.config.page_size
        order: list[int] = []
        for group in self.program.effective_init_groups():
            page_lists = [list(self.layout.pages(name, psz)) for name in group]
            longest = max(len(pages) for pages in page_lists)
            for index in range(longest):
                for pages in page_lists:
                    if index < len(pages):
                        order.append(pages[index])
        if self.options.init_jitter > 1 and isinstance(
            self._native_policy(), BinHoppingPolicy
        ):
            order = self._jitter(order, self.options.init_jitter)
        return order

    def _native_policy(self) -> MappingPolicy:
        policy = self.vm.policy
        if isinstance(policy, CdpcHintPolicy):
            return policy.fallback
        return policy

    def _jitter(self, order: list[int], window: int) -> list[int]:
        result = list(order)
        for start in range(0, len(result), window):
            chunk = result[start : start + window]
            self._rng.shuffle(chunk)
            result[start : start + window] = chunk
        return result

    def run_init(self) -> None:
        """Master initializes every array page (the paper's init section)."""
        psz = self.config.page_size
        t = self.clocks[0]
        stats = self.ms.stats.cpus[0]
        line = self.config.l2.line_size
        order = self.init_pages_order()
        if self.options.fast_path:
            t = self._run_init_fast(order, psz, line, t, stats)
        else:
            for vpage in order:
                if self.vm.ensure_mapped(vpage, cpu=0):
                    t += self.vm.PAGE_FAULT_NS
                    stats.overhead_ns["kernel"] += self.vm.PAGE_FAULT_NS
                base = self.vm.page_table.frame_of(vpage) * psz
                self.page_cache[vpage] = base
                # Touch each line of the page once (initialization writes).
                for offset in range(0, psz, line):
                    result = self.ms.access(
                        0, t, vpage * psz + offset, base + offset, is_write=True
                    )
                    t += self.config.cycle_ns + result.stall_ns + result.kernel_ns
        self._sync_clocks(t)
        self.init_ns = t

    def _run_init_fast(self, order, psz, line, t, stats) -> float:
        """Init pass through the flattened fast path.

        The init loop writes each line of each page in page order, so it
        is expressible as one reference stream; the fast path faults a
        page at its first touch, exactly when the oracle's
        ``ensure_mapped`` would.  Only page-fault time is charged to the
        kernel overhead category (TLB service time advances the clock but
        is not overhead here — matching the oracle above).
        """
        addrs: list[int] = []
        for vpage in order:
            start = vpage * psz
            addrs.extend(range(start, start + psz, line))
        n = len(addrs)
        page_shift = psz.bit_length() - 1
        page_mask = psz - 1
        stream = RefStream(
            addrs=addrs,
            flags=[1] * n,  # initialization writes
            prefetch=None,
            vpages=[a >> page_shift for a in addrs],
            offsets=[a & page_mask for a in addrs],
            vlines=addrs,  # already line-aligned
            fast_kinds=[0] * n,  # writes never take the hit filter
        )
        runner = fast_loop_runner(self.ms, self.vm, self.page_cache, 0, stream)
        next(runner)
        t, _kernel_total, fault_kernel = runner.send(
            (0, n, t, self.config.cycle_ns, 1)
        )
        runner.close()
        stats.overhead_ns["kernel"] += fault_kernel
        return t

    def _sync_clocks(self, value: float) -> None:
        for cpu in range(self.num_cpus):
            self.clocks[cpu] = value

    # ------------------------------------------------------------------
    # Steady state

    def run_phase(self, phase, record: bool) -> Optional[PhaseResult]:
        if self._sampler is not None:
            self._sampler.recording = record
        if self.injector is not None:
            self.injector.on_phase_boundary()
        if self.churn is not None:
            self._churn_beat()
        bus = self.ms.bus
        if record:
            self.ms.stats = MachineStats.for_cpus(self.num_cpus)
            bus_before = dict(bus.busy_ns)
        t0 = self.clocks[0]
        occurrence = self._phase_occurrence.get(phase.name, 0)
        self._phase_occurrence[phase.name] = occurrence + 1
        scale = occurrence_scale(phase.miss_variation, occurrence, phase.name)
        for loop in phase.loops:
            self.run_loop(loop, fraction_scale=scale)
        self._run_sequential_tail(self.clocks[0] - t0)
        if self.recolorer is not None:
            self._dynamic_recolor_step()
        self._watchdog_check()
        self._run_invariant_sweep()
        if not record:
            return None
        bus_delta = {
            kind.value: bus.busy_ns[kind] - bus_before[kind] for kind in bus.busy_ns
        }
        return PhaseResult(
            name=phase.name,
            occurrences=phase.occurrences,
            stats=self.ms.stats,
            wall_ns=self.clocks[0] - t0,
            bus_busy_ns=bus_delta,
        )

    def _dynamic_recolor_step(self) -> None:
        """Run the dynamic policy's inspect-and-migrate at a phase boundary.

        Migration cost (page copies plus a TLB shootdown on every
        processor) is charged as kernel time to all processors — the
        inter-processor interference the paper predicts for dynamic
        recoloring on multiprocessors.
        """
        events, cost_ns = self.recolorer.step(self.clocks[0])
        if not events:
            return
        for event in events:
            self.page_cache.pop(event.vpage, None)
            self.ms.shootdown(event.vpage)
        stats = self.ms.stats.cpus
        for cpu in range(self.num_cpus):
            stats[cpu].overhead_ns["kernel"] += cost_ns
        self._sync_clocks(max(self.clocks) + cost_ns)

    def _run_sequential_tail(self, phase_elapsed_ns: float) -> None:
        """Unparallelized code at the end of each phase (sequential time).

        The master executes ``sequential_fraction`` of the phase's wall
        time as extra serial work while the slaves spin.
        """
        fraction = self.program.sequential_fraction
        if fraction <= 0 or phase_elapsed_ns <= 0:
            return
        extra = fraction * phase_elapsed_ns
        master = self.ms.stats.cpus[0]
        master.busy_ns += extra
        master.instructions += int(extra / self.config.cycle_ns)
        self.clocks[0] += extra
        for cpu in range(1, self.num_cpus):
            self.ms.stats.cpus[cpu].overhead_ns["sequential"] += extra
        self._sync_clocks(self.clocks[0])

    def run_loop(self, loop, fraction_scale: float = 1.0) -> None:
        schedule = schedule_loop(loop, self.num_cpus)
        traces = self._loop_traces(loop, schedule, fraction_scale)
        start = self.clocks[0]
        if loop.kind is LoopKind.PARALLEL:
            self._simulate_parallel(loop, traces)
            self._barrier()
        else:
            self._simulate_cpu(0, loop, traces[0], concurrent=1)
            elapsed = self.clocks[0] - start
            category = (
                "suppressed" if loop.kind is LoopKind.SUPPRESSED else "sequential"
            )
            for cpu in range(1, self.num_cpus):
                self.ms.stats.cpus[cpu].overhead_ns[category] += elapsed
            self._sync_clocks(self.clocks[0])

    def _loop_traces(self, loop, schedule, fraction_scale: float):
        """Generate (or fetch memoized) per-CPU traces for one loop.

        The cache key fingerprints every input that shapes the streams —
        loop + schedule, layout, machine geometry, simulation profile,
        prefetch plan and the occurrence-dependent fraction scale — so a
        hit is guaranteed to return bit-identical traces.
        """

        def generate():
            if self._tracegen_ns is None:
                return loop_traces(
                    loop,
                    schedule,
                    self.layout,
                    self.config,
                    self.options.profile,
                    self.prefetch_plan,
                    fraction_scale=fraction_scale,
                )
            started = time.perf_counter()
            traces = loop_traces(
                loop,
                schedule,
                self.layout,
                self.config,
                self.options.profile,
                self.prefetch_plan,
                fraction_scale=fraction_scale,
            )
            self._tracegen_ns.observe((time.perf_counter() - started) * 1e9)
            return traces

        if self._trace_cache is None:
            return generate()
        key = trace_key(
            schedule,
            self._layout_fp,
            self.config,
            self.options.profile,
            self._plan_fp,
            fraction_scale,
        )
        if self._tc_hits is not None:
            (self._tc_hits if key in self._trace_cache else self._tc_misses).inc()
        return self._trace_cache.get_or_generate(key, generate)

    def _barrier(self) -> None:
        clocks = self.clocks
        tmax = max(clocks)
        stats = self.ms.stats.cpus
        for cpu in range(self.num_cpus):
            stats[cpu].overhead_ns["load_imbalance"] += tmax - clocks[cpu]
        if self.num_cpus > 1:
            cost = 500.0 + 300.0 * math.log2(self.num_cpus)
            for cpu in range(self.num_cpus):
                stats[cpu].overhead_ns["synchronization"] += cost
            tmax += cost
        self._sync_clocks(tmax)

    def _simulate_parallel(self, loop, traces) -> None:
        """Run all processors' streams interleaved in clock order.

        Always advancing the processor with the smallest clock keeps bus
        requests arriving in (approximate) time order, which is what makes
        the contention model behave like a closed queueing system: each
        processor has at most one outstanding miss, so queueing delays
        bound themselves at saturation instead of growing with burst size.
        """
        clocks = self.clocks
        psz = self.config.page_size
        line = self.config.l2.line_size
        streams = [traces[cpu].ref_stream(psz, line) for cpu in range(self.num_cpus)]
        positions = [0] * self.num_cpus
        active = [cpu for cpu in range(self.num_cpus) if len(traces[cpu])]
        concurrent = len(active)
        if self.options.fast_path:
            runners = []
            for cpu in range(self.num_cpus):
                runner = self._runner_factory(
                    self.ms, self.vm, self.page_cache, cpu, streams[cpu],
                    fault_watch=self._fault_watch,
                )
                next(runner)
                runners.append(runner)
        else:
            runners = None
        if runners is not None and self._sampler is not None:
            self._simulate_parallel_sampled(loop, traces, runners, concurrent)
            for runner in runners:
                runner.close()
            return
        while active:
            cpu = min(active, key=clocks.__getitem__)
            end = min(positions[cpu] + _CHUNK, len(traces[cpu]))
            if runners is not None:
                self._run_chunk_fast(cpu, runners[cpu], loop, traces[cpu],
                                     positions[cpu], end, concurrent)
            else:
                self._run_chunk(cpu, loop, traces[cpu], streams[cpu],
                                positions[cpu], end, concurrent)
            positions[cpu] = end
            if end >= len(traces[cpu]):
                active.remove(cpu)
        if runners is not None:
            for runner in runners:
                runner.close()

    def _simulate_parallel_sampled(self, loop, traces, runners,
                                   concurrent) -> None:
        """Window-synchronized sampled execution of one parallel loop.

        Windows advance in lockstep across processors: window ``w`` is
        replayed only when *every* still-active processor can replay it
        (skip role with a recorded cluster delta); otherwise every
        processor simulates it, interleaved by clock within the window.
        The consensus rule keeps simulated windows realistic — all
        processors are simulating concurrently, so the bus contention a
        window measures is the contention the full run would see.  A
        skip-role window that gets simulated by consensus refreshes its
        cluster's delta like a validator.
        """
        sampler = self._sampler
        clocks = self.clocks
        stats_cpus = self.ms.stats.cpus
        states = [sampler.state_for(traces[cpu]) for cpu in range(self.num_cpus)]
        positions = [0] * self.num_cpus
        lengths = [len(traces[cpu]) for cpu in range(self.num_cpus)]
        w = 0
        while True:
            active = [
                cpu for cpu in range(self.num_cpus)
                if positions[cpu] < lengths[cpu]
            ]
            if not active:
                break
            all_skip = True
            for cpu in active:
                state = states[cpu]
                plan = state.plan
                if w >= plan.num_windows or plan.roles[w] != ROLE_SKIP:
                    all_skip = False
                    break
                record = state.records.get(plan.clusters[w])
                if record is None or not record.qualified():
                    all_skip = False
                    break
            if all_skip:
                for cpu in active:
                    state = states[cpu]
                    record = state.records[state.plan.clusters[w]]
                    add_scaled_cpu_stats(stats_cpus[cpu], record.delta, 1.0)
                    clocks[cpu] += record.dwall
                    record.skipped += 1
                    state.stale = True
                    positions[cpu] = state.plan.ends[w]
                if sampler.recording:
                    sampler.windows += len(active)
                    sampler.skipped += len(active)
            else:
                was_stale = {}
                for cpu in active:
                    state = states[cpu]
                    plan = state.plan
                    was_stale[cpu] = state.stale
                    state.stale = False
                    if w < plan.num_windows and plan.clusters[w] >= 0:
                        state.open_window = w
                        state.snap_clock = clocks[cpu]
                        state.snap_stats = copy_cpu_stats(stats_cpus[cpu])
                window_active = list(active)
                while window_active:
                    cpu = min(window_active, key=clocks.__getitem__)
                    wend = min((w + 1) * sampler.window, lengths[cpu])
                    end = min(positions[cpu] + _CHUNK, wend)
                    self._run_chunk_fast(cpu, runners[cpu], loop, traces[cpu],
                                         positions[cpu], end, concurrent)
                    positions[cpu] = end
                    if end >= wend:
                        window_active.remove(cpu)
                for cpu in active:
                    self._sampler_advance(states[cpu], cpu, positions[cpu],
                                          was_stale[cpu])
                if sampler.recording:
                    sampler.windows += len(active)
                    sampler.simulated += len(active)
            w += 1
        for state in states:
            if state is not None:
                sampler.flush_state(state)

    def _simulate_cpu(self, cpu, loop, trace, concurrent) -> None:
        stream = trace.ref_stream(self.config.page_size, self.config.l2.line_size)
        if self.options.fast_path:
            runner = self._runner_factory(self.ms, self.vm, self.page_cache,
                                          cpu, stream,
                                          fault_watch=self._fault_watch)
            next(runner)
            sampler = self._sampler
            if sampler is None:
                self._run_chunk_fast(cpu, runner, loop, trace, 0, len(trace),
                                     concurrent)
            else:
                state = sampler.state_for(trace)
                n = len(trace)
                pos = 0
                while pos < n:
                    skip_end = self._sampler_boundary(state, cpu, pos)
                    if skip_end is not None:
                        pos = skip_end
                        continue
                    was_stale = state.stale
                    state.stale = False
                    plan = state.plan
                    w = pos // plan.window
                    end = plan.ends[w] if w < plan.num_windows else n
                    self._run_chunk_fast(cpu, runner, loop, trace, pos, end,
                                         concurrent)
                    pos = end
                    self._sampler_advance(state, cpu, end, was_stale)
                if state is not None:
                    sampler.flush_state(state)
            runner.close()
        else:
            self._run_chunk(cpu, loop, trace, stream, 0, len(trace), concurrent)

    def _sampler_boundary(self, state, cpu, pos) -> Optional[int]:
        """Handle a sampling-window boundary at stream position ``pos``.

        Returns the window's end position when the window is replayed
        from its cluster leader's recorded delta (the caller jumps over
        it without simulating), or ``None`` when ``pos`` is mid-window
        or the window must simulate.  Simulated leader/validator windows
        open a statistics snapshot closed by :meth:`_sampler_advance`.
        """
        plan = state.plan
        if pos % plan.window:
            return None
        w = pos // plan.window
        if w >= plan.num_windows:
            return None
        sampler = self._sampler
        role = plan.roles[w]
        if role == ROLE_SKIP:
            record = state.records.get(plan.clusters[w])
            if record is not None and record.qualified():
                add_scaled_cpu_stats(self.ms.stats.cpus[cpu], record.delta, 1.0)
                self.clocks[cpu] += record.dwall
                record.skipped += 1
                state.stale = True
                if sampler.recording:
                    sampler.windows += 1
                    sampler.skipped += 1
                return plan.ends[w]
        if plan.clusters[w] >= 0:
            # Every simulated clusterable window is tracked: leaders and
            # validators for fresh samples, warm windows and unqualified
            # skip-role windows for substitution/qualification.
            state.open_window = w
            state.snap_clock = self.clocks[cpu]
            state.snap_stats = copy_cpu_stats(self.ms.stats.cpus[cpu])
        if sampler.recording:
            sampler.windows += 1
            sampler.simulated += 1
        return None

    def _sampler_advance(self, state, cpu, end, was_stale: bool = False) -> None:
        """Close the open sampled window once ``end`` reaches it.

        ``was_stale`` says whether this window ran against machine state
        left behind by replayed windows.  A fresh (non-stale) window is
        a trustworthy measurement: it refreshes the cluster's delta,
        contributes a variation sample, and arms the drift check.  A
        stale window (the ``ROLE_WARM`` re-warmer, or a skip-role window
        simulated by parallel consensus) exists to advance machine
        state, not to measure: its distorted statistics are replaced by
        the cluster's recorded delta so only fresh-state measurements
        enter the run totals.
        """
        w = state.open_window
        if w is None:
            return
        plan = state.plan
        if end < plan.ends[w]:
            return
        stats = self.ms.stats.cpus[cpu]
        delta = subtract_cpu_stats(stats, state.snap_stats)
        dwall = self.clocks[cpu] - state.snap_clock
        miss = float(sum(delta.l2_misses.values()))
        cid = plan.clusters[w]
        record = state.records.get(cid)
        if record is None:
            state.records[cid] = _ClusterRecord(delta, dwall, miss)
        elif not was_stale:
            if record.drifted_from(delta, dwall, miss):
                # The cluster's behaviour moved since the last fresh
                # sample: replaying its delta would extrapolate from the
                # wrong regime.  Disqualify it — remaining members
                # simulate (the paper's variation check, applied online).
                record.stable = False
                old_miss = float(sum(record.delta.l2_misses.values()))
                record.drift = max(record.drift, abs(miss - old_miss))
            record.delta = delta
            record.dwall = dwall
            record.samples.append(miss)
        else:
            old_miss = float(sum(record.delta.l2_misses.values()))
            stall = _ClusterRecord._stall_ns(delta)
            old_stall = _ClusterRecord._stall_ns(record.delta)
            if (
                abs(miss - old_miss) > 0.3 * max(miss, old_miss) + 4.0
                or abs(stall - old_stall)
                > 0.3 * max(stall, old_stall) + 1.0
            ):
                # The re-warming window measured a regime grossly unlike
                # the record.  Stale-state distortion stays well under
                # 15% on stationary streams, so a mismatch this size
                # means the stream itself moved while replays froze the
                # cache state that would have revealed it (apsi's
                # occurrence-to-occurrence warm-ups).  Keep the measured
                # statistics — they track the real state evolution —
                # disqualify the cluster, and charge the jump against
                # the replays already made.
                record.stable = False
                record.drift = max(record.drift, abs(miss - old_miss))
            else:
                add_scaled_cpu_stats(stats, delta, -1.0)
                add_scaled_cpu_stats(stats, record.delta, 1.0)
                record.skipped += 1
        state.open_window = None
        state.snap_stats = None

    def _run_chunk_fast(self, cpu, runner, loop, trace, start, end,
                        concurrent) -> None:
        """Dispatch one chunk to the flattened fast path (repro.machine).

        Performs the same post-chunk accounting as the oracle
        :meth:`_run_chunk`; the per-reference simulation itself runs in
        the primed :func:`repro.machine.fast_path.loop_runner` generator,
        which is bit-identical to the oracle by construction (and by the
        equivalence suite).
        """
        if end <= start:
            return
        busy_per_ref = (
            self.config.cycle_ns * loop.instructions_per_word * trace.words_per_ref
        )
        fault_concurrency = (
            concurrent if self.injector is None
            else self.injector.fault_concurrency(concurrent)
        )
        prof = self._chunk_prof
        started = prof.tick() if prof is not None else None
        t, kernel_total, _faults = runner.send(
            (start, end, self.clocks[cpu], busy_per_ref, fault_concurrency)
        )
        if started is not None:
            prof.observe(started)
        stats = self.ms.stats.cpus[cpu]
        count = end - start
        stats.busy_ns += busy_per_ref * count
        stats.instructions += int(
            loop.instructions_per_word * trace.words_per_ref * count
        )
        stats.overhead_ns["kernel"] += kernel_total
        self.clocks[cpu] = t

    def _run_chunk(self, cpu, loop, trace, stream, start, end, concurrent) -> None:
        if end <= start:
            return
        prof = self._chunk_prof
        prof_started = prof.tick() if prof is not None else None
        ms = self.ms
        vm = self.vm
        page_table = vm.page_table
        page_cache = self.page_cache
        psz = self.config.page_size
        fault_ns = vm.PAGE_FAULT_NS
        busy_per_ref = (
            self.config.cycle_ns * loop.instructions_per_word * trace.words_per_ref
        )
        t = self.clocks[cpu]
        stats = ms.stats.cpus[cpu]
        kernel_total = 0.0

        # Shared per-trace columns; indexed by absolute position, never
        # sliced per chunk (the lists are reused across chunks and runs).
        addrs = stream.addrs
        flags = stream.flags
        prefetches = stream.prefetch
        vpages = stream.vpages
        offsets = stream.offsets
        access = ms.access
        fault_concurrency = (
            concurrent if self.injector is None
            else self.injector.fault_concurrency(concurrent)
        )
        fault_watch = self._fault_watch

        index = start
        while index < end:
            vpage = vpages[index]
            base = page_cache.get(vpage)
            if base is None:
                if not page_table.is_mapped(vpage):
                    vm.fault(vpage, cpu, concurrent_faults=fault_concurrency)
                    t += fault_ns
                    kernel_total += fault_ns
                    if fault_watch is not None:
                        fault_watch()
                base = page_table.frame_of(vpage) * psz
                page_cache[vpage] = base
            if prefetches is not None:
                target = prefetches[index]
                if target:
                    tlb_strict = bool(target & 1)
                    target &= ~1
                    tpage = target // psz
                    tbase = page_cache.get(tpage)
                    if tbase is None:
                        # Target page not yet faulted: the prefetch is
                        # dropped exactly as a TLB-missing prefetch is.
                        stats.prefetches_issued += 1
                        stats.prefetches_dropped_tlb += 1
                    else:
                        t += ms.prefetch(
                            cpu, t, target, tbase + target % psz, tlb_strict
                        )
            flag = flags[index]
            result = access(cpu, t, addrs[index], base + offsets[index],
                            flag & 1, flag & 2)
            t += busy_per_ref + result[0] + result[1]
            kernel_total += result[1]
            index += 1

        count = end - start
        stats.busy_ns += busy_per_ref * count
        stats.instructions += int(
            loop.instructions_per_word * trace.words_per_ref * count
        )
        stats.overhead_ns["kernel"] += kernel_total
        self.clocks[cpu] = t
        if prof_started is not None:
            prof.observe(prof_started)

    # ------------------------------------------------------------------

    def run(self) -> RunResult:
        tracer = self.obs.tracer
        # Beat 0 of a churn schedule fires before initialization — the
        # analogue of the fault injector's initial pressure — so a
        # scenario can constrain the capacity the program initializes
        # under, not just perturb the steady state.
        if self.churn is not None:
            self._churn_beat()
        if self.options.cdpc:
            with tracer.span("cdpc.deliver", mode=self.options.resolved_delivery()):
                self.deliver_cdpc()
        with tracer.span("sim.init"):
            self.run_init()
        self._run_invariant_sweep()
        window = representative_window(self.program)
        with tracer.span("sim.warmup", phases=len(window.warmup)):
            for phase in window.warmup:
                self.run_phase(phase, record=False)
        total = MachineStats.for_cpus(self.num_cpus)
        wall = 0.0
        bus_busy: dict[str, float] = {}
        phase_results: list[PhaseResult] = []
        epochs = max(1, self.options.epochs)
        for epoch in range(epochs):
            for phase, weight in zip(window.measured, window.weights):
                scaled_weight = weight / epochs
                with tracer.span(
                    "sim.loop", phase=phase.name, weight=weight, epoch=epoch
                ) as span:
                    result = self.run_phase(phase, record=True)
                    assert result is not None
                    span.set(
                        wall_ns=result.wall_ns,
                        l2_misses=result.stats.total_l2_misses(),
                    )
                phase_results.append(result)
                add_scaled_stats(total, result.stats, scaled_weight)
                wall += result.wall_ns * scaled_weight
                for key, value in result.bus_busy_ns.items():
                    bus_busy[key] = bus_busy.get(key, 0.0) + value * scaled_weight
                if self._sampler is not None:
                    self._sampler.total_bound += (
                        self._sampler.take_phase_bound() * scaled_weight
                    )
        self._emit_run_metrics(total)
        if self.static_profile is not None:
            registry = self.obs.registry
            if registry.enabled:
                registry.histogram("staticmiss.analyze_ns").observe(
                    self.static_profile.analyze_ns
                )
                registry.gauge("staticmiss.predicted_misses").set(
                    self.static_profile.predicted_total()
                )
        sampling_report = None
        if self._sampler is not None:
            sampling_report = self._sampler.report(
                float(total.total_l2_misses()), self.options.sampling
            )
        result = RunResult(
            workload=self.program.name,
            policy=self.options.policy,
            num_cpus=self.num_cpus,
            config=self.config,
            cdpc=self.options.cdpc,
            prefetch=self.options.prefetch,
            aligned=self.options.aligned,
            stats=total,
            wall_ns=wall,
            init_ns=self.init_ns,
            bus_busy_ns=bus_busy,
            phases=phase_results,
            hint_honor_rate=self.vm.physmem.hint_honor_rate,
            array_misses=self._attribute_misses(),
            degradation=DegradationReport.collect(
                self.degradation_log,
                self.vm.physmem,
                aborted_recolor_steps=(
                    self.recolorer.aborted_steps if self.recolorer else 0
                ),
                invariant_checks=self._invariant_checks,
                injector=self.injector,
                churn=self.churn,
                adaptive=self.adaptive,
            ),
            obs=self.obs.report(),
            sampling=sampling_report,
        )
        if self.static_profile is not None:
            from repro.checker.staticmiss import StaticCheckError

            result.static_check = self.static_profile
            violations = self.static_profile.check(result)
            if violations:
                raise StaticCheckError(self.static_profile, violations)
        return result

    def _emit_run_metrics(self, total: MachineStats) -> None:
        """Publish end-of-run counters into the run's metrics registry.

        Emitting from the already-maintained simulator counters (instead
        of instrumenting every access) keeps the hot paths untouched; the
        registry is the read side, not the accounting of record.
        """
        registry = self.obs.registry
        if not registry.enabled:
            return
        total.emit_metrics(registry)
        self.ms.emit_metrics(registry)
        physmem = self.vm.physmem
        registry.counter("physmem.allocations").inc(physmem.allocations)
        registry.counter("physmem.hint_requests").inc(physmem.hint_requests)
        registry.counter("physmem.hints_honored").inc(physmem.hints_honored)
        registry.counter("physmem.reclaims").inc(physmem.reclaims)
        registry.counter("physmem.forced_failures").inc(physmem.forced_failures)
        registry.gauge("physmem.hint_honor_rate").set(physmem.hint_honor_rate)
        registry.gauge("engine.watchdog_tripped").set(float(self._watchdog_tripped))
        registry.counter("physmem.frames_revoked").inc(physmem.frames_revoked_total)
        registry.counter("physmem.frames_restored").inc(
            physmem.frames_restored_total
        )
        if self.adaptive is not None:
            registry.counter("engine.adaptive_replans").inc(
                self.adaptive.total_replans
            )
            registry.counter("engine.replan_migrations").inc(
                self.adaptive.total_migrations
            )

    def _attribute_misses(self) -> dict[str, int]:
        """Map per-frame miss counts back to the arrays that own them."""
        reverse = {
            frame: vpage for vpage, frame in self.vm.page_table.mappings()
        }
        psz = self.config.page_size
        attribution: dict[str, int] = {}
        for frame, count in self.ms.frame_misses.items():
            vpage = reverse.get(frame)
            if vpage is None:
                label = "other"
            else:
                vaddr = vpage * psz
                if vaddr >= INSTRUCTION_BASE:
                    label = "instructions"
                else:
                    label = self.layout.array_at(vaddr) or "other"
            attribution[label] = attribution.get(label, 0) + count
        return attribution


def run_program(
    program: Program, config: MachineConfig, options: Optional[EngineOptions] = None
) -> RunResult:
    """Simulate one program on one machine configuration.

    Warns when the program looks unscaled for a scaled machine (data set
    hundreds of times the cache on a ``scaled()`` config) — the usual
    symptom of passing full-size arrays to a 1/16 machine.  Scale the
    program with :meth:`Program.scaled` to match ``config.scale_factor``.
    """
    if config.scale_factor > 1 and program.data_set_bytes > 128 * config.l2.size:
        import warnings

        warnings.warn(
            f"program '{program.name}' has a {program.data_set_bytes >> 20}MB "
            f"data set on a machine scaled 1/{config.scale_factor} "
            f"({config.l2.size >> 10}KB cache); did you forget "
            f"program.scaled({config.scale_factor})?",
            stacklevel=2,
        )
    sim = _Simulation(program, config, options or EngineOptions())
    return sim.run()


def measure_occurrence_variation(
    program: Program,
    config: MachineConfig,
    options: Optional[EngineOptions] = None,
    repeats: int = 4,
) -> dict[str, dict[str, tuple[float, float, float]]]:
    """Re-measure each phase ``repeats`` times in the steady state.

    Reproduces the validation behind the representative-execution-window
    methodology (Section 3.2): the paper found that per-occurrence
    instruction counts and miss rates vary by less than 1% of the mean for
    every phase but one.  Returns, per phase, the (mean, std, cv) of the
    instruction count and the external-cache miss count across
    occurrences.
    """
    from repro.sim.windows import occurrence_variation

    sim = _Simulation(program, config, options or EngineOptions())
    if sim.options.cdpc:
        sim.deliver_cdpc()
    sim.run_init()
    for phase in program.phases:  # warmup, as in a normal run
        sim.run_phase(phase, record=False)
    report: dict[str, dict[str, tuple[float, float, float]]] = {}
    for phase in program.phases:
        instructions: list[float] = []
        misses: list[float] = []
        for _ in range(repeats):
            result = sim.run_phase(phase, record=True)
            assert result is not None
            instructions.append(float(result.stats.total_instructions()))
            misses.append(float(result.stats.total_l2_misses()))
        report[phase.name] = {
            "instructions": occurrence_variation(instructions),
            "misses": occurrence_variation(misses),
        }
    return report


def run_benchmark(
    name: str,
    config: MachineConfig,
    options: Optional[EngineOptions] = None,
    **option_overrides,
) -> RunResult:
    """Build a SPEC95fp workload at the machine's scale factor and run it."""
    from repro.workloads.specfp import get_workload

    workload = get_workload(name, scale=config.scale_factor)
    if options is None:
        options = EngineOptions(**option_overrides)
    elif option_overrides:
        options = replace(options, **option_overrides)
    return run_program(workload.program, config, options)
