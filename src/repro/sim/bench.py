"""End-to-end engine benchmark: the Figure 6 policy sweep, both paths.

``python -m repro bench`` times the full policy sweep (every workload under
page coloring, bin hopping and CDPC) twice:

* **reference** — the pre-optimization engine configuration: per-reference
  oracle path (``fast_path=False``), no trace cache, serial execution;
* **fast** — the optimized configuration: vectorized hit filter, trace
  caching, and the sweep fanned out over worker processes.

Both legs produce ``RunResult`` objects whose serialized form
(``to_dict()``) must match bit-for-bit — the simulated statistics are
deterministic, so any divergence is a fast-path bug and the bench exits
nonzero.  The timing summary is written to ``BENCH_engine.json``.

Both legs run as one fault-tolerant campaign each (:mod:`repro.harness`),
so the JSON also carries the campaign's retry/failure counters, and the
report file is published atomically (tmp+rename).

A measurement caveat that matters when reading the numbers: host wall
clock on small shared machines is noisy (CPU steal, frequency scaling),
and the parallel leg's win depends on the CPUs the process may actually
use (``os.sched_getaffinity``).  On a single-core host the fast leg runs
serially and the reported speedup is the hit filter + trace cache alone
(about 2x); the 3x end-to-end figure needs the process pool, i.e. a
multi-core host.
"""

from __future__ import annotations

import json
import os
import platform
import time
from dataclasses import replace
from pathlib import Path
from typing import Optional, Sequence

from repro.harness.campaign import CampaignOptions
from repro.harness.report import CampaignReport
from repro.harness.store import atomic_write_text
from repro.harness.watchdog import available_cpus
from repro.machine.config import MachineConfig
from repro.sim.engine import EngineOptions
from repro.sim.results import RunResult
from repro.sim.sweeps import STANDARD_POLICIES, Task, run_task_campaign
from repro.sim.trace_cache import default_trace_cache

#: Default output file, at the repository root when run from there.
BENCH_OUTPUT = "BENCH_engine.json"


def modeled_references(results: dict[str, dict[str, RunResult]]) -> int:
    """Total memory references modeled across a sweep's results."""
    total = 0
    for sweep in results.values():
        for result in sweep.values():
            for cpu in result.stats.cpus:
                total += cpu.l1d_hits + cpu.l1d_misses
                total += cpu.l1i_hits + cpu.l1i_misses
    return total


def _run_leg(
    workloads: Sequence[str],
    config: MachineConfig,
    options: EngineOptions,
    max_workers: Optional[int],
    campaign: Optional[CampaignOptions] = None,
) -> tuple[dict[str, dict[str, RunResult]], float, float, CampaignReport]:
    """Run the policy sweep for every workload as ONE campaign.

    Returns ``(results, wall_s, cpu_s, report)``.  Batching every
    workload×policy pair into a single campaign keeps the pool saturated
    across workload boundaries and yields one fault-tolerance report for
    the whole leg.  ``cpu_s`` is the parent process's CPU time only —
    when the sweep fans out to worker processes it understates the true
    compute, so wall seconds is the headline figure.
    """
    labels = list(STANDARD_POLICIES)
    tasks: list[Task] = [
        (workload, config, replace(options, **overrides))
        for workload in workloads
        for overrides in STANDARD_POLICIES.values()
    ]
    wall0 = time.perf_counter()
    cpu0 = time.process_time()
    outcome = run_task_campaign(
        tasks,
        max_workers=max_workers,
        campaign=campaign or CampaignOptions(strict=True),
    )
    outcome.raise_if_failed()
    wall = time.perf_counter() - wall0
    cpu = time.process_time() - cpu0
    results: dict[str, dict[str, RunResult]] = {}
    for position, workload in enumerate(workloads):
        chunk = outcome.results[position * len(labels):(position + 1) * len(labels)]
        results[workload] = dict(zip(labels, chunk))
    return results, wall, cpu, outcome.report


def find_divergences(
    fast: dict[str, dict[str, RunResult]],
    reference: dict[str, dict[str, RunResult]],
) -> list[str]:
    """Fields where the fast path's serialized results differ from the oracle."""
    divergences: list[str] = []
    for workload, sweep in reference.items():
        for label, ref_result in sweep.items():
            fast_dict = fast[workload][label].to_dict()
            ref_dict = ref_result.to_dict()
            if fast_dict == ref_dict:
                continue
            fields = [key for key in ref_dict if fast_dict.get(key) != ref_dict[key]]
            divergences.append(f"{workload}/{label}: {', '.join(fields)}")
    return divergences


def run_bench(
    config: MachineConfig,
    workloads: Sequence[str],
    options: Optional[EngineOptions] = None,
    max_workers: Optional[int] = None,
    campaign: Optional[CampaignOptions] = None,
) -> dict:
    """Time the Figure 6 sweep on both engine paths and compare results."""
    base = options or EngineOptions()
    reference_options = replace(base, fast_path=False, trace_cache=False)
    fast_options = replace(base, fast_path=True, trace_cache=True)

    ref_results, ref_wall, ref_cpu, ref_report = _run_leg(
        workloads, config, reference_options, max_workers=1
    )

    cache = default_trace_cache()
    cache.clear()
    fast_results, fast_wall, fast_cpu, fast_report = _run_leg(
        workloads, config, fast_options, max_workers=max_workers,
        campaign=campaign,
    )

    divergences = find_divergences(fast_results, ref_results)
    refs = modeled_references(fast_results)
    workers = max_workers if max_workers is not None else available_cpus()
    return {
        "benchmark": "figure6_policy_sweep",
        "machine": {
            "num_cpus": config.num_cpus,
            "scale_factor": config.scale_factor,
        },
        "workloads": list(workloads),
        "policies": list(STANDARD_POLICIES),
        "host": {
            "cpu_count": os.cpu_count(),
            "available_cpus": available_cpus(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "reference": {
            "fast_path": False,
            "trace_cache": False,
            "max_workers": 1,
            "wall_s": ref_wall,
            "cpu_s": ref_cpu,
            "refs_per_sec": refs / ref_wall if ref_wall > 0 else 0.0,
            "campaign": ref_report.to_dict(),
        },
        "fast": {
            "fast_path": True,
            "trace_cache": True,
            "max_workers": workers,
            "wall_s": fast_wall,
            "cpu_s": fast_cpu,
            "refs_per_sec": refs / fast_wall if fast_wall > 0 else 0.0,
            "trace_cache_stats": cache.stats(),
            "campaign": fast_report.to_dict(),
        },
        "modeled_references": refs,
        "speedup": ref_wall / fast_wall if fast_wall > 0 else 0.0,
        "equivalent": not divergences,
        "divergences": divergences,
    }


def write_bench(payload: dict, path: str = BENCH_OUTPUT) -> None:
    """Write the report atomically (tmp+rename) so a crash or a concurrent
    reader never observes a truncated ``BENCH_engine.json``."""
    atomic_write_text(Path(path), json.dumps(payload, indent=2) + "\n")
