"""End-to-end engine benchmark: the Figure 6 policy sweep, every path.

``python -m repro bench`` times the full policy sweep (every workload under
page coloring, bin hopping and CDPC) in four legs:

* **reference** — the pre-optimization engine configuration: per-reference
  oracle path (``fast_path=False``), no trace cache, serial execution;
* **fast/cold** — the optimized exact configuration (columnar epoch
  kernel, trace caching, worker pool) against an empty trace cache: what
  a first run pays, and the headline ``speedup``;
* **fast/warm** — the same configuration rerun against the now-warm
  cache, where traces, columnar block indexes and sampling plans are all
  reused: what every subsequent run in a session pays (``speedup_warm``);
* **sampled** — ``sampling="access_vector"`` on the warm cache: the
  approximate leg.  Its results are *not* bit-identical; instead the
  bench reports its maximum/mean relative MCPI error against the oracle
  and whether every extrapolated miss total fell inside its reported
  error bound (``speedup_sampled``);
* **static_predict** — no simulation at all: the symbolic analyzer
  (:mod:`repro.checker.staticmiss`) predicts every cell's external-cache
  miss total, and the bench scores it against the oracle leg's measured
  results — analyzer wall time, relative prediction error, and the bound
  contract (every oracle measurement inside the predicted interval);
* **service** — the coloring service's overhead floor: an in-process
  :class:`~repro.service.server.ColoringService` on the synthetic engine
  is driven with a cached-heavy request mix, and the leg reports
  client-observed p50/p99 latency, throughput, shed rate and cache hit
  rate (plus a zero-loss check) — the numbers the service's SLO gate in
  CI is calibrated against.

The exact legs produce ``RunResult`` objects whose serialized form
(``to_dict()``) must match the oracle bit-for-bit — the simulated
statistics are deterministic, so any divergence is a fast-path bug and
the bench exits nonzero.  The timing summary is written to
``BENCH_engine.json``, which also keeps a bounded ``history`` array (git
revision, date, throughput, speedups) appended on every
:func:`write_bench` so regressions are visible across commits.

Every leg runs as one fault-tolerant campaign (:mod:`repro.harness`), so
the JSON also carries per-leg retry/failure counters, and the report file
is published atomically (tmp+rename).

A measurement caveat that matters when reading the numbers: host wall
clock on small shared machines is noisy (CPU steal, frequency scaling),
and the parallel legs' win depends on the CPUs the process may actually
use (``os.sched_getaffinity``).  On a single-core host the fast legs run
serially and the reported speedup is the columnar kernel + trace cache
alone; the end-to-end figure needs the process pool, i.e. a multi-core
host.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import time
from dataclasses import replace
from datetime import datetime, timezone
from pathlib import Path
from typing import Optional, Sequence

from repro.harness.campaign import CampaignOptions
from repro.harness.report import CampaignReport
from repro.harness.store import atomic_write_text
from repro.harness.watchdog import available_cpus
from repro.machine.config import MachineConfig
from repro.sim.engine import EngineOptions
from repro.sim.results import RunResult
from repro.sim.sweeps import STANDARD_POLICIES, Task, run_task_campaign
from repro.sim.trace_cache import default_trace_cache

#: Default output file, at the repository root when run from there.
BENCH_OUTPUT = "BENCH_engine.json"

#: Maximum number of entries kept in the report's ``history`` array.
HISTORY_LIMIT = 100


def modeled_references(results: dict[str, dict[str, RunResult]]) -> int:
    """Total memory references modeled across a sweep's results."""
    total = 0
    for sweep in results.values():
        for result in sweep.values():
            for cpu in result.stats.cpus:
                total += cpu.l1d_hits + cpu.l1d_misses
                total += cpu.l1i_hits + cpu.l1i_misses
    return total


def _run_leg(
    workloads: Sequence[str],
    config: MachineConfig,
    options: EngineOptions,
    max_workers: Optional[int],
    campaign: Optional[CampaignOptions] = None,
) -> tuple[dict[str, dict[str, RunResult]], float, float, CampaignReport]:
    """Run the policy sweep for every workload as ONE campaign.

    Returns ``(results, wall_s, cpu_s, report)``.  Batching every
    workload×policy pair into a single campaign keeps the pool saturated
    across workload boundaries and yields one fault-tolerance report for
    the whole leg.  ``cpu_s`` is the parent process's CPU time only —
    when the sweep fans out to worker processes it understates the true
    compute, so wall seconds is the headline figure.
    """
    labels = list(STANDARD_POLICIES)
    tasks: list[Task] = [
        (workload, config, replace(options, **overrides))
        for workload in workloads
        for overrides in STANDARD_POLICIES.values()
    ]
    wall0 = time.perf_counter()
    cpu0 = time.process_time()
    outcome = run_task_campaign(
        tasks,
        max_workers=max_workers,
        campaign=campaign or CampaignOptions(strict=True),
    )
    outcome.raise_if_failed()
    wall = time.perf_counter() - wall0
    cpu = time.process_time() - cpu0
    results: dict[str, dict[str, RunResult]] = {}
    for position, workload in enumerate(workloads):
        chunk = outcome.results[position * len(labels):(position + 1) * len(labels)]
        results[workload] = dict(zip(labels, chunk))
    return results, wall, cpu, outcome.report


def find_divergences(
    fast: dict[str, dict[str, RunResult]],
    reference: dict[str, dict[str, RunResult]],
) -> list[str]:
    """Fields where the fast path's serialized results differ from the oracle."""
    divergences: list[str] = []
    for workload, sweep in reference.items():
        for label, ref_result in sweep.items():
            fast_dict = fast[workload][label].to_dict()
            ref_dict = ref_result.to_dict()
            if fast_dict == ref_dict:
                continue
            fields = [key for key in ref_dict if fast_dict.get(key) != ref_dict[key]]
            divergences.append(f"{workload}/{label}: {', '.join(fields)}")
    return divergences


def sampled_accuracy(
    sampled: dict[str, dict[str, RunResult]],
    reference: dict[str, dict[str, RunResult]],
) -> dict:
    """Accuracy of the sampled leg against the oracle, per run and overall.

    Reports the maximum and mean relative MCPI error, and checks the
    sampler's own error-bound contract: every run's extrapolated miss
    total must lie within ``miss_error_bound`` of the oracle's exact
    count (violations are listed by run).
    """
    mcpi_errors: list[float] = []
    violations: list[str] = []
    for workload, sweep in reference.items():
        for label, ref_result in sweep.items():
            s = sampled[workload][label]
            ref_mcpi = ref_result.mcpi()
            if ref_mcpi > 0:
                mcpi_errors.append(abs(s.mcpi() - ref_mcpi) / ref_mcpi)
            report = s.sampling or {}
            exact = float(sum(ref_result.miss_breakdown().values()))
            estimated = report.get("estimated_l2_misses", 0.0)
            bound = report.get("miss_error_bound", 0.0)
            if abs(estimated - exact) > bound:
                violations.append(f"{workload}/{label}")
    return {
        "mcpi_max_rel_error": max(mcpi_errors) if mcpi_errors else 0.0,
        "mcpi_mean_rel_error": (
            sum(mcpi_errors) / len(mcpi_errors) if mcpi_errors else 0.0
        ),
        "bound_violations": violations,
        "within_bound": not violations,
    }


def static_prediction_accuracy(
    reference: dict[str, dict[str, RunResult]],
    config: MachineConfig,
    options: EngineOptions,
) -> dict:
    """The static_predict leg: symbolic prediction scored against the oracle.

    Reuses the reference leg's measured results rather than simulating
    again, so the leg's wall time is pure analyzer time.  Each cell is
    judged twice: the *bound contract* (the oracle's measured miss
    components must fall inside the predictor's self-reported intervals
    — a violation is an analyzer bug) and *point accuracy* (relative
    error of the predicted total, the figure-of-merit the paper-style
    ``static_vs_sim`` figure plots).
    """
    from repro.checker.staticmiss import StaticMissProfile, predict_workload

    cells: list[dict] = []
    errors: list[float] = []
    analyze_ns: list[float] = []
    violations: list[str] = []
    wall0 = time.perf_counter()
    for workload, sweep in reference.items():
        for label, ref_result in sweep.items():
            overrides = STANDARD_POLICIES[label]
            prediction = predict_workload(
                workload,
                config,
                policy=overrides["policy"],
                cdpc=bool(overrides.get("cdpc", False)),
                profile=options.profile,
                seed=options.seed,
                init_jitter=options.init_jitter,
                epochs=options.epochs,
            )
            measured = StaticMissProfile.measured_from(ref_result)["total"]
            predicted = prediction.predicted_total()
            if measured > 0:
                error = abs(predicted - measured) / measured
            else:
                error = 0.0 if predicted == 0 else 1.0
            errors.append(error)
            analyze_ns.append(prediction.analyze_ns)
            if prediction.check(ref_result):
                violations.append(f"{workload}/{label}")
            cells.append(
                {
                    "workload": workload,
                    "policy": label,
                    "predicted": predicted,
                    "measured": measured,
                    "rel_error": error,
                    "analyze_ns": prediction.analyze_ns,
                }
            )
    wall = time.perf_counter() - wall0
    analyze_ns.sort()
    return {
        "wall_s": wall,
        "cells": cells,
        "max_rel_error": max(errors) if errors else 0.0,
        "mean_rel_error": sum(errors) / len(errors) if errors else 0.0,
        "median_analyze_ns": (
            analyze_ns[len(analyze_ns) // 2] if analyze_ns else 0.0
        ),
        "bound_violations": violations,
        "within_bound": not violations,
    }


def service_latency_leg(requests: int = 400, seed: int = 0) -> dict:
    """The service leg: cached-heavy loadgen against an in-process service.

    Uses the synthetic engine (no simulation) so the numbers isolate the
    *service's* own overhead — admission, batching, fingerprint caching,
    response plumbing — rather than engine time.  Single worker, no
    deadline, so batches execute serially in-thread and the leg stays
    sub-second.
    """
    import asyncio

    from repro.service import ColoringService, LoadSpec, run_loadgen

    async def _run() -> dict:
        async with ColoringService(
            engine="synthetic",
            batch_window_s=0.001,
            max_batch=16,
            queue_limit=10_000,
            quota_rate=1e9,
            quota_burst=1e9,
        ) as service:
            spec = LoadSpec(
                requests=requests,
                tenants=4,
                concurrency=32,
                cached_fraction=0.8,
                hot_keys=8,
                seed=seed,
            )
            report = (await run_loadgen(service.submit, spec)).to_dict()
            counters = service.metrics_snapshot()["counters"]
        return {
            "requests": report["sent"],
            "wall_s": report["elapsed_s"],
            "throughput_rps": report["throughput_rps"],
            "latency_ms": report["latency_ms"],
            "shed_rate": report["shed_rate"],
            "cache_hit_rate": report["cache_hit_rate"],
            "coalesced": report["coalesced"],
            "batches": counters.get("service.batches", 0),
            "lost": len(report["lost"]),
            "zero_loss": not report["lost"],
        }

    return asyncio.run(_run())


def run_bench(
    config: MachineConfig,
    workloads: Sequence[str],
    options: Optional[EngineOptions] = None,
    max_workers: Optional[int] = None,
    campaign: Optional[CampaignOptions] = None,
) -> dict:
    """Time the Figure 6 sweep on every engine path and compare results."""
    base = options or EngineOptions()
    reference_options = replace(base, fast_path=False, trace_cache=False)
    fast_options = replace(base, fast_path=True, trace_cache=True)
    sampled_options = replace(fast_options, sampling="access_vector")

    ref_results, ref_wall, ref_cpu, ref_report = _run_leg(
        workloads, config, reference_options, max_workers=1
    )

    cache = default_trace_cache()
    cache.clear()
    cold_results, cold_wall, cold_cpu, cold_report = _run_leg(
        workloads, config, fast_options, max_workers=max_workers,
        campaign=campaign,
    )
    # Second pass over the (now warm) trace cache: traces, columnar block
    # indexes and window plans are all reused.  With a worker pool the
    # warmth is per-worker, so warm == cold on multi-process runs.
    warm_results, warm_wall, warm_cpu, warm_report = _run_leg(
        workloads, config, fast_options, max_workers=max_workers,
        campaign=campaign,
    )
    sampled_results, sampled_wall, sampled_cpu, sampled_report = _run_leg(
        workloads, config, sampled_options, max_workers=max_workers,
        campaign=campaign,
    )

    divergences = find_divergences(cold_results, ref_results)
    divergences += [
        f"warm:{line}" for line in find_divergences(warm_results, ref_results)
    ]
    accuracy = sampled_accuracy(sampled_results, ref_results)
    static_predict = static_prediction_accuracy(ref_results, config, base)
    service_leg = service_latency_leg()
    refs = modeled_references(cold_results)
    workers = max_workers if max_workers is not None else available_cpus()
    return {
        "benchmark": "figure6_policy_sweep",
        "machine": {
            "num_cpus": config.num_cpus,
            "scale_factor": config.scale_factor,
        },
        "workloads": list(workloads),
        "policies": list(STANDARD_POLICIES),
        "host": {
            "cpu_count": os.cpu_count(),
            "available_cpus": available_cpus(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "reference": {
            "fast_path": False,
            "trace_cache": False,
            "max_workers": 1,
            "wall_s": ref_wall,
            "cpu_s": ref_cpu,
            "refs_per_sec": refs / ref_wall if ref_wall > 0 else 0.0,
            "campaign": ref_report.to_dict(),
        },
        "fast": {
            "fast_path": True,
            "trace_cache": True,
            "max_workers": workers,
            # Mirrors the cold leg: BENCH consumers predating the
            # warm/sampled split read these flat keys.
            "wall_s": cold_wall,
            "cpu_s": cold_cpu,
            "refs_per_sec": refs / cold_wall if cold_wall > 0 else 0.0,
            "trace_cache_stats": cache.stats(),
            "campaign": cold_report.to_dict(),
            "cold": {
                "wall_s": cold_wall,
                "cpu_s": cold_cpu,
                "refs_per_sec": refs / cold_wall if cold_wall > 0 else 0.0,
                "campaign": cold_report.to_dict(),
            },
            "warm": {
                "wall_s": warm_wall,
                "cpu_s": warm_cpu,
                "refs_per_sec": refs / warm_wall if warm_wall > 0 else 0.0,
                "trace_cache_stats": cache.stats(),
                "campaign": warm_report.to_dict(),
            },
        },
        "sampled": {
            "sampling": "access_vector",
            "max_workers": workers,
            "wall_s": sampled_wall,
            "cpu_s": sampled_cpu,
            "refs_per_sec": refs / sampled_wall if sampled_wall > 0 else 0.0,
            "campaign": sampled_report.to_dict(),
            **accuracy,
        },
        "static_predict": static_predict,
        "service": service_leg,
        "modeled_references": refs,
        "speedup": ref_wall / cold_wall if cold_wall > 0 else 0.0,
        "speedup_warm": ref_wall / warm_wall if warm_wall > 0 else 0.0,
        "speedup_sampled": (
            ref_wall / sampled_wall if sampled_wall > 0 else 0.0
        ),
        "equivalent": not divergences,
        "divergences": divergences,
    }


def _git_revision() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    return out.stdout.strip() if out.returncode == 0 else "unknown"


def _history_entry(payload: dict) -> dict:
    return {
        "revision": _git_revision(),
        "date": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "refs_per_sec": payload.get("fast", {}).get("refs_per_sec", 0.0),
        "speedup": payload.get("speedup", 0.0),
        "speedup_warm": payload.get("speedup_warm", 0.0),
        "speedup_sampled": payload.get("speedup_sampled", 0.0),
        "static_max_rel_error": payload.get("static_predict", {}).get(
            "max_rel_error", 0.0
        ),
        "static_analyze_ms": payload.get("static_predict", {}).get(
            "median_analyze_ns", 0.0
        ) / 1e6,
        "service_p50_ms": payload.get("service", {}).get("latency_ms", {}).get(
            "p50", 0.0
        ),
        "service_p99_ms": payload.get("service", {}).get("latency_ms", {}).get(
            "p99", 0.0
        ),
        "service_rps": payload.get("service", {}).get("throughput_rps", 0.0),
        "service_cache_hit_rate": payload.get("service", {}).get(
            "cache_hit_rate", 0.0
        ),
    }


def write_bench(payload: dict, path: str = BENCH_OUTPUT) -> None:
    """Publish the report, carrying the ``history`` array forward.

    The previous report's history (if the file exists and parses) is
    extended with one entry for this run — git revision, UTC date,
    fast-leg throughput and the three speedups — and truncated to the
    most recent :data:`HISTORY_LIMIT` entries, so the JSON doubles as a
    lightweight perf-regression log across commits.  The file is written
    atomically (tmp+rename) so a crash or a concurrent reader never
    observes a truncated ``BENCH_engine.json``.
    """
    target = Path(path)
    history: list[dict] = []
    if target.exists():
        try:
            previous = json.loads(target.read_text())
            if isinstance(previous, dict):
                old = previous.get("history", [])
                if isinstance(old, list):
                    history = old
        except (ValueError, OSError):
            history = []
    history = (history + [_history_entry(payload)])[-HISTORY_LIMIT:]
    payload = dict(payload)
    payload["history"] = history
    atomic_write_text(target, json.dumps(payload, indent=2) + "\n")
