"""Sweep helpers: the comparison patterns every experiment repeats.

The figures of the paper are sweeps — over mapping policies (Figures 6/9),
processor counts (Figure 2), or cache configurations (Figure 7).  These
helpers run them with one call and return labeled results.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Optional, Sequence

from repro.machine.config import MachineConfig
from repro.sim.engine import EngineOptions, run_benchmark
from repro.sim.results import RunResult

#: The three policy configurations compared throughout the paper.
STANDARD_POLICIES: dict[str, dict] = {
    "page_coloring": {"policy": "page_coloring"},
    "bin_hopping": {"policy": "bin_hopping"},
    "cdpc": {"policy": "bin_hopping", "cdpc": True},
}


def policy_sweep(
    workload: str,
    config: MachineConfig,
    policies: Optional[dict[str, dict]] = None,
    options: Optional[EngineOptions] = None,
) -> dict[str, RunResult]:
    """Run one workload under each labeled policy configuration."""
    base = options or EngineOptions()
    results: dict[str, RunResult] = {}
    for label, overrides in (policies or STANDARD_POLICIES).items():
        results[label] = run_benchmark(
            workload, config, replace(base, **overrides)
        )
    return results


def cpu_sweep(
    workload: str,
    make_config: Callable[[int], MachineConfig],
    cpu_counts: Sequence[int] = (1, 2, 4, 8, 16),
    options: Optional[EngineOptions] = None,
) -> dict[int, RunResult]:
    """Run one workload across processor counts (the Figure 2/6 x-axis)."""
    return {
        cpus: run_benchmark(workload, make_config(cpus), options)
        for cpus in cpu_counts
    }


def speedup_table(
    results: dict, baseline_key
) -> dict:
    """Wall-clock speedups of every entry relative to one baseline."""
    baseline = results[baseline_key]
    return {
        key: baseline.wall_ns / result.wall_ns
        for key, result in results.items()
    }
