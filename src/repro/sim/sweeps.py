"""Sweep helpers: the comparison patterns every experiment repeats.

The figures of the paper are sweeps — over mapping policies (Figures 6/9),
processor counts (Figure 2), or cache configurations (Figure 7).  These
helpers run them with one call and return labeled results.

Individual runs are independent, so sweeps fan out over a process pool
managed by the fault-tolerant campaign orchestrator
(:mod:`repro.harness`): completed results can be persisted durably the
moment they finish (atomic writes, fingerprint-keyed), crashed or hung
workers are replaced and their tasks retried with backoff, and an
interrupted or partially-failed campaign returns the completed subset
plus a :class:`~repro.harness.report.CampaignReport` instead of losing
everything.  Every run is fully described by a picklable ``(workload,
config, options)`` triple that is materialized in the parent process
(callers may pass lambdas for config factories; they are evaluated before
dispatch).  Results always come back in task order, so a parallel sweep
returns exactly the same dict — same keys, same insertion order, same
values — as ``max_workers=1``, which runs in-process with no executor at
all.

``policy_sweep``/``cpu_sweep``/``run_tasks`` keep their historical
fail-fast contract (any task failure raises).  The ``*_campaign``
variants accept :class:`~repro.harness.campaign.CampaignOptions` for
durable stores, resume, retries, timeouts and graceful degradation.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Optional, Sequence

from repro.harness.campaign import Campaign, CampaignOptions, run_campaign
from repro.harness.store import task_fingerprint
from repro.machine.config import MachineConfig
from repro.sim.engine import EngineOptions, run_benchmark
from repro.sim.results import RunResult

#: The three policy configurations compared throughout the paper.
STANDARD_POLICIES: dict[str, dict] = {
    "page_coloring": {"policy": "page_coloring"},
    "bin_hopping": {"policy": "bin_hopping"},
    "cdpc": {"policy": "bin_hopping", "cdpc": True},
}

#: A task is one benchmark run, fully materialized and picklable.
Task = tuple[str, MachineConfig, Optional[EngineOptions]]

#: The historical fail-fast contract of the plain sweep helpers.
STRICT = CampaignOptions(strict=True)


def _run_task(task: Task) -> RunResult:
    """Execute one benchmark run; module-level so it pickles to workers."""
    workload, config, options = task
    return run_benchmark(workload, config, options)


def _task_label(task: Task) -> str:
    workload, config, options = task
    opts = options or EngineOptions()
    tags = [opts.policy]
    if opts.cdpc:
        tags.append("cdpc")
    if opts.prefetch:
        tags.append("pf")
    return f"{workload}@{config.num_cpus}cpu[{'+'.join(tags)}]"


def run_task_campaign(
    tasks: Sequence[Task],
    max_workers: Optional[int] = None,
    campaign: Optional[CampaignOptions] = None,
) -> Campaign:
    """Run benchmark tasks under the fault-tolerance harness.

    ``max_workers=None`` sizes the pool to the CPUs this process may
    actually use (``os.sched_getaffinity``, so cgroup- or taskset-limited
    hosts are not oversubscribed), capped at the task count;
    ``max_workers=1`` is the serial fallback and executes in-process,
    with no worker processes and no pickling of results.  Output order
    matches task order in both modes.
    """
    task_list = list(tasks)
    return run_campaign(
        _run_task,
        task_list,
        labels=[_task_label(task) for task in task_list],
        keys=[task_fingerprint(task) for task in task_list],
        options=campaign or STRICT,
        max_workers=max_workers,
    )


def run_tasks(
    tasks: Sequence[Task],
    max_workers: Optional[int] = None,
    campaign: Optional[CampaignOptions] = None,
) -> list[RunResult]:
    """Run independent benchmark tasks, in parallel where it helps.

    Fail-fast by default: a task that ultimately fails (after any retries
    the campaign options allow) raises instead of returning a partial
    list.  Use :func:`run_task_campaign` for graceful degradation.
    """
    outcome = run_task_campaign(tasks, max_workers=max_workers, campaign=campaign)
    outcome.raise_if_failed()
    return list(outcome.results)


def _policy_tasks(
    workload: str,
    config: MachineConfig,
    policies: Optional[dict[str, dict]],
    options: Optional[EngineOptions],
) -> tuple[list[str], list[Task]]:
    base = options or EngineOptions()
    labeled = policies or STANDARD_POLICIES
    tasks: list[Task] = [
        (workload, config, replace(base, **overrides))
        for overrides in labeled.values()
    ]
    return list(labeled.keys()), tasks


def policy_campaign(
    workload: str,
    config: MachineConfig,
    policies: Optional[dict[str, dict]] = None,
    options: Optional[EngineOptions] = None,
    max_workers: Optional[int] = None,
    campaign: Optional[CampaignOptions] = None,
) -> tuple[dict[str, RunResult], Campaign]:
    """Policy sweep under the harness: (completed subset, full campaign)."""
    labels, tasks = _policy_tasks(workload, config, policies, options)
    outcome = run_task_campaign(tasks, max_workers=max_workers, campaign=campaign)
    completed = {
        label: result
        for label, result in zip(labels, outcome.results)
        if result is not None
    }
    return completed, outcome


def policy_sweep(
    workload: str,
    config: MachineConfig,
    policies: Optional[dict[str, dict]] = None,
    options: Optional[EngineOptions] = None,
    max_workers: Optional[int] = None,
) -> dict[str, RunResult]:
    """Run one workload under each labeled policy configuration."""
    completed, outcome = policy_campaign(
        workload, config, policies=policies, options=options,
        max_workers=max_workers,
    )
    outcome.raise_if_failed()
    return completed


def _cpu_tasks(
    workload: str,
    make_config: Callable[[int], MachineConfig],
    cpu_counts: Sequence[int],
    options: Optional[EngineOptions],
) -> tuple[list[int], list[Task]]:
    counts = list(cpu_counts)
    tasks: list[Task] = [
        (workload, make_config(cpus), options) for cpus in counts
    ]
    return counts, tasks


def cpu_campaign(
    workload: str,
    make_config: Callable[[int], MachineConfig],
    cpu_counts: Sequence[int] = (1, 2, 4, 8, 16),
    options: Optional[EngineOptions] = None,
    max_workers: Optional[int] = None,
    campaign: Optional[CampaignOptions] = None,
) -> tuple[dict[int, RunResult], Campaign]:
    """CPU-count sweep under the harness: (completed subset, campaign)."""
    counts, tasks = _cpu_tasks(workload, make_config, cpu_counts, options)
    outcome = run_task_campaign(tasks, max_workers=max_workers, campaign=campaign)
    completed = {
        count: result
        for count, result in zip(counts, outcome.results)
        if result is not None
    }
    return completed, outcome


def cpu_sweep(
    workload: str,
    make_config: Callable[[int], MachineConfig],
    cpu_counts: Sequence[int] = (1, 2, 4, 8, 16),
    options: Optional[EngineOptions] = None,
    max_workers: Optional[int] = None,
) -> dict[int, RunResult]:
    """Run one workload across processor counts (the Figure 2/6 x-axis).

    ``make_config`` is called in the parent for every count, so it may be
    a lambda: only the resulting ``MachineConfig`` crosses the process
    boundary.
    """
    completed, outcome = cpu_campaign(
        workload, make_config, cpu_counts=cpu_counts, options=options,
        max_workers=max_workers,
    )
    outcome.raise_if_failed()
    return completed


def speedup_table(
    results: dict, baseline_key
) -> dict:
    """Wall-clock speedups of every entry relative to one baseline."""
    baseline = results[baseline_key]
    return {
        key: baseline.wall_ns / result.wall_ns
        for key, result in results.items()
    }
