"""Sweep helpers: the comparison patterns every experiment repeats.

The figures of the paper are sweeps — over mapping policies (Figures 6/9),
processor counts (Figure 2), or cache configurations (Figure 7).  These
helpers run them with one call and return labeled results.

Individual runs are independent, so sweeps fan out over a
``concurrent.futures.ProcessPoolExecutor``.  Every run is fully described
by a picklable ``(workload, config, options)`` triple that is materialized
in the parent process (callers may pass lambdas for config factories; they
are evaluated before dispatch).  Results always come back in task order,
so a parallel sweep returns exactly the same dict — same keys, same
insertion order, same values — as ``max_workers=1``, which runs in-process
with no executor at all.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import replace
from typing import Callable, Optional, Sequence

from repro.machine.config import MachineConfig
from repro.sim.engine import EngineOptions, run_benchmark
from repro.sim.results import RunResult

#: The three policy configurations compared throughout the paper.
STANDARD_POLICIES: dict[str, dict] = {
    "page_coloring": {"policy": "page_coloring"},
    "bin_hopping": {"policy": "bin_hopping"},
    "cdpc": {"policy": "bin_hopping", "cdpc": True},
}


def _run_task(task: tuple[str, MachineConfig, Optional[EngineOptions]]) -> RunResult:
    """Execute one benchmark run; module-level so it pickles to workers."""
    workload, config, options = task
    return run_benchmark(workload, config, options)


def run_tasks(
    tasks: Sequence[tuple[str, MachineConfig, Optional[EngineOptions]]],
    max_workers: Optional[int] = None,
) -> list[RunResult]:
    """Run independent benchmark tasks, in parallel where it helps.

    ``max_workers=None`` sizes the pool to ``os.cpu_count()`` (capped at
    the task count); ``max_workers=1`` — or a single-CPU host — is the
    serial fallback and executes in-process, with no worker processes and
    therefore no pickling of results.  Output order matches task order in
    both modes.
    """
    tasks = list(tasks)
    if max_workers is None:
        max_workers = os.cpu_count() or 1
    max_workers = max(1, min(max_workers, len(tasks)))
    if max_workers == 1:
        return [_run_task(task) for task in tasks]
    with ProcessPoolExecutor(max_workers=max_workers) as pool:
        return list(pool.map(_run_task, tasks))


def policy_sweep(
    workload: str,
    config: MachineConfig,
    policies: Optional[dict[str, dict]] = None,
    options: Optional[EngineOptions] = None,
    max_workers: Optional[int] = None,
) -> dict[str, RunResult]:
    """Run one workload under each labeled policy configuration."""
    base = options or EngineOptions()
    labeled = policies or STANDARD_POLICIES
    tasks = [
        (workload, config, replace(base, **overrides))
        for overrides in labeled.values()
    ]
    results = run_tasks(tasks, max_workers=max_workers)
    return dict(zip(labeled.keys(), results))


def cpu_sweep(
    workload: str,
    make_config: Callable[[int], MachineConfig],
    cpu_counts: Sequence[int] = (1, 2, 4, 8, 16),
    options: Optional[EngineOptions] = None,
    max_workers: Optional[int] = None,
) -> dict[int, RunResult]:
    """Run one workload across processor counts (the Figure 2/6 x-axis).

    ``make_config`` is called in the parent for every count, so it may be
    a lambda: only the resulting ``MachineConfig`` crosses the process
    boundary.
    """
    counts = list(cpu_counts)
    tasks = [(workload, make_config(cpus), options) for cpus in counts]
    results = run_tasks(tasks, max_workers=max_workers)
    return dict(zip(counts, results))


def speedup_table(
    results: dict, baseline_key
) -> dict:
    """Wall-clock speedups of every entry relative to one baseline."""
    baseline = results[baseline_key]
    return {
        key: baseline.wall_ns / result.wall_ns
        for key, result in results.items()
    }
