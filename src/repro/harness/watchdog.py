"""Worker-pool supervision: heartbeats, hang detection, pool replacement.

``concurrent.futures`` alone cannot tell a slow task from a dead one: a
future for a hung worker never completes, and a SIGKILLed worker breaks
the whole pool, poisoning every sibling future with
``BrokenProcessPool``.  The supervisor closes both gaps:

* every task is dispatched through :func:`_supervised_call`, which first
  records its start time in a shared heartbeat table — so the parent
  knows which tasks have *actually started* (queued tasks must not be
  charged for a crash) and how long each has been running;
* :meth:`PoolSupervisor.overdue` compares heartbeats against a per-task
  wall-clock deadline, and :meth:`PoolSupervisor.restart` terminates the
  old pool's processes (SIGTERM, then SIGKILL) and provisions a fresh
  one, so a single hung or murdered worker costs one pool restart — not
  the campaign.

Pool sizing honors CPU affinity: on cgroup- or taskset-limited hosts
``os.cpu_count()`` reports the machine, not the quota, and sizing a pool
to it oversubscribes workers.  :func:`available_cpus` asks the scheduler
first.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.managers
import os
import time
from concurrent.futures import Future, ProcessPoolExecutor
from typing import Any, Callable, Iterable, MutableMapping, Optional


def available_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware).

    ``os.sched_getaffinity(0)`` reflects cgroup cpusets and ``taskset``
    restrictions; ``os.cpu_count()`` is the fallback on platforms without
    it (macOS, Windows).
    """
    getaffinity = getattr(os, "sched_getaffinity", None)
    if getaffinity is not None:
        try:
            return len(getaffinity(0)) or 1
        except OSError:
            pass
    return os.cpu_count() or 1


def _supervised_call(
    fn: Callable[[Any], Any],
    index: int,
    task: Any,
    heartbeat: Optional[MutableMapping[int, float]],
) -> Any:
    """Worker-side wrapper: stamp the heartbeat table, then run the task."""
    if heartbeat is not None:
        try:
            heartbeat[index] = time.time()
        except Exception:
            pass  # a dying manager must not take the task down with it
    return fn(task)


class PoolSupervisor:
    """Owns the ``ProcessPoolExecutor`` and its heartbeat table.

    The executor is created lazily and replaced wholesale on
    :meth:`restart`; the heartbeat table (a ``multiprocessing.Manager``
    dict, shared with every worker) survives restarts so the orchestrator
    can attribute crashes to started tasks even after the pool is gone.
    """

    def __init__(self, max_workers: int) -> None:
        self.max_workers = max(1, max_workers)
        self.restarts = 0
        self._manager: Optional[multiprocessing.managers.SyncManager] = None
        self._heartbeat: Optional[MutableMapping[int, float]] = None
        self._executor: Optional[ProcessPoolExecutor] = None

    # ------------------------------------------------------------------
    # lifecycle

    def _ensure(self) -> ProcessPoolExecutor:
        if self._manager is None:
            self._manager = multiprocessing.Manager()
            self._heartbeat = self._manager.dict()
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.max_workers)
        return self._executor

    def submit(self, fn: Callable[[Any], Any], index: int, task: Any) -> Future:
        self.clear_heartbeat(index)
        executor = self._ensure()
        return executor.submit(_supervised_call, fn, index, task, self._heartbeat)

    def restart(self) -> None:
        """Kill the current pool (hung workers included) and start fresh."""
        self._terminate()
        self.restarts += 1
        self._ensure()

    def shutdown(self, graceful: bool = True) -> None:
        if self._executor is not None:
            if graceful:
                self._executor.shutdown(wait=True, cancel_futures=True)
                self._executor = None
            else:
                self._terminate()
        if self._manager is not None:
            self._manager.shutdown()
            self._manager = None
            self._heartbeat = None

    def _terminate(self) -> None:
        executor = self._executor
        self._executor = None
        if executor is None:
            return
        processes = list(getattr(executor, "_processes", {}).values())
        executor.shutdown(wait=False, cancel_futures=True)
        for proc in processes:
            try:
                proc.terminate()
            except Exception:
                pass
        deadline = time.monotonic() + 2.0
        for proc in processes:
            try:
                proc.join(max(0.0, deadline - time.monotonic()))
                if proc.is_alive():
                    proc.kill()
                    proc.join(1.0)
            except Exception:
                pass

    # ------------------------------------------------------------------
    # heartbeat queries

    def started_at(self, index: int) -> Optional[float]:
        """When task ``index`` began executing on a worker, if it has."""
        if self._heartbeat is None:
            return None
        try:
            return self._heartbeat.get(index)
        except Exception:
            return None

    def clear_heartbeat(self, index: int) -> None:
        if self._heartbeat is None:
            return
        try:
            self._heartbeat.pop(index, None)
        except Exception:
            pass

    def overdue(
        self, indices: Iterable[int], timeout_s: Optional[float]
    ) -> list[int]:
        """Started tasks that have exceeded the wall-clock deadline."""
        if timeout_s is None:
            return []
        now = time.time()
        late = []
        for index in indices:
            started = self.started_at(index)
            if started is not None and now - started > timeout_s:
                late.append(index)
        return late
