"""Crash-consistent on-disk result store for experiment campaigns.

Every completed run is durable the moment it finishes: results are
pickled to a temporary file in the store directory and published with an
atomic ``os.replace``, so a reader (or a resumed campaign) only ever sees
complete entries — a crash mid-write leaves at most a ``*.tmp`` file that
is ignored and swept on the next open.  A ``manifest.json`` (also written
atomically) records a human-readable inventory; the ``*.pkl`` payload
files are the source of truth and the manifest is rebuilt from them when
they disagree.

Entries are keyed by :func:`task_fingerprint` — a digest of the *full*
task identity in the same spirit as the trace cache's keys
(:mod:`repro.sim.trace_cache`): the workload name plus every field of the
frozen ``MachineConfig`` and ``EngineOptions`` dataclasses, including
nested simulation profiles and fault plans.  Anything that can change a
run's result lands on a different key, so a store can never serve a stale
result for a changed configuration, and unrelated campaigns can safely
share one store directory.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Optional

__all__ = ["ResultStore", "task_fingerprint", "atomic_write_text"]

#: Bumped whenever the persisted result format changes incompatibly;
#: part of every fingerprint so old stores are ignored, not misread.
STORE_VERSION = 1


def task_fingerprint(task: tuple) -> str:
    """Digest of one ``(workload, config, options)`` task's full identity.

    Frozen dataclasses ``repr()`` every field deterministically (nested
    ones included), so the digest covers the same complete input set the
    trace cache keys on — policy, CDPC delivery, profile, fault plan,
    seeds, scale — without hand-listing fields that could drift.
    """
    payload = repr((STORE_VERSION, task)).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()


def atomic_write_text(path: Path, text: str) -> None:
    """Write ``text`` to ``path`` via tmp+fsync+rename (crash-consistent)."""
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


class ResultStore:
    """Durable, resumable storage of completed task results.

    ``put`` publishes atomically; ``get`` self-heals by discarding
    entries that fail to unpickle (truncated by a crash before atomic
    publication existed, or written by an incompatible version) so a
    corrupt entry degrades to "re-run that task", never to a wedged
    campaign.
    """

    MANIFEST = "manifest.json"

    def __init__(self, root: "str | os.PathLike[str]") -> None:
        self.root = Path(root)
        self.results_dir = self.root / "results"
        self.results_dir.mkdir(parents=True, exist_ok=True)
        self._sweep_tmp_files()

    # ------------------------------------------------------------------
    # payloads

    def _path(self, fingerprint: str) -> Path:
        return self.results_dir / f"{fingerprint}.pkl"

    def __contains__(self, fingerprint: str) -> bool:
        return self._path(fingerprint).exists()

    def __len__(self) -> int:
        return len(self.fingerprints())

    def fingerprints(self) -> list[str]:
        """Fingerprints of every durable entry, sorted for determinism."""
        return sorted(path.stem for path in self.results_dir.glob("*.pkl"))

    def get(self, fingerprint: str) -> Optional[Any]:
        """Load one result, or ``None`` if absent or unreadable."""
        path = self._path(fingerprint)
        try:
            with open(path, "rb") as handle:
                return pickle.load(handle)
        except FileNotFoundError:
            return None
        except Exception:
            # Self-heal: a result that cannot be loaded is as good as
            # missing — drop it so the task is simply re-run.
            try:
                path.unlink()
            except OSError:
                pass
            return None

    def put(
        self,
        fingerprint: str,
        result: Any,
        label: str = "",
        attempts: int = 1,
    ) -> None:
        """Durably publish one completed result (atomic tmp+rename)."""
        path = self._path(fingerprint)
        fd, tmp_name = tempfile.mkstemp(
            dir=self.results_dir, prefix=fingerprint + ".", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(result, handle, protocol=pickle.HIGHEST_PROTOCOL)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self._record(fingerprint, label=label, attempts=attempts)

    # ------------------------------------------------------------------
    # manifest

    @property
    def manifest_path(self) -> Path:
        return self.root / self.MANIFEST

    def manifest(self) -> dict:
        """The manifest, reconciled against the payload files on disk."""
        try:
            with open(self.manifest_path) as handle:
                manifest = json.load(handle)
            entries = manifest.get("entries", {})
            if not isinstance(entries, dict):
                raise ValueError("malformed manifest")
        except (OSError, ValueError):
            entries = {}
        # Payload files are the source of truth: drop manifest entries
        # whose payload vanished, add stubs for payloads it never saw
        # (e.g. a crash between os.replace and the manifest update).
        durable = set(self.fingerprints())
        entries = {fp: meta for fp, meta in entries.items() if fp in durable}
        for fp in durable:
            entries.setdefault(fp, {"label": "", "attempts": 0})
        return {"version": STORE_VERSION, "entries": entries}

    def _record(self, fingerprint: str, label: str, attempts: int) -> None:
        manifest = self.manifest()
        manifest["entries"][fingerprint] = {"label": label, "attempts": attempts}
        atomic_write_text(
            self.manifest_path,
            json.dumps(manifest, indent=2, sort_keys=True) + "\n",
        )

    # ------------------------------------------------------------------
    # housekeeping

    def _sweep_tmp_files(self) -> None:
        """Remove leftovers of writes interrupted before publication."""
        for leftover in self.results_dir.glob("*.tmp"):
            try:
                leftover.unlink()
            except OSError:
                pass

    def clear(self) -> None:
        """Forget every stored result (the directory itself is kept)."""
        for path in self.results_dir.glob("*.pkl"):
            try:
                path.unlink()
            except OSError:
                pass
        try:
            self.manifest_path.unlink()
        except OSError:
            pass
