"""Crash-consistent on-disk result store for experiment campaigns.

Every completed run is durable the moment it finishes: results are
pickled to a temporary file in the store directory and published with an
atomic ``os.replace``, so a reader (or a resumed campaign) only ever sees
complete entries — a crash mid-write leaves at most a ``*.tmp`` file that
is ignored and swept on the next open.  A ``manifest.json`` journal
records a human-readable inventory; the ``*.pkl`` payload files are the
source of truth and the manifest is rebuilt from them when they disagree.

Entries are keyed by :func:`task_fingerprint` — a digest of the *full*
task identity in the same spirit as the trace cache's keys
(:mod:`repro.sim.trace_cache`): the workload name plus every field of the
frozen ``MachineConfig`` and ``EngineOptions`` dataclasses, including
nested simulation profiles and fault plans.  Anything that can change a
run's result lands on a different key, so a store can never serve a stale
result for a changed configuration, and unrelated campaigns can safely
share one store directory.

The manifest is an append-only JSON-lines journal: recording a completed
entry appends one fsynced line instead of rewriting the whole inventory,
so manifest maintenance stays O(1) per result no matter how large the
store grows (the coloring service leans on this for its request/plan
cache).  A SIGKILL mid-append can leave at most one torn (partially
written) trailing line; :meth:`ResultStore.manifest` tolerates it — the
torn line is skipped and, because the ``*.pkl`` payloads are the source
of truth, the entry it described is re-adopted as a stub.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Optional

__all__ = ["ResultStore", "task_fingerprint", "atomic_write_text"]

#: Bumped whenever the persisted result format changes incompatibly;
#: part of every fingerprint so old stores are ignored, not misread.
STORE_VERSION = 1


def task_fingerprint(task: tuple) -> str:
    """Digest of one ``(workload, config, options)`` task's full identity.

    Frozen dataclasses ``repr()`` every field deterministically (nested
    ones included), so the digest covers the same complete input set the
    trace cache keys on — policy, CDPC delivery, profile, fault plan,
    seeds, scale — without hand-listing fields that could drift.
    """
    payload = repr((STORE_VERSION, task)).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()


def atomic_write_text(path: Path, text: str) -> None:
    """Write ``text`` to ``path`` via tmp+fsync+rename (crash-consistent)."""
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


class ResultStore:
    """Durable, resumable storage of completed task results.

    ``put`` publishes atomically; ``get`` self-heals by discarding
    entries that fail to unpickle (truncated by a crash before atomic
    publication existed, or written by an incompatible version) so a
    corrupt entry degrades to "re-run that task", never to a wedged
    campaign.
    """

    MANIFEST = "manifest.json"

    def __init__(self, root: "str | os.PathLike[str]") -> None:
        self.root = Path(root)
        self.results_dir = self.root / "results"
        self.results_dir.mkdir(parents=True, exist_ok=True)
        self._sweep_tmp_files()

    # ------------------------------------------------------------------
    # payloads

    def _path(self, fingerprint: str) -> Path:
        return self.results_dir / f"{fingerprint}.pkl"

    def __contains__(self, fingerprint: str) -> bool:
        return self._path(fingerprint).exists()

    def __len__(self) -> int:
        return len(self.fingerprints())

    def fingerprints(self) -> list[str]:
        """Fingerprints of every durable entry, sorted for determinism."""
        return sorted(path.stem for path in self.results_dir.glob("*.pkl"))

    def get(self, fingerprint: str) -> Optional[Any]:
        """Load one result, or ``None`` if absent or unreadable."""
        path = self._path(fingerprint)
        try:
            with open(path, "rb") as handle:
                return pickle.load(handle)
        except FileNotFoundError:
            return None
        except Exception:
            # Self-heal: a result that cannot be loaded is as good as
            # missing — drop it so the task is simply re-run.
            try:
                path.unlink()
            except OSError:
                pass
            return None

    def put(
        self,
        fingerprint: str,
        result: Any,
        label: str = "",
        attempts: int = 1,
    ) -> None:
        """Durably publish one completed result (atomic tmp+rename)."""
        path = self._path(fingerprint)
        fd, tmp_name = tempfile.mkstemp(
            dir=self.results_dir, prefix=fingerprint + ".", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(result, handle, protocol=pickle.HIGHEST_PROTOCOL)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self._record(fingerprint, label=label, attempts=attempts)

    # ------------------------------------------------------------------
    # manifest

    @property
    def manifest_path(self) -> Path:
        return self.root / self.MANIFEST

    def _journal_entries(self) -> dict[str, dict]:
        """Raw journal lines parsed into fingerprint → metadata.

        Later lines win (an entry re-recorded after a retry supersedes the
        first record).  Undecodable lines are skipped: a SIGKILL between
        ``write`` and the page hitting disk can tear the trailing line,
        and a torn line describes a payload that is durable on its own —
        the reconciliation pass below re-adopts it as a stub.  A torn
        *interior* line cannot happen with append-only O_APPEND writes,
        but is tolerated the same way rather than wedging the store.
        """
        entries: dict[str, dict] = {}
        try:
            with open(self.manifest_path, "rb") as handle:
                raw = handle.read()
        except OSError:
            return entries
        text = raw.decode("utf-8", errors="replace")
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                fingerprint = record["fingerprint"]
            except (ValueError, TypeError, KeyError):
                continue  # torn or corrupt line: payloads are the truth
            entries[str(fingerprint)] = {
                "label": str(record.get("label", "")),
                "attempts": int(record.get("attempts", 0)),
            }
        if not entries:
            # Legacy whole-file manifest (pre-journal format, an indented
            # JSON object whose individual lines never parse): adopt its
            # entries so an old store keeps its labels across the upgrade.
            try:
                legacy = json.loads(text)
                if isinstance(legacy, dict) and isinstance(
                    legacy.get("entries"), dict
                ):
                    entries.update(legacy["entries"])
            except ValueError:
                pass
        return entries

    def manifest(self) -> dict:
        """The manifest, reconciled against the payload files on disk."""
        entries = self._journal_entries()
        # Payload files are the source of truth: drop manifest entries
        # whose payload vanished, add stubs for payloads it never saw
        # (e.g. a crash between os.replace and the manifest append, or a
        # torn trailing journal line).
        durable = set(self.fingerprints())
        entries = {fp: meta for fp, meta in entries.items() if fp in durable}
        for fp in durable:
            entries.setdefault(fp, {"label": "", "attempts": 0})
        return {"version": STORE_VERSION, "entries": entries}

    def _record(self, fingerprint: str, label: str, attempts: int) -> None:
        """Append one journal line durably (O(1) per completed result)."""
        line = json.dumps(
            {"fingerprint": fingerprint, "label": label, "attempts": attempts},
            sort_keys=True,
        )
        if self.manifest_path.exists() and not self._journal_format():
            # First append after an upgrade: rewrite the legacy manifest
            # as a journal so the two formats never mix in one file.
            self._compact(extra=None)
        with open(self.manifest_path, "ab") as handle:
            # A previous SIGKILL mid-append can leave a torn line with no
            # trailing newline; start on a fresh line so the new record
            # never concatenates onto the torn one.
            if handle.tell() > 0:
                with open(self.manifest_path, "rb") as reader:
                    reader.seek(-1, os.SEEK_END)
                    needs_newline = reader.read(1) != b"\n"
            else:
                needs_newline = False
            payload = (b"\n" if needs_newline else b"") + line.encode("utf-8") + b"\n"
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())

    def _journal_format(self) -> bool:
        """Whether the manifest file is already in journal form.

        The legacy format is one indented JSON object spanning the whole
        file; its first line (``{``) never parses on its own, while every
        journal line is a self-contained record.
        """
        try:
            with open(self.manifest_path, encoding="utf-8") as handle:
                first = handle.readline().strip()
        except OSError:
            return True
        if not first:
            return True
        try:
            record = json.loads(first)
        except ValueError:
            # Either a legacy header line or a torn journal line; only
            # the legacy format starts with a bare "{" line.
            return first != "{"
        return isinstance(record, dict) and "fingerprint" in record

    def _compact(self, extra: Optional[dict] = None) -> None:
        """Atomically rewrite the journal with one line per live entry."""
        entries = self.manifest()["entries"]
        if extra:
            entries.update(extra)
        lines = [
            json.dumps(
                {"fingerprint": fp, "label": meta.get("label", ""),
                 "attempts": meta.get("attempts", 0)},
                sort_keys=True,
            )
            for fp, meta in sorted(entries.items())
        ]
        atomic_write_text(self.manifest_path, "".join(line + "\n" for line in lines))

    # ------------------------------------------------------------------
    # housekeeping

    def _sweep_tmp_files(self) -> None:
        """Remove leftovers of writes interrupted before publication."""
        for leftover in self.results_dir.glob("*.tmp"):
            try:
                leftover.unlink()
            except OSError:
                pass

    def clear(self) -> None:
        """Forget every stored result (the directory itself is kept)."""
        for path in self.results_dir.glob("*.pkl"):
            try:
                path.unlink()
            except OSError:
                pass
        try:
            self.manifest_path.unlink()
        except OSError:
            pass
