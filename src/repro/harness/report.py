"""Structured failure taxonomy and the per-campaign summary report.

A campaign never hides what happened to it: every task that could not be
completed is recorded as a :class:`TaskFailure` with a machine-readable
:class:`FailureKind`, and the whole run is summarized by a
:class:`CampaignReport` — attempts, retries, pool restarts, loaded-from-
store counts, elapsed wall time — that callers can log, serialize, or
assert on.  Graceful degradation means returning the completed subset
*plus* this report instead of raising.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class FailureKind(str, enum.Enum):
    """Why a task attempt (or a whole task) did not produce a result."""

    #: The task exceeded its wall-clock deadline; the worker was killed.
    TIMEOUT = "timeout"
    #: The worker process died (SIGKILL, segfault, OOM-kill) mid-task.
    CRASH = "crash"
    #: The task raised an ordinary Python exception.
    EXCEPTION = "exception"
    #: The campaign was interrupted before the task could run (Ctrl-C).
    CANCELLED = "cancelled"

    def __str__(self) -> str:  # "timeout", not "FailureKind.TIMEOUT"
        return self.value


@dataclass
class TaskFailure:
    """One task's final, unrecovered failure."""

    index: int
    label: str
    kind: FailureKind
    attempts: int
    message: str = ""

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "label": self.label,
            "kind": self.kind.value,
            "attempts": self.attempts,
            "message": self.message,
        }


@dataclass
class CampaignReport:
    """Accounting for one campaign: what ran, what retried, what failed."""

    #: Number of tasks submitted to the campaign.
    total: int = 0
    #: Tasks that ended with a result (loaded or executed).
    completed: int = 0
    #: Tasks whose results were loaded from the store (resume hits).
    loaded: int = 0
    #: Tasks actually executed this campaign (total - loaded - failed).
    executed: int = 0
    #: Task attempts dispatched, including retries.
    attempts: int = 0
    #: Attempts beyond the first, summed over all tasks.
    retries: int = 0
    #: Attempts lost to a sibling task breaking the pool or to a pool
    #: restart; requeued without being charged against the task's budget.
    requeued: int = 0
    #: Times the worker pool had to be replaced (crash or hung worker).
    pool_restarts: int = 0
    #: Failed attempts by kind, including ones later recovered by retry.
    failed_attempts: dict[str, int] = field(default_factory=dict)
    #: Final, unrecovered failures in task order.
    failures: list[TaskFailure] = field(default_factory=list)
    #: True when the campaign was cut short by KeyboardInterrupt.
    interrupted: bool = False
    #: Wall-clock seconds spent in the campaign.
    elapsed_s: float = 0.0

    def record_failed_attempt(self, kind: FailureKind) -> None:
        key = kind.value
        self.failed_attempts[key] = self.failed_attempts.get(key, 0) + 1

    def failure_counts(self) -> dict[str, int]:
        """Final failures grouped by kind (empty when the campaign is clean)."""
        counts: dict[str, int] = {}
        for failure in self.failures:
            counts[failure.kind.value] = counts.get(failure.kind.value, 0) + 1
        return counts

    @property
    def ok(self) -> bool:
        return not self.failures and not self.interrupted

    def to_dict(self) -> dict:
        return {
            "total": self.total,
            "completed": self.completed,
            "loaded": self.loaded,
            "executed": self.executed,
            "attempts": self.attempts,
            "retries": self.retries,
            "requeued": self.requeued,
            "pool_restarts": self.pool_restarts,
            "failed_attempts": dict(self.failed_attempts),
            "failures": [failure.to_dict() for failure in self.failures],
            "failure_counts": self.failure_counts(),
            "interrupted": self.interrupted,
            "elapsed_s": self.elapsed_s,
            "ok": self.ok,
        }

    def summary(self) -> str:
        """One-line human summary for CLI output and logs."""
        parts = [f"{self.completed}/{self.total} completed"]
        if self.loaded:
            parts.append(f"{self.loaded} loaded from store")
        if self.retries:
            parts.append(f"{self.retries} retries")
        if self.pool_restarts:
            parts.append(f"{self.pool_restarts} pool restarts")
        counts = self.failure_counts()
        if counts:
            breakdown = ", ".join(f"{count} {kind}" for kind, count in sorted(counts.items()))
            parts.append(f"failed: {breakdown}")
        if self.interrupted:
            parts.append("interrupted")
        return "; ".join(parts) + f" in {self.elapsed_s:.2f}s"
