"""Bounded retries with exponential backoff and deterministic jitter.

Transient failures — a worker killed by the OOM killer, a pool broken by
a sibling crash, a deadline missed on an overloaded host — deserve
another attempt; deterministic exceptions from a pure simulation do not.
The policy therefore retries by :class:`~repro.harness.report.FailureKind`
(timeouts and crashes by default) and keeps backoff *deterministic*: the
jitter for attempt ``k`` of task ``t`` is derived from ``(t, k)`` by a
seeded PRNG, so a resumed or re-run campaign sleeps exactly as long as
the original would have.  (``random.Random`` seeded with a string hashes
it with SHA-512, which is stable across processes and interpreter runs,
unlike ``hash()``.)
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.harness.report import FailureKind

#: Failure kinds that are plausibly transient and worth retrying.
TRANSIENT_KINDS: frozenset[FailureKind] = frozenset(
    {FailureKind.TIMEOUT, FailureKind.CRASH}
)


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to attempt a task and how long to wait between tries."""

    #: Total attempts per task (1 = no retries).
    max_attempts: int = 3
    #: Delay before the first retry, in seconds.
    backoff_s: float = 0.1
    #: Multiplier applied per subsequent retry.
    backoff_factor: float = 2.0
    #: Ceiling on any single delay.
    max_backoff_s: float = 5.0
    #: Fraction of the delay randomized (0 disables jitter, 0.25 means
    #: the delay is uniform in [0.75·d, 1.25·d]).
    jitter: float = 0.25
    #: Failure kinds eligible for retry; anything else fails immediately.
    #: Exceptions are excluded by default because the simulation is pure —
    #: a deterministic error will simply recur.
    retryable: frozenset[FailureKind] = field(default=TRANSIENT_KINDS)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_s < 0 or self.max_backoff_s < 0:
            raise ValueError("backoff delays must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def should_retry(self, kind: FailureKind, attempts: int) -> bool:
        """Whether a task that has failed ``attempts`` times may run again."""
        return kind in self.retryable and attempts < self.max_attempts

    def delay_s(self, attempt: int, token: str = "") -> float:
        """Backoff before retry number ``attempt`` (1-based) of task ``token``."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        base = min(
            self.backoff_s * self.backoff_factor ** (attempt - 1),
            self.max_backoff_s,
        )
        if base <= 0 or self.jitter == 0:
            return base
        rng = random.Random(f"repro-harness|{token}|{attempt}")
        spread = self.jitter * base
        return base - spread + rng.random() * 2.0 * spread

    def to_dict(self) -> dict:
        return {
            "max_attempts": self.max_attempts,
            "backoff_s": self.backoff_s,
            "backoff_factor": self.backoff_factor,
            "max_backoff_s": self.max_backoff_s,
            "jitter": self.jitter,
            "retryable": sorted(kind.value for kind in self.retryable),
        }
