"""The campaign orchestrator: run many independent tasks, survive anything.

:func:`run_campaign` executes a list of independent, deterministic tasks
with the full fault-tolerance stack: durable results via
:class:`~repro.harness.store.ResultStore`, bounded retries via
:class:`~repro.harness.retry.RetryPolicy`, and hang/crash recovery via
:class:`~repro.harness.watchdog.PoolSupervisor`.  Guarantees:

* **Durability** — with a store configured, every completed result is on
  disk (atomically) before the next task is scheduled to report; a crash
  of the orchestrator itself loses only in-flight work.
* **Resume** — tasks whose fingerprints are already in the store are not
  re-run; their results are loaded and counted as ``loaded``.
* **Determinism** — results are assembled in task order regardless of
  completion order, worker count, retries, or resume, so a campaign that
  completes is byte-identical to the ``max_workers=1`` serial run.
* **Graceful degradation** — with ``strict=False`` a campaign never
  raises for task failures: it returns the completed subset plus a
  :class:`~repro.harness.report.CampaignReport`.  ``strict=True``
  preserves fail-fast semantics: the first unrecoverable failure raises
  (the task's own exception where there is one, else
  :class:`CampaignError`).
* **Interruptible** — ``KeyboardInterrupt`` cancels pending work, kills
  the pool, and (non-strict) returns the partial campaign with the
  remaining tasks marked ``cancelled``; completed results are already
  durable.

``max_workers=1`` runs tasks in-process with no pool, no pickling and no
watchdog (timeouts need a killable worker, so they are parallel-only);
retries, the store, and interrupt handling behave identically.
"""

from __future__ import annotations

import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, BrokenExecutor, Future, wait
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence, Union

from repro.harness.report import CampaignReport, FailureKind, TaskFailure
from repro.harness.retry import RetryPolicy
from repro.harness.store import ResultStore
from repro.harness.watchdog import PoolSupervisor, available_cpus
from repro.obs.tracing import NULL_TRACER


class CampaignError(RuntimeError):
    """A strict campaign hit an unrecoverable failure with no exception
    of its own to re-raise (worker crash or timeout)."""

    def __init__(self, failure: TaskFailure, report: CampaignReport) -> None:
        super().__init__(
            f"task {failure.index} ({failure.label}) failed with "
            f"{failure.kind} after {failure.attempts} attempt(s)"
            + (f": {failure.message}" if failure.message else "")
        )
        self.failure = failure
        self.report = report


@dataclass(frozen=True)
class CampaignOptions:
    """Fault-tolerance configuration for one campaign."""

    #: Durable result store: a :class:`ResultStore`, a directory path, or
    #: ``None`` for in-memory-only execution.
    store: Union[ResultStore, str, None] = None
    #: With a store, skip tasks whose results are already durable.
    resume: bool = True
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    #: Per-task wall-clock deadline, measured from when the task starts
    #: on a worker (queue time excluded).  ``None`` disables the
    #: watchdog.  Parallel-only: the serial path cannot preempt.
    timeout_s: Optional[float] = None
    #: Poll interval of the supervision loop.
    heartbeat_s: float = 0.1
    #: Fail fast (raise on first unrecoverable failure) instead of
    #: returning the completed subset plus the report.
    strict: bool = False
    #: Orchestrator-side :class:`repro.obs.Tracer` recording one
    #: ``harness.task`` span per attempt (submit → resolution, so queue
    #: time is visible); ``None`` disables span recording.  Spans are
    #: closed on every outcome, including crashed workers and interrupts.
    tracer: Any = None
    #: Progress callback fired after resume loading and after every task
    #: resolution, with a dict ``{done, total, failed, retried, loaded,
    #: honor_rate}`` (``honor_rate`` is the mean ``hint_honor_rate`` over
    #: completed results that carry one, else ``None``).  This is what
    #: the CLI's live progress line consumes.
    on_progress: Optional[Callable[[dict], None]] = None

    def resolved_store(self) -> Optional[ResultStore]:
        if self.store is None or isinstance(self.store, ResultStore):
            return self.store
        return ResultStore(self.store)


@dataclass
class Campaign:
    """Outcome of one campaign: task-ordered results plus accounting."""

    #: One slot per task, in task order; ``None`` where the task failed.
    results: list[Optional[Any]]
    report: CampaignReport

    def completed(self) -> dict[int, Any]:
        """Index → result for every task that produced one."""
        return {
            index: result
            for index, result in enumerate(self.results)
            if result is not None
        }

    def raise_if_failed(self) -> None:
        if self.report.interrupted:
            raise KeyboardInterrupt
        if self.report.failures:
            raise CampaignError(self.report.failures[0], self.report)


def campaign_obs_report(campaign: Campaign, tracer: Any = None) -> Optional[dict]:
    """Roll per-run observability reports up into one campaign report.

    Results carrying an ``obs`` attribute (``RunResult`` from an
    obs-enabled engine) contribute their metric snapshots to a merged
    campaign-scope registry (counters and histogram buckets add; gauges
    keep the last write) and their trace events to one merged event
    stream where each run gets its own ``pid`` row.  ``tracer`` — the
    orchestrator-side tracer holding the ``harness.task`` spans — lands
    on ``pid 0``.  Returns ``{"metrics": ..., "trace_events": ...}``, or
    ``None`` when nothing was observed.
    """
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.tracing import merge_trace_events

    registry = MetricsRegistry(scope="campaign")
    runs: list[dict] = []
    groups: list[tuple[int, Optional[str], list[dict]]] = []
    for index, result in enumerate(campaign.results):
        report = getattr(result, "obs", None)
        if not report:
            continue
        labeler = getattr(result, "label", None)
        label = labeler() if callable(labeler) else f"run[{index}]"
        snapshot = report.get("metrics")
        if snapshot is not None:
            registry.merge(snapshot)
            runs.append({"label": label})
        events = report.get("trace_events")
        if events:
            groups.append((index + 1, label, events))
    if tracer is not None and getattr(tracer, "enabled", False):
        groups.insert(0, (0, "campaign", tracer.export()))
    if not runs and not groups:
        return None
    merged = registry.snapshot()
    merged["runs"] = runs
    merged["campaign"] = campaign.report.to_dict()
    return {"metrics": merged, "trace_events": merge_trace_events(groups)}


class _CampaignState:
    """Mutable bookkeeping shared by the serial and parallel paths."""

    def __init__(
        self,
        fn: Callable[[Any], Any],
        tasks: list,
        labels: list[str],
        keys: Optional[list[str]],
        options: CampaignOptions,
    ) -> None:
        self.fn = fn
        self.tasks = tasks
        self.labels = labels
        self.keys = keys
        self.options = options
        self.retry = options.retry
        self.tracer = options.tracer if options.tracer is not None else NULL_TRACER
        self.on_progress = options.on_progress
        self.store = options.resolved_store()
        if self.store is not None and keys is None:
            raise ValueError("a result store requires per-task keys")
        self.results: list[Optional[Any]] = [None] * len(tasks)
        self.attempts = [0] * len(tasks)
        self.report = CampaignReport(total=len(tasks))
        self.failures: dict[int, TaskFailure] = {}

    # -- progress reporting --------------------------------------------

    def progress_event(self) -> dict:
        """The current campaign status as a progress-line event dict."""
        completed = [result for result in self.results if result is not None]
        honors = [
            honor
            for honor in (
                getattr(result, "hint_honor_rate", None) for result in completed
            )
            if honor is not None
        ]
        return {
            "done": len(completed),
            "total": len(self.tasks),
            "failed": len(self.failures),
            "retried": sum(max(0, attempts - 1) for attempts in self.attempts),
            "loaded": self.report.loaded,
            "honor_rate": sum(honors) / len(honors) if honors else None,
        }

    def emit_progress(self) -> None:
        if self.on_progress is not None:
            self.on_progress(self.progress_event())

    # -- store interaction ---------------------------------------------

    def load_resumable(self) -> list[int]:
        """Fill results from the store; return the indices still to run."""
        pending = []
        for index in range(len(self.tasks)):
            if self.store is not None and self.options.resume:
                cached = self.store.get(self.keys[index])  # type: ignore[index]
                if cached is not None:
                    self.results[index] = cached
                    self.report.loaded += 1
                    continue
            pending.append(index)
        return pending

    def complete(self, index: int, result: Any) -> None:
        self.attempts[index] += 1
        self.results[index] = result
        self.report.executed += 1
        if self.store is not None:
            self.store.put(
                self.keys[index],  # type: ignore[index]
                result,
                label=self.labels[index],
                attempts=self.attempts[index],
            )
        self.emit_progress()

    # -- failure bookkeeping -------------------------------------------

    def charge(self, index: int, kind: FailureKind, message: str) -> bool:
        """Record a failed attempt; return True when the task may retry.

        ``attempts`` counts only *charged* attempts — a task requeued
        because a sibling broke the pool does not burn retry budget.
        """
        self.attempts[index] += 1
        self.report.record_failed_attempt(kind)
        if self.retry.should_retry(kind, self.attempts[index]):
            return True
        self.fail(index, kind, message)
        return False

    def fail(self, index: int, kind: FailureKind, message: str) -> None:
        self.failures[index] = TaskFailure(
            index=index,
            label=self.labels[index],
            kind=kind,
            attempts=self.attempts[index],
            message=message,
        )
        self.emit_progress()

    def cancel_remaining(self) -> None:
        """Mark every task without a result or a recorded failure as
        cancelled (loaded/completed results are untouched)."""
        for index in range(len(self.tasks)):
            if self.results[index] is None and index not in self.failures:
                self.fail(index, FailureKind.CANCELLED, "campaign interrupted")
        self.report.interrupted = True

    def finish(self, started: float) -> Campaign:
        self.report.completed = sum(
            1 for result in self.results if result is not None
        )
        self.report.retries = sum(
            max(0, attempts - 1) for attempts in self.attempts
        )
        self.report.failures = [
            self.failures[index] for index in sorted(self.failures)
        ]
        self.report.elapsed_s = time.perf_counter() - started
        return Campaign(results=self.results, report=self.report)


def run_campaign(
    fn: Callable[[Any], Any],
    tasks: Sequence[Any],
    *,
    labels: Optional[Sequence[str]] = None,
    keys: Optional[Sequence[str]] = None,
    options: Optional[CampaignOptions] = None,
    max_workers: Optional[int] = None,
) -> Campaign:
    """Run every task through the fault-tolerance stack.

    ``fn`` must be a module-level callable taking one task (it crosses
    the process boundary in parallel mode) and returning a non-``None``
    result (``None`` is the campaign's "task failed" sentinel).  ``keys``
    are the durable fingerprints (required when a store is configured);
    ``labels`` name tasks in reports and manifests.
    """
    opts = options or CampaignOptions()
    task_list = list(tasks)
    label_list = (
        [str(label) for label in labels]
        if labels is not None
        else [f"task[{i}]" for i in range(len(task_list))]
    )
    key_list = [str(key) for key in keys] if keys is not None else None
    if len(label_list) != len(task_list):
        raise ValueError("labels must match tasks 1:1")
    if key_list is not None and len(key_list) != len(task_list):
        raise ValueError("keys must match tasks 1:1")

    state = _CampaignState(fn, task_list, label_list, key_list, opts)
    started = time.perf_counter()
    pending = state.load_resumable()
    state.emit_progress()

    if max_workers is None:
        max_workers = available_cpus()
    max_workers = max(1, min(max_workers, len(pending) or 1))

    if pending:
        # Deadlines need a killable worker, so a timeout forces the pool
        # even for a single task / single worker.
        if max_workers == 1 and opts.timeout_s is None:
            _run_serial(state, pending)
        else:
            _run_parallel(state, pending, max_workers)
    return state.finish(started)


# ----------------------------------------------------------------------
# serial path


def _run_serial(state: _CampaignState, pending: list[int]) -> None:
    opts = state.options
    for index in pending:
        task = state.tasks[index]
        while True:
            state.report.attempts += 1
            try:
                # The span context closes on every exit, so a raising
                # task still leaves a consistent span tree behind.
                with state.tracer.span(
                    "harness.task",
                    label=state.labels[index],
                    index=index,
                    attempt=state.attempts[index] + 1,
                ):
                    result = state.fn(task)
            except KeyboardInterrupt:
                state.cancel_remaining()
                if opts.strict:
                    raise
                return
            except Exception as exc:
                if state.charge(index, FailureKind.EXCEPTION, repr(exc)):
                    time.sleep(
                        state.retry.delay_s(
                            state.attempts[index], state.labels[index]
                        )
                    )
                    continue
                if opts.strict:
                    raise
                break
            else:
                state.complete(index, result)
                break


# ----------------------------------------------------------------------
# parallel path


def _run_parallel(
    state: _CampaignState, pending: list[int], max_workers: int
) -> None:
    opts = state.options
    supervisor = PoolSupervisor(max_workers)
    queue: deque[int] = deque(pending)
    ready_at: dict[int, float] = {index: 0.0 for index in pending}
    inflight: dict[Future, int] = {}
    # Orchestrator-side harness.task spans, one per submitted attempt
    # (covering queue + execution time); closed on every outcome.
    spans: dict[Future, Any] = {}

    def close_span(future: Future, **attrs) -> None:
        span = spans.pop(future, None)
        if span is not None:
            if attrs:
                span.set(**attrs)
            span.__exit__(None, None, None)

    def requeue(index: int, charged: bool) -> None:
        """Put a task back on the queue after a pool-wide event."""
        supervisor.clear_heartbeat(index)
        if charged:
            delay = state.retry.delay_s(state.attempts[index], state.labels[index])
        else:
            # An innocent bystander of a sibling's crash or a pool
            # restart: not charged against its attempt budget.
            delay = 0.0
            state.report.requeued += 1
        ready_at[index] = time.monotonic() + delay
        queue.append(index)

    def handle_broken_pool() -> None:
        """Charge a crash to every in-flight task that had actually
        started on a worker; requeue the merely-queued for free."""
        culprits = {
            index: (FailureKind.CRASH, "worker process died")
            for index in inflight.values()
            if supervisor.started_at(index) is not None
        }
        drain_inflight(culprits)
        supervisor.restart()
        state.report.pool_restarts += 1

    def drain_inflight(culprits: dict[int, tuple[FailureKind, str]]) -> None:
        """Classify every in-flight task after the pool died under it."""
        strict_error: Optional[CampaignError] = None
        for future, index in list(inflight.items()):
            future.cancel()
            if index in culprits:
                kind, message = culprits[index]
                close_span(future, error=kind.value)
                if state.charge(index, kind, message):
                    requeue(index, charged=True)
                elif opts.strict and strict_error is None:
                    strict_error = CampaignError(
                        state.failures[index], state.report
                    )
            else:
                close_span(future, requeued=True)
                requeue(index, charged=False)
        inflight.clear()
        if strict_error is not None:
            raise strict_error

    try:
        while queue or inflight:
            now = time.monotonic()
            # Submit every task whose backoff delay has elapsed.
            for _ in range(len(queue)):
                index = queue.popleft()
                if ready_at[index] > now:
                    queue.append(index)
                    continue
                try:
                    future = supervisor.submit(state.fn, index, state.tasks[index])
                except BrokenExecutor:
                    # The pool died under a concurrent submission.  Put
                    # this task back unattempted and recover the rest.
                    queue.appendleft(index)
                    handle_broken_pool()
                    break
                state.report.attempts += 1
                inflight[future] = index
                spans[future] = state.tracer.span(
                    "harness.task",
                    label=state.labels[index],
                    index=index,
                    attempt=state.attempts[index] + 1,
                )

            if not inflight:
                # Everything runnable is backing off; sleep until the
                # earliest becomes ready.
                wake = min(ready_at[index] for index in queue)
                time.sleep(max(0.0, min(wake - now, opts.heartbeat_s)))
                continue

            done, _ = wait(
                list(inflight), timeout=opts.heartbeat_s,
                return_when=FIRST_COMPLETED,
            )

            pool_broken = False
            for future in done:
                index = inflight.pop(future)
                try:
                    result = future.result()
                except BrokenExecutor:
                    # A worker died; the whole pool is poisoned.  This
                    # future's task is charged only if it had started.
                    pool_broken = True
                    inflight[future] = index  # reclassified with the rest
                except Exception as exc:
                    close_span(future, error=type(exc).__name__)
                    if state.charge(index, FailureKind.EXCEPTION, repr(exc)):
                        requeue(index, charged=True)
                    elif opts.strict:
                        raise
                else:
                    close_span(future)
                    state.complete(index, result)

            if pool_broken:
                handle_broken_pool()
                continue

            overdue = supervisor.overdue(inflight.values(), opts.timeout_s)
            if overdue:
                # A hung worker cannot be cancelled — kill the pool and
                # requeue everything that was riding on it.
                culprits = {
                    index: (
                        FailureKind.TIMEOUT,
                        f"exceeded {opts.timeout_s}s wall-clock deadline",
                    )
                    for index in overdue
                }
                drain_inflight(culprits)
                supervisor.restart()
                state.report.pool_restarts += 1
    except KeyboardInterrupt:
        for future in inflight:
            future.cancel()
            close_span(future, error="cancelled")
        state.cancel_remaining()
        supervisor.shutdown(graceful=False)
        if opts.strict:
            raise
        return
    finally:
        supervisor.shutdown(graceful=True)
