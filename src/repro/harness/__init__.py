"""Fault-tolerant job orchestration for experiment campaigns.

Every figure in the paper is a *campaign*: a sweep of independent,
deterministic, expensive runs whose value is only realized when the whole
set completes.  ``repro.harness`` makes campaigns crash-safe:

* :mod:`repro.harness.store` — a crash-consistent on-disk result store
  (atomic tmp+rename writes, manifest keyed by full task fingerprints) so
  every completed result is durable the moment it finishes and a resumed
  campaign re-runs only the missing tasks;
* :mod:`repro.harness.retry` — bounded retries with exponential backoff
  and deterministic jitter;
* :mod:`repro.harness.watchdog` — a process-pool supervisor that tracks
  per-task wall-clock deadlines via a heartbeat table, replaces broken
  pools, and terminates hung workers;
* :mod:`repro.harness.report` — the structured failure taxonomy
  (:class:`TaskFailure`) and the :class:`CampaignReport` summary;
* :mod:`repro.harness.campaign` — the orchestrator tying them together.

The sweep helpers (:mod:`repro.sim.sweeps`), the engine benchmark
(:mod:`repro.sim.bench`) and the ``python -m repro`` CLI all run on this
layer.  Results are always assembled in task order, so a campaign that
completes is indistinguishable from a serial run.
"""

from repro.harness.campaign import (
    Campaign,
    CampaignError,
    CampaignOptions,
    campaign_obs_report,
    run_campaign,
)
from repro.harness.report import CampaignReport, FailureKind, TaskFailure
from repro.harness.retry import RetryPolicy
from repro.harness.store import ResultStore, task_fingerprint
from repro.harness.watchdog import available_cpus

__all__ = [
    "Campaign",
    "CampaignError",
    "CampaignOptions",
    "CampaignReport",
    "FailureKind",
    "ResultStore",
    "RetryPolicy",
    "TaskFailure",
    "available_cpus",
    "campaign_obs_report",
    "run_campaign",
    "task_fingerprint",
]
