"""``repro.api`` — the unified session facade over the whole stack.

Historically every entry point took its own spelling of the same knobs:
``run_benchmark(name, config, options=...)``, sweeps taking
``max_workers``, the bench taking ``options`` + ``max_workers``, the CLI
taking ``--fast``/``--unaligned`` flags.  A :class:`Session` bundles one
``(workload-or-program, MachineConfig, EngineOptions)`` triple and offers
every operation on it:

    from repro import Session

    session = Session("tomcatv", cpus=8)
    result = session.run()
    sweep = session.sweep()              # policy comparison
    bench = session.bench(["tomcatv"])   # engine benchmark

Canonical keyword names are the :class:`EngineOptions` field names plus
``workers`` for pool sizing.  The legacy spellings (``max_workers``,
``fast``, ``unaligned``) are still accepted everywhere a session takes
keywords, but emit :class:`DeprecationWarning` and will be removed; CI
runs the repo's own callers with ``-W error::DeprecationWarning`` so
internal code cannot regress onto them.

``run_program`` / ``run_benchmark`` remain as thin delegates for
existing callers and scripts.
"""

from __future__ import annotations

import warnings
from dataclasses import replace
from typing import Any, Optional, Sequence, Union

from repro.compiler.ir import Program
from repro.harness.campaign import Campaign, CampaignOptions, campaign_obs_report
from repro.machine.config import MACHINE_PRESETS, MachineConfig, sgi_base
from repro.obs import ObsConfig
from repro.sim import engine as _engine
from repro.sim.engine import EngineOptions
from repro.sim.results import RunResult
from repro.sim.tracegen import SimProfile

__all__ = [
    "Session",
    "canonicalize_kwargs",
    "run_benchmark",
    "run_program",
]

#: Legacy keyword → (canonical keyword, mapper).  The mapper converts the
#: old value into the canonical one.
_DEPRECATED_KWARGS = {
    "max_workers": ("workers", lambda value: value),
    "fast": ("profile", lambda value: SimProfile.fast() if value else SimProfile()),
    "unaligned": ("aligned", lambda value: not value),
}


def canonicalize_kwargs(kwargs: dict) -> dict:
    """Map legacy keyword spellings onto their canonical names.

    Emits one :class:`DeprecationWarning` per legacy keyword used.
    Passing a legacy keyword together with its canonical replacement is
    ambiguous and raises ``TypeError``.
    """
    out = dict(kwargs)
    for old, (new, mapper) in _DEPRECATED_KWARGS.items():
        if old not in out:
            continue
        if new in out:
            raise TypeError(f"got both {old!r} (deprecated) and {new!r}")
        warnings.warn(
            f"keyword {old!r} is deprecated; use {new!r}",
            DeprecationWarning,
            stacklevel=3,
        )
        out[new] = mapper(out.pop(old))
    return out


_OPTION_FIELDS = frozenset(EngineOptions.__dataclass_fields__)


def _is_scenario(value: Any) -> bool:
    """Whether a ``sweep(policies=...)`` argument names a churn scenario.

    Scenario forms: a :class:`repro.scenarios.ScenarioSpec`, a preset
    name string, or a spec dict — distinguished from a policy-override
    mapping by its ``jobs``/``capacity_events`` keys.
    """
    if isinstance(value, str):
        return True
    if isinstance(value, dict):
        return "jobs" in value or "capacity_events" in value
    # Duck-typed so repro.scenarios stays a lazy import.
    return type(value).__name__ == "ScenarioSpec"


class Session:
    """One workload (or program), one machine, one set of engine options.

    ``workload`` is a bundled SPEC95fp model name; pass ``program=`` for
    a hand-built or parsed :class:`Program` instead.  ``config`` defaults
    to the paper's base machine (``sgi_base``) at the given ``cpus`` and
    ``scale``; ``machine`` selects any preset geometry by name instead
    (see :data:`repro.machine.MACHINE_PRESETS` — e.g. ``"sliced_llc_8x"``
    or ``"three_level"``).  Remaining keywords are :class:`EngineOptions`
    fields (canonical names; legacy spellings accepted with a deprecation
    warning), plus ``obs=True`` as shorthand for a default
    :class:`repro.obs.ObsConfig`.
    """

    def __init__(
        self,
        workload: Optional[str] = None,
        *,
        program: Optional[Program] = None,
        config: Optional[MachineConfig] = None,
        machine: Optional[str] = None,
        options: Optional[EngineOptions] = None,
        cpus: int = 8,
        scale: int = 16,
        obs: Union[bool, ObsConfig, None] = None,
        **overrides: Any,
    ) -> None:
        if (workload is None) == (program is None):
            raise TypeError("pass exactly one of workload= or program=")
        self.workload = workload
        self.program = program
        if machine is not None:
            if config is not None:
                raise TypeError("pass at most one of config= or machine=")
            try:
                preset = MACHINE_PRESETS[machine]
            except KeyError:
                raise ValueError(
                    f"unknown machine preset {machine!r}; "
                    f"choose from {', '.join(sorted(MACHINE_PRESETS))}"
                ) from None
            config = preset(num_cpus=cpus).scaled(scale)
        self.config = (
            config if config is not None else sgi_base(num_cpus=cpus).scaled(scale)
        )
        overrides = canonicalize_kwargs(overrides)
        if isinstance(obs, bool):
            obs = ObsConfig() if obs else None
        if obs is not None:
            overrides.setdefault("obs", obs)
        unknown = sorted(set(overrides) - _OPTION_FIELDS)
        if unknown:
            raise TypeError(f"unknown engine option(s): {', '.join(unknown)}")
        base = options if options is not None else EngineOptions()
        self.options = replace(base, **overrides) if overrides else base
        #: The full fault-tolerance outcome of the most recent
        #: :meth:`sweep` (``None`` until one has run).
        self.last_campaign: Optional[Campaign] = None
        #: The full :class:`repro.scenarios.ScenarioReport` of the most
        #: recent scenario sweep (``None`` until one has run).
        self.last_scenario: Optional[Any] = None

    # ------------------------------------------------------------------

    def with_options(self, **overrides: Any) -> "Session":
        """A new session sharing this one's target but altered options."""
        overrides = canonicalize_kwargs(overrides)
        return Session(
            self.workload,
            program=self.program,
            config=self.config,
            options=replace(self.options, **overrides),
        )

    def run(self, **overrides: Any) -> RunResult:
        """Simulate the session's workload once; returns the run result.

        Pass ``sampling="access_vector"`` to trade exactness for time on
        long traces: repeated trace windows are clustered by access
        vector and replayed from a measured representative, and the
        result's ``sampling`` report carries the estimated miss total
        with an explicit error bound (see docs/performance.md).
        """
        options = self.options
        if overrides:
            options = replace(options, **canonicalize_kwargs(overrides))
        if self.program is not None:
            return _engine.run_program(self.program, self.config, options)
        assert self.workload is not None
        return _engine.run_benchmark(self.workload, self.config, options)

    def sweep(
        self,
        policies: Optional[Any] = None,
        *,
        campaign: Optional[CampaignOptions] = None,
        **kwargs: Any,
    ) -> dict[str, RunResult]:
        """Policy comparison sweep (the Figure 6 pattern).

        ``policies`` is either a mapping of label → :class:`EngineOptions`
        overrides, or a list of standard policy labels (see
        ``repro.sim.sweeps.STANDARD_POLICIES``) — or a *churn scenario*: a
        :class:`repro.scenarios.ScenarioSpec`, a preset name (``"smoke"``,
        ``"churn"``), or a spec dict (recognized by its ``jobs`` /
        ``capacity_events`` keys).  A scenario runs the session's workload
        across the comparison modes under the spec's capacity churn; the
        full :class:`repro.scenarios.ScenarioReport` lands on
        ``self.last_scenario``.

        Returns label → result for every completed run; the full
        :class:`Campaign` (report, failures, retries) lands on
        ``self.last_campaign``.  Without explicit ``campaign`` options the
        sweep keeps the historical fail-fast contract and raises on any
        task failure.
        """
        from repro.sim.sweeps import STANDARD_POLICIES, policy_campaign

        if self.workload is None:
            raise TypeError("sweep() needs a named workload session")
        if _is_scenario(policies):
            return self._scenario_sweep(policies, campaign=campaign, **kwargs)
        if isinstance(policies, (list, tuple)):
            unknown = [label for label in policies if label not in STANDARD_POLICIES]
            if unknown:
                raise ValueError(
                    f"unknown policy label(s): {', '.join(unknown)}; "
                    f"standard labels are {', '.join(STANDARD_POLICIES)}"
                )
            policies = {label: STANDARD_POLICIES[label] for label in policies}
        kwargs = canonicalize_kwargs(kwargs)
        workers = kwargs.pop("workers", None)
        if kwargs:
            raise TypeError(f"unknown sweep option(s): {', '.join(sorted(kwargs))}")
        completed, outcome = policy_campaign(
            self.workload,
            self.config,
            policies=policies,
            options=self.options,
            max_workers=workers,
            campaign=campaign,
        )
        self.last_campaign = outcome
        if campaign is None:
            outcome.raise_if_failed()
        return completed

    def _scenario_sweep(
        self,
        scenario: Any,
        *,
        campaign: Optional[CampaignOptions] = None,
        **kwargs: Any,
    ) -> dict[str, RunResult]:
        """Run a churn scenario across the comparison modes."""
        from dataclasses import replace as dc_replace

        from repro.scenarios import coerce_spec, run_scenario

        spec = coerce_spec(scenario)
        if spec.workload != self.workload:
            # The session names the subject workload; the spec's default
            # must not silently override it.
            spec = dc_replace(spec, workload=self.workload)
        kwargs = canonicalize_kwargs(kwargs)
        workers = kwargs.pop("workers", None)
        if kwargs:
            raise TypeError(f"unknown sweep option(s): {', '.join(sorted(kwargs))}")
        report = run_scenario(
            spec,
            self.config,
            options=self.options,
            max_workers=workers,
            campaign=campaign,
        )
        self.last_scenario = report
        self.last_campaign = report.campaign
        if campaign is None and report.campaign is not None:
            report.campaign.raise_if_failed()
        return report.results

    def sweep_obs_report(self, tracer: Any = None) -> Optional[dict]:
        """Observability rollup of the last sweep (or ``None``).

        Pass the orchestrator tracer given to the sweep's
        ``CampaignOptions`` to include the ``harness.task`` spans.
        """
        if self.last_campaign is None:
            return None
        return campaign_obs_report(self.last_campaign, tracer=tracer)

    def bench(
        self,
        workloads: Optional[Sequence[str]] = None,
        *,
        campaign: Optional[CampaignOptions] = None,
        **kwargs: Any,
    ) -> dict:
        """Run the two-leg engine benchmark; returns the report payload."""
        from repro.sim.bench import run_bench
        from repro.workloads import WORKLOAD_NAMES

        kwargs = canonicalize_kwargs(kwargs)
        workers = kwargs.pop("workers", None)
        if kwargs:
            raise TypeError(f"unknown bench option(s): {', '.join(sorted(kwargs))}")
        return run_bench(
            self.config,
            list(workloads) if workloads is not None else list(WORKLOAD_NAMES),
            options=self.options,
            max_workers=workers,
            campaign=campaign,
        )

    def serve(self, **service_options: Any) -> Any:
        """A :class:`repro.service.ColoringService` over this stack.

        The service is the long-running, multi-tenant front door: each
        request names its own workload/machine/policy, is admission-
        controlled and batched onto harness campaigns, and repeats are
        answered O(1) from the fingerprint cache.  Keywords are
        :class:`~repro.service.server.ColoringService` constructor
        options (``store=``, ``workers=``, ``quota_rate=``, ...)::

            import asyncio
            from repro import ColoringRequest, Session

            async def main():
                async with Session("tomcatv").serve(store=".repro/plans") as svc:
                    response = await svc.submit(
                        ColoringRequest(workload="tomcatv", kind="predict")
                    )
                    print(response.status, response.cached)

            asyncio.run(main())
        """
        from repro.service import ColoringService

        return ColoringService(**service_options)

    def __repr__(self) -> str:
        target = self.workload if self.workload is not None else self.program.name
        return (
            f"Session({target!r}, cpus={self.config.num_cpus}, "
            f"policy={self.options.policy!r}, cdpc={self.options.cdpc})"
        )


def run_program(
    program: Program,
    config: MachineConfig,
    options: Optional[EngineOptions] = None,
    **overrides: Any,
) -> RunResult:
    """Thin delegate: one program, one machine, one run."""
    return Session(program=program, config=config, options=options, **overrides).run()


def run_benchmark(
    name: str,
    config: MachineConfig,
    options: Optional[EngineOptions] = None,
    **overrides: Any,
) -> RunResult:
    """Thin delegate: one bundled workload, one machine, one run."""
    return Session(name, config=config, options=options, **overrides).run()
