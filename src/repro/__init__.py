"""Reproduction of *Compiler-Directed Page Coloring for Multiprocessors*
(Bugnion, Anderson, Mowry, Rosenblum, Lam — ASPLOS 1996).

The package is organised by the systems the paper relies on:

* :mod:`repro.core` — the CDPC hint-generation algorithm and run-time
  library (the paper's contribution);
* :mod:`repro.compiler` — a SUIF-like substrate: loop-nest IR, static
  scheduling, access-summary extraction, prefetch insertion, data layout;
* :mod:`repro.osmodel` — the OS virtual-memory substrate with page
  coloring, bin hopping and CDPC-hint mapping policies;
* :mod:`repro.machine` — the memory-hierarchy simulator (caches, MESI
  coherence, split-transaction bus, TLB, prefetch unit, miss
  classification);
* :mod:`repro.workloads` — synthetic SPEC95fp workload models;
* :mod:`repro.sim` — trace generation and the timing engine;
* :mod:`repro.scenarios` — multi-programmed dynamic-capacity churn
  scenarios (the conditions the paper never measured);
* :mod:`repro.service` — coloring-as-a-service: the fault-tolerant
  asyncio server with admission control, batching, caching and
  overload degradation (``python -m repro serve``);
* :mod:`repro.analysis` — access maps and SPEC-ratio arithmetic.

Quickstart::

    from repro import Session

    session = Session("tomcatv", cpus=8)
    base = session.run()
    cdpc = session.with_options(cdpc=True).run()
    print(base.wall_ns / cdpc.wall_ns)

The legacy functional entry points (``run_benchmark``, ``run_program``)
remain available and now delegate through the session facade.
"""

from repro.api import Session, run_benchmark, run_program
from repro.core import AccessSummary, CdpcRuntime, ColoringResult, generate_page_colors
from repro.harness import Campaign, CampaignOptions, CampaignReport
from repro.machine import (
    MACHINE_PRESETS,
    CacheHierarchy,
    CacheLevel,
    ColorFunction,
    MachineConfig,
    MemorySystem,
    MissKind,
    alpha_server,
    sgi_2way,
    sgi_4mb,
    sgi_base,
    sliced_llc_8x,
    three_level,
)
from repro.obs import ObsConfig
from repro.osmodel import VirtualMemory, make_policy
from repro.robustness import (
    DegradationReport,
    FaultPlan,
    InvariantViolation,
    check_invariants,
)
from repro.scenarios import (
    CapacityEvent,
    JobSpec,
    ScenarioReport,
    ScenarioSpec,
    generate_scenario,
    run_scenario,
)
from repro.service import (
    ColoringRequest,
    ColoringService,
    RejectedOverload,
    ServiceResponse,
)
from repro.sim import EngineOptions, RunResult, SimProfile
from repro.workloads import WORKLOAD_NAMES, get_workload, iter_workloads

__version__ = "1.2.0"

__all__ = [
    "AccessSummary",
    "Campaign",
    "CampaignOptions",
    "CampaignReport",
    "CacheHierarchy",
    "CacheLevel",
    "CapacityEvent",
    "CdpcRuntime",
    "ColorFunction",
    "ColoringRequest",
    "ColoringResult",
    "ColoringService",
    "DegradationReport",
    "EngineOptions",
    "FaultPlan",
    "InvariantViolation",
    "JobSpec",
    "MACHINE_PRESETS",
    "MachineConfig",
    "MemorySystem",
    "MissKind",
    "ObsConfig",
    "RejectedOverload",
    "RunResult",
    "ScenarioReport",
    "ServiceResponse",
    "ScenarioSpec",
    "Session",
    "SimProfile",
    "VirtualMemory",
    "WORKLOAD_NAMES",
    "__version__",
    "alpha_server",
    "check_invariants",
    "generate_page_colors",
    "generate_scenario",
    "get_workload",
    "iter_workloads",
    "make_policy",
    "run_benchmark",
    "run_program",
    "run_scenario",
    "sgi_2way",
    "sgi_4mb",
    "sgi_base",
    "sliced_llc_8x",
    "three_level",
]
