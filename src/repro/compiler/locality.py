"""Locality analysis: estimating which references miss (Section 2.2, 6.2).

The prefetch pass needs to know which references are *likely to suffer
misses* so it only inserts prefetches for those [19].  This module provides
that estimate: for each access in each loop we compute the per-processor
footprint and compare it against the external cache, and we detect
temporal reuse within a phase (a chunk swept repeatedly stays resident if
it fits).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.ir import (
    Access,
    BoundaryAccess,
    InstructionStream,
    PartitionedAccess,
    Program,
    StridedAccess,
    WholeArrayAccess,
)
from repro.compiler.padding import Layout
from repro.machine.config import MachineConfig


@dataclass(frozen=True)
class AccessLocality:
    """Locality facts for one access in one loop."""

    loop: str
    access: Access
    footprint_bytes: int  # per-processor bytes touched per loop execution
    stride_bytes: int  # dominant inter-reference stride
    likely_misses: bool  # footprint exceeds cache, so streaming misses occur
    tlb_hostile: bool  # strides near/above a page defeat TLB coverage


def per_cpu_footprint(access: Access, layout: Layout, num_cpus: int) -> int:
    """Bytes one processor touches for this access per loop execution."""
    array = getattr(access, "array", None)
    if array is None:
        assert isinstance(access, InstructionStream)
        return access.footprint_bytes
    size = layout.sizes[array]
    if isinstance(access, PartitionedAccess):
        return int(size / num_cpus * access.fraction)
    if isinstance(access, BoundaryAccess):
        chunk = size // max(access.units, 1)
        return max(chunk, int(size / num_cpus * access.boundary_fraction))
    if isinstance(access, StridedAccess):
        return size // num_cpus
    if isinstance(access, WholeArrayAccess):
        return int(size * access.fraction)
    raise TypeError(f"unknown access type {type(access)!r}")


def dominant_stride(access: Access, layout: Layout, num_cpus: int) -> int:
    """The stride between consecutive references of this access."""
    if isinstance(access, StridedAccess):
        # Processor p touches every num_cpus-th block.
        return access.block_bytes * num_cpus
    if isinstance(access, (PartitionedAccess, BoundaryAccess, WholeArrayAccess)):
        array = getattr(access, "array", None)
        element = 8
        if isinstance(access, PartitionedAccess) and access.fraction < 1.0:
            # Tiled accesses revisit a fraction of each unit, hopping between
            # tiles at unit granularity.
            return layout.sizes[array] // max(access.units, 1)
        return element
    return 0


def analyze_program(
    program: Program, layout: Layout, config: MachineConfig, num_cpus: int
) -> list[AccessLocality]:
    """Locality facts for every (loop, access) pair in the program."""
    results: list[AccessLocality] = []
    cache_bytes = config.l2.size
    for phase in program.phases:
        for loop in phase.loops:
            data_accesses = [
                access
                for access in loop.accesses
                if not isinstance(access, InstructionStream)
            ]
            # The loop streams all its arrays together, so residency is
            # governed by the loop's combined per-processor footprint.
            loop_footprint = sum(
                per_cpu_footprint(access, layout, num_cpus)
                for access in data_accesses
            )
            for access in data_accesses:
                footprint = per_cpu_footprint(access, layout, num_cpus)
                stride = dominant_stride(access, layout, num_cpus)
                likely_misses = (
                    loop_footprint > cache_bytes and footprint > cache_bytes // 16
                ) or footprint > cache_bytes // 2
                # Only large strides defeat the TLB: a unit-stride stream
                # faults each page via its demand accesses just ahead of
                # the prefetches, so its prefetch targets stay mapped.
                tlb_hostile = stride >= config.page_size
                results.append(
                    AccessLocality(
                        loop=loop.name,
                        access=access,
                        footprint_bytes=footprint,
                        stride_bytes=stride,
                        likely_misses=likely_misses,
                        tlb_hostile=tlb_hostile,
                    )
                )
    return results
