"""Static scheduling of parallel loops across processors.

SUIF statically schedules parallel loops (Section 5.1), which is what makes
per-processor access patterns predictable enough for CDPC.  This module
computes the iteration ranges each processor executes under the two
partitioning policies the paper supports:

* **even** — each processor gets a near-equal share: the first ``N mod p``
  processors get ``ceil(N/p)`` iterations, the rest ``floor(N/p)``.
* **blocked** — every processor gets ``ceil(N/p)`` iterations; the final
  processors may get a short range or none at all.  This is the policy
  whose interaction with awkward iteration counts produces applu's load
  imbalance (33 iterations on 16 processors).

Both support forward (CPU 0 first) and reverse assignment.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common import Direction, Partitioning, iteration_ranges
from repro.compiler.ir import Loop, LoopKind

__all__ = ["LoopSchedule", "iteration_ranges", "schedule_loop"]


@dataclass(frozen=True)
class LoopSchedule:
    """The static schedule of one loop on a given processor count."""

    loop: Loop
    num_cpus: int
    ranges: tuple[tuple[int, int], ...]

    @property
    def participating_cpus(self) -> list[int]:
        if self.loop.kind is not LoopKind.PARALLEL:
            return [0]
        return [cpu for cpu, (start, end) in enumerate(self.ranges) if end > start]

    def iterations_of(self, cpu: int) -> int:
        if self.loop.kind is not LoopKind.PARALLEL:
            return self.loop.effective_iterations if cpu == 0 else 0
        start, end = self.ranges[cpu]
        return end - start

    def imbalance_fraction(self) -> float:
        """Fraction of aggregate parallel capacity lost to uneven shares.

        0.0 means every processor gets the same count; applu's 33
        iterations on 16 processors gives a large value because the maximum
        share (3) far exceeds the mean (2.06).
        """
        counts = [self.iterations_of(cpu) for cpu in range(self.num_cpus)]
        peak = max(counts)
        if peak == 0:
            return 0.0
        return 1.0 - (sum(counts) / (peak * self.num_cpus))


def schedule_loop(loop: Loop, num_cpus: int) -> LoopSchedule:
    """Compute the per-processor iteration ranges for a loop."""
    iterations = loop.effective_iterations
    if loop.kind is not LoopKind.PARALLEL:
        # Master executes everything; slaves idle.
        ranges = [(0, iterations)] + [(iterations, iterations)] * (num_cpus - 1)
        return LoopSchedule(loop, num_cpus, tuple(ranges))
    partitioning = Partitioning.EVEN
    direction = Direction.FORWARD
    for access in loop.accesses:
        part = getattr(access, "partitioning", None)
        if part is not None:
            partitioning = part
            direction = access.direction
            break
    ranges = iteration_ranges(iterations, num_cpus, partitioning, direction)
    return LoopSchedule(loop, num_cpus, tuple(ranges))
