"""Compiler-inserted prefetching (Section 6.2).

Selective prefetch insertion following Mowry's algorithm [19]: prefetches
are emitted only for references the locality analysis marks as likely to
miss, and are software-pipelined a fixed distance ahead of the consuming
iteration.  Two pathologies from the paper are modeled:

* loops tiled during parallelization (applu) cannot software-pipeline the
  prefetches, so they are issued too late to hide latency;
* accesses with page-sized strides frequently reference unmapped TLB
  entries, and the R10000 drops such prefetches.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler.ir import Access, Loop, Program
from repro.compiler.locality import analyze_program
from repro.compiler.padding import Layout
from repro.machine.config import MachineConfig


@dataclass(frozen=True)
class PrefetchDecision:
    """Prefetch directives for one access in one loop."""

    loop: str
    access: Access
    distance_lines: int  # how many lines ahead to prefetch
    pipelined: bool  # False when tiling inhibited scheduling (late issue)
    tlb_hostile: bool = False  # large strides: prefetches dropped on TLB miss


@dataclass
class PrefetchPlan:
    """All prefetch decisions for a program at a given processor count."""

    decisions: list[PrefetchDecision] = field(default_factory=list)

    def decision_for(self, loop: str, access: Access) -> PrefetchDecision | None:
        for decision in self.decisions:
            if decision.loop == loop and decision.access == access:
                return decision
        return None

    @property
    def num_prefetched_accesses(self) -> int:
        return len(self.decisions)


def _default_distance(config: MachineConfig) -> int:
    """Prefetch distance in lines: enough to cover memory latency.

    With single-issue processors at ``cycle_ns`` per instruction and a few
    instructions per line consumed, covering ``mem_latency_ns`` requires
    roughly latency / (cycle * instructions-per-line) lines; we clamp to a
    small software-pipeline depth as compilers do.
    """
    words_per_line = max(1, config.l2.line_size // config.word_size)
    ns_per_line = config.cycle_ns * 2.0 * words_per_line
    distance = max(1, round(config.mem_latency_ns / ns_per_line))
    # Clamp to a short software-pipeline depth: long distances increase the
    # window in which a neighbouring stream can displace the prefetched
    # line before use.
    return min(distance, 4)


def insert_prefetches(
    program: Program, layout: Layout, config: MachineConfig, num_cpus: int
) -> PrefetchPlan:
    """Decide which accesses receive prefetch instructions."""
    plan = PrefetchPlan()
    distance = _default_distance(config)
    loops_by_name: dict[str, Loop] = {
        loop.name: loop for phase in program.phases for loop in phase.loops
    }
    for fact in analyze_program(program, layout, config, num_cpus):
        if not fact.likely_misses:
            continue
        loop = loops_by_name[fact.loop]
        decision = PrefetchDecision(
            loop=fact.loop,
            access=fact.access,
            distance_lines=distance,
            pipelined=not loop.tiled,
            tlb_hostile=fact.tlb_hostile,
        )
        plan.decisions.append(decision)
    return plan
