"""Loop-nest intermediate representation.

A :class:`Program` is a set of :class:`ArrayDecl` plus a list of
:class:`Phase` objects; each phase repeats a list of :class:`Loop` objects
(the paper's phases, Section 3.2 — e.g. turb3d has four phases occurring
11, 66, 100 and 120 times in the steady state).  Each loop declares its
parallelism kind and how it touches each array.

Access declarations carry precisely the facts SUIF's analyses establish:

* :class:`PartitionedAccess` — the loop iterates over ``units`` chunks of
  the array, statically distributed across processors with an even or
  blocked partitioning, forward or reverse (Section 5.1 "Array
  Partitioning").  Each processor's chunk is contiguous in virtual memory
  (SUIF's data transformations make this so when possible).
* :class:`BoundaryAccess` — shift/rotate nearest-neighbour communication:
  each processor also reads a boundary strip of its neighbour's partition
  (Section 5.1 "Communication Patterns").
* :class:`StridedAccess` — the processor's elements are interleaved at a
  stride, i.e. *not* contiguous per processor.  The compiler cannot
  summarize these (this is the su2cor case), so CDPC skips them.
* :class:`WholeArrayAccess` — every participating processor reads the
  whole array (broadcast-style shared data).
* :class:`InstructionStream` — an instruction-fetch working set, used to
  model fpppp's instruction-cache-bound behaviour.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Union

from repro.common import Communication, Direction, Partitioning

__all__ = [
    "Access",
    "ArrayDecl",
    "BoundaryAccess",
    "Communication",
    "Direction",
    "InitOrder",
    "InstructionStream",
    "Loop",
    "LoopKind",
    "PartitionedAccess",
    "Partitioning",
    "Phase",
    "Program",
    "StridedAccess",
    "WholeArrayAccess",
]


class LoopKind(enum.Enum):
    """Execution mode, matching Figure 2's overhead taxonomy."""

    PARALLEL = "parallel"
    SEQUENTIAL = "sequential"  # not parallelizable; master runs, slaves idle
    SUPPRESSED = "suppressed"  # parallelizable but too fine-grained; master runs


@dataclass(frozen=True)
class ArrayDecl:
    """A statically-sized array in the shared address space."""

    name: str
    size_bytes: int
    element_size: int = 8

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError(f"array {self.name} must have positive size")
        if self.size_bytes % self.element_size:
            raise ValueError(f"array {self.name} size not a multiple of elements")

    def scaled(self, factor: int) -> "ArrayDecl":
        """Shrink by ``factor``, keeping at least one element."""
        size = max(self.element_size, (self.size_bytes // factor) // self.element_size * self.element_size)
        return ArrayDecl(self.name, size, self.element_size)


@dataclass(frozen=True)
class PartitionedAccess:
    """Contiguous per-processor access to ``units`` chunks of an array."""

    array: str
    units: int
    is_write: bool = False
    partitioning: Partitioning = Partitioning.EVEN
    direction: Direction = Direction.FORWARD
    sweeps: float = 1.0  # how many times the chunk is traversed per loop
    fraction: float = 1.0  # fraction of each chunk touched (tiling/working set)

    def __post_init__(self) -> None:
        if self.units < 1:
            raise ValueError("units must be >= 1")
        if not 0.0 < self.fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")


@dataclass(frozen=True)
class BoundaryAccess:
    """Nearest-neighbour communication on partition boundaries."""

    array: str
    units: int
    comm: Communication = Communication.SHIFT
    boundary_fraction: float = 0.05  # of the chunk size, read from neighbour
    is_write: bool = False
    partitioning: Partitioning = Partitioning.EVEN
    direction: Direction = Direction.FORWARD

    def __post_init__(self) -> None:
        if self.comm is Communication.NONE:
            raise ValueError("boundary access requires a communication kind")
        if not 0.0 < self.boundary_fraction <= 1.0:
            raise ValueError("boundary_fraction must be in (0, 1]")


@dataclass(frozen=True)
class StridedAccess:
    """Cyclic/interleaved access: processor p touches every p-th block.

    The per-processor footprint is spread across the whole array, which is
    what defeats CDPC's contiguity objective for su2cor.
    """

    array: str
    block_bytes: int
    is_write: bool = False
    sweeps: float = 1.0

    def __post_init__(self) -> None:
        if self.block_bytes < 8:
            raise ValueError("block_bytes must be at least one word")


@dataclass(frozen=True)
class WholeArrayAccess:
    """Every participating processor reads the entire array."""

    array: str
    is_write: bool = False
    sweeps: float = 1.0
    fraction: float = 1.0


@dataclass(frozen=True)
class InstructionStream:
    """An instruction-fetch footprint cycled once per loop execution."""

    footprint_bytes: int
    sweeps: float = 1.0


Access = Union[
    PartitionedAccess, BoundaryAccess, StridedAccess, WholeArrayAccess, InstructionStream
]


@dataclass(frozen=True)
class Loop:
    """One (possibly parallel) loop nest."""

    name: str
    kind: LoopKind
    accesses: tuple[Access, ...]
    iterations: Optional[int] = None  # for load-imbalance math; defaults below
    instructions_per_word: float = 2.0  # compute density per data word touched
    tiled: bool = False  # tiling inhibits prefetch software pipelining (applu)

    def __post_init__(self) -> None:
        if not self.accesses:
            raise ValueError(f"loop {self.name} has no accesses")

    @property
    def effective_iterations(self) -> int:
        """Iteration count used for scheduling and load-imbalance."""
        if self.iterations is not None:
            return self.iterations
        for access in self.accesses:
            if isinstance(access, (PartitionedAccess, BoundaryAccess)):
                return access.units
        return 1

    def array_names(self) -> list[str]:
        names = []
        for access in self.accesses:
            array = getattr(access, "array", None)
            if array is not None and array not in names:
                names.append(array)
        return names


@dataclass(frozen=True)
class Phase:
    """A steady-state phase: a loop sequence with an occurrence count.

    ``miss_variation`` models data-dependent behaviour that differs
    between occurrences of the same phase (the paper found one wave5
    phase whose miss rate varies by 30% across occurrences, Section 3.2):
    each occurrence perturbs the phase's working-set fractions by up to
    this relative amount, deterministically per occurrence index.
    """

    name: str
    loops: tuple[Loop, ...]
    occurrences: int = 1
    miss_variation: float = 0.0

    def __post_init__(self) -> None:
        if self.occurrences < 1:
            raise ValueError("occurrences must be >= 1")
        if not self.loops:
            raise ValueError(f"phase {self.name} has no loops")
        if not 0.0 <= self.miss_variation < 1.0:
            raise ValueError("miss_variation must be in [0, 1)")


class InitOrder(enum.Enum):
    """Order in which pages first fault during initialization.

    Determines what bin hopping's fault-order coloring produces: a
    sequential init gives VA-order colors (like page coloring), while
    interleaving the init across arrays decorrelates array bases in the
    cache — which is why neither static policy dominates (Section 7).
    """

    SEQUENTIAL = "sequential"
    INTERLEAVED = "interleaved"
    GROUPED = "grouped"  # interleaved within init groups, groups sequential


@dataclass(frozen=True)
class Program:
    """A whole application: arrays, steady-state phases, and structure facts."""

    name: str
    arrays: tuple[ArrayDecl, ...]
    phases: tuple[Phase, ...]
    init_order: InitOrder = InitOrder.GROUPED
    #: Arrays initialized together (same init loop); defaults to one group of all.
    init_groups: tuple[tuple[str, ...], ...] = ()
    #: Fraction of steady-state time in unparallelizable code (Figure 2).
    sequential_fraction: float = 0.0

    def __post_init__(self) -> None:
        names = [a.name for a in self.arrays]
        if len(set(names)) != len(names):
            raise ValueError("duplicate array names")
        known = set(names)
        for phase in self.phases:
            for loop in phase.loops:
                for array in loop.array_names():
                    if array not in known:
                        raise ValueError(
                            f"loop {loop.name} references unknown array {array}"
                        )

    @property
    def data_set_bytes(self) -> int:
        return sum(a.size_bytes for a in self.arrays)

    def array(self, name: str) -> ArrayDecl:
        for decl in self.arrays:
            if decl.name == name:
                return decl
        raise KeyError(name)

    def effective_init_groups(self) -> tuple[tuple[str, ...], ...]:
        if self.init_groups:
            return self.init_groups
        if self.init_order is InitOrder.SEQUENTIAL:
            return tuple((a.name,) for a in self.arrays)
        return (tuple(a.name for a in self.arrays),)

    def scaled(self, factor: int) -> "Program":
        """Shrink every array by ``factor`` (phases unchanged)."""
        if factor == 1:
            return self
        return Program(
            name=self.name,
            arrays=tuple(a.scaled(factor) for a in self.arrays),
            phases=self.phases,
            init_order=self.init_order,
            init_groups=self.init_groups,
            sequential_fraction=self.sequential_fraction,
        )
