"""SUIF-like parallelizing-compiler substrate.

The paper's compiler side is the SUIF system: it parallelizes FORTRAN
loop nests, statically schedules iterations across processors, and — for
CDPC — emits *access pattern summaries* (array partitionings, communication
patterns and group-access information, Section 5.1) that the run-time
library turns into page-color hints.

Here the "programs" are declarative loop-nest models
(:mod:`repro.compiler.ir`) rather than parsed FORTRAN: each loop declares
how each array is accessed (partitioned / strided / whole-array /
boundary-communication), which is exactly the information SUIF's
parallelization and locality analyses derive.  The passes in this package
then do the compiler's work for real: static scheduling
(:mod:`repro.compiler.parallelize`), summary extraction
(:mod:`repro.compiler.summaries`), locality analysis and prefetch insertion
(:mod:`repro.compiler.locality`, :mod:`repro.compiler.prefetch_pass`) and
data layout with alignment and inter-array padding
(:mod:`repro.compiler.padding`).
"""

from repro.compiler.affine import (
    AffineNest,
    AffinePhase,
    AffineProgram,
    AffineRef,
    AnalysisError,
    Array2D,
    Subscript,
    classify_ref,
    lower,
)
from repro.compiler.frontend import FrontendError, format_program, parse_program
from repro.compiler.ir import (
    ArrayDecl,
    BoundaryAccess,
    Communication,
    Direction,
    InstructionStream,
    Loop,
    LoopKind,
    PartitionedAccess,
    Partitioning,
    Phase,
    Program,
    StridedAccess,
    WholeArrayAccess,
)
from repro.compiler.padding import Layout, layout_arrays
from repro.compiler.parallelize import LoopSchedule, iteration_ranges, schedule_loop
from repro.compiler.prefetch_pass import PrefetchDecision, PrefetchPlan, insert_prefetches
from repro.compiler.summaries import extract_summary

__all__ = [
    "AffineNest",
    "AffinePhase",
    "AffineProgram",
    "AffineRef",
    "AnalysisError",
    "Array2D",
    "ArrayDecl",
    "BoundaryAccess",
    "Communication",
    "Direction",
    "InstructionStream",
    "Layout",
    "Loop",
    "LoopKind",
    "LoopSchedule",
    "PartitionedAccess",
    "Partitioning",
    "Phase",
    "PrefetchDecision",
    "PrefetchPlan",
    "Program",
    "StridedAccess",
    "WholeArrayAccess",
    "extract_summary",
    "format_program",
    "FrontendError",
    "parse_program",
    "insert_prefetches",
    "iteration_ranges",
    "layout_arrays",
    "lower",
    "schedule_loop",
    "Subscript",
    "classify_ref",
]
