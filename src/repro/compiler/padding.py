"""Data layout: base-address assignment, alignment and inter-array padding.

Section 5.4 of the paper describes two virtual-address-space measures that
complement page coloring (which only controls the physically-indexed
external cache):

* **alignment** — every data structure starts on a cache-line boundary,
  eliminating false sharing between structures and, when each processor
  operates on a multiple of the line size, within structures;
* **padding** — a small pad, derived from the group-access information,
  offsets the starting addresses of arrays used together so they never map
  to the same location in the virtually-indexed on-chip cache.

Figure 9's "unaligned" bars correspond to a layout with neither measure;
``layout_arrays(..., aligned=False)`` reproduces it by packing arrays
back-to-back at word granularity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.compiler.ir import ArrayDecl


@dataclass(frozen=True)
class Layout:
    """Assigned base addresses for a program's arrays."""

    bases: dict[str, int]
    sizes: dict[str, int]
    aligned: bool
    total_bytes: int

    def base_of(self, array: str) -> int:
        return self.bases[array]

    def end_of(self, array: str) -> int:
        return self.bases[array] + self.sizes[array]

    def extent(self) -> tuple[int, int]:
        lo = min(self.bases.values())
        hi = max(self.end_of(name) for name in self.bases)
        return lo, hi

    def pages(self, array: str, page_size: int) -> range:
        """Virtual page numbers spanned by an array."""
        first = self.bases[array] // page_size
        last = (self.end_of(array) - 1) // page_size
        return range(first, last + 1)

    def array_at(self, vaddr: int) -> Optional[str]:
        for name, base in self.bases.items():
            if base <= vaddr < base + self.sizes[name]:
                return name
        return None


def _round_up(value: int, multiple: int) -> int:
    return -(-value // multiple) * multiple


def layout_arrays(
    arrays: Sequence[ArrayDecl],
    line_size: int,
    l1_size: int,
    aligned: bool = True,
    groups: Optional[Sequence[tuple[str, str]]] = None,
    base_address: int = 0,
) -> Layout:
    """Assign virtual base addresses to arrays.

    With ``aligned=True`` (the SUIF default), each array starts on a
    cache-line boundary and a small group-aware pad staggers the on-chip
    cache index of arrays that are used together: the k-th member of any
    group cluster is offset by ``k`` additional lines, so grouped arrays'
    starting addresses never collide in the L1.

    With ``aligned=False`` arrays are packed at word granularity with
    deliberately unaligned (4-byte) offsets between them, matching the
    paper's no-alignment/no-padding baseline.
    """
    if line_size <= 0 or l1_size <= 0:
        raise ValueError("line_size and l1_size must be positive")
    bases: dict[str, int] = {}
    sizes: dict[str, int] = {}
    cursor = base_address
    if not aligned:
        for index, decl in enumerate(arrays):
            bases[decl.name] = cursor
            sizes[decl.name] = decl.size_bytes
            # Pack with a deliberately line-straddling 4-byte gap.
            cursor += decl.size_bytes + 4
        return Layout(bases, sizes, aligned=False, total_bytes=cursor - base_address)

    grouped_partners: dict[str, set[str]] = {decl.name: set() for decl in arrays}
    for a, b in groups or ():
        if a in grouped_partners and b in grouped_partners:
            grouped_partners[a].add(b)
            grouped_partners[b].add(a)

    l1_lines = l1_size // line_size
    # Pads grow in strides of several lines rather than one: adjacent
    # streams then sit far enough apart in the cache that a software
    # prefetch issued a few lines ahead is not displaced by its neighbour
    # stream just before use.
    pad_stride = 11
    used_l1_offsets: dict[str, int] = {}
    for decl in arrays:
        cursor = _round_up(cursor, line_size)
        # Stagger against already-placed group partners: pick the smallest
        # pad (in pad_stride steps) giving an L1 index not used by any.
        partner_offsets = {
            used_l1_offsets[p] for p in grouped_partners[decl.name] if p in used_l1_offsets
        }
        pad_lines = 0
        attempts = 0
        while ((cursor // line_size) + pad_lines) % l1_lines in partner_offsets:
            pad_lines += pad_stride
            attempts += 1
            if attempts >= l1_lines:  # every index taken; give up staggering
                pad_lines = 0
                break
        cursor += pad_lines * line_size
        bases[decl.name] = cursor
        sizes[decl.name] = decl.size_bytes
        used_l1_offsets[decl.name] = (cursor // line_size) % l1_lines
        cursor += decl.size_bytes
    return Layout(bases, sizes, aligned=True, total_bytes=cursor - base_address)
