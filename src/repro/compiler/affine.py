"""Affine loop-nest analysis: derive access patterns from subscripts.

The hand-written workload models declare their access patterns
(`PartitionedAccess`, `BoundaryAccess`, ...).  The real SUIF compiler
*derives* that information from the program: it looks at the affine
subscripts of each array reference inside a parallelized loop nest and
concludes how the iteration distribution maps onto data.

This module implements that derivation for the dominant SPEC95fp shape —
two-deep loop nests over column-major (FORTRAN) 2D arrays, with the outer
loop parallelized:

    do i = 0, I-1          ! distributed across processors
      do j = 0, J-1
        A(j, i) = B(j, i-1) + C(i, j) + k(j)

Per reference, with subscripts linear in (i, j):

* inner index varies with ``j`` and the column index with ``i`` →
  the processor owning iteration ``i`` touches whole columns: a
  **partitioned** (contiguous) access; a constant column offset (``i-1``)
  adds **shift/rotate communication** at partition boundaries;
* the column index varies with ``j`` (``C(i, j)``: a row of a
  column-major array) → each processor's elements are spread at a stride
  of one column: a **strided** access the runtime cannot summarize;
* subscripts independent of ``i`` (``k(j)``) → every processor reads the
  same data: a **whole-array** access.

``lower`` turns an :class:`AffineProgram` into the declarative
:class:`~repro.compiler.ir.Program` the rest of the tool-chain consumes,
so the summary extraction, CDPC hints and simulation all run unchanged on
analysis-derived patterns.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler.ir import (
    Access,
    ArrayDecl,
    BoundaryAccess,
    Communication,
    Direction,
    InitOrder,
    Loop,
    LoopKind,
    PartitionedAccess,
    Partitioning,
    Phase,
    Program,
    StridedAccess,
    WholeArrayAccess,
)


@dataclass(frozen=True)
class Subscript:
    """A linear expression ``i_coef*i + j_coef*j + const`` in loop indices."""

    i_coef: int = 0
    j_coef: int = 0
    const: int = 0

    def depends_on_i(self) -> bool:
        return self.i_coef != 0

    def depends_on_j(self) -> bool:
        return self.j_coef != 0


#: Convenience constructors for the common subscript shapes.
def I(offset: int = 0) -> Subscript:  # noqa: E743 - reads like math
    """The outer (distributed) index, plus a constant offset."""
    return Subscript(i_coef=1, const=offset)


def J(offset: int = 0) -> Subscript:
    """The inner index, plus a constant offset."""
    return Subscript(j_coef=1, const=offset)


def C(value: int) -> Subscript:
    """A constant subscript."""
    return Subscript(const=value)


@dataclass(frozen=True)
class Array2D:
    """A column-major 2D array: element (r, c) lives at ``r + c*rows``."""

    name: str
    rows: int
    cols: int
    element_size: int = 8

    @property
    def size_bytes(self) -> int:
        return self.rows * self.cols * self.element_size

    def decl(self) -> ArrayDecl:
        return ArrayDecl(self.name, self.size_bytes, self.element_size)


@dataclass(frozen=True)
class AffineRef:
    """One array reference ``A(row_subscript, col_subscript)``."""

    array: str
    row: Subscript
    col: Subscript
    is_write: bool = False


@dataclass(frozen=True)
class AffineNest:
    """A two-deep loop nest; the outer ``i`` loop is the distributed one."""

    name: str
    i_extent: int
    j_extent: int
    refs: tuple[AffineRef, ...]
    kind: LoopKind = LoopKind.PARALLEL
    instructions_per_point: float = 4.0
    partitioning: Partitioning = Partitioning.EVEN
    direction: Direction = Direction.FORWARD
    tiled: bool = False

    def __post_init__(self) -> None:
        if self.i_extent < 1 or self.j_extent < 1:
            raise ValueError("loop extents must be positive")
        if not self.refs:
            raise ValueError(f"nest {self.name} has no references")


@dataclass(frozen=True)
class AffinePhase:
    name: str
    nests: tuple[AffineNest, ...]
    occurrences: int = 1


@dataclass
class AffineProgram:
    """A program in affine form, before access-pattern derivation."""

    name: str
    arrays: list[Array2D] = field(default_factory=list)
    phases: list[AffinePhase] = field(default_factory=list)
    init_order: InitOrder = InitOrder.GROUPED
    init_groups: tuple[tuple[str, ...], ...] = ()
    sequential_fraction: float = 0.0

    def array(self, name: str) -> Array2D:
        for candidate in self.arrays:
            if candidate.name == name:
                return candidate
        raise KeyError(name)


class AnalysisError(ValueError):
    """A reference shape the analysis cannot classify."""


def classify_ref(ref: AffineRef, array: Array2D, nest: AffineNest) -> Access:
    """Derive the access declaration for one reference in one nest.

    This is the compiler's partitioning/locality reasoning (Section 5.1):
    the loop's ``i`` dimension is distributed, so ownership of data
    follows whichever array dimension ``i`` indexes.
    """
    row, col = ref.row, ref.col

    if row.depends_on_i() and col.depends_on_i():
        raise AnalysisError(
            f"{ref.array}: both subscripts vary with the distributed index; "
            f"not a supported distribution"
        )
    if col.depends_on_i() and col.depends_on_j():
        raise AnalysisError(
            f"{ref.array}: column subscript mixes both loop indices"
        )

    if not row.depends_on_i() and not col.depends_on_i():
        # The reference is invariant in the distributed loop: either a
        # whole-column sweep repeated by every processor, or a constant.
        return WholeArrayAccess(
            ref.array,
            is_write=ref.is_write,
            fraction=_invariant_fraction(ref, array, nest),
        )

    if col.depends_on_i():
        # Column index follows i: processor p owns a contiguous block of
        # columns — the access SUIF's data transformations aim for.
        if abs(col.i_coef) != 1:
            raise AnalysisError(
                f"{ref.array}: non-unit column stride {col.i_coef} in the "
                f"distributed index"
            )
        units = nest.i_extent
        if col.const == 0:
            return PartitionedAccess(
                ref.array,
                units=units,
                is_write=ref.is_write,
                partitioning=nest.partitioning,
                direction=nest.direction,
            )
        # A constant column offset reaches into a neighbour's partition:
        # boundary communication, one column wide per unit of offset.
        return BoundaryAccess(
            ref.array,
            units=units,
            comm=Communication.SHIFT,
            boundary_fraction=min(1.0, abs(col.const)),
            is_write=ref.is_write,
            partitioning=nest.partitioning,
            direction=nest.direction,
        )

    if row.depends_on_i():
        # The *row* index follows i in a column-major array: processor p's
        # elements are spread one per column at a stride of `rows`
        # elements.  Not summarizable — the su2cor case.  The interleave
        # block is the run of consecutive rows one processor owns.
        rows_per_cpu_block = max(
            1, array.rows // max(1, nest.i_extent)
        )
        return StridedAccess(
            ref.array,
            block_bytes=max(8, rows_per_cpu_block * array.element_size),
            is_write=ref.is_write,
        )

    raise AnalysisError(f"{ref.array}: unclassifiable subscript pair {ref}")


def _invariant_fraction(ref: AffineRef, array: Array2D, nest: AffineNest) -> float:
    """How much of an i-invariant array one execution touches."""
    if ref.row.depends_on_j() or ref.col.depends_on_j():
        touched_elements = min(nest.j_extent, array.rows * array.cols)
        return max(
            1 / (array.rows * array.cols),
            min(1.0, touched_elements / (array.rows * array.cols)),
        )
    return max(1 / (array.rows * array.cols), 1e-6)


def lower(program: AffineProgram) -> Program:
    """Derive access patterns for every nest and build the declarative IR."""
    arrays = tuple(a.decl() for a in program.arrays)
    phases = []
    for phase in program.phases:
        loops = []
        for nest in phase.nests:
            accesses: list[Access] = []
            for ref in nest.refs:
                access = classify_ref(ref, program.array(ref.array), nest)
                if access not in accesses:
                    accesses.append(access)
            words_per_point = max(1, len(nest.refs))
            loops.append(
                Loop(
                    name=nest.name,
                    kind=nest.kind,
                    accesses=tuple(accesses),
                    iterations=nest.i_extent,
                    instructions_per_word=(
                        nest.instructions_per_point / words_per_point
                    ),
                    tiled=nest.tiled,
                )
            )
        phases.append(Phase(phase.name, tuple(loops), phase.occurrences))
    return Program(
        name=program.name,
        arrays=arrays,
        phases=tuple(phases),
        init_order=program.init_order,
        init_groups=program.init_groups,
        sequential_fraction=program.sequential_fraction,
    )
