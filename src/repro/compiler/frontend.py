"""A small text frontend for the loop-nest IR.

The paper's compiler consumes FORTRAN; ours consumes declarative loop-nest
models.  This module provides a plain-text format for those models so
workloads can be written, versioned and shared without Python code, plus a
serializer that round-trips any :class:`~repro.compiler.ir.Program`.

Format (line oriented, ``#`` comments, blank lines ignored)::

    program redblack
    sequential_fraction 0.02
    init_groups (red black) (coeff)

    array red 4194304
    array black 4194304
    array coeff 262144

    phase sweep occurrences 10
      parallel loop relax_red ipw 5.0
        write red partitioned units 256
        read black partitioned units 256
        read black boundary units 256 shift 1.0
        read coeff whole
      suppressed loop tail ipw 3.0 tiled
        read coeff strided block 2048 sweeps 2.0
        instr 98304 sweeps 2.0

Access forms::

    read|write ARRAY partitioned units N [blocked] [reverse]
                                         [fraction F] [sweeps F]
    read|write ARRAY boundary units N shift|rotate FRACTION
                                         [blocked] [reverse]
    read|write ARRAY strided block BYTES [sweeps F]
    read|write ARRAY whole [fraction F] [sweeps F]
    instr BYTES [sweeps F]
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.compiler.ir import (
    Access,
    ArrayDecl,
    BoundaryAccess,
    Communication,
    Direction,
    InitOrder,
    InstructionStream,
    Loop,
    LoopKind,
    PartitionedAccess,
    Partitioning,
    Phase,
    Program,
    StridedAccess,
    WholeArrayAccess,
)


class FrontendError(ValueError):
    """A syntax or semantic error in a program file."""

    def __init__(self, line_no: int, message: str) -> None:
        super().__init__(f"line {line_no}: {message}")
        self.line_no = line_no


_LOOP_KINDS = {
    "parallel": LoopKind.PARALLEL,
    "sequential": LoopKind.SEQUENTIAL,
    "suppressed": LoopKind.SUPPRESSED,
}

_COMM = {"shift": Communication.SHIFT, "rotate": Communication.ROTATE}


def parse_program(text: str) -> Program:
    """Parse the text format into a validated :class:`Program`."""
    name: str | None = None
    sequential_fraction = 0.0
    init_order = InitOrder.GROUPED
    init_groups: list[tuple[str, ...]] = []
    arrays: list[ArrayDecl] = []
    phases: list[Phase] = []

    current_phase: tuple[str, int, float] | None = None
    phase_loops: list[Loop] = []
    current_loop: dict[str, Any] | None = None
    loop_accesses: list[Access] = []

    def close_loop(line_no: int) -> None:
        nonlocal current_loop, loop_accesses
        if current_loop is None:
            return
        if not loop_accesses:
            raise FrontendError(line_no, f"loop {current_loop['name']} has no accesses")
        phase_loops.append(
            Loop(
                name=current_loop["name"],
                kind=current_loop["kind"],
                accesses=tuple(loop_accesses),
                iterations=current_loop["iterations"],
                instructions_per_word=current_loop["ipw"],
                tiled=current_loop["tiled"],
            )
        )
        current_loop, loop_accesses = None, []

    def close_phase(line_no: int) -> None:
        nonlocal current_phase, phase_loops
        close_loop(line_no)
        if current_phase is None:
            return
        if not phase_loops:
            raise FrontendError(line_no, f"phase {current_phase[0]} has no loops")
        phases.append(
            Phase(current_phase[0], tuple(phase_loops),
                  occurrences=current_phase[1],
                  miss_variation=current_phase[2])
        )
        current_phase, phase_loops = None, []

    for line_no, tokens in _token_lines(text):
        head = tokens[0]
        try:
            if head == "program":
                name = _one_arg(tokens, line_no)
            elif head == "sequential_fraction":
                sequential_fraction = float(_one_arg(tokens, line_no))
            elif head == "init_order":
                init_order = InitOrder(_one_arg(tokens, line_no))
            elif head == "init_groups":
                init_groups = _parse_groups(tokens[1:], line_no)
            elif head == "array":
                arrays.append(_parse_array(tokens, line_no))
            elif head == "phase":
                close_phase(line_no)
                current_phase = _parse_phase_header(tokens, line_no)
            elif head in _LOOP_KINDS:
                if current_phase is None:
                    raise FrontendError(line_no, "loop outside of a phase")
                close_loop(line_no)
                current_loop = _parse_loop_header(tokens, line_no)
            elif head in ("read", "write", "instr"):
                if current_loop is None:
                    raise FrontendError(line_no, "access outside of a loop")
                loop_accesses.append(_parse_access(tokens, line_no))
            else:
                raise FrontendError(line_no, f"unknown directive {head!r}")
        except FrontendError:
            raise
        except (ValueError, IndexError) as exc:
            raise FrontendError(line_no, str(exc)) from exc

    close_phase(line_no if "line_no" in dir() else 0)
    if name is None:
        raise FrontendError(0, "missing 'program NAME' directive")
    if not arrays:
        raise FrontendError(0, "program declares no arrays")
    if not phases:
        raise FrontendError(0, "program declares no phases")
    try:
        return Program(
            name=name,
            arrays=tuple(arrays),
            phases=tuple(phases),
            init_order=init_order,
            init_groups=tuple(init_groups),
            sequential_fraction=sequential_fraction,
        )
    except ValueError as exc:  # IR-level validation (e.g. unknown arrays)
        raise FrontendError(0, str(exc)) from exc


def _token_lines(text: str) -> Iterator[tuple[int, list[str]]]:
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if line:
            yield line_no, line.replace("(", " ( ").replace(")", " ) ").split()


def _one_arg(tokens: list[str], line_no: int) -> str:
    if len(tokens) != 2:
        raise FrontendError(line_no, f"{tokens[0]} takes exactly one argument")
    return tokens[1]


def _parse_groups(tokens: list[str], line_no: int) -> list[tuple[str, ...]]:
    groups: list[tuple[str, ...]] = []
    current: list[str] | None = None
    for token in tokens:
        if token == "(":
            if current is not None:
                raise FrontendError(line_no, "nested '(' in init_groups")
            current = []
        elif token == ")":
            if current is None or not current:
                raise FrontendError(line_no, "empty or unopened group")
            groups.append(tuple(current))
            current = None
        elif current is not None:
            current.append(token)
        else:
            raise FrontendError(line_no, f"stray token {token!r} in init_groups")
    if current is not None:
        raise FrontendError(line_no, "unclosed '(' in init_groups")
    return groups


def _parse_array(tokens: list[str], line_no: int) -> ArrayDecl:
    if len(tokens) < 3:
        raise FrontendError(line_no, "array requires a name and a size")
    name, size = tokens[1], int(tokens[2])
    element = 8
    rest = tokens[3:]
    if rest[:1] == ["element"]:
        element = int(rest[1])
        rest = rest[2:]
    if rest:
        raise FrontendError(line_no, f"unexpected tokens after array: {rest}")
    return ArrayDecl(name, size, element_size=element)


def _parse_phase_header(
    tokens: list[str], line_no: int
) -> tuple[str, int, float]:
    if len(tokens) < 2:
        raise FrontendError(line_no, "phase requires a name")
    occurrences = 1
    miss_variation = 0.0
    rest = tokens[2:]
    while rest:
        if rest[0] == "occurrences":
            occurrences = int(rest[1])
            rest = rest[2:]
        elif rest[0] == "miss_variation":
            miss_variation = float(rest[1])
            rest = rest[2:]
        else:
            raise FrontendError(line_no, f"unknown phase option {rest[0]!r}")
    return tokens[1], occurrences, miss_variation


def _parse_loop_header(tokens: list[str], line_no: int) -> dict[str, Any]:
    if len(tokens) < 3 or tokens[1] != "loop":
        raise FrontendError(line_no, f"expected '{tokens[0]} loop NAME'")
    loop: dict[str, Any] = {
        "kind": _LOOP_KINDS[tokens[0]],
        "name": tokens[2],
        "ipw": 2.0,
        "tiled": False,
        "iterations": None,
    }
    rest = tokens[3:]
    while rest:
        if rest[0] == "ipw":
            loop["ipw"] = float(rest[1])
            rest = rest[2:]
        elif rest[0] == "iterations":
            loop["iterations"] = int(rest[1])
            rest = rest[2:]
        elif rest[0] == "tiled":
            loop["tiled"] = True
            rest = rest[1:]
        else:
            raise FrontendError(line_no, f"unknown loop option {rest[0]!r}")
    return loop


def _take_common(
    rest: list[str], line_no: int
) -> tuple[dict[str, Any], list[str]]:
    options: dict[str, Any] = {"fraction": 1.0, "sweeps": 1.0,
               "partitioning": Partitioning.EVEN, "direction": Direction.FORWARD}
    while rest:
        if rest[0] == "fraction":
            options["fraction"] = float(rest[1])
            rest = rest[2:]
        elif rest[0] == "sweeps":
            options["sweeps"] = float(rest[1])
            rest = rest[2:]
        elif rest[0] == "blocked":
            options["partitioning"] = Partitioning.BLOCKED
            rest = rest[1:]
        elif rest[0] == "even":
            options["partitioning"] = Partitioning.EVEN
            rest = rest[1:]
        elif rest[0] == "reverse":
            options["direction"] = Direction.REVERSE
            rest = rest[1:]
        else:
            raise FrontendError(line_no, f"unknown access option {rest[0]!r}")
    return options, rest


def _parse_access(tokens: list[str], line_no: int) -> Access:
    if tokens[0] == "instr":
        footprint = int(tokens[1])
        sweeps = 1.0
        rest = tokens[2:]
        if rest[:1] == ["sweeps"]:
            sweeps = float(rest[1])
            rest = rest[2:]
        if rest:
            raise FrontendError(line_no, f"unexpected tokens after instr: {rest}")
        return InstructionStream(footprint_bytes=footprint, sweeps=sweeps)

    is_write = tokens[0] == "write"
    if len(tokens) < 3:
        raise FrontendError(line_no, "access requires an array and a shape")
    array, shape = tokens[1], tokens[2]

    if shape == "partitioned":
        if tokens[3] != "units":
            raise FrontendError(line_no, "expected 'units N' after partitioned")
        units = int(tokens[4])
        options, _ = _take_common(tokens[5:], line_no)
        return PartitionedAccess(
            array, units=units, is_write=is_write,
            partitioning=options["partitioning"], direction=options["direction"],
            fraction=options["fraction"], sweeps=options["sweeps"],
        )
    if shape == "boundary":
        if tokens[3] != "units":
            raise FrontendError(line_no, "expected 'units N' after boundary")
        units = int(tokens[4])
        comm = _COMM.get(tokens[5])
        if comm is None:
            raise FrontendError(line_no, "boundary requires 'shift' or 'rotate'")
        boundary_fraction = float(tokens[6])
        options, _ = _take_common(tokens[7:], line_no)
        return BoundaryAccess(
            array, units=units, comm=comm, boundary_fraction=boundary_fraction,
            is_write=is_write, partitioning=options["partitioning"],
            direction=options["direction"],
        )
    if shape == "strided":
        if tokens[3] != "block":
            raise FrontendError(line_no, "expected 'block BYTES' after strided")
        block = int(tokens[4])
        options, _ = _take_common(tokens[5:], line_no)
        return StridedAccess(array, block_bytes=block, is_write=is_write,
                             sweeps=options["sweeps"])
    if shape == "whole":
        options, _ = _take_common(tokens[3:], line_no)
        return WholeArrayAccess(array, is_write=is_write,
                                fraction=options["fraction"],
                                sweeps=options["sweeps"])
    raise FrontendError(line_no, f"unknown access shape {shape!r}")


# ----------------------------------------------------------------------
# Serialization (round-trip)


def format_program(program: Program) -> str:
    """Serialize a program to the text format (parse-compatible)."""
    lines = [f"program {program.name}"]
    if program.sequential_fraction:
        lines.append(f"sequential_fraction {program.sequential_fraction}")
    if program.init_order is not InitOrder.GROUPED:
        lines.append(f"init_order {program.init_order.value}")
    if program.init_groups:
        groups = " ".join(f"({' '.join(g)})" for g in program.init_groups)
        lines.append(f"init_groups {groups}")
    lines.append("")
    for decl in program.arrays:
        suffix = f" element {decl.element_size}" if decl.element_size != 8 else ""
        lines.append(f"array {decl.name} {decl.size_bytes}{suffix}")
    for phase in program.phases:
        lines.append("")
        header = f"phase {phase.name} occurrences {phase.occurrences}"
        if phase.miss_variation:
            header += f" miss_variation {phase.miss_variation}"
        lines.append(header)
        for loop in phase.loops:
            header = f"  {loop.kind.value} loop {loop.name} ipw {loop.instructions_per_word}"
            if loop.iterations is not None:
                header += f" iterations {loop.iterations}"
            if loop.tiled:
                header += " tiled"
            lines.append(header)
            for access in loop.accesses:
                lines.append(f"    {_format_access(access)}")
    return "\n".join(lines) + "\n"


def _format_access(access: Access) -> str:
    if isinstance(access, InstructionStream):
        text = f"instr {access.footprint_bytes}"
        if access.sweeps != 1.0:
            text += f" sweeps {access.sweeps}"
        return text
    verb = "write" if access.is_write else "read"
    if isinstance(access, PartitionedAccess):
        text = f"{verb} {access.array} partitioned units {access.units}"
        if access.partitioning is Partitioning.BLOCKED:
            text += " blocked"
        if access.direction is Direction.REVERSE:
            text += " reverse"
        if access.fraction != 1.0:
            text += f" fraction {access.fraction}"
        if access.sweeps != 1.0:
            text += f" sweeps {access.sweeps}"
        return text
    if isinstance(access, BoundaryAccess):
        text = (
            f"{verb} {access.array} boundary units {access.units} "
            f"{access.comm.value} {access.boundary_fraction}"
        )
        if access.partitioning is Partitioning.BLOCKED:
            text += " blocked"
        if access.direction is Direction.REVERSE:
            text += " reverse"
        return text
    if isinstance(access, StridedAccess):
        text = f"{verb} {access.array} strided block {access.block_bytes}"
        if access.sweeps != 1.0:
            text += f" sweeps {access.sweeps}"
        return text
    if isinstance(access, WholeArrayAccess):
        text = f"{verb} {access.array} whole"
        if access.fraction != 1.0:
            text += f" fraction {access.fraction}"
        if access.sweeps != 1.0:
            text += f" sweeps {access.sweeps}"
        return text
    raise TypeError(f"unknown access type {type(access)!r}")
