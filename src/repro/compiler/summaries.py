"""Extraction of access pattern summaries from a program (Section 5.1).

This pass performs the compiler half of CDPC: it walks every loop of every
phase and records

* an :class:`~repro.core.access_summary.ArrayPartitioning` for each
  partitioned access (partitioned arrays are the ones SUIF's static
  schedule makes predictable),
* a :class:`~repro.core.access_summary.CommunicationPattern` for each
  boundary access, and
* :class:`~repro.core.access_summary.GroupAccess` pairs for arrays touched
  in the same loop.

Strided accesses are *not* summarized: the per-processor footprint of a
cyclically-distributed array is not contiguous, so the run-time library
cannot lay it out densely.  This is precisely the su2cor situation the
paper describes — CDPC is applied only to the remaining data structures.
Whole-array (broadcast) accesses are likewise skipped, but both still
contribute group-access pairs, since they do share loops with partitioned
arrays.
"""

from __future__ import annotations

from itertools import combinations

from repro.common import Direction, Partitioning
from repro.compiler.ir import (
    BoundaryAccess,
    PartitionedAccess,
    Program,
    StridedAccess,
    WholeArrayAccess,
)
from repro.compiler.padding import Layout
from repro.core.access_summary import (
    AccessSummary,
    ArrayPartitioning,
    CommunicationPattern,
)


def extract_summary(program: Program, layout: Layout) -> AccessSummary:
    """Build the access summary the compiler passes to the CDPC runtime."""
    summary = AccessSummary()
    unsummarizable: set[str] = set()

    for phase in program.phases:
        for loop in phase.loops:
            for access in loop.accesses:
                if isinstance(access, PartitionedAccess):
                    _add_partitioning(
                        summary,
                        layout,
                        access.array,
                        access.units,
                        access.partitioning,
                        access.direction,
                    )
                elif isinstance(access, BoundaryAccess):
                    part = _add_partitioning(
                        summary,
                        layout,
                        access.array,
                        access.units,
                        access.partitioning,
                        access.direction,
                    )
                    boundary = max(8, int(part.unit * access.boundary_fraction))
                    comm = CommunicationPattern(part, access.comm, boundary)
                    if comm not in summary.communications:
                        summary.communications.append(comm)
                elif isinstance(access, (StridedAccess, WholeArrayAccess)):
                    if isinstance(access, StridedAccess):
                        unsummarizable.add(access.array)
            names = loop.array_names()
            for array_a, array_b in combinations(names, 2):
                summary.add_group(array_a, array_b)

    # Remove partitionings for arrays that also have unsummarizable
    # accesses: a single unanalyzable access pattern disqualifies the whole
    # array, as padding and CDPC both require every access understood.
    summary.partitionings = [
        p for p in summary.partitionings if p.array not in unsummarizable
    ]
    summary.communications = [
        c for c in summary.communications if c.partitioning.array not in unsummarizable
    ]
    return summary


def _add_partitioning(
    summary: AccessSummary,
    layout: Layout,
    array: str,
    units: int,
    partitioning: Partitioning,
    direction: Direction,
) -> ArrayPartitioning:
    size = layout.sizes[array]
    unit = max(1, size // max(units, 1))
    part = ArrayPartitioning(
        array=array,
        start=layout.base_of(array),
        size=size,
        unit=unit,
        partitioning=partitioning,
        direction=direction,
    )
    for existing in summary.partitionings:
        if existing == part:
            return existing
    summary.partitionings.append(part)
    return part
