"""Page-level access maps — the data behind Figures 3 and 5.

Figure 3 plots, for each processor, the virtual pages it touches during
the steady state: sparse stripes spread over a range much larger than the
cache.  Figure 5 re-plots the same accesses in *coloring order* (the page
permutation CDPC produces): the stripes become dense blocks, one per
processor.  The functions here compute both views plus the two scalar
summaries used in tests and benchmarks: footprint density (how tightly a
processor's pages pack) and conflict depth (worst pages-per-color for any
processor — 1 means a conflict-free mapping).
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.core.access_summary import AccessSummary
from repro.core.coloring import ColoringResult
from repro.core.segments import compute_segments


def page_access_map(
    summary: AccessSummary, page_size: int, num_cpus: int
) -> dict[int, frozenset[int]]:
    """Virtual page -> set of processors touching it in the steady state."""
    result: dict[int, set[int]] = {}
    for segment in compute_segments(summary, page_size, num_cpus):
        for page in segment.pages:
            result.setdefault(page, set()).update(segment.cpus)
    return {page: frozenset(cpus) for page, cpus in result.items()}


def va_order_map(
    access_map: Mapping[int, frozenset[int]]
) -> list[tuple[int, frozenset[int]]]:
    """The Figure 3 view: (page, processors) in virtual-address order."""
    return sorted(access_map.items())


def coloring_order_map(
    coloring: ColoringResult, access_map: Mapping[int, frozenset[int]]
) -> list[tuple[int, frozenset[int]]]:
    """The Figure 5 view: (page, processors) in CDPC coloring order."""
    return [
        (page, access_map.get(page, frozenset())) for page in coloring.page_order
    ]


def footprint_density(
    ordered: Sequence[tuple[int, frozenset[int]]], cpu: int
) -> float:
    """Fraction of a processor's positional span actually occupied.

    1.0 means the processor's pages form one contiguous block in the given
    order; small values mean sparse stripes.  Comparing the density in VA
    order (Figure 3) against coloring order (Figure 5) quantifies CDPC's
    compaction.
    """
    positions = [i for i, (_page, cpus) in enumerate(ordered) if cpu in cpus]
    if not positions:
        return 0.0
    span = positions[-1] - positions[0] + 1
    return len(positions) / span


def conflict_depth(
    colors: Mapping[int, int],
    access_map: Mapping[int, frozenset[int]],
    num_colors: int,
) -> int:
    """Worst-case pages mapped to one color for any single processor.

    A value of 1 means no processor has two of its pages on the same
    color — CDPC's conflict-free goal when footprints fit in the cache.
    Pages without a color assignment (unhinted) are ignored.
    """
    per_cpu_color: dict[tuple[int, int], int] = {}
    deepest = 0
    for page, cpus in access_map.items():
        color = colors.get(page)
        if color is None:
            continue
        for cpu in cpus:
            key = (cpu, color)
            depth = per_cpu_color.get(key, 0) + 1
            per_cpu_color[key] = depth
            if depth > deepest:
                deepest = depth
    return deepest
