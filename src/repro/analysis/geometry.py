"""Cross-geometry policy comparison: one workload, N machines, M policies.

The PR-10 deliverable figure generalizes the Figure 6 policy sweep along
a second axis — the machine geometry.  Every ``(machine, policy)`` cell
is one independent benchmark run, fanned out as a single fault-tolerant
campaign, and the result renders as a grouped bar chart with one block
per geometry::

    from repro.analysis.geometry import compare_geometries

    comparison = compare_geometries("tomcatv", cpus=4, scale=4)
    print(comparison.figure())

Geometries are named :data:`repro.machine.MACHINE_PRESETS` entries; the
default trio is the paper's base machine plus the two PR-10 geometries
(sliced XOR-hashed LLC, three-level with a shared LLC), which is exactly
the spread where the color-function abstraction earns its keep: the
policies see ``machine.num_colors`` colors without knowing whether a
color is a bit field or a slice-hash equivalence class.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Sequence

from repro.analysis.figures import grouped_bar_chart
from repro.harness.campaign import Campaign, CampaignOptions
from repro.machine.config import MACHINE_PRESETS
from repro.sim.engine import EngineOptions
from repro.sim.results import RunResult
from repro.sim.sweeps import STANDARD_POLICIES, Task, run_task_campaign

__all__ = [
    "DEFAULT_GEOMETRIES",
    "GeometryComparison",
    "compare_geometries",
]

#: The geometries the deliverable figure spans by default.
DEFAULT_GEOMETRIES: tuple[str, ...] = (
    "sgi_base",
    "sliced_llc_8x",
    "three_level",
)


@dataclass(frozen=True)
class GeometryComparison:
    """Results of one cross-geometry sweep, keyed ``(machine, policy)``."""

    workload: str
    cpus: int
    scale: int
    machines: tuple[str, ...]
    policies: tuple[str, ...]
    results: dict[tuple[str, str], RunResult]
    campaign: Campaign

    def cells(self, metric: str = "wall_ms") -> dict[str, dict[str, float]]:
        """Metric values as ``{machine: {policy: value}}`` for charting.

        ``metric`` is ``wall_ms``, ``mcpi`` or a miss-kind name from the
        result's breakdown (``conflict``, ``capacity``, ...).
        """
        out: dict[str, dict[str, float]] = {}
        for machine in self.machines:
            series: dict[str, float] = {}
            for policy in self.policies:
                result = self.results.get((machine, policy))
                if result is None:
                    continue
                if metric == "wall_ms":
                    series[policy] = result.wall_ns / 1e6
                elif metric == "mcpi":
                    series[policy] = result.mcpi()
                else:
                    series[policy] = float(result.miss_breakdown()[metric])
            if series:
                out[machine] = series
        return out

    def figure(self, metric: str = "wall_ms", width: int = 40) -> str:
        """The grouped bar chart: one block per geometry."""
        unit = {"wall_ms": "ms", "mcpi": ""}.get(metric, "")
        return grouped_bar_chart(self.cells(metric), width=width, unit=unit)

    def to_dict(self) -> dict:
        """JSON-ready payload (full per-cell run results)."""
        return {
            "workload": self.workload,
            "cpus": self.cpus,
            "scale": self.scale,
            "machines": list(self.machines),
            "policies": list(self.policies),
            "cells": {
                f"{machine}/{policy}": result.to_dict()
                for (machine, policy), result in self.results.items()
            },
            "campaign": self.campaign.report.to_dict(),
        }


def compare_geometries(
    workload: str,
    machines: Sequence[str] = DEFAULT_GEOMETRIES,
    policies: Optional[dict[str, dict]] = None,
    *,
    cpus: int = 8,
    scale: int = 16,
    options: Optional[EngineOptions] = None,
    max_workers: Optional[int] = None,
    campaign: Optional[CampaignOptions] = None,
) -> GeometryComparison:
    """Run one workload across ``machines`` × ``policies`` as one campaign.

    ``policies`` follows the :data:`~repro.sim.sweeps.STANDARD_POLICIES`
    shape (label -> :class:`EngineOptions` overrides) and defaults to the
    paper's page-coloring / bin-hopping / CDPC trio.  Failed cells are
    omitted from ``results``; the full campaign report (failures,
    retries) rides on the returned comparison.
    """
    unknown = sorted(set(machines) - set(MACHINE_PRESETS))
    if unknown:
        raise ValueError(
            f"unknown machine preset(s): {', '.join(unknown)}; "
            f"choose from {', '.join(sorted(MACHINE_PRESETS))}"
        )
    labeled = policies or STANDARD_POLICIES
    base = options or EngineOptions()
    keys: list[tuple[str, str]] = []
    tasks: list[Task] = []
    for machine in machines:
        config = MACHINE_PRESETS[machine](cpus).scaled(scale)
        for label, overrides in labeled.items():
            keys.append((machine, label))
            tasks.append((workload, config, replace(base, **overrides)))
    outcome = run_task_campaign(tasks, max_workers=max_workers, campaign=campaign)
    results = {
        key: result
        for key, result in zip(keys, outcome.results)
        if result is not None
    }
    return GeometryComparison(
        workload=workload,
        cpus=cpus,
        scale=scale,
        machines=tuple(machines),
        policies=tuple(labeled),
        results=results,
        campaign=outcome,
    )
