"""ASCII rendering of the Figure 3/5 access-pattern plots.

The paper's Figures 3 and 5 are dot plots: one row per processor, one
column per page (in virtual-address order for Figure 3, coloring order
for Figure 5), with a mark where the processor touches the page.  This
renders the same picture in text, down-sampling columns to a terminal
width; a cell is marked when the processor touches any page in its bucket.
"""

from __future__ import annotations

from typing import Sequence


def render_access_map(
    ordered: Sequence[tuple[int, frozenset[int]]],
    num_cpus: int,
    width: int = 96,
    mark: str = "#",
    cache_pages: int | None = None,
) -> str:
    """Render (page, processors) rows as a per-processor dot plot.

    ``ordered`` is the output of :func:`repro.analysis.va_order_map` or
    :func:`repro.analysis.coloring_order_map`.  When ``cache_pages`` is
    given, a scale line marks each cache-sized extent (the tick marks of
    the paper's figures, where each tick is one full color cycle).
    """
    if num_cpus < 1:
        raise ValueError("num_cpus must be >= 1")
    if width < 1:
        raise ValueError("width must be >= 1")
    total = len(ordered)
    if total == 0:
        return "(no pages)"
    columns = min(width, total)
    pages_per_cell = total / columns

    grid = [[" "] * columns for _ in range(num_cpus)]
    for index, (_page, cpus) in enumerate(ordered):
        cell = min(columns - 1, int(index / pages_per_cell))
        for cpu in cpus:
            if 0 <= cpu < num_cpus:
                grid[cpu][cell] = mark

    label_width = len(f"cpu{num_cpus - 1}")
    lines = [
        f"{('cpu' + str(cpu)).rjust(label_width)} |{''.join(row)}|"
        for cpu, row in enumerate(grid)
    ]
    if cache_pages:
        scale = [" "] * columns
        tick = cache_pages
        while tick < total:
            cell = min(columns - 1, int(tick / pages_per_cell))
            scale[cell] = "'"
            tick += cache_pages
        lines.append(f"{' ' * label_width} |{''.join(scale)}|  ' = one cache")
    return "\n".join(lines)
