"""ASCII bar charts for terminal-friendly figure rendering.

The paper's figures are grouped bar charts (execution time per processor
count per policy).  These helpers render the same data as horizontal
ASCII bars so examples and benchmark output can show shape at a glance
without a plotting dependency.
"""

from __future__ import annotations

from typing import Mapping, Sequence


def ascii_bar(value: float, maximum: float, width: int = 40) -> str:
    """One horizontal bar, scaled so ``maximum`` fills ``width`` cells."""
    if maximum <= 0:
        raise ValueError("maximum must be positive")
    if value < 0:
        raise ValueError("value must be non-negative")
    cells = round(min(value, maximum) / maximum * width)
    return "#" * cells


def bar_chart(
    values: Mapping[str, float], width: int = 40, unit: str = ""
) -> str:
    """A labeled horizontal bar chart, one row per entry.

    >>> print(bar_chart({"a": 2.0, "b": 1.0}, width=4))
    a  ####  2
    b  ##    1
    """
    if not values:
        raise ValueError("need at least one value")
    maximum = max(values.values())
    label_width = max(len(label) for label in values)
    number_width = max(len(_fmt(v)) for v in values.values())
    lines = []
    for label, value in values.items():
        bar = ascii_bar(value, maximum, width) if maximum > 0 else ""
        lines.append(
            f"{label.rjust(label_width)}  {bar.ljust(width)}  "
            f"{_fmt(value).rjust(number_width)}{unit}"
        )
    return "\n".join(lines)


def grouped_bar_chart(
    groups: Mapping[str, Mapping[str, float]], width: int = 40, unit: str = ""
) -> str:
    """Grouped bars (the Figure 6/9 shape): one block per group.

    ``groups`` maps a group label (e.g. a processor count) to a mapping of
    series label -> value.  All bars share one scale.
    """
    if not groups:
        raise ValueError("need at least one group")
    maximum = max(
        value for series in groups.values() for value in series.values()
    )
    label_width = max(
        len(label) for series in groups.values() for label in series
    )
    blocks = []
    for group, series in groups.items():
        lines = [f"{group}:"]
        for label, value in series.items():
            bar = ascii_bar(value, maximum, width)
            lines.append(
                f"  {label.rjust(label_width)}  {bar.ljust(width)}  "
                f"{_fmt(value)}{unit}"
            )
        blocks.append("\n".join(lines))
    return "\n".join(blocks)


def _fmt(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return f"{value:.2f}"


def sparkline(values: Sequence[float]) -> str:
    """A one-line trend (eight-level blocks), e.g. for MCPI vs CPUs."""
    if not values:
        raise ValueError("need at least one value")
    blocks = "▁▂▃▄▅▆▇█"
    low, high = min(values), max(values)
    if high == low:
        return blocks[0] * len(values)
    scale = (len(blocks) - 1) / (high - low)
    return "".join(blocks[round((v - low) * scale)] for v in values)
