"""The churn figure family: policy comparison under dynamic capacity.

Renders the result the paper never measured — CDPC (with adaptive
re-planning) vs dynamic recoloring vs bin hopping while co-runners come
and go and the host revokes capacity.  Three panels:

* **honor rate** per mode — how much of the intended coloring survived;
* **MCPI** per mode — what the churn cost in misses;
* **capacity timeline** — frames available per beat, reconstructed from
  the degradation events, so the reader can line dips up with trips and
  re-plans.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.analysis.figures import ascii_bar, bar_chart

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.scenarios.runner import ScenarioReport


def capacity_timeline(
    timeline: Sequence[Sequence[int]], width: int = 40
) -> str:
    """ASCII capacity-over-beats strip.

    ``timeline`` rows are ``(beat, capacity_frames, free_frames)`` as the
    churn driver records them after each beat's actions
    (:attr:`repro.robustness.degradation.DegradationReport.capacity_timeline`).
    The bar shows total capacity; the trailing numbers capacity and free.
    """
    rows = [tuple(row) for row in timeline]
    if not rows:
        return "(no churn beats)"
    total = max(capacity for _beat, capacity, _free in rows)
    if total <= 0:
        return "(no capacity recorded)"
    lines = []
    for beat, capacity, free in rows:
        bar = ascii_bar(capacity, total, width)
        lines.append(
            f"beat {beat:>3}  {bar.ljust(width)}  {capacity:>6} ({free} free)"
        )
    return "\n".join(lines)


def churn_figure(report: "ScenarioReport", width: int = 40) -> str:
    """The full churn figure for one scenario report."""
    if not report.results:
        return f"scenario {report.spec.name!r}: no completed modes"
    sections = [f"scenario {report.spec.name!r} (workload "
                f"{report.spec.workload!r}, seed {report.spec.seed})"]
    sections.append("\nhint honor rate (higher is better):")
    sections.append(bar_chart(report.honor_rates(), width=width))
    sections.append("\nMCPI (lower is better):")
    sections.append(bar_chart(report.mcpi(), width=width))
    degradation = report.degradation_summary()
    timeline = next(
        (
            summary["capacity_timeline"]
            for summary in degradation.values()
            if summary.get("capacity_timeline")
        ),
        None,
    )
    if timeline:
        sections.append("\ncapacity timeline (frames):")
        sections.append(capacity_timeline(timeline, width=width))
    replans = {
        label: summary.get("adaptive_replans", 0)
        for label, summary in degradation.items()
    }
    if any(replans.values()):
        sections.append("\nadaptive re-plans: " + ", ".join(
            f"{label}={count}" for label, count in replans.items()
        ))
    return "\n".join(sections)
