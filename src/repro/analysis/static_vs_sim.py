"""Figure family: symbolic miss prediction vs simulated measurement.

The static analyzer's claim is quantitative: for every workload and
mapping policy, the measured external-cache miss total must land inside
the predictor's self-reported ``[lo, hi]`` interval.  This module sweeps
all 10 SPEC95fp models across {page_coloring, bin_hopping, cdpc},
collects (predicted, bound, measured) triples, and renders them as the
paper-style ASCII figure plus a JSON payload CI archives for diffing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.analysis.figures import ascii_bar
from repro.machine.config import MachineConfig
from repro.sim.tracegen import SimProfile

#: The policy labels of the paper's Figure 2 comparison; "cdpc" matches
#: :data:`repro.sim.sweeps.STANDARD_POLICIES` — the bin_hopping base
#: policy with compiler-directed hints delivered by touch order.
POLICY_LABELS = ("page_coloring", "bin_hopping", "cdpc")


@dataclass(frozen=True)
class PredictionCell:
    """One (workload, policy) cell of the cross-validation matrix."""

    workload: str
    policy: str
    predicted: float
    bound_lo: float
    bound_hi: float
    measured: float
    analyze_ns: float
    sim_ns: float
    violations: tuple[str, ...]

    @property
    def within_bound(self) -> bool:
        return not self.violations

    @property
    def error(self) -> float:
        """Relative prediction error vs measurement (0 when both idle)."""
        if self.measured == 0:
            return 0.0 if self.predicted == 0 else 1.0
        return abs(self.predicted - self.measured) / self.measured

    def to_dict(self) -> dict[str, object]:
        return {
            "workload": self.workload,
            "policy": self.policy,
            "predicted": self.predicted,
            "bound_lo": self.bound_lo,
            "bound_hi": self.bound_hi,
            "measured": self.measured,
            "error": self.error,
            "within_bound": self.within_bound,
            "analyze_ns": self.analyze_ns,
            "sim_ns": self.sim_ns,
            "violations": list(self.violations),
        }


def collect_static_vs_sim(
    config: MachineConfig,
    workloads: Optional[Sequence[str]] = None,
    policies: Sequence[str] = POLICY_LABELS,
    num_cpus: Optional[int] = None,
    profile: Optional[SimProfile] = None,
) -> list[PredictionCell]:
    """Predict then simulate every (workload, policy) cell.

    The simulator leg is the expensive one (seconds per cell vs
    milliseconds for the prediction); callers wanting prediction only
    should use :func:`repro.checker.predict_workload` directly.
    """
    import time

    from repro.checker.staticmiss import StaticMissProfile, predict_workload
    from repro.sim.engine import EngineOptions, run_benchmark
    from repro.workloads.specfp import WORKLOAD_NAMES

    names = list(workloads) if workloads is not None else list(WORKLOAD_NAMES)
    sim_profile = profile if profile is not None else SimProfile()
    cells: list[PredictionCell] = []
    for name in names:
        for label in policies:
            cdpc = label == "cdpc"
            native = "bin_hopping" if cdpc else label
            prediction = predict_workload(
                name,
                config,
                num_cpus=num_cpus,
                policy=native,
                cdpc=cdpc,
                profile=sim_profile,
            )
            started = time.perf_counter()
            result = run_benchmark(
                name,
                config,
                EngineOptions(policy=native, cdpc=cdpc, profile=sim_profile),
            )
            sim_ns = (time.perf_counter() - started) * 1e9
            total = prediction.estimate("total")
            measured = StaticMissProfile.measured_from(result)
            cells.append(
                PredictionCell(
                    workload=name,
                    policy=label,
                    predicted=prediction.predicted_total(),
                    bound_lo=total.lo,
                    bound_hi=total.hi,
                    measured=measured["total"],
                    analyze_ns=prediction.analyze_ns,
                    sim_ns=sim_ns,
                    violations=tuple(prediction.check(result)),
                )
            )
    return cells


def static_vs_sim_figure(cells: Sequence[PredictionCell], width: int = 36) -> str:
    """Paired predicted/measured bars per cell, with bound verdicts.

    ``P`` rows are predictions (the trailing ``<= hi`` is the interval
    ceiling), ``M`` rows are simulator measurements; a cell whose
    measurement escapes the interval is flagged ``OUT OF BOUND``.
    """
    if not cells:
        return "(no cells collected)"
    peak = max(max(c.bound_hi, c.measured) for c in cells) or 1.0
    lines = [
        "static prediction vs simulation "
        f"({len(cells)} cells, {sum(1 for c in cells if c.within_bound)} "
        "within bound):"
    ]
    last_workload = None
    for cell in cells:
        if cell.workload != last_workload:
            lines.append(f"{cell.workload}:")
            last_workload = cell.workload
        flag = "" if cell.within_bound else "  OUT OF BOUND"
        lines.append(
            f"  {cell.policy:>13} P {ascii_bar(cell.predicted, peak, width).ljust(width)}"
            f" {cell.predicted:>10.0f} <= {cell.bound_hi:.0f}"
        )
        lines.append(
            f"  {'':>13} M {ascii_bar(cell.measured, peak, width).ljust(width)}"
            f" {cell.measured:>10.0f} err {cell.error:6.1%}"
            f" ({cell.analyze_ns / 1e6:.0f}ms vs {cell.sim_ns / 1e6:.0f}ms){flag}"
        )
    return "\n".join(lines)


def static_vs_sim_payload(cells: Sequence[PredictionCell]) -> dict[str, object]:
    """The JSON artifact CI uploads: cells plus matrix-level verdicts."""
    return {
        "cells": [cell.to_dict() for cell in cells],
        "within_bound": all(cell.within_bound for cell in cells),
        "max_error": max((cell.error for cell in cells), default=0.0),
        "median_analyze_ns": sorted(
            cell.analyze_ns for cell in cells
        )[len(cells) // 2] if cells else 0.0,
    }
