"""Human-readable summaries of observability output.

Takes the payloads the obs layer emits — a metrics-registry snapshot
(``repro.obs.metrics/v1``) and/or a trace-event list — and renders the
compact text report ``python -m repro`` users and CI logs want: counters
and gauges as a table, histograms with count/mean/p50/p90 computed from
the fixed buckets, and spans rolled up by name (count, total/mean wall
time).  Everything here is read-only over plain dicts, so it works
equally on in-memory reports and on files loaded from ``--metrics-out``
/ ``--trace-out``.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.report import render_table

__all__ = [
    "histogram_quantile",
    "render_obs_report",
    "span_rollup",
    "summarize_metrics",
    "summarize_spans",
]


def histogram_quantile(histogram: dict, q: float) -> Optional[float]:
    """Approximate the ``q``-quantile from fixed-bucket counts.

    Returns the upper edge of the bucket containing the quantile (the
    standard conservative estimate for cumulative bucket histograms), or
    ``None`` for an empty histogram.  The overflow bucket has no upper
    edge; its lower edge is returned instead.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError("quantile must be within [0, 1]")
    counts = histogram["counts"]
    total = sum(counts)
    if total == 0:
        return None
    edges = list(histogram["edges"])
    target = q * total
    cumulative = 0
    for index, count in enumerate(counts):
        cumulative += count
        if cumulative >= target and count:
            if index < len(edges):
                return float(edges[index])
            return float(edges[-1]) if edges else None
    return float(edges[-1]) if edges else None


def summarize_metrics(snapshot: dict) -> str:
    """Render one registry snapshot as text tables."""
    sections: list[str] = [f"metrics ({snapshot.get('scope', '?')} scope)"]
    counters = snapshot.get("counters", {})
    if counters:
        rows = [[name, counters[name]] for name in sorted(counters)]
        sections.append(render_table(["counter", "value"], rows))
    gauges = snapshot.get("gauges", {})
    if gauges:
        rows = [[name, round(gauges[name], 4)] for name in sorted(gauges)]
        sections.append(render_table(["gauge", "value"], rows))
    histograms = snapshot.get("histograms", {})
    if histograms:
        rows = []
        for name in sorted(histograms):
            histogram = histograms[name]
            count = histogram.get("count", 0)
            mean = histogram["sum"] / count if count else 0.0
            p50 = histogram_quantile(histogram, 0.5)
            p90 = histogram_quantile(histogram, 0.9)
            rows.append(
                [
                    name,
                    count,
                    round(mean, 1),
                    "-" if p50 is None else round(p50, 1),
                    "-" if p90 is None else round(p90, 1),
                ]
            )
        sections.append(
            render_table(["histogram", "count", "mean", "p50<=", "p90<="], rows)
        )
    return "\n\n".join(sections)


def span_rollup(events: list[dict]) -> dict[str, dict]:
    """Aggregate complete-span events by name.

    Returns ``name -> {count, total_us, mean_us, max_us, errors}``;
    metadata and instant events are skipped.
    """
    rollup: dict[str, dict] = {}
    for event in events:
        if event.get("ph") != "X":
            continue
        entry = rollup.setdefault(
            event["name"],
            {"count": 0, "total_us": 0.0, "mean_us": 0.0, "max_us": 0.0,
             "errors": 0},
        )
        duration = float(event.get("dur", 0.0))
        entry["count"] += 1
        entry["total_us"] += duration
        entry["max_us"] = max(entry["max_us"], duration)
        if event.get("args", {}).get("error"):
            entry["errors"] += 1
    for entry in rollup.values():
        entry["mean_us"] = entry["total_us"] / entry["count"]
    return rollup


def summarize_spans(events: list[dict]) -> str:
    """Render a trace-event list as a per-span-name table."""
    rollup = span_rollup(events)
    if not rollup:
        return "spans: (none recorded)"
    rows = []
    for name in sorted(rollup):
        entry = rollup[name]
        rows.append(
            [
                name,
                entry["count"],
                round(entry["total_us"] / 1e3, 2),
                round(entry["mean_us"] / 1e3, 3),
                round(entry["max_us"] / 1e3, 3),
                entry["errors"],
            ]
        )
    return render_table(
        ["span", "count", "total ms", "mean ms", "max ms", "errors"], rows
    )


def render_obs_report(report: dict) -> str:
    """Full text summary of one ``{"metrics": ..., "trace_events": ...}``."""
    parts: list[str] = []
    snapshot = report.get("metrics")
    if snapshot is not None:
        parts.append(summarize_metrics(snapshot))
    events = report.get("trace_events")
    if events is not None:
        parts.append(summarize_spans(events))
    if not parts:
        return "(no observability data)"
    return "\n\n".join(parts)
