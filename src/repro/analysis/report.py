"""Plain-text table rendering for benchmark output."""

from __future__ import annotations

from typing import Sequence


def format_row(cells: Sequence[object], widths: Sequence[int]) -> str:
    parts = []
    for cell, width in zip(cells, widths):
        text = f"{cell:.3f}" if isinstance(cell, float) else str(cell)
        parts.append(text.rjust(width))
    return "  ".join(parts)


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned ASCII table (headers + rows)."""
    def cell_text(cell: object) -> str:
        return f"{cell:.3f}" if isinstance(cell, float) else str(cell)

    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell_text(cell)))
    lines = [format_row(headers, widths)]
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append(format_row(row, widths))
    return "\n".join(lines)
