"""SPEC95fp ratio arithmetic (Table 2).

A benchmark's SPEC ratio is the reference time (SparcStation 10) divided
by the measured time; the suite rating is the geometric mean of the ten
ratios.  The paper reports CDPC raising the 8-processor rating by 8% over
bin hopping and 20% over page coloring.
"""

from __future__ import annotations

import math
from typing import Mapping


def spec_ratio(reference_s: float, measured_s: float) -> float:
    """Speedup over the reference machine for one benchmark."""
    if measured_s <= 0:
        raise ValueError("measured time must be positive")
    if reference_s <= 0:
        raise ValueError("reference time must be positive")
    return reference_s / measured_s


def geometric_mean(values) -> float:
    values = list(values)
    if not values:
        raise ValueError("need at least one value")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def specfp_rating(ratios: Mapping[str, float]) -> float:
    """The suite rating: geometric mean over all benchmarks' ratios."""
    return geometric_mean(ratios.values())
