"""Analysis utilities: access maps (Figures 3/5), SPEC ratios (Table 2)."""

from repro.analysis.figures import ascii_bar, bar_chart, grouped_bar_chart, sparkline
from repro.analysis.geometry import (
    GeometryComparison,
    compare_geometries,
)
from repro.analysis.access_maps import (
    coloring_order_map,
    conflict_depth,
    footprint_density,
    page_access_map,
    va_order_map,
)
from repro.analysis.obs_report import (
    histogram_quantile,
    render_obs_report,
    span_rollup,
    summarize_metrics,
    summarize_spans,
)
from repro.analysis.report import format_row, render_table
from repro.analysis.spec_ratio import geometric_mean, spec_ratio, specfp_rating

__all__ = [
    "ascii_bar",
    "bar_chart",
    "GeometryComparison",
    "coloring_order_map",
    "compare_geometries",
    "conflict_depth",
    "footprint_density",
    "format_row",
    "geometric_mean",
    "histogram_quantile",
    "page_access_map",
    "grouped_bar_chart",
    "render_obs_report",
    "render_table",
    "span_rollup",
    "spec_ratio",
    "sparkline",
    "specfp_rating",
    "summarize_metrics",
    "summarize_spans",
    "va_order_map",
]
