"""Symbolic footprint rules (rule family ``static``).

Where the ``color`` rules inspect the CDPC *assignment* (which pages got
which colors), these rules score the plan the OS would actually
**realize** — instruction pages, overflow fallbacks, and the exact
per-(CPU, color, cache-line) page-bin occupancy computed by the symbolic
footprint engine in :mod:`repro.checker.staticmiss`:

* ``S001`` — an *avoidable* cycle-wide bin hotspot: the realized plan
  stacks pages into a (color, line) bin that a balanced plan would keep
  within the cache associativity.  Capacity-bound overflows (balanced
  occupancy already exceeds the associativity, so no plan fits) are
  deliberately excluded — only a bigger cache fixes those.
* ``S002`` — single-loop conflict thrash: one loop execution alone
  overflows a bin a balanced plan would fit, so every sweep of that loop
  thrashes the set (the su2cor strided situation of Section 6.1 at page
  granularity).
* ``S003`` — advisory plan score: emitted whenever the footprint engine
  finds any data-page occupancy witness, summarizing worst occupancy and
  skew so CI diffs surface plan regressions before simulation does.

Each rule emits at most one diagnostic per report (the worst instance),
keeping reports scale-invariant: shrinking the machine and workload by
the same factor preserves the *set* of findings even as witness counts
change.  These rules only run when :attr:`LintContext.static` is set —
building the program image costs ~100ms per workload, which the engine's
default per-run lint gate must not pay.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.checker.diagnostics import Diagnostic, Severity
from repro.checker.registry import LintContext, register
from repro.checker.staticmiss import (
    ConflictHotspot,
    StaticConflictSummary,
    conflict_summary,
    program_image,
)

#: Minimum pages beyond the associativity before a fixable overflow is
#: called a hotspot.  One extra page in one bin (swim's u/v pair under
#: CDPC) costs a handful of misses; systematic stacking costs thousands.
HOTSPOT_EXCESS_THRESHOLD = 2


def static_summary(ctx: LintContext) -> StaticConflictSummary:
    """Build (once per context) the occupancy summary the S rules share."""
    cached = ctx.static_summary
    if isinstance(cached, StaticConflictSummary):
        return cached
    image = program_image(ctx.program, ctx.layout, ctx.config, ctx.num_cpus)
    summary = conflict_summary(image, ctx.coloring)
    ctx.static_summary = summary
    return summary


def _avoidable(
    hotspots: list[ConflictHotspot], assoc: int
) -> Optional[ConflictHotspot]:
    """Worst hotspot a balanced plan would have kept conflict-free."""
    for hotspot in hotspots:  # already sorted worst-skew first
        if (
            hotspot.balanced <= assoc
            and hotspot.occupancy >= assoc + HOTSPOT_EXCESS_THRESHOLD
        ):
            return hotspot
    return None


@register(
    "S001",
    "Realized plan stacks an avoidable bin hotspot",
    family="static",
    paper_section="4, 6.1",
    needs_static=True,
)
def rule_static_avoidable_hotspot(ctx: LintContext) -> Iterator[Diagnostic]:
    """Cycle-wide data footprint overflows a bin a balanced plan fits.

    ``balanced`` is the per-(line) page count divided evenly over the
    colors; when it is within the associativity but the realized plan
    still stacks ``assoc + 2`` or more pages into one bin, the conflict
    misses are the plan's fault, not the cache's.
    """
    assoc = ctx.config.l2.associativity
    summary = static_summary(ctx)
    hotspot = _avoidable(summary.hotspots, assoc)
    if hotspot is None:
        return
    yield Diagnostic(
        rule_id="S001",
        severity=Severity.WARNING,
        message=(
            f"cpu {hotspot.cpu} stacks {hotspot.occupancy} pages of "
            f"{'/'.join(hotspot.arrays)} into color {hotspot.color} line "
            f"{hotspot.line_index} ({assoc}-way cache, balanced plan "
            f"needs only {hotspot.balanced})"
        ),
        array=hotspot.arrays[0],
        fix_hint=(
            "re-run coloring with these pages split across colors, or "
            "verify the plan with `python -m repro lint --verify-plan`"
        ),
        evidence={
            "cpu": hotspot.cpu,
            "color": hotspot.color,
            "line_index": hotspot.line_index,
            "occupancy": hotspot.occupancy,
            "balanced": hotspot.balanced,
            "pages": list(hotspot.pages[:8]),
        },
    )


@register(
    "S002",
    "Single loop thrashes an avoidably overfull bin",
    family="static",
    paper_section="4, 6.1",
    needs_static=True,
)
def rule_static_loop_thrash(ctx: LintContext) -> Iterator[Diagnostic]:
    """One loop's own footprint overflows a bin a balanced plan fits.

    Cycle-wide occupancy can hide this: the cycle may look balanced while
    a single loop touches an over-stacked subset every sweep, paying the
    conflict misses at that loop's full reference rate.
    """
    assoc = ctx.config.l2.associativity
    summary = static_summary(ctx)
    hotspot = _avoidable(summary.loop_hotspots, assoc)
    if hotspot is None:
        return
    yield Diagnostic(
        rule_id="S002",
        severity=Severity.WARNING,
        message=(
            f"every sweep of this loop drives {hotspot.occupancy} pages of "
            f"{'/'.join(hotspot.arrays)} through color {hotspot.color} "
            f"line {hotspot.line_index} on cpu {hotspot.cpu} "
            f"({assoc}-way cache, balanced plan needs {hotspot.balanced})"
        ),
        loop=hotspot.loop,
        phase=hotspot.phase,
        array=hotspot.arrays[0],
        fix_hint=(
            "recolor the loop's arrays apart (distinct colors per array) "
            "or pad the arrays so their hot pages spread over more lines"
        ),
        evidence={
            "cpu": hotspot.cpu,
            "color": hotspot.color,
            "line_index": hotspot.line_index,
            "occupancy": hotspot.occupancy,
            "balanced": hotspot.balanced,
            "pages": list(hotspot.pages[:8]),
        },
    )


@register(
    "S003",
    "Static plan score: occupancy witnesses present",
    family="static",
    paper_section="4, 6.2",
    needs_static=True,
)
def rule_static_plan_score(ctx: LintContext) -> Iterator[Diagnostic]:
    """Advisory summary whenever any data bin exceeds the associativity.

    A conflict-free plan (every bin within the associativity) emits
    nothing, so clean workloads stay at zero findings; anything else gets
    one INFO line CI can diff across commits as a plan-quality score.
    """
    summary = static_summary(ctx)
    if summary.data_witnesses == 0:
        return
    assoc = ctx.config.l2.associativity
    worst = summary.hotspots[0] if summary.hotspots else None
    detail = ""
    if worst is not None:
        detail = (
            f"; worst bin holds {worst.occupancy} pages "
            f"(balanced {worst.balanced}, skew {worst.skew:.1f}x)"
        )
    yield Diagnostic(
        rule_id="S003",
        severity=Severity.INFO,
        message=(
            f"realized plan leaves {summary.data_witnesses} data page-bin(s) "
            f"over the {assoc}-way associativity "
            f"(max occupancy {summary.max_occupancy}){detail}"
        ),
        fix_hint=(
            "score the plan against simulation with "
            "`python -m repro predict <workload> --check`"
        ),
        evidence={
            "data_witnesses": summary.data_witnesses,
            "max_occupancy": summary.max_occupancy,
            "overflow_pages": len(summary.plan.overflow_pages),
        },
    )
