"""Entry points tying the rule registry to programs and machine configs.

:func:`lint_program` is the one-stop API: it rebuilds the same compiler
artifacts the engine would build (layout, access summary, CDPC coloring)
and runs every registered rule over them.  The engine itself calls
:func:`lint_context` with its *already computed* artifacts so the
pre-simulation gate adds no duplicate compilation work.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional

# Importing the rule modules registers their rules in DEFAULT_REGISTRY.
import repro.checker.colorlint  # noqa: F401
import repro.checker.races  # noqa: F401
import repro.checker.staticrules  # noqa: F401
from repro.checker.diagnostics import LintReport
from repro.checker.registry import DEFAULT_REGISTRY, LintContext, RuleRegistry
from repro.compiler.ir import Program
from repro.compiler.padding import Layout, layout_arrays
from repro.compiler.summaries import extract_summary
from repro.core.access_summary import AccessSummary
from repro.core.coloring import ColoringResult, generate_page_colors
from repro.machine.config import MachineConfig


def _group_pairs(program: Program) -> list[tuple[str, str]]:
    """Group-access pairs for the layout pass (mirrors the engine)."""
    pairs: list[tuple[str, str]] = []
    seen: set[frozenset[str]] = set()
    for phase in program.phases:
        for loop in phase.loops:
            names = loop.array_names()
            for i, a in enumerate(names):
                for b in names[i + 1 :]:
                    key = frozenset((a, b))
                    if key not in seen:
                        seen.add(key)
                        pairs.append((a, b))
    return pairs


def lint_context(
    program: Program,
    config: MachineConfig,
    *,
    num_cpus: Optional[int] = None,
    aligned: bool = True,
    cdpc: bool = True,
    layout: Optional[Layout] = None,
    summary: Optional[AccessSummary] = None,
    coloring: Optional[ColoringResult] = None,
    static: bool = False,
) -> LintContext:
    """Build (or adopt) the compiler artifacts the rules inspect."""
    cpus = num_cpus if num_cpus is not None else config.num_cpus
    if layout is None:
        layout = layout_arrays(
            program.arrays,
            config.l2.line_size,
            config.l1d.size,
            aligned=aligned,
            groups=_group_pairs(program),
        )
    if summary is None:
        summary = extract_summary(program, layout)
    if coloring is None and cdpc:
        coloring = generate_page_colors(
            summary, config.page_size, config.num_colors, cpus
        )
    return LintContext(
        program=program,
        config=config,
        num_cpus=cpus,
        layout=layout,
        summary=summary,
        coloring=coloring,
        aligned=aligned,
        static=static,
    )


def lint_context_report(
    ctx: LintContext,
    registry: RuleRegistry = DEFAULT_REGISTRY,
    only: Optional[Iterable[str]] = None,
    skip: Optional[Iterable[str]] = None,
) -> LintReport:
    """Run the registry over a prepared context."""
    report = LintReport(program=ctx.program.name)
    report.extend(registry.run_all(ctx, only=only, skip=skip))
    report.sort()
    return report


def lint_program(
    program: Program,
    config: MachineConfig,
    *,
    num_cpus: Optional[int] = None,
    aligned: bool = True,
    cdpc: bool = True,
    static: bool = False,
    registry: RuleRegistry = DEFAULT_REGISTRY,
    only: Optional[Iterable[str]] = None,
    skip: Optional[Iterable[str]] = None,
) -> LintReport:
    """Statically analyze one program for one machine configuration."""
    ctx = lint_context(
        program,
        config,
        num_cpus=num_cpus,
        aligned=aligned,
        cdpc=cdpc,
        static=static,
    )
    return lint_context_report(ctx, registry=registry, only=only, skip=skip)


def lint_workload(
    name: str,
    config: MachineConfig,
    **kwargs: Any,
) -> LintReport:
    """Build a bundled SPEC95fp workload at the machine's scale and lint it.

    Unlike :func:`lint_program`, the symbolic footprint rules default to
    *on* here: workload-level linting is the offline/CI path where the
    program-image cost is acceptable.
    """
    from repro.workloads.specfp import get_workload

    kwargs.setdefault("static", True)
    workload = get_workload(name, scale=config.scale_factor)
    return lint_program(workload.program, config, **kwargs)
