"""Rule registry: discoverable, individually addressable analysis rules.

Each rule is a function from a :class:`LintContext` to an iterable of
:class:`~repro.checker.diagnostics.Diagnostic`.  Registration attaches the
metadata the docs and the CLI surface: a stable rule id, a one-line title,
and the paper section the rule reproduces.

Three rule families exist:

* ``race``   — affine dependence / race detection over loop declarations
  and static schedules (Sections 3.2, 5.1);
* ``color``  — color-plan linting over a :class:`ColoringResult` plus
  machine geometry (Sections 2.1, 5.2-5.4, 6.1-6.2);
* ``static`` — symbolic footprint/occupancy scoring of the *realized*
  color plan via :mod:`repro.checker.staticmiss` (Sections 4, 6).  These
  rules build a full program image (~100ms per workload), so they only
  run when :attr:`LintContext.static` is set — the engine's per-run lint
  gate leaves it off unless ``EngineOptions.static_check`` asks for it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, Optional

from repro.checker.diagnostics import Diagnostic

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.compiler.ir import Program
    from repro.compiler.padding import Layout
    from repro.core.access_summary import AccessSummary
    from repro.core.coloring import ColoringResult
    from repro.machine.config import MachineConfig


@dataclass
class LintContext:
    """Everything a rule may inspect: program, machine, compiler outputs."""

    program: "Program"
    config: "MachineConfig"
    num_cpus: int
    layout: "Layout"
    summary: "AccessSummary"
    #: CDPC output; None when linting a non-CDPC configuration (color
    #: rules that require it are skipped).
    coloring: Optional["ColoringResult"] = None
    #: Whether the layout was produced by the aligned+padded layout pass.
    aligned: bool = True
    #: Whether symbolic footprint rules (family "static") may run.  Off by
    #: default to keep the engine's per-run lint gate cheap; the lint CLI,
    #: lint_workload and EngineOptions.static_check opt in.
    static: bool = False
    #: Memoized :class:`repro.checker.staticmiss.StaticConflictSummary`,
    #: shared by the S00x rules so the program image is built once.
    static_summary: Optional[object] = None


RuleFn = Callable[[LintContext], Iterable[Diagnostic]]


@dataclass(frozen=True)
class Rule:
    """A registered analysis rule plus its documentation metadata."""

    rule_id: str
    title: str
    family: str  # "race" | "color" | "static"
    paper_section: str
    fn: RuleFn
    #: Rules needing a ColoringResult are skipped when none is available.
    needs_coloring: bool = False
    #: Rules needing the symbolic footprint engine are skipped unless the
    #: context opts in (LintContext.static).
    needs_static: bool = False

    def run(self, ctx: LintContext) -> list[Diagnostic]:
        if self.needs_coloring and ctx.coloring is None:
            return []
        if self.needs_static and not ctx.static:
            return []
        return list(self.fn(ctx))


@dataclass
class RuleRegistry:
    """Ordered collection of rules, addressable by id."""

    rules: dict[str, Rule] = field(default_factory=dict)

    def register(
        self,
        rule_id: str,
        title: str,
        family: str,
        paper_section: str,
        needs_coloring: bool = False,
        needs_static: bool = False,
    ) -> Callable[[RuleFn], RuleFn]:
        """Decorator registering ``fn`` under ``rule_id``."""
        if family not in ("race", "color", "static"):
            raise ValueError(f"unknown rule family {family!r}")

        def decorator(fn: RuleFn) -> RuleFn:
            if rule_id in self.rules:
                raise ValueError(f"duplicate rule id {rule_id!r}")
            self.rules[rule_id] = Rule(
                rule_id=rule_id,
                title=title,
                family=family,
                paper_section=paper_section,
                fn=fn,
                needs_coloring=needs_coloring,
                needs_static=needs_static,
            )
            return fn

        return decorator

    def get(self, rule_id: str) -> Rule:
        return self.rules[rule_id]

    def ids(self) -> list[str]:
        return sorted(self.rules)

    def family(self, family: str) -> list[Rule]:
        return [r for r in self.rules.values() if r.family == family]

    def run_all(
        self,
        ctx: LintContext,
        only: Optional[Iterable[str]] = None,
        skip: Optional[Iterable[str]] = None,
    ) -> list[Diagnostic]:
        """Run every (selected) rule and concatenate the findings."""
        selected = set(only) if only is not None else None
        skipped = set(skip) if skip is not None else set()
        unknown = (selected or set()) | skipped
        unknown -= set(self.rules)
        if unknown:
            raise KeyError(f"unknown rule id(s): {', '.join(sorted(unknown))}")
        findings: list[Diagnostic] = []
        for rule_id in sorted(self.rules):
            if selected is not None and rule_id not in selected:
                continue
            if rule_id in skipped:
                continue
            findings.extend(self.rules[rule_id].run(ctx))
        return findings


#: The process-wide default registry; rule modules register into it at
#: import time (see repro.checker.races / repro.checker.colorlint).
DEFAULT_REGISTRY = RuleRegistry()

register = DEFAULT_REGISTRY.register
