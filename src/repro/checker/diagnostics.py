"""Diagnostics: the output vocabulary of the static analyzer.

Every rule in :mod:`repro.checker` reports its findings as
:class:`Diagnostic` records — a rule id, a severity, the program location
(loop and/or array), a human-readable message and a fix hint.  A
:class:`LintReport` aggregates the diagnostics of one analysis run and
renders them as text (for humans) or JSON (for CI to diff).

Severities follow the usual compiler convention:

* ``ERROR`` — the program is provably wrong under its declared execution
  mode (e.g. a loop declared ``PARALLEL`` with a proven cross-processor
  write overlap).  ``strict`` runs refuse to simulate such a program.
* ``WARNING`` — the program is legal but the static evidence predicts
  avoidable trouble (conflict misses, false sharing, load imbalance).
* ``INFO`` — advisory findings (e.g. a loop that looks needlessly
  ``SUPPRESSED``).
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Optional


class Severity(enum.IntEnum):
    """Diagnostic severity; higher values are more severe."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    def __str__(self) -> str:  # "ERROR", not "Severity.ERROR"
        return self.name


@dataclass(frozen=True)
class Diagnostic:
    """One finding of one rule at one program location."""

    rule_id: str
    severity: Severity
    message: str
    #: Loop (or nest) name the finding anchors to; None for whole-program.
    loop: Optional[str] = None
    #: Phase containing the loop, when known.
    phase: Optional[str] = None
    #: Array the finding concerns, when it concerns one.
    array: Optional[str] = None
    #: Actionable suggestion ("declare the loop SEQUENTIAL", "pad array x").
    fix_hint: Optional[str] = None
    #: Structured evidence (witness iterations, page counts, ...).
    evidence: dict[str, Any] = field(default_factory=dict)

    @property
    def span(self) -> str:
        """Human-readable source span, e.g. ``timestep/residual[x]``."""
        parts = [p for p in (self.phase, self.loop) if p]
        location = "/".join(parts) if parts else "<program>"
        if self.array:
            location += f"[{self.array}]"
        return location

    def to_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "rule_id": self.rule_id,
            "severity": self.severity.name,
            "message": self.message,
            "loop": self.loop,
            "phase": self.phase,
            "array": self.array,
            "fix_hint": self.fix_hint,
        }
        if self.evidence:
            payload["evidence"] = self.evidence
        return payload

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "Diagnostic":
        """Inverse of :meth:`to_dict`; ``d.from_dict(d.to_dict()) == d``.

        Evidence must hold JSON-native values (lists, not tuples) for the
        round-trip through :meth:`LintReport.to_json` to be byte-exact.
        """
        return cls(
            rule_id=payload["rule_id"],
            severity=Severity[payload["severity"]],
            message=payload["message"],
            loop=payload.get("loop"),
            phase=payload.get("phase"),
            array=payload.get("array"),
            fix_hint=payload.get("fix_hint"),
            evidence=dict(payload.get("evidence", {})),
        )

    def render(self) -> str:
        line = f"{self.severity.name:<7} {self.rule_id:<6} {self.span}: {self.message}"
        if self.fix_hint:
            line += f"\n        hint: {self.fix_hint}"
        return line


class LintError(RuntimeError):
    """Raised by strict runs when ERROR-severity diagnostics exist."""

    def __init__(self, report: "LintReport") -> None:
        errors = report.errors()
        lines = "\n".join(d.render() for d in errors)
        super().__init__(
            f"static analysis found {len(errors)} error(s):\n{lines}"
        )
        self.report = report


@dataclass
class LintReport:
    """All diagnostics from one analysis run of one program."""

    program: str
    diagnostics: list[Diagnostic] = field(default_factory=list)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def extend(self, findings: Iterable[Diagnostic]) -> None:
        self.diagnostics.extend(findings)

    def sort(self) -> None:
        """Deterministic order: severity desc, then rule id, then span."""
        self.diagnostics.sort(
            key=lambda d: (-int(d.severity), d.rule_id, d.span, d.message)
        )

    def by_severity(self, severity: Severity) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is severity]

    def errors(self) -> list[Diagnostic]:
        return self.by_severity(Severity.ERROR)

    def warnings(self) -> list[Diagnostic]:
        return self.by_severity(Severity.WARNING)

    def by_rule(self, rule_id: str) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.rule_id == rule_id]

    def max_severity(self) -> Optional[Severity]:
        if not self.diagnostics:
            return None
        return max(d.severity for d in self.diagnostics)

    @property
    def clean(self) -> bool:
        """No findings at WARNING severity or above."""
        severity = self.max_severity()
        return severity is None or severity < Severity.WARNING

    def raise_if_errors(self) -> None:
        if self.errors():
            raise LintError(self)

    def to_dict(self) -> dict[str, Any]:
        self.sort()
        return {
            "program": self.program,
            "num_errors": len(self.errors()),
            "num_warnings": len(self.warnings()),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "LintReport":
        """Inverse of :meth:`to_dict` (the derived counts are recomputed)."""
        return cls(
            program=payload["program"],
            diagnostics=[
                Diagnostic.from_dict(d) for d in payload.get("diagnostics", [])
            ],
        )

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    @classmethod
    def from_json(cls, text: str) -> "LintReport":
        return cls.from_dict(json.loads(text))

    def render_text(self) -> str:
        self.sort()
        if not self.diagnostics:
            return f"{self.program}: clean (no findings)"
        lines = [
            f"{self.program}: {len(self.errors())} error(s), "
            f"{len(self.warnings())} warning(s), "
            f"{len(self.by_severity(Severity.INFO))} note(s)"
        ]
        lines.extend(d.render() for d in self.diagnostics)
        return "\n".join(lines)
