"""Static analysis for the CDPC pipeline: race detector + color-plan linter.

Public surface::

    from repro.checker import lint_program, LintReport, Severity

    report = lint_program(program, config)
    if not report.clean:
        print(report.render_text())

See :mod:`repro.checker.races` for the affine dependence / race rules and
:mod:`repro.checker.colorlint` for the color-plan rules; rule ids and
their paper cross-references are documented in ``docs/static_analysis.md``.
"""

from repro.checker.diagnostics import (
    Diagnostic,
    LintError,
    LintReport,
    Severity,
)
from repro.checker.lint import (
    lint_context,
    lint_context_report,
    lint_program,
    lint_workload,
)
from repro.checker.races import (
    DependenceVerdict,
    check_nest,
    lint_affine,
    test_cross_processor,
)
from repro.checker.registry import DEFAULT_REGISTRY, LintContext, Rule, RuleRegistry

__all__ = [
    "DEFAULT_REGISTRY",
    "Diagnostic",
    "DependenceVerdict",
    "LintContext",
    "LintError",
    "LintReport",
    "Rule",
    "RuleRegistry",
    "Severity",
    "check_nest",
    "lint_affine",
    "lint_context",
    "lint_context_report",
    "lint_program",
    "lint_workload",
    "test_cross_processor",
]
