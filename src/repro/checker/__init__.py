"""Static analysis for the CDPC pipeline: race detector + color-plan linter.

Public surface::

    from repro.checker import lint_program, LintReport, Severity

    report = lint_program(program, config)
    if not report.clean:
        print(report.render_text())

See :mod:`repro.checker.races` for the affine dependence / race rules,
:mod:`repro.checker.colorlint` for the color-plan rules, and
:mod:`repro.checker.staticmiss` for the symbolic footprint engine behind
the static miss predictor, the plan verifier, and the S00x rules in
:mod:`repro.checker.staticrules`; rule ids and their paper
cross-references are documented in ``docs/static_analysis.md``.
"""

from repro.checker.diagnostics import (
    Diagnostic,
    LintError,
    LintReport,
    Severity,
)
from repro.checker.lint import (
    lint_context,
    lint_context_report,
    lint_program,
    lint_workload,
)
from repro.checker.races import (
    DependenceVerdict,
    check_nest,
    lint_affine,
    test_cross_processor,
)
from repro.checker.registry import DEFAULT_REGISTRY, LintContext, Rule, RuleRegistry
from repro.checker.staticmiss import (
    ConflictWitness,
    MissEstimate,
    PlanVerification,
    StaticCheckError,
    StaticMissProfile,
    StaticPlan,
    derive_static_plan,
    predict_program,
    predict_workload,
    program_image,
    replay_witness,
    verify_plan,
)

__all__ = [
    "DEFAULT_REGISTRY",
    "ConflictWitness",
    "Diagnostic",
    "DependenceVerdict",
    "LintContext",
    "LintError",
    "LintReport",
    "MissEstimate",
    "PlanVerification",
    "Rule",
    "RuleRegistry",
    "Severity",
    "StaticCheckError",
    "StaticMissProfile",
    "StaticPlan",
    "check_nest",
    "derive_static_plan",
    "lint_affine",
    "lint_context",
    "lint_context_report",
    "lint_program",
    "lint_workload",
    "predict_program",
    "predict_workload",
    "program_image",
    "replay_witness",
    "test_cross_processor",
    "verify_plan",
]
