"""Affine dependence & race detection (rule family ``race``).

The paper's premise (Sections 3.2, 5.1) is that SUIF's static analyses
make per-processor access patterns *provably* predictable.  This module
closes the fidelity gap between that premise and our declarative workload
models: it proves — or refutes — that a loop declared ``PARALLEL`` is
actually free of cross-processor conflicting accesses under its static
schedule.

Two layers of analysis:

* **Affine layer** (:func:`test_cross_processor`, :func:`check_nest`,
  :func:`lint_affine`) — an exact GCD/Banerjee-style dependence test over
  :class:`~repro.compiler.affine.AffineRef` subscript pairs of an
  :class:`~repro.compiler.affine.AffineNest`.  The distributed ``i`` loop
  is mapped to processors with the same
  :func:`~repro.common.iteration_ranges` the simulator's scheduler uses,
  so "cross-processor" means exactly what the machine would execute.  The
  test first tries to *refute* a dependence (integer-infeasibility via
  GCD, bounds-infeasibility via Banerjee limits), then searches for a
  concrete witness ``(i1, j1) / (i2, j2)`` on two different processors.
  The search is exact for any nest whose subscripts link the distributed
  index through one equation (every shape the compiler front-end can
  produce) and falls back to a capped pair enumeration otherwise; if the
  cap is exceeded the verdict is conservatively ``unknown`` — a seeded
  race is never reported clean.

* **Declarative IR layer** (rules ``R001``-``R006``) — the same question
  asked of :class:`~repro.compiler.ir.Loop` access declarations: byte
  ranges per processor are materialized from the declarations
  (partitioned chunks, boundary strips, whole-array spans) and
  intersected across processors, flagging loops mis-declared ``PARALLEL``
  (ERROR), false sharing at unaligned partition boundaries (WARNING),
  schedule load imbalance such as applu's 33-on-16 (WARNING), and loops
  that look needlessly ``SUPPRESSED`` (INFO).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.checker.diagnostics import Diagnostic, LintReport, Severity
from repro.checker.registry import LintContext, register
from repro.common import Communication, Direction, Partitioning, iteration_ranges
from repro.compiler.affine import AffineNest, AffineProgram, AffineRef, Subscript
from repro.compiler.ir import (
    Access,
    BoundaryAccess,
    InstructionStream,
    Loop,
    LoopKind,
    PartitionedAccess,
    Phase,
    StridedAccess,
    WholeArrayAccess,
)
from repro.compiler.parallelize import schedule_loop

__all__ = [
    "DependenceVerdict",
    "check_nest",
    "lint_affine",
    "test_cross_processor",
]

#: Pair-enumeration budget of the exact search; beyond it the verdict is
#: a conservative ``unknown`` (never ``clean``).
MAX_PAIRS = 1_000_000

#: Imbalance fraction at which R005 warns (applu's 33-on-16 is 0.3125).
IMBALANCE_THRESHOLD = 0.15

#: Grain heuristics for the needlessly-SUPPRESSED advisory (R006/A004).
SUPPRESSED_MIN_IPW = 6.0
SUPPRESSED_MIN_ITER_FACTOR = 2


# ----------------------------------------------------------------------
# Integer machinery: extended gcd, bounded 2-variable diophantine solve.


def _egcd(a: int, b: int) -> tuple[int, int, int]:
    """Return ``(g, x, y)`` with ``a*x + b*y == g == gcd(|a|, |b|) >= 0``."""
    old_r, r = a, b
    old_s, s = 1, 0
    old_t, t = 0, 1
    while r:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_s, s = s, old_s - q * s
        old_t, t = t, old_t - q * t
    if old_r < 0:
        old_r, old_s, old_t = -old_r, -old_s, -old_t
    return old_r, old_s, old_t


def _ceil_div(a: int, b: int) -> int:
    """Ceiling division for positive ``b``."""
    return -(-a // b)


_INF = 1 << 62


def _t_range(start: int, stride: int, n: int) -> Optional[tuple[int, int]]:
    """Integer ``t`` interval with ``0 <= start + stride*t < n``."""
    if stride == 0:
        return (-_INF, _INF) if 0 <= start < n else None
    if stride > 0:
        return (_ceil_div(-start, stride), (n - 1 - start) // stride)
    s = -stride
    return (_ceil_div(start - (n - 1), s), start // s)


def _solve_2var(u: int, v: int, w: int, n1: int, n2: int) -> Optional[tuple[int, int]]:
    """Find ``(x, y)`` with ``u*x - v*y == w``, ``0 <= x < n1``, ``0 <= y < n2``."""
    if n1 <= 0 or n2 <= 0:
        return None
    if u == 0 and v == 0:
        return (0, 0) if w == 0 else None
    if u == 0:
        if w % v:
            return None
        y = -(w // v)
        return (0, y) if 0 <= y < n2 else None
    if v == 0:
        if w % u:
            return None
        x = w // u
        return (x, 0) if 0 <= x < n1 else None
    g, p, q = _egcd(u, -v)
    if w % g:
        return None
    scale = w // g
    x0, y0 = p * scale, q * scale  # u*x0 - v*y0 == w
    sx, sy = v // g, u // g  # x = x0 + sx*t, y = y0 + sy*t stays a solution
    r1 = _t_range(x0, sx, n1)
    r2 = _t_range(y0, sy, n2)
    if r1 is None or r2 is None:
        return None
    t_lo = max(r1[0], r2[0])
    t_hi = min(r1[1], r2[1])
    if t_lo > t_hi:
        return None
    return (x0 + sx * t_lo, y0 + sy * t_lo)


def _eq_unsolvable(
    coeffs: tuple[int, int, int, int],
    rhs: int,
    bounds: tuple[tuple[int, int], tuple[int, int], tuple[int, int], tuple[int, int]],
) -> bool:
    """GCD + Banerjee-bounds refutation of one linear equation.

    ``sum(coeffs[k] * x[k]) == rhs`` over ``bounds[k] = (lo, hi)`` with
    ``hi`` exclusive.  True means *provably* no integer solution.
    """
    nonzero = [abs(c) for c in coeffs if c]
    if not nonzero:
        return rhs != 0
    if rhs % math.gcd(*nonzero):
        return True
    lo = hi = 0
    for c, (b_lo, b_hi) in zip(coeffs, bounds):
        if c > 0:
            lo += c * b_lo
            hi += c * (b_hi - 1)
        elif c < 0:
            lo += c * (b_hi - 1)
            hi += c * b_lo
    return not (lo <= rhs <= hi)


# ----------------------------------------------------------------------
# The affine cross-processor dependence test.


@dataclass(frozen=True)
class DependenceVerdict:
    """Outcome of one reference-pair dependence test.

    ``status`` is ``"clean"`` (proven no cross-processor overlap),
    ``"race"`` (a concrete witness was constructed) or ``"unknown"``
    (the exact search exceeded its budget; treated conservatively).
    """

    status: str
    ref_a: AffineRef
    ref_b: AffineRef
    #: ``(i1, j1, i2, j2)`` witness iterations for a ``race`` verdict.
    witness: Optional[tuple[int, int, int, int]] = None
    #: Processors executing the witness iterations.
    cpus: Optional[tuple[int, int]] = None

    @property
    def is_write_write(self) -> bool:
        return self.ref_a.is_write and self.ref_b.is_write


def _cpu_of_iteration(nest: AffineNest, num_cpus: int) -> list[int]:
    ranges = iteration_ranges(
        nest.i_extent, num_cpus, nest.partitioning, nest.direction
    )
    cpu_of = [0] * nest.i_extent
    for cpu, (lo, hi) in enumerate(ranges):
        for i in range(lo, hi):
            cpu_of[i] = cpu
    return cpu_of


def _subscript_value(sub: Subscript, i: int, j: int) -> int:
    return sub.i_coef * i + sub.j_coef * j + sub.const


def _witness_is_valid(
    ref_a: AffineRef, ref_b: AffineRef, witness: tuple[int, int, int, int]
) -> bool:
    i1, j1, i2, j2 = witness
    return (
        _subscript_value(ref_a.row, i1, j1) == _subscript_value(ref_b.row, i2, j2)
        and _subscript_value(ref_a.col, i1, j1) == _subscript_value(ref_b.col, i2, j2)
    )


def test_cross_processor(
    ref_a: AffineRef,
    ref_b: AffineRef,
    nest: AffineNest,
    num_cpus: int,
    max_pairs: int = MAX_PAIRS,
) -> DependenceVerdict:
    """Can ``ref_a`` on one processor touch an element ``ref_b`` touches
    on a *different* processor?

    Element equality of ``A(row_a(i1,j1), col_a(i1,j1))`` and
    ``A(row_b(i2,j2), col_b(i2,j2))`` is two linear equations over the
    four iteration variables; processor assignment of ``i1``/``i2``
    follows the nest's static schedule.
    """
    if ref_a.array != ref_b.array:
        raise ValueError("dependence test requires references to one array")
    if num_cpus < 2 or nest.i_extent < 2:
        return DependenceVerdict("clean", ref_a, ref_b)

    I_ext, J_ext = nest.i_extent, nest.j_extent
    a1, b1, c1 = ref_a.row.i_coef, ref_a.row.j_coef, ref_a.row.const
    d1, e1, f1 = ref_a.col.i_coef, ref_a.col.j_coef, ref_a.col.const
    a2, b2, c2 = ref_b.row.i_coef, ref_b.row.j_coef, ref_b.row.const
    d2, e2, f2 = ref_b.col.i_coef, ref_b.col.j_coef, ref_b.col.const

    bounds = ((0, I_ext), (0, J_ext), (0, I_ext), (0, J_ext))
    if _eq_unsolvable((a1, b1, -a2, -b2), c2 - c1, bounds):
        return DependenceVerdict("clean", ref_a, ref_b)
    if _eq_unsolvable((d1, e1, -d2, -e2), f2 - f1, bounds):
        return DependenceVerdict("clean", ref_a, ref_b)

    cpu_of = _cpu_of_iteration(nest, num_cpus)

    def fixed_i_solution(i1: int, i2: int) -> Optional[tuple[int, int]]:
        """Solve the remaining 2x2 system in (j1, j2) for fixed i's."""
        rhs_row = (a2 * i2 + c2) - (a1 * i1 + c1)
        rhs_col = (d2 * i2 + f2) - (d1 * i1 + f1)
        det = b2 * e1 - b1 * e2  # det of [[b1, -b2], [e1, -e2]]
        if det != 0:
            num_j1 = -rhs_row * e2 + b2 * rhs_col
            num_j2 = b1 * rhs_col - e1 * rhs_row
            if num_j1 % det or num_j2 % det:
                return None
            j1, j2 = num_j1 // det, num_j2 // det
            if 0 <= j1 < J_ext and 0 <= j2 < J_ext:
                return (j1, j2)
            return None
        # Degenerate system: rows are proportional (or j-free).
        if b1 == 0 and b2 == 0:
            if rhs_row != 0:
                return None
            return _solve_2var(e1, e2, rhs_col, J_ext, J_ext)
        if e1 == 0 and e2 == 0:
            if rhs_col != 0:
                return None
            return _solve_2var(b1, b2, rhs_row, J_ext, J_ext)
        if b1 * rhs_col != e1 * rhs_row or b2 * rhs_col != e2 * rhs_row:
            return None
        return _solve_2var(b1, b2, rhs_row, J_ext, J_ext)

    def verdict_for(i1: int, i2: int) -> Optional[DependenceVerdict]:
        if not (0 <= i1 < I_ext and 0 <= i2 < I_ext):
            return None
        if cpu_of[i1] == cpu_of[i2]:
            return None
        sol = fixed_i_solution(i1, i2)
        if sol is None:
            return None
        witness = (i1, sol[0], i2, sol[1])
        assert _witness_is_valid(ref_a, ref_b, witness)
        return DependenceVerdict(
            "race", ref_a, ref_b, witness, (cpu_of[i1], cpu_of[i2])
        )

    # Linked search: one equation free of j ties i1 to i2, making the
    # search O(I).  This covers every shape `classify_ref` accepts.
    if e1 == 0 and e2 == 0 and (d1 or d2):
        if d2 != 0:
            for i1 in range(I_ext):
                num = d1 * i1 + f1 - f2
                if num % d2:
                    continue
                found = verdict_for(i1, num // d2)
                if found:
                    return found
            return DependenceVerdict("clean", ref_a, ref_b)
        # d2 == 0, d1 != 0: i1 is pinned by the column equation.
        num = f2 - f1
        if num % d1:
            return DependenceVerdict("clean", ref_a, ref_b)
        i1 = num // d1
        for i2 in range(I_ext):
            found = verdict_for(i1, i2)
            if found:
                return found
        return DependenceVerdict("clean", ref_a, ref_b)
    if b1 == 0 and b2 == 0 and (a1 or a2):
        if a2 != 0:
            for i1 in range(I_ext):
                num = a1 * i1 + c1 - c2
                if num % a2:
                    continue
                found = verdict_for(i1, num // a2)
                if found:
                    return found
            return DependenceVerdict("clean", ref_a, ref_b)
        num = c2 - c1
        if num % a1:
            return DependenceVerdict("clean", ref_a, ref_b)
        i1 = num // a1
        for i2 in range(I_ext):
            found = verdict_for(i1, i2)
            if found:
                return found
        return DependenceVerdict("clean", ref_a, ref_b)

    # General search: capped pair enumeration; O(1) solve per pair.
    if I_ext * I_ext > max_pairs:
        return DependenceVerdict("unknown", ref_a, ref_b)
    for i1 in range(I_ext):
        for i2 in range(I_ext):
            found = verdict_for(i1, i2)
            if found:
                return found
    return DependenceVerdict("clean", ref_a, ref_b)


def _ref_pairs(nest: AffineNest) -> Iterator[tuple[AffineRef, AffineRef]]:
    """Unordered reference pairs to the same array with >= 1 write.

    A write reference pairs with itself: two *different* processors
    executing the same static reference can still touch one element.
    """
    refs = nest.refs
    for idx_a, ref_a in enumerate(refs):
        for ref_b in refs[idx_a:]:
            if ref_a.array != ref_b.array:
                continue
            if ref_a.is_write or ref_b.is_write:
                yield ref_a, ref_b


def _describe_ref(ref: AffineRef) -> str:
    def term(sub: Subscript) -> str:
        parts = []
        if sub.i_coef:
            parts.append(f"{sub.i_coef}i" if sub.i_coef != 1 else "i")
        if sub.j_coef:
            parts.append(f"{sub.j_coef}j" if sub.j_coef != 1 else "j")
        if sub.const or not parts:
            parts.append(str(sub.const))
        return "+".join(parts).replace("+-", "-")

    mode = "write" if ref.is_write else "read"
    return f"{mode} {ref.array}({term(ref.row)}, {term(ref.col)})"


def check_nest(
    nest: AffineNest,
    num_cpus: int,
    phase: Optional[str] = None,
    max_pairs: int = MAX_PAIRS,
) -> list[Diagnostic]:
    """Race-check one affine nest against its declared execution mode."""
    findings: list[Diagnostic] = []
    if num_cpus < 2:
        return findings
    verdicts = [
        test_cross_processor(ref_a, ref_b, nest, num_cpus, max_pairs)
        for ref_a, ref_b in _ref_pairs(nest)
    ]
    races = [v for v in verdicts if v.status == "race"]
    unknowns = [v for v in verdicts if v.status == "unknown"]

    if nest.kind is LoopKind.PARALLEL:
        for verdict in races:
            i1, j1, i2, j2 = verdict.witness  # type: ignore[misc]
            kind = "write-write" if verdict.is_write_write else "read-write"
            rule = "A001" if verdict.is_write_write else "A002"
            findings.append(
                Diagnostic(
                    rule_id=rule,
                    severity=Severity.ERROR,
                    loop=nest.name,
                    phase=phase,
                    array=verdict.ref_a.array,
                    message=(
                        f"loop declared PARALLEL has a cross-processor {kind} "
                        f"overlap: {_describe_ref(verdict.ref_a)} at (i={i1}, j={j1}) "
                        f"on cpu {verdict.cpus[0]} and "  # type: ignore[index]
                        f"{_describe_ref(verdict.ref_b)} at (i={i2}, j={j2}) "
                        f"on cpu {verdict.cpus[1]} "  # type: ignore[index]
                        f"touch the same element"
                    ),
                    fix_hint=(
                        "declare the loop SEQUENTIAL/SUPPRESSED, or privatize "
                        "the overlapping region"
                    ),
                    evidence={
                        "witness": [i1, j1, i2, j2],
                        "cpus": list(verdict.cpus),  # type: ignore[arg-type]
                    },
                )
            )
        for verdict in unknowns:
            findings.append(
                Diagnostic(
                    rule_id="A003",
                    severity=Severity.WARNING,
                    loop=nest.name,
                    phase=phase,
                    array=verdict.ref_a.array,
                    message=(
                        f"cannot prove PARALLEL loop race-free: the dependence "
                        f"test for {_describe_ref(verdict.ref_a)} vs "
                        f"{_describe_ref(verdict.ref_b)} exceeded its search "
                        f"budget"
                    ),
                    fix_hint="raise max_pairs or simplify the subscripts",
                )
            )
    elif nest.kind is LoopKind.SUPPRESSED:
        if (
            not races
            and not unknowns
            and nest.i_extent >= SUPPRESSED_MIN_ITER_FACTOR * num_cpus
            and nest.instructions_per_point >= SUPPRESSED_MIN_IPW
        ):
            findings.append(
                Diagnostic(
                    rule_id="A004",
                    severity=Severity.INFO,
                    loop=nest.name,
                    phase=phase,
                    message=(
                        f"loop is SUPPRESSED but provably race-free with "
                        f"{nest.i_extent} coarse iterations on {num_cpus} "
                        f"processors; it looks profitably parallelizable"
                    ),
                    fix_hint="declare the loop PARALLEL",
                )
            )
    return findings


def lint_affine(program: AffineProgram, num_cpus: int) -> LintReport:
    """Run the race detector over every nest of an affine program."""
    report = LintReport(program=program.name)
    for phase in program.phases:
        for nest in phase.nests:
            report.extend(check_nest(nest, num_cpus, phase=phase.name))
    report.sort()
    return report


# ----------------------------------------------------------------------
# Declarative-IR rules (registered in the default registry).


def _boundary_bytes(access: BoundaryAccess, size: int) -> int:
    unit = max(1, size // max(access.units, 1))
    return max(8, int(unit * access.boundary_fraction))


def _partition_spans(
    units: int,
    size: int,
    partitioning: Partitioning,
    direction: Direction,
    num_cpus: int,
) -> list[tuple[int, int]]:
    """Per-cpu owned byte range (relative to the array base)."""
    unit = max(1, size // max(units, 1))
    total_units = -(-size // unit)
    spans = []
    for lo_u, hi_u in iteration_ranges(total_units, num_cpus, partitioning, direction):
        lo = lo_u * unit
        hi = min(hi_u * unit, size)
        spans.append((lo, max(lo, hi)))
    return spans


def _access_cpu_spans(
    access: Access, size: int, num_cpus: int
) -> Optional[list[list[tuple[int, int]]]]:
    """Byte intervals each processor touches, or None if not interval-shaped.

    Strided accesses and instruction streams return None and are handled
    by dedicated logic.
    """
    if isinstance(access, PartitionedAccess):
        owned = _partition_spans(
            access.units, size, access.partitioning, access.direction, num_cpus
        )
        return [[span] for span in owned]
    if isinstance(access, BoundaryAccess):
        owned = _partition_spans(
            access.units, size, access.partitioning, access.direction, num_cpus
        )
        boundary = _boundary_bytes(access, size)
        spans: list[list[tuple[int, int]]] = [[span] for span in owned]
        for cpu in range(num_cpus):
            for neighbour in _neighbours(cpu, num_cpus, access.comm):
                n_lo, n_hi = owned[neighbour]
                if n_hi <= n_lo:
                    continue
                if _is_upper(cpu, neighbour, num_cpus, access.comm):
                    strip = (n_lo, min(n_lo + boundary, n_hi))
                else:
                    strip = (max(n_hi - boundary, n_lo), n_hi)
                if strip[1] > strip[0]:
                    spans[cpu].append(strip)
        return spans
    if isinstance(access, WholeArrayAccess):
        return [[(0, size)] for _ in range(num_cpus)]
    return None


def _neighbours(cpu: int, num_cpus: int, comm: Communication) -> list[int]:
    if num_cpus == 1:
        return []
    if comm is Communication.ROTATE:
        return [(cpu - 1) % num_cpus, (cpu + 1) % num_cpus]
    return [c for c in (cpu - 1, cpu + 1) if 0 <= c < num_cpus]


def _is_upper(cpu: int, neighbour: int, num_cpus: int, comm: Communication) -> bool:
    if comm is Communication.ROTATE:
        return neighbour == (cpu + 1) % num_cpus
    return neighbour == cpu + 1


def _spans_overlap(
    spans_a: list[list[tuple[int, int]]], spans_b: list[list[tuple[int, int]]]
) -> Optional[tuple[int, int]]:
    """First (cpu_a, cpu_b) pair, a != b, whose intervals intersect."""
    num_cpus = len(spans_a)
    for cpu_a in range(num_cpus):
        for cpu_b in range(num_cpus):
            if cpu_a == cpu_b:
                continue
            for lo_a, hi_a in spans_a[cpu_a]:
                for lo_b, hi_b in spans_b[cpu_b]:
                    if lo_a < hi_b and lo_b < hi_a:
                        return (cpu_a, cpu_b)
    return None


def _mode(access: Access) -> str:
    return "write" if getattr(access, "is_write", False) else "read"


def _access_kind(access: Access) -> str:
    return type(access).__name__


def _iter_parallel_loops(ctx: LintContext) -> Iterator[tuple[Phase, Loop]]:
    for phase in ctx.program.phases:
        for loop in phase.loops:
            if loop.kind is LoopKind.PARALLEL:
                yield phase, loop


@register(
    "R001",
    "Cross-processor overlap in a PARALLEL loop",
    family="race",
    paper_section="3.2, 5.1",
)
def rule_parallel_overlap(ctx: LintContext) -> Iterator[Diagnostic]:
    """Conflicting accesses from two processors in one parallel loop.

    Materializes the per-processor byte ranges each declaration implies
    (partition chunks, boundary strips, whole-array spans) and intersects
    them across processors for every same-array access pair with at least
    one write — a boundary *write*, a whole-array write, or mismatched
    partitionings all surface here.
    """
    if ctx.num_cpus < 2:
        return
    for phase, loop in _iter_parallel_loops(ctx):
        accesses = [a for a in loop.accesses if not isinstance(a, InstructionStream)]
        for idx_a, acc_a in enumerate(accesses):
            for acc_b in accesses[idx_a:]:
                array = getattr(acc_a, "array", None)
                if array is None or getattr(acc_b, "array", None) != array:
                    continue
                if not (acc_a.is_write or acc_b.is_write):
                    continue
                if isinstance(acc_a, StridedAccess) or isinstance(acc_b, StridedAccess):
                    continue  # handled by R002
                size = ctx.layout.sizes[array]
                spans_a = _access_cpu_spans(acc_a, size, ctx.num_cpus)
                spans_b = _access_cpu_spans(acc_b, size, ctx.num_cpus)
                if spans_a is None or spans_b is None:
                    continue
                hit = _spans_overlap(spans_a, spans_b)
                if hit is None:
                    continue
                write_write = acc_a.is_write and acc_b.is_write
                kind = "write-write" if write_write else "read-write"
                yield Diagnostic(
                    rule_id="R001",
                    severity=Severity.ERROR,
                    loop=loop.name,
                    phase=phase.name,
                    array=array,
                    message=(
                        f"loop declared PARALLEL has a cross-processor {kind} "
                        f"overlap on '{array}': the "
                        f"{_access_kind(acc_a)} ({_mode(acc_a)}) of cpu {hit[0]} "
                        f"intersects the {_access_kind(acc_b)} "
                        f"({_mode(acc_b)}) of cpu {hit[1]}"
                    ),
                    fix_hint=(
                        "declare the loop SEQUENTIAL/SUPPRESSED, or make the "
                        "conflicting access read-only / privatized"
                    ),
                    evidence={"cpus": list(hit)},
                )


@register(
    "R002",
    "Strided access conflicting with another access form",
    family="race",
    paper_section="5.1, 6.1",
)
def rule_strided_conflicts(ctx: LintContext) -> Iterator[Diagnostic]:
    """Cyclic (strided) footprints spread over the whole array.

    A strided access is race-free against itself (each processor owns
    every P-th block), but its footprint interleaves through every other
    processor's partition — so pairing it with *any* other access form on
    the same array, with a write on either side, is a cross-processor
    overlap.  Two strided accesses with different block sizes likewise
    misalign their ownership patterns.
    """
    if ctx.num_cpus < 2:
        return
    for phase, loop in _iter_parallel_loops(ctx):
        accesses = [a for a in loop.accesses if not isinstance(a, InstructionStream)]
        for idx_a, acc_a in enumerate(accesses):
            for acc_b in accesses[idx_a + 1 :]:
                array = getattr(acc_a, "array", None)
                if array is None or getattr(acc_b, "array", None) != array:
                    continue
                if not (acc_a.is_write or acc_b.is_write):
                    continue
                strided_a = isinstance(acc_a, StridedAccess)
                strided_b = isinstance(acc_b, StridedAccess)
                if not (strided_a or strided_b):
                    continue
                if strided_a and strided_b:
                    if acc_a.block_bytes == acc_b.block_bytes:
                        continue  # identical interleaving: same owner per block
                    detail = (
                        f"two strided accesses with different block sizes "
                        f"({acc_a.block_bytes} vs {acc_b.block_bytes} bytes) "
                        f"assign the same bytes to different processors"
                    )
                else:
                    other = acc_b if strided_a else acc_a
                    detail = (
                        f"a strided access interleaves through every "
                        f"processor's partition while a "
                        f"{_access_kind(other)} ({_mode(other)}) also touches "
                        f"'{array}'"
                    )
                yield Diagnostic(
                    rule_id="R002",
                    severity=Severity.ERROR,
                    loop=loop.name,
                    phase=phase.name,
                    array=array,
                    message=(
                        f"loop declared PARALLEL has a cross-processor overlap "
                        f"on '{array}': {detail}"
                    ),
                    fix_hint=(
                        "restructure to one access form per array, or declare "
                        "the loop SUPPRESSED"
                    ),
                )


@register(
    "R004",
    "False sharing at unaligned partition boundaries",
    family="race",
    paper_section="5.4",
)
def rule_false_sharing(ctx: LintContext) -> Iterator[Diagnostic]:
    """Written partition boundaries that split a cache line.

    Section 5.4's alignment measure exists precisely so that processors
    "operate on multiples of the line size"; a written partition whose
    per-processor boundary falls mid-line ping-pongs that line between
    two owners.
    """
    if ctx.num_cpus < 2:
        return
    line = ctx.config.l2.line_size
    for phase, loop in _iter_parallel_loops(ctx):
        for access in loop.accesses:
            if not getattr(access, "is_write", False):
                continue
            array = getattr(access, "array", None)
            if array is None:
                continue
            base = ctx.layout.base_of(array)
            if isinstance(access, StridedAccess):
                if access.block_bytes % line or base % line:
                    yield Diagnostic(
                        rule_id="R004",
                        severity=Severity.WARNING,
                        loop=loop.name,
                        phase=phase.name,
                        array=array,
                        message=(
                            f"strided write with a {access.block_bytes}-byte "
                            f"interleave block that is not a multiple of the "
                            f"{line}-byte cache line: adjacent processors "
                            f"share boundary lines"
                        ),
                        fix_hint="round the interleave block to the line size",
                    )
                continue
            if not isinstance(access, (PartitionedAccess, BoundaryAccess)):
                continue
            size = ctx.layout.sizes[array]
            spans = _partition_spans(
                access.units, size, access.partitioning, access.direction,
                ctx.num_cpus,
            )
            misaligned = sorted(
                {
                    (base + lo) % line
                    for lo, hi in spans
                    if hi > lo and lo > 0 and (base + lo) % line
                }
            )
            if misaligned:
                yield Diagnostic(
                    rule_id="R004",
                    severity=Severity.WARNING,
                    loop=loop.name,
                    phase=phase.name,
                    array=array,
                    message=(
                        f"written partition boundaries of '{array}' are not "
                        f"aligned to the {line}-byte cache line "
                        f"(offsets {misaligned}): neighbouring processors "
                        f"false-share the boundary lines"
                    ),
                    fix_hint=(
                        "pad the partition unit (or the array) to a line "
                        "multiple"
                    ),
                )


@register(
    "R005",
    "Static schedule load imbalance",
    family="race",
    paper_section="4.1",
)
def rule_schedule_imbalance(ctx: LintContext) -> Iterator[Diagnostic]:
    """Iteration counts that waste processors under the static schedule.

    The applu example of Section 4.1: 33 iterations on 16 processors
    under a blocked partitioning leave five processors idle.
    """
    if ctx.num_cpus < 2:
        return
    for phase, loop in _iter_parallel_loops(ctx):
        schedule = schedule_loop(loop, ctx.num_cpus)
        fraction = schedule.imbalance_fraction()
        if fraction < IMBALANCE_THRESHOLD:
            continue
        counts = [schedule.iterations_of(cpu) for cpu in range(ctx.num_cpus)]
        idle = sum(1 for c in counts if c == 0)
        yield Diagnostic(
            rule_id="R005",
            severity=Severity.WARNING,
            loop=loop.name,
            phase=phase.name,
            message=(
                f"{loop.effective_iterations} iterations on {ctx.num_cpus} "
                f"processors lose {fraction:.0%} of parallel capacity to "
                f"load imbalance"
                + (f" ({idle} processors get no work)" if idle else "")
            ),
            fix_hint=(
                "choose an iteration count divisible by the processor count, "
                "or switch to an even partitioning"
            ),
            evidence={"imbalance": round(fraction, 4), "counts": counts},
        )


@register(
    "R006",
    "Needlessly SUPPRESSED loop",
    family="race",
    paper_section="4.1 (Figure 2)",
)
def rule_needlessly_suppressed(ctx: LintContext) -> Iterator[Diagnostic]:
    """Coarse-grain, provably race-free loops running on the master only."""
    if ctx.num_cpus < 2:
        return
    for phase in ctx.program.phases:
        for loop in phase.loops:
            if loop.kind is not LoopKind.SUPPRESSED:
                continue
            if any(isinstance(a, StridedAccess) for a in loop.accesses):
                continue  # gather/scatter order: legitimately suppressed
            if loop.effective_iterations < SUPPRESSED_MIN_ITER_FACTOR * ctx.num_cpus:
                continue
            if loop.instructions_per_word < SUPPRESSED_MIN_IPW:
                continue
            if _loop_has_overlap(ctx, loop):
                continue
            yield Diagnostic(
                rule_id="R006",
                severity=Severity.INFO,
                loop=loop.name,
                phase=phase.name,
                message=(
                    f"loop is SUPPRESSED but race-free with "
                    f"{loop.effective_iterations} coarse iterations "
                    f"({loop.instructions_per_word:.1f} instructions/word) on "
                    f"{ctx.num_cpus} processors; it looks profitably "
                    f"parallelizable"
                ),
                fix_hint="declare the loop PARALLEL",
            )


def _loop_has_overlap(ctx: LintContext, loop: Loop) -> bool:
    """Would R001 fire if this loop ran parallel?"""
    accesses = [a for a in loop.accesses if not isinstance(a, InstructionStream)]
    for idx_a, acc_a in enumerate(accesses):
        for acc_b in accesses[idx_a:]:
            array = getattr(acc_a, "array", None)
            if array is None or getattr(acc_b, "array", None) != array:
                continue
            if not (acc_a.is_write or acc_b.is_write):
                continue
            size = ctx.layout.sizes[array]
            spans_a = _access_cpu_spans(acc_a, size, ctx.num_cpus)
            spans_b = _access_cpu_spans(acc_b, size, ctx.num_cpus)
            if spans_a is None or spans_b is None:
                return True  # conservatively assume overlap
            if _spans_overlap(spans_a, spans_b) is not None:
                return True
    return False
