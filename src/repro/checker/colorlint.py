"""Color-plan linting (rule family ``color``).

These rules inspect a finished :class:`~repro.core.coloring.ColoringResult`
together with the machine geometry and predict — before any simulation —
the trouble the simulator would otherwise spend minutes discovering
dynamically:

* ``C001`` — a processor's footprint overflows a color bin (more pages of
  one color than the external cache's associativity can hold);
* ``C002`` — two arrays a processor uses *together* (group-access pairs,
  Section 5.1) collide on the same color even though the footprint fits;
* ``C003`` — unsummarizable strided accesses CDPC silently skipped
  (the su2cor situation of Section 6.1);
* ``C004`` — padding/alignment opportunities the Section 5.4 layout
  measures missed in the virtually-indexed on-chip cache.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.checker.diagnostics import Diagnostic, Severity
from repro.checker.registry import LintContext, register
from repro.compiler.ir import LoopKind, StridedAccess

#: Fraction of a processor's footprint that must be stacked *beyond* the
#: cache associativity before C001/C002 call the plan troubled.  A page
#: sequence at ~85% color occupancy inevitably double-stacks a handful of
#: bins (swim at 16 CPUs: 6 of 222 pages, harmless); real conflict
#: trouble is an order of magnitude above this (applu: 64%).
EXCESS_FRACTION_THRESHOLD = 0.10


def _per_cpu_color_pages(
    ctx: LintContext,
) -> dict[int, dict[int, list[tuple[int, str]]]]:
    """cpu -> color -> [(page, array)] from the coloring's segments."""
    assert ctx.coloring is not None
    per_cpu: dict[int, dict[int, list[tuple[int, str]]]] = {}
    for segment in ctx.coloring.segments:
        for page in segment.pages:
            color = ctx.coloring.colors.get(page)
            if color is None:
                continue
            for cpu in segment.cpus:
                per_cpu.setdefault(cpu, {}).setdefault(color, []).append(
                    (page, segment.array)
                )
    return per_cpu


@register(
    "C001",
    "Per-processor footprint overflows a color bin",
    family="color",
    paper_section="2.1, 6.1",
    needs_coloring=True,
)
def rule_color_bin_overflow(ctx: LintContext) -> Iterator[Diagnostic]:
    """More same-color pages for one processor than the cache can hold.

    With an ``A``-way external cache, ``A`` pages of one color fit
    conflict-free; a bin holding more guarantees conflict misses for that
    processor.  The message distinguishes a *capacity* overflow (footprint
    larger than the whole cache — only a bigger cache helps) from an
    *avoidable* one (the footprint fits but the plan stacked pages).
    """
    assoc = ctx.config.l2.associativity
    capacity_pages = ctx.config.num_colors * assoc
    per_cpu = _per_cpu_color_pages(ctx)
    worst: tuple[int, int, int] | None = None  # (count, cpu, color)
    overflowing_cpus: list[int] = []
    avoidable_cpus: list[int] = []
    for cpu in sorted(per_cpu):
        bins = per_cpu[cpu]
        count, color = max(
            ((len(pages), color) for color, pages in bins.items()),
            key=lambda item: (item[0], -item[1]),
        )
        if count <= assoc:
            continue
        total = sum(len(pages) for pages in bins.values())
        excess = sum(
            len(pages) - assoc for pages in bins.values() if len(pages) > assoc
        )
        if excess < EXCESS_FRACTION_THRESHOLD * total:
            continue  # a handful of double-stacked bins is round-robin noise
        overflowing_cpus.append(cpu)
        if total <= capacity_pages:
            avoidable_cpus.append(cpu)
        if worst is None or count > worst[0]:
            worst = (count, cpu, color)
    if worst is None:
        return
    count, cpu, color = worst
    arrays = sorted({array for _, array in per_cpu[cpu][color]})
    if avoidable_cpus:
        nature = (
            f"the footprint of {len(avoidable_cpus)} of them fits in the "
            f"cache, so a different page order could avoid the conflicts"
        )
    else:
        nature = (
            "every affected footprint exceeds the cache capacity, so the "
            "overflow is unavoidable at this cache size"
        )
    yield Diagnostic(
        rule_id="C001",
        severity=Severity.WARNING,
        message=(
            f"{len(overflowing_cpus)} processor(s) have more pages on one "
            f"color than the {assoc}-way external cache can hold "
            f"(worst: cpu {cpu} stacks {count} pages on color {color}, "
            f"from {', '.join(arrays)}); {nature}"
        ),
        fix_hint=(
            "shrink the per-processor working set, increase cache "
            "associativity, or revisit the segment ordering"
        ),
        evidence={
            "worst_cpu": cpu,
            "worst_color": color,
            "worst_count": count,
            "overflowing_cpus": overflowing_cpus,
            "avoidable_cpus": avoidable_cpus,
            "associativity": assoc,
        },
    )


@register(
    "C002",
    "Grouped arrays collide on one color for one processor",
    family="color",
    paper_section="5.1-5.3, 6.1",
    needs_coloring=True,
)
def rule_grouped_collision(ctx: LintContext) -> Iterator[Diagnostic]:
    """Arrays used together whose pages share a color bin on one processor.

    Steps 2-4 of the algorithm exist to keep arrays of one access set from
    landing on the same colors; this rule checks the *result* delivers
    that for every group-access pair.  Only processors whose footprint
    fits in the cache are considered — capacity overflows are C001's
    business.
    """
    assoc = ctx.config.l2.associativity
    capacity_pages = ctx.config.num_colors * assoc
    per_cpu = _per_cpu_color_pages(ctx)
    collisions: dict[frozenset[str], list[tuple[int, int]]] = {}
    for cpu, bins in per_cpu.items():
        total = sum(len(pages) for pages in bins.values())
        if total > capacity_pages:
            continue
        excess = sum(
            len(pages) - assoc for pages in bins.values() if len(pages) > assoc
        )
        if excess < EXCESS_FRACTION_THRESHOLD * total:
            continue
        for color, pages in bins.items():
            if len(pages) <= assoc:
                continue
            arrays = sorted({array for _, array in pages})
            for idx, array_a in enumerate(arrays):
                for array_b in arrays[idx + 1 :]:
                    if ctx.summary.are_grouped(array_a, array_b):
                        key = frozenset((array_a, array_b))
                        collisions.setdefault(key, []).append((cpu, color))
    for pair in sorted(collisions, key=sorted):
        bins_hit = collisions[pair]
        array_a, array_b = sorted(pair)
        cpus = sorted({cpu for cpu, _ in bins_hit})
        yield Diagnostic(
            rule_id="C002",
            severity=Severity.WARNING,
            array=array_a,
            message=(
                f"arrays '{array_a}' and '{array_b}' are accessed in the "
                f"same loops but the color plan stacks their pages on "
                f"{len(bins_hit)} shared color bin(s) for processor(s) "
                f"{cpus}, although the footprint fits in the cache"
            ),
            fix_hint=(
                "the within-set segment ordering or cyclic rotation failed "
                "for this pair; inspect the access-set ordering"
            ),
            evidence={
                "pair": [array_a, array_b],
                "bins": [list(b) for b in bins_hit],
            },
        )


@register(
    "C003",
    "Unsummarizable strided access skipped by CDPC",
    family="color",
    paper_section="5.1, 6.1",
)
def rule_unsummarizable_strided(ctx: LintContext) -> Iterator[Diagnostic]:
    """Arrays CDPC silently leaves to default OS placement.

    A cyclically-distributed (strided) access gives each processor a
    non-contiguous footprint the run-time library cannot summarize, so
    the whole array is dropped from coloring — exactly the su2cor
    situation of Section 6.1.  WARNING when the access happens in a
    PARALLEL loop (the array is hot and uncolored), INFO when it only
    occurs in suppressed/sequential code.
    """
    sightings: dict[str, dict[str, Any]] = {}
    for phase in ctx.program.phases:
        for loop in phase.loops:
            for access in loop.accesses:
                if not isinstance(access, StridedAccess):
                    continue
                info = sightings.setdefault(
                    access.array, {"loops": [], "parallel": False}
                )
                info["loops"].append(f"{phase.name}/{loop.name}")
                if loop.kind is LoopKind.PARALLEL:
                    info["parallel"] = True
    for array in sorted(sightings):
        info = sightings[array]
        severity = Severity.WARNING if info["parallel"] else Severity.INFO
        pages = len(ctx.layout.pages(array, ctx.config.page_size))
        yield Diagnostic(
            rule_id="C003",
            severity=severity,
            array=array,
            loop=info["loops"][0].split("/", 1)[1],
            phase=info["loops"][0].split("/", 1)[0],
            message=(
                f"array '{array}' ({pages} pages) is accessed with a cyclic "
                f"stride in {', '.join(info['loops'])}; its per-processor "
                f"footprint is not contiguous, so CDPC cannot summarize it "
                f"and silently leaves its pages to default OS placement"
            ),
            fix_hint=(
                "restructure to a blocked/partitioned distribution if the "
                "array is hot, or accept default placement"
            ),
            evidence={"loops": info["loops"], "pages": pages},
        )


@register(
    "C004",
    "Missed padding/alignment between grouped arrays",
    family="color",
    paper_section="5.4",
)
def rule_padding_missed(ctx: LintContext) -> Iterator[Diagnostic]:
    """Layout measures of Section 5.4 the current layout failed to apply.

    Two checks against the virtually-indexed on-chip cache: arrays used
    together must not start at the same L1 line index (padding), and no
    array may start mid-line (alignment).  The aligned layout pass
    guarantees both; this rule verifies the *actual* base addresses.
    """
    line = ctx.config.l1d.line_size
    l1_lines = ctx.config.l1d.num_lines
    misaligned = sorted(
        name for name, base in ctx.layout.bases.items() if base % line
    )
    if misaligned:
        shown = ", ".join(misaligned[:6]) + ("…" if len(misaligned) > 6 else "")
        yield Diagnostic(
            rule_id="C004",
            severity=Severity.WARNING,
            array=misaligned[0],
            message=(
                f"{len(misaligned)} array(s) do not start on a "
                f"{line}-byte cache-line boundary ({shown}): structures "
                f"false-share their edge lines"
            ),
            fix_hint="enable the aligned layout pass (aligned=True)",
            evidence={"arrays": misaligned},
        )
    offsets = {
        name: (base // line) % l1_lines for name, base in ctx.layout.bases.items()
    }
    names = sorted(offsets)
    for idx, array_a in enumerate(names):
        for array_b in names[idx + 1 :]:
            if offsets[array_a] != offsets[array_b]:
                continue
            if not ctx.summary.are_grouped(array_a, array_b):
                continue
            yield Diagnostic(
                rule_id="C004",
                severity=Severity.WARNING,
                array=array_a,
                message=(
                    f"arrays '{array_a}' and '{array_b}' are used in the "
                    f"same loops but start at the same on-chip cache line "
                    f"index ({offsets[array_a]}): they evict each other in "
                    f"the virtually-indexed L1"
                ),
                fix_hint=(
                    "pad one base address by a few lines (the layout pass "
                    "staggers grouped arrays automatically)"
                ),
                evidence={
                    "pair": [array_a, array_b],
                    "l1_line_index": offsets[array_a],
                },
            )
