"""Symbolic cache-conflict analysis: static miss prediction and plan proof.

The paper's premise is that the compiler knows the per-processor footprint
of every parallel loop precisely enough to *direct* page coloring.  This
module closes the evaluation loop: instead of simulating a color plan to
score it, it computes the plan's cache behaviour symbolically from the
same declarative access summaries the simulator's trace generator
consumes.

Three layers, bottom to top:

1. **Footprint engine** — :func:`program_image` mirrors
   :mod:`repro.sim.tracegen` exactly (same stride, tiling, scheduling and
   boundary-strip arithmetic) but produces arithmetic *progressions*
   instead of materialized address arrays, then reduces them to exact
   per-line reference/visit counts per (CPU, loop).  The hypothesis suite
   in ``tests/test_staticmiss_properties.py`` cross-checks this against
   brute-force enumeration of the real trace generator.
2. **Plan verifier** — :func:`derive_static_plan` reproduces each mapping
   policy's page->color function without running the OS model (including
   bin hopping's jittered fault-order counter), and :func:`verify_plan`
   computes per-(CPU, color, line) page-bin occupancy.  Occupancy within
   the cache's associativity *proves* the plan conflict-free for the
   summarized accesses; any overflow yields a :class:`ConflictWitness`
   that :func:`replay_witness` reproduces on the real
   :class:`~repro.machine.memory_system.MemorySystem`.
3. **Miss predictor** — :func:`predict_program` runs a per-set symbolic
   cache simulation over line *visits* (reference runs, the unit that
   reaches the external cache through the on-chip filter) and emits a
   :class:`StaticMissProfile`: cold / conflict / capacity / sharing
   estimates with explicit ``[lo, hi]`` intervals whose half-width is the
   self-reported error bound checked by ``EngineOptions.static_check``.
"""

from __future__ import annotations

import math
import random
import time
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional

from repro.compiler.ir import (
    BoundaryAccess,
    InstructionStream,
    Loop,
    LoopKind,
    PartitionedAccess,
    Phase,
    Program,
    StridedAccess,
    WholeArrayAccess,
)
from repro.compiler.padding import Layout
from repro.compiler.parallelize import LoopSchedule, schedule_loop
from repro.core.coloring import ColoringResult
from repro.machine.config import MachineConfig
from repro.machine.stats import MissKind
from repro.sim.tracegen import INSTRUCTION_BASE, SimProfile, occurrence_scale

__all__ = [
    "ConflictHotspot",
    "ConflictWitness",
    "LineTouch",
    "LoopImage",
    "MissEstimate",
    "PlanVerification",
    "Progression",
    "ProgramImage",
    "StaticCheckError",
    "StaticConflictSummary",
    "StaticMissProfile",
    "StaticPlan",
    "conflict_summary",
    "derive_frame_budget",
    "derive_static_plan",
    "instruction_pages",
    "loop_line_touches",
    "predict_program",
    "predict_workload",
    "program_image",
    "replay_witness",
    "verify_plan",
]


# ---------------------------------------------------------------------------
# Footprint engine


@dataclass(frozen=True)
class Progression:
    """Addresses ``start + k*step`` for ``0 <= k < count`` (bytes)."""

    start: int
    step: int
    count: int

    def __post_init__(self) -> None:
        if self.step <= 0:
            raise ValueError("step must be positive")
        if self.count < 0:
            raise ValueError("count must be non-negative")

    @property
    def last(self) -> int:
        return self.start + (self.count - 1) * self.step

    def count_below(self, limit: int) -> int:
        """Number of elements with address < ``limit``."""
        if self.count == 0 or limit <= self.start:
            return 0
        return min(self.count, (limit - 1 - self.start) // self.step + 1)

    def count_in(self, lo: int, hi: int) -> int:
        """Number of elements with ``lo <= address < hi``."""
        if self.count == 0 or hi <= lo:
            return 0
        if lo <= self.start:
            kmin = 0
        else:
            kmin = -(-(lo - self.start) // self.step)
        kmax = min(self.count - 1, (hi - 1 - self.start) // self.step)
        return max(0, kmax - kmin + 1)


def _bulk_progression(start: int, nbytes: int, stride: int) -> list[Progression]:
    """Mirror of ``tracegen._bulk_addresses`` in progression form."""
    if nbytes <= 0:
        return []
    count = -(-nbytes // stride)
    return [Progression(start, stride, count)]


def _unit_range(
    schedule: LoopSchedule, units: int, cpu: int
) -> tuple[int, int]:
    """Mirror of ``tracegen._unit_range``."""
    lo, hi = schedule.ranges[cpu]
    total = max(1, schedule.loop.effective_iterations)
    if units == total:
        return lo, hi
    scale = units / total
    return int(lo * scale), int(hi * scale)


def _boundary_progressions(
    access: BoundaryAccess,
    layout: Layout,
    schedule: LoopSchedule,
    cpu: int,
    config: MachineConfig,
) -> list[Progression]:
    """Mirror of the BoundaryAccess branch of ``tracegen._access_stream``."""
    from repro.sim.tracegen import _is_upper, _neighbour_list

    base = layout.base_of(access.array)
    size = layout.sizes[access.array]
    num_cpus = schedule.num_cpus
    unit = max(1, size // access.units)
    boundary = max(config.word_size, int(unit * access.boundary_fraction))
    ranges: list[tuple[int, int]] = []
    for other in range(num_cpus):
        lo_u, hi_u = _unit_range(schedule, access.units, other)
        lo = base + lo_u * unit
        hi = min(base + hi_u * unit, base + size)
        ranges.append((lo, max(lo, hi)))
    progs: list[Progression] = []
    for nb in _neighbour_list(access.comm, cpu, num_cpus):
        n_lo, n_hi = ranges[nb]
        if n_hi <= n_lo:
            continue
        if _is_upper(cpu, nb, num_cpus, access.comm):
            strip = (n_lo, min(n_lo + boundary, n_hi))
        else:
            strip = (max(n_hi - boundary, n_lo), n_hi)
        progs.extend(
            _bulk_progression(strip[0], strip[1] - strip[0], config.word_size)
        )
    return progs


@dataclass(frozen=True)
class StreamImage:
    """One access's reference stream on one processor, in symbolic form.

    ``progs`` is one untiled pass; tiling repeats it ``whole`` times plus
    a prefix of ``prefix_elems`` elements, exactly like ``tracegen._tile``.
    """

    array: Optional[str]  # None for instruction streams
    is_write: bool
    is_instr: bool
    progs: tuple[Progression, ...]
    whole: int
    prefix_elems: int

    @property
    def pass_elems(self) -> int:
        return sum(p.count for p in self.progs)

    @property
    def total_refs(self) -> int:
        return self.pass_elems * self.whole + self.prefix_elems


def _tile_counts(pass_elems: int, sweeps: float) -> tuple[int, int]:
    """Mirror of ``tracegen._tile``: (whole copies, fractional prefix)."""
    if sweeps <= 0 or pass_elems == 0:
        return 0, 0
    whole = int(sweeps)
    frac = sweeps - whole
    prefix = int(pass_elems * frac) if frac > 0 else 0
    return whole, prefix


def access_stream_image(
    access: object,
    layout: Layout,
    schedule: LoopSchedule,
    cpu: int,
    config: MachineConfig,
    profile: SimProfile,
    fraction_scale: float = 1.0,
) -> StreamImage:
    """Symbolic mirror of ``tracegen._access_stream`` for one access."""
    stride = profile.stride_for(config)

    if isinstance(access, InstructionStream):
        sweeps = min(access.sweeps, profile.sweep_limit)
        fetch_stride = max(4, config.l1i.line_size // 2)
        base = INSTRUCTION_BASE + 173 * config.page_size
        progs = _bulk_progression(base, access.footprint_bytes, fetch_stride)
        whole, prefix = _tile_counts(sum(p.count for p in progs), sweeps)
        return StreamImage(None, False, True, tuple(progs), whole, prefix)

    if isinstance(access, PartitionedAccess):
        base = layout.base_of(access.array)
        size = layout.sizes[access.array]
        unit = max(1, size // access.units)
        lo_u, hi_u = _unit_range(schedule, access.units, cpu)
        chunk = min((hi_u - lo_u) * unit, size - lo_u * unit)
        fraction = min(1.0, max(1e-6, access.fraction * fraction_scale))
        touched = int(chunk * fraction)
        sweeps = min(access.sweeps, profile.sweep_limit)
        progs = _bulk_progression(base + lo_u * unit, touched, stride)
        whole, prefix = _tile_counts(sum(p.count for p in progs), sweeps)
        return StreamImage(
            access.array, access.is_write, False, tuple(progs), whole, prefix
        )

    if isinstance(access, BoundaryAccess):
        progs = _boundary_progressions(access, layout, schedule, cpu, config)
        # Boundary strips are generated untiled (one pass, no sweeps).
        return StreamImage(
            access.array,
            access.is_write,
            False,
            tuple(progs),
            1,
            0,
        )

    if isinstance(access, StridedAccess):
        base = layout.base_of(access.array)
        size = layout.sizes[access.array]
        block = access.block_bytes
        nblocks = size // block
        inner_count = -(-block // stride) if block > 0 else 0
        progs = [
            Progression(base + m * block, stride, inner_count)
            for m in range(cpu, nblocks, schedule.num_cpus)
        ]
        sweeps = min(access.sweeps, profile.sweep_limit) * fraction_scale
        whole, prefix = _tile_counts(sum(p.count for p in progs), sweeps)
        return StreamImage(
            access.array, access.is_write, False, tuple(progs), whole, prefix
        )

    if isinstance(access, WholeArrayAccess):
        base = layout.base_of(access.array)
        size = layout.sizes[access.array]
        fraction = min(1.0, max(1e-6, access.fraction * fraction_scale))
        touched = int(size * fraction)
        sweeps = min(access.sweeps, profile.sweep_limit)
        progs = _bulk_progression(base, touched, stride)
        whole, prefix = _tile_counts(sum(p.count for p in progs), sweeps)
        return StreamImage(
            access.array, access.is_write, False, tuple(progs), whole, prefix
        )

    raise TypeError(f"unknown access type: {type(access)!r}")


class LineTouch:
    """Per-(CPU, loop) accounting for one external-cache line.

    ``refs`` counts individual references; ``visits`` counts contiguous
    runs through the line (one per stream pass), which is the number of
    times the line can reach the external cache through the on-chip
    filter per loop execution.
    """

    __slots__ = ("refs", "visits", "streams", "written", "instr")

    def __init__(self) -> None:
        self.refs = 0
        self.visits = 0
        self.streams = 0
        self.written = False
        self.instr = False

    def as_tuple(self) -> tuple[int, int, int, bool, bool]:
        return (self.refs, self.visits, self.streams, self.written, self.instr)


def _accumulate_stream_lines(
    stream: StreamImage, line_size: int, lines: dict[int, LineTouch]
) -> None:
    """Fold one stream's exact per-line reference/visit counts into ``lines``."""
    whole = stream.whole
    prefix_left = stream.prefix_elems
    if whole == 0 and prefix_left == 0:
        return
    offset = 0  # global element index at the start of the current progression
    touched_this_stream: set[int] = set()
    for prog in stream.progs:
        if prog.count == 0:
            continue
        prefix_in_prog = max(0, min(prog.count, stream.prefix_elems - offset))
        prefix_limit = (
            prog.start + prefix_in_prog * prog.step if prefix_in_prog else prog.start
        )
        if prog.step <= line_size:
            first_line = (prog.start // line_size) * line_size
            last_line = (prog.last // line_size) * line_size
            for laddr in range(first_line, last_line + 1, line_size):
                full = prog.count_in(laddr, laddr + line_size)
                if full == 0:
                    continue
                pref = prog.count_in(laddr, min(laddr + line_size, prefix_limit))
                _touch_line(
                    lines, touched_this_stream, laddr, stream,
                    full * whole + pref,
                    whole * (1 if full else 0) + (1 if pref else 0),
                )
        else:
            for k in range(prog.count):
                addr = prog.start + k * prog.step
                laddr = (addr // line_size) * line_size
                in_prefix = 1 if k < prefix_in_prog else 0
                _touch_line(
                    lines, touched_this_stream, laddr, stream,
                    whole + in_prefix,
                    whole + in_prefix,
                )
        offset += prog.count


def _touch_line(
    lines: dict[int, LineTouch],
    touched: set[int],
    laddr: int,
    stream: StreamImage,
    refs: int,
    visits: int,
) -> None:
    if refs == 0 and visits == 0:
        return
    info = lines.get(laddr)
    if info is None:
        info = LineTouch()
        lines[laddr] = info
    info.refs += refs
    info.visits += visits
    if laddr not in touched:
        touched.add(laddr)
        info.streams += 1
    if stream.is_write:
        info.written = True
    if stream.is_instr:
        info.instr = True


@dataclass
class LoopImage:
    """All processors' symbolic footprints for one loop execution."""

    phase: str
    loop: str
    weight: int
    streams: list[list[StreamImage]]  # [cpu][stream]
    lines: list[dict[int, LineTouch]]  # [cpu] -> line addr -> touch counts

    def total_refs(self, cpu: int) -> int:
        return sum(s.total_refs for s in self.streams[cpu])


def loop_line_touches(
    loop: Loop,
    schedule: LoopSchedule,
    layout: Layout,
    config: MachineConfig,
    profile: SimProfile,
    fraction_scale: float = 1.0,
) -> list[dict[int, LineTouch]]:
    """Exact per-line reference/visit counts per CPU for one loop.

    Mirrors :func:`repro.sim.tracegen.loop_traces`: non-PARALLEL loops run
    on processor 0 only; stream merging changes reference order but not
    footprints, so it is not modeled here.
    """
    num_cpus = schedule.num_cpus
    active = range(num_cpus) if loop.kind is LoopKind.PARALLEL else [0]
    line = config.l2.line_size
    result: list[dict[int, LineTouch]] = []
    for cpu in range(num_cpus):
        lines: dict[int, LineTouch] = {}
        if cpu in active:
            for access in loop.accesses:
                stream = access_stream_image(
                    access, layout, schedule, cpu, config, profile, fraction_scale
                )
                _accumulate_stream_lines(stream, line, lines)
        result.append(lines)
    return result


@dataclass
class ProgramImage:
    """Symbolic footprints of a whole program's steady-state cycle.

    ``loops`` is the flattened (phase, loop) sequence of the representative
    execution window, each with exact per-CPU line-touch maps at the given
    occurrence index.
    """

    program: Program
    layout: Layout
    config: MachineConfig
    num_cpus: int
    profile: SimProfile
    occurrence: int
    loops: list[LoopImage]

    def cycle_lines(self, cpu: int) -> dict[int, LineTouch]:
        """Cycle-wide merged line touches for one processor."""
        merged: dict[int, LineTouch] = {}
        for image in self.loops:
            for laddr, touch in image.lines[cpu].items():
                info = merged.get(laddr)
                if info is None:
                    info = LineTouch()
                    merged[laddr] = info
                info.refs += touch.refs
                info.visits += touch.visits
                info.streams += touch.streams
                info.written = info.written or touch.written
                info.instr = info.instr or touch.instr
        return merged


def program_image(
    program: Program,
    layout: Layout,
    config: MachineConfig,
    num_cpus: int,
    profile: Optional[SimProfile] = None,
    occurrence: int = 1,
) -> ProgramImage:
    """Build the symbolic footprint of every loop in the steady-state cycle."""
    prof = profile if profile is not None else SimProfile()
    loops: list[LoopImage] = []
    for phase in program.phases:
        scale = occurrence_scale(phase.miss_variation, occurrence, phase.name)
        for loop in phase.loops:
            schedule = schedule_loop(loop, num_cpus)
            active = (
                range(num_cpus) if loop.kind is LoopKind.PARALLEL else [0]
            )
            streams: list[list[StreamImage]] = []
            lines: list[dict[int, LineTouch]] = []
            for cpu in range(num_cpus):
                cpu_streams: list[StreamImage] = []
                cpu_lines: dict[int, LineTouch] = {}
                if cpu in active:
                    for access in loop.accesses:
                        stream = access_stream_image(
                            access, layout, schedule, cpu, config, prof, scale
                        )
                        cpu_streams.append(stream)
                        _accumulate_stream_lines(
                            stream, config.l2.line_size, cpu_lines
                        )
                streams.append(cpu_streams)
                lines.append(cpu_lines)
            loops.append(
                LoopImage(
                    phase=phase.name,
                    loop=loop.name,
                    weight=phase.occurrences,
                    streams=streams,
                    lines=lines,
                )
            )
    return ProgramImage(
        program=program,
        layout=layout,
        config=config,
        num_cpus=num_cpus,
        profile=prof,
        occurrence=occurrence,
        loops=loops,
    )


# ---------------------------------------------------------------------------
# Static color plans


def instruction_pages(program: Program, config: MachineConfig) -> list[int]:
    """Virtual pages of the instruction footprint, in fault (ascending) order."""
    footprint = 0
    for phase in program.phases:
        for loop in phase.loops:
            for access in loop.accesses:
                if isinstance(access, InstructionStream):
                    footprint = max(footprint, access.footprint_bytes)
    if footprint == 0:
        return []
    psz = config.page_size
    base = INSTRUCTION_BASE + 173 * psz
    first = base // psz
    last = (base + footprint - 1) // psz
    return list(range(first, last + 1))


def derive_frame_budget(
    program: Program, layout: Layout, config: MachineConfig
) -> int:
    """Mirror of the engine's ``_frame_budget`` (3x footprint, color cycles)."""
    psz = config.page_size
    data_pages = -(-layout.total_bytes // psz)
    instr_bytes = 0
    for phase in program.phases:
        for loop in phase.loops:
            for access in loop.accesses:
                if isinstance(access, InstructionStream):
                    instr_bytes = max(instr_bytes, access.footprint_bytes)
    pages = data_pages + -(-instr_bytes // psz)
    colors = config.num_colors
    return max(colors * 4, -(-pages * 3 // colors) * colors)


@dataclass(frozen=True)
class StaticPlan:
    """A page->color function derived without running the OS model."""

    policy: str
    num_colors: int
    #: Explicit page colors; pages absent here fall back to ``vpage % C``
    #: (the page-coloring / CDPC-fallback rule).
    colors: dict[int, int] = field(default_factory=dict)
    #: Pages whose preferred color's frame pool is overcommitted under the
    #: engine's 3x frame budget; their realized color may spiral to a
    #: neighbour, so predictions widen their bounds.
    overflow_pages: tuple[int, ...] = ()

    def color_of(self, vpage: int) -> int:
        color = self.colors.get(vpage)
        if color is not None:
            return color
        return vpage % self.num_colors

    def to_dict(self) -> dict[str, object]:
        return {
            "policy": self.policy,
            "num_colors": self.num_colors,
            "explicit_pages": len(self.colors),
            "overflow_pages": list(self.overflow_pages),
        }


def _init_pages_order(program: Program, layout: Layout, psz: int) -> list[int]:
    """Mirror of the engine's ``init_pages_order`` (without jitter)."""
    order: list[int] = []
    for group in program.effective_init_groups():
        page_lists = [list(layout.pages(name, psz)) for name in group]
        longest = max(len(pages) for pages in page_lists) if page_lists else 0
        for index in range(longest):
            for pages in page_lists:
                if index < len(pages):
                    order.append(pages[index])
    return order


def _jitter_order(order: list[int], window: int, seed: int) -> list[int]:
    """Mirror of the engine's ``_jitter``: windowed shuffles of the order.

    The engine seeds ``random.Random(options.seed)`` at construction and
    consumes it first (and only) here, so the same seed reproduces the
    same jittered fault order.
    """
    rng = random.Random(seed)
    result = list(order)
    for start in range(0, len(result), window):
        chunk = result[start : start + window]
        rng.shuffle(chunk)
        result[start : start + window] = chunk
    return result


def derive_static_plan(
    program: Program,
    layout: Layout,
    config: MachineConfig,
    *,
    policy: str = "page_coloring",
    cdpc: bool = False,
    coloring: Optional[ColoringResult] = None,
    seed: int = 0,
    init_jitter: int = 4,
) -> StaticPlan:
    """Derive the page->color function a run would realize.

    Supports the three policies of the paper's evaluation:

    * ``page_coloring`` — closed form ``vpage % C``;
    * ``bin_hopping`` — the global fault-order counter replayed over the
      jittered initialization order (data pages) and the ascending warmup
      fault order (instruction pages); requires a deterministic run
      (``race_seed=None``);
    * CDPC (``cdpc=True``) — over ``page_coloring``, the
      :class:`ColoringResult` hint table (madvise delivery) with the
      closed-form fallback for unhinted pages; over ``bin_hopping``,
      *touch* delivery — the runtime pre-faults ``coloring.page_order``
      so the cycling kernel counter realizes the k-th touched page's
      color as ``k mod C``, and the counter keeps cycling from
      ``len(page_order) mod C`` for every later (unhinted) fault.
    """
    num_colors = config.num_colors
    psz = config.page_size
    instr = instruction_pages(program, config)
    colors: dict[int, int] = {}
    counter = 0

    if policy not in ("page_coloring", "bin_hopping"):
        raise ValueError(f"unknown mapping policy {policy!r}")
    if cdpc:
        if coloring is None:
            raise ValueError("cdpc plan derivation requires a ColoringResult")
        label = "cdpc"
        if policy == "bin_hopping":
            touched = list(coloring.page_order)
            colors = {
                vpage: index % num_colors
                for index, vpage in enumerate(touched)
            }
            counter = len(touched)
        else:
            colors = dict(coloring.colors)
    else:
        label = policy
    if policy == "bin_hopping":
        order = _init_pages_order(program, layout, psz)
        if init_jitter > 1:
            order = _jitter_order(order, init_jitter, seed)
        for vpage in order:
            if vpage in colors:
                continue  # hinted or already faulted: the counter stays put
            colors[vpage] = counter % num_colors
            counter += 1
        for vpage in instr:  # faulted in ascending order during warmup
            if vpage not in colors:
                colors[vpage] = counter % num_colors
                counter += 1

    # Frame-pool overcommit check: the engine's budget gives each color
    # budget // C frames; demand above that spirals to neighbour colors.
    budget = derive_frame_budget(program, layout, config)
    supply = budget // num_colors
    demand: dict[int, list[int]] = {}
    data_pages = _init_pages_order(program, layout, psz)
    for vpage in dict.fromkeys(data_pages + instr):
        color = colors.get(vpage, vpage % num_colors)
        demand.setdefault(color, []).append(vpage)
    overflow: list[int] = []
    for color, pages in demand.items():
        if len(pages) > supply:
            overflow.extend(pages[supply:])
    return StaticPlan(
        policy=label,
        num_colors=num_colors,
        colors=colors,
        overflow_pages=tuple(sorted(overflow)),
    )


# ---------------------------------------------------------------------------
# Plan verification


@dataclass(frozen=True)
class ConflictWitness:
    """A proven cache-set overflow under a color plan.

    ``pages`` all contain a touched line with index ``line_index`` and
    all map to ``color``: more than ``associativity`` distinct lines
    compete for one external-cache set of processor ``cpu``.
    """

    cpu: int
    color: int
    line_index: int
    pages: tuple[int, ...]
    arrays: tuple[str, ...]
    excess: int
    phase: Optional[str] = None
    loop: Optional[str] = None

    def to_dict(self) -> dict[str, object]:
        return {
            "cpu": self.cpu,
            "color": self.color,
            "line_index": self.line_index,
            "pages": list(self.pages),
            "arrays": list(self.arrays),
            "excess": self.excess,
            "phase": self.phase,
            "loop": self.loop,
        }


@dataclass
class PlanVerification:
    """Outcome of :func:`verify_plan` for one plan on one machine."""

    conflict_free: bool
    witnesses: list[ConflictWitness] = field(default_factory=list)
    loop_witnesses: list[ConflictWitness] = field(default_factory=list)
    max_occupancy: int = 0
    sets_checked: int = 0

    def to_dict(self) -> dict[str, object]:
        return {
            "conflict_free": self.conflict_free,
            "max_occupancy": self.max_occupancy,
            "sets_checked": self.sets_checked,
            "witnesses": [w.to_dict() for w in self.witnesses],
            "loop_witnesses": [w.to_dict() for w in self.loop_witnesses],
        }


_WITNESS_CAP = 32


def _occupancy_witnesses(
    lines: dict[int, LineTouch],
    plan: StaticPlan,
    config: MachineConfig,
    layout: Layout,
    cpu: int,
    phase: Optional[str] = None,
    loop: Optional[str] = None,
) -> tuple[list[ConflictWitness], int, int]:
    """Per-(color, line-index) page occupancy for one line map.

    Binning by ``(color, k)`` is exact on every geometry, not just the
    classic bit-field: a :class:`~repro.machine.hierarchy.ColorFunction`
    maps each ``(color, line-index)`` pair to a distinct external-cache
    set (``set_of`` is a bijection onto the sets), so two lines collide
    in the cache iff they share a bin.  Sliced XOR-hashed LLCs satisfy
    this because their hash is GF(2)-linear in the frame number.
    """
    psz = config.page_size
    line = config.l2.line_size
    assoc = config.l2.associativity
    bins: dict[tuple[int, int], set[int]] = {}
    for laddr in lines:
        vpage = laddr // psz
        k = (laddr % psz) // line
        color = plan.color_of(vpage)
        bins.setdefault((color, k), set()).add(vpage)
    witnesses: list[ConflictWitness] = []
    max_occ = 0
    for (color, k), pages in bins.items():
        occ = len(pages)
        max_occ = max(max_occ, occ)
        if occ > assoc:
            ordered = tuple(sorted(pages))
            arrays = []
            for vpage in ordered:
                vaddr = vpage * psz
                if vaddr >= INSTRUCTION_BASE:
                    name = "instructions"
                else:
                    name = layout.array_at(vaddr) or "other"
                if name not in arrays:
                    arrays.append(name)
            witnesses.append(
                ConflictWitness(
                    cpu=cpu,
                    color=color,
                    line_index=k,
                    pages=ordered,
                    arrays=tuple(arrays),
                    excess=occ - assoc,
                    phase=phase,
                    loop=loop,
                )
            )
    witnesses.sort(key=lambda w: (-w.excess, w.color, w.line_index, w.cpu))
    return witnesses, max_occ, len(bins)


def verify_plan(
    image: ProgramImage, plan: StaticPlan
) -> PlanVerification:
    """Prove a plan conflict-free for the summarized accesses, or refute it.

    A plan is *conflict-free* when no processor's steady-state cycle maps
    more distinct cache lines to any external-cache set than the cache's
    associativity can hold simultaneously.  Every overflow produces a
    :class:`ConflictWitness`; loop-scoped witnesses (overflow within a
    single loop execution, the immediately thrashing case) are reported
    separately.
    """
    config = image.config
    layout = image.layout
    witnesses: list[ConflictWitness] = []
    loop_witnesses: list[ConflictWitness] = []
    max_occ = 0
    sets_checked = 0
    for cpu in range(image.num_cpus):
        cycle = image.cycle_lines(cpu)
        found, occ, checked = _occupancy_witnesses(
            cycle, plan, config, layout, cpu
        )
        witnesses.extend(found)
        max_occ = max(max_occ, occ)
        sets_checked += checked
        for loop_image in image.loops:
            loop_found, _, _ = _occupancy_witnesses(
                loop_image.lines[cpu],
                plan,
                config,
                layout,
                cpu,
                phase=loop_image.phase,
                loop=loop_image.loop,
            )
            loop_witnesses.extend(loop_found)
    witnesses.sort(key=lambda w: (-w.excess, w.cpu, w.color, w.line_index))
    loop_witnesses.sort(key=lambda w: (-w.excess, w.cpu, w.color, w.line_index))
    return PlanVerification(
        conflict_free=not witnesses,
        witnesses=witnesses[:_WITNESS_CAP],
        loop_witnesses=loop_witnesses[:_WITNESS_CAP],
        max_occupancy=max_occ,
        sets_checked=sets_checked,
    )


@dataclass(frozen=True)
class ConflictHotspot:
    """A data-page occupancy overflow judged against the balanced load.

    ``balanced`` is the occupancy a perfectly spread plan would put in
    this (color, line-index) bin; ``occupancy`` above it is *avoidable*
    skew rather than capacity pressure.
    """

    cpu: int
    color: int
    line_index: int
    occupancy: int
    balanced: int
    pages: tuple[int, ...]
    arrays: tuple[str, ...]
    phase: Optional[str] = None
    loop: Optional[str] = None

    @property
    def skew(self) -> float:
        return self.occupancy / max(1, self.balanced)

    def to_dict(self) -> dict[str, object]:
        return {
            "cpu": self.cpu,
            "color": self.color,
            "line_index": self.line_index,
            "occupancy": self.occupancy,
            "balanced": self.balanced,
            "skew": self.skew,
            "pages": list(self.pages),
            "arrays": list(self.arrays),
            "phase": self.phase,
            "loop": self.loop,
        }


@dataclass
class StaticConflictSummary:
    """Compact occupancy analysis for the S-rule family.

    Excludes instruction pages throughout: the instruction stream is
    pinned by the engine and its bin pressure is not actionable by a
    data-page color plan.
    """

    plan: StaticPlan
    #: Cycle-wide data hotspots, worst skew first.
    hotspots: list[ConflictHotspot] = field(default_factory=list)
    #: Single-loop-execution data hotspots, worst skew first.
    loop_hotspots: list[ConflictHotspot] = field(default_factory=list)
    max_occupancy: int = 0
    data_witnesses: int = 0


def _data_hotspots(
    lines: dict[int, LineTouch],
    plan: StaticPlan,
    config: MachineConfig,
    layout: Layout,
    cpu: int,
    phase: Optional[str] = None,
    loop: Optional[str] = None,
) -> tuple[list[ConflictHotspot], int, int]:
    """Occupancy overflows on data pages, with balanced-load baselines.

    Bins by ``(color, k)`` like :func:`_occupancy_witnesses`; exact on
    all geometries because ``ColorFunction.set_of`` is a bijection from
    those pairs onto the physical external-cache sets.
    """
    psz = config.page_size
    line = config.l2.line_size
    assoc = config.l2.associativity
    num_colors = plan.num_colors
    bins: dict[tuple[int, int], set[int]] = {}
    pages_per_k: dict[int, set[int]] = {}
    for laddr in lines:
        if laddr >= INSTRUCTION_BASE:
            continue
        vpage = laddr // psz
        k = (laddr % psz) // line
        bins.setdefault((plan.color_of(vpage), k), set()).add(vpage)
        pages_per_k.setdefault(k, set()).add(vpage)
    hotspots: list[ConflictHotspot] = []
    max_occ = 0
    overflows = 0
    for (color, k), pages in bins.items():
        occ = len(pages)
        max_occ = max(max_occ, occ)
        if occ <= assoc:
            continue
        overflows += 1
        balanced = max(assoc, -(-len(pages_per_k[k]) // num_colors))
        ordered = tuple(sorted(pages))
        arrays: list[str] = []
        for vpage in ordered:
            name = layout.array_at(vpage * psz) or "other"
            if name not in arrays:
                arrays.append(name)
        hotspots.append(
            ConflictHotspot(
                cpu=cpu,
                color=color,
                line_index=k,
                occupancy=occ,
                balanced=balanced,
                pages=ordered,
                arrays=tuple(arrays),
                phase=phase,
                loop=loop,
            )
        )
    hotspots.sort(key=lambda h: (-h.skew, -h.occupancy, h.color, h.line_index))
    return hotspots, max_occ, overflows


def conflict_summary(
    image: ProgramImage,
    coloring: Optional[ColoringResult] = None,
) -> StaticConflictSummary:
    """Occupancy analysis of the plan a CDPC (or page-coloring) run realizes."""
    plan = derive_static_plan(
        image.program,
        image.layout,
        image.config,
        policy="page_coloring",
        cdpc=coloring is not None,
        coloring=coloring,
    )
    hotspots: list[ConflictHotspot] = []
    loop_hotspots: list[ConflictHotspot] = []
    max_occ = 0
    witnesses = 0
    for cpu in range(image.num_cpus):
        found, occ, over = _data_hotspots(
            image.cycle_lines(cpu), plan, image.config, image.layout, cpu
        )
        hotspots.extend(found)
        max_occ = max(max_occ, occ)
        witnesses += over
        for loop_image in image.loops:
            loop_found, _, _ = _data_hotspots(
                loop_image.lines[cpu],
                plan,
                image.config,
                image.layout,
                cpu,
                phase=loop_image.phase,
                loop=loop_image.loop,
            )
            loop_hotspots.extend(loop_found)
    hotspots.sort(key=lambda h: (-h.skew, -h.occupancy, h.cpu))
    loop_hotspots.sort(key=lambda h: (-h.skew, -h.occupancy, h.cpu))
    return StaticConflictSummary(
        plan=plan,
        hotspots=hotspots[:_WITNESS_CAP],
        loop_hotspots=loop_hotspots[:_WITNESS_CAP],
        max_occupancy=max_occ,
        data_witnesses=witnesses,
    )


# ---------------------------------------------------------------------------
# Witness replay


def replay_witness(
    witness: ConflictWitness,
    config: MachineConfig,
    rounds: int = 8,
) -> dict[str, int]:
    """Reproduce a witness's conflict on the real memory system.

    Builds a :class:`~repro.machine.memory_system.MemorySystem`, maps the
    witness pages to frames of the witness color (plus L1 eviction-set
    filler pages on *other* colors, so the virtually-indexed on-chip
    cache cannot absorb the repeats), and cycles the conflicting lines.
    Returns the resulting per-kind L2 miss counts for processor 0; a real
    conflict shows up as a positive ``conflict`` count.

    The replay isolates the external-cache claim the witness makes: on
    three-level geometries the private mid-level cache is dropped for
    the replay, because it only *filters* traffic on its way to the
    overflowing LLC set — exactly like the L1, whose filtering the
    filler pages defeat — and a handful of witness lines would otherwise
    live in the mid forever, masking the conflict being demonstrated.
    """
    from dataclasses import replace as _replace

    from repro.machine.memory_system import MemorySystem

    cfg = _replace(config, num_cpus=1)
    if cfg.hierarchy is not None and cfg.hierarchy.mid is not None:
        cfg = _replace(cfg, hierarchy=_replace(cfg.hierarchy, mid=None))
    ms = MemorySystem(cfg)
    psz = cfg.page_size
    line = cfg.l2.line_size
    lpp = psz // line
    num_colors = cfg.num_colors
    k = witness.line_index
    assoc = cfg.l2.associativity
    pages = list(witness.pages[: assoc + 2])
    if len(pages) <= assoc:
        raise ValueError("witness does not overflow the cache set")

    # Page-distance that preserves the L1 set of line k: (dq * lpp) must be
    # a multiple of the number of L1 sets.
    l1_sets = cfg.l1d.num_sets
    page_step = l1_sets // math.gcd(lpp, l1_sets)
    if page_step == 0:
        page_step = 1

    # Map every page to a frame of the required color: witness pages on
    # the witness color, fillers on distinct other colors.  Frames come
    # from the geometry's color function, so on sliced/hashed LLCs the
    # replay lands in exactly the set the analysis binned — a witness
    # derived under an XOR slice hash replays under that same hash.
    color_function = cfg.color_function
    frames: dict[int, int] = {}
    color_iters: dict[int, Iterator[int]] = {}

    def map_page(vpage: int, color: int) -> int:
        frame = frames.get(vpage)
        if frame is None:
            it = color_iters.get(color)
            if it is None:
                it = color_function.frames_of_color(color)
                color_iters[color] = it
            frame = next(it)
            frames[vpage] = frame
        return frame

    l1_assoc = cfg.l1d.associativity
    sequence: list[tuple[int, int]] = []  # (vaddr, paddr)
    used_pages = set(pages)
    filler_color = witness.color
    for vpage in pages:
        frame = map_page(vpage, witness.color)
        sequence.append((vpage * psz + k * line, frame * psz + k * line))
        # After touching the witness line, touch enough same-L1-set lines
        # (on other page colors) to evict it from the on-chip cache, so
        # the next round reaches the external cache again.  Fillers must
        # stay congruent to *this* page modulo the step so they land in
        # the same on-chip set as the witness line.
        added = 0
        m = 1
        while added < l1_assoc:
            filler = vpage + m * page_step
            m += 1
            if filler in used_pages:
                continue
            used_pages.add(filler)
            filler_color = (filler_color + 1) % num_colors
            if filler_color == witness.color:
                filler_color = (filler_color + 1) % num_colors
            f_frame = map_page(filler, filler_color)
            sequence.append(
                (filler * psz + k * line, f_frame * psz + k * line)
            )
            added += 1

    t = 0.0
    for _ in range(max(2, rounds)):
        for vaddr, paddr in sequence:
            result = ms.access(0, t, vaddr, paddr, is_write=False)
            t += cfg.cycle_ns + result.stall_ns + result.kernel_ns
    stats = ms.stats.cpus[0]
    return {kind.value: stats.l2_misses[kind] for kind in MissKind}


# ---------------------------------------------------------------------------
# Miss prediction


@dataclass(frozen=True)
class MissEstimate:
    """A predicted miss count with an explicit containment interval."""

    predicted: float
    lo: float
    hi: float

    @property
    def bound(self) -> float:
        """Self-reported error bound: the larger half-width of the interval."""
        return max(self.predicted - self.lo, self.hi - self.predicted)

    def contains(self, value: float) -> bool:
        return self.lo <= value <= self.hi

    def to_dict(self) -> dict[str, object]:
        return {
            "predicted": self.predicted,
            "lo": self.lo,
            "hi": self.hi,
            "bound": self.bound,
        }


class _KindAcc:
    """Accumulates (lo, estimate, hi) mass for one miss kind."""

    __slots__ = ("lo", "est", "hi")

    def __init__(self) -> None:
        self.lo = 0.0
        self.est = 0.0
        self.hi = 0.0

    def estimate(self) -> MissEstimate:
        lo = min(self.lo, self.est)
        hi = max(self.hi, self.est)
        return MissEstimate(predicted=self.est, lo=lo, hi=hi)


@dataclass
class _SetEvent:
    """One loop execution's touches of one external-cache set."""

    loop_index: int
    lines: list[tuple[int, int, bool]]  # (line addr, visits, shared)


#: Conflict/capacity classification bands relative to the shadow capacity.
_CONFLICT_BAND = 0.8
_CAPACITY_BAND = 1.8

#: Relative slack on the replacement-miss ceiling: trace interleaving can
#: split one symbolic line visit into several on-chip evictions, so the
#: simulator can retire slightly more external references than the
#: per-stream visit count.  Calibrated against the 10x3 workload matrix
#: (largest observed excess ~0.4%).
_INTERLEAVE_SLACK = 0.05


@dataclass
class StaticMissProfile:
    """Static prediction of a run's external-cache miss profile."""

    workload: str
    policy: str
    num_cpus: int
    scale_factor: int
    estimates: dict[str, MissEstimate]
    verification: PlanVerification
    plan: StaticPlan
    analyze_ns: float = 0.0
    #: Per-(phase, loop) predicted replacement misses (estimate) and
    #: total references, for figures and the S-rule family.
    per_loop: dict[tuple[str, str], dict[str, float]] = field(
        default_factory=dict
    )

    def estimate(self, kind: str) -> MissEstimate:
        return self.estimates[kind]

    def predicted_total(self) -> float:
        return self.estimates["total"].predicted

    def check(self, result: object) -> list[str]:
        """Compare a simulated :class:`RunResult` against the intervals.

        Returns a list of human-readable violations (empty when every
        measured component falls inside its predicted interval).
        """
        measured = self.measured_from(result)
        violations: list[str] = []
        for key, value in measured.items():
            estimate = self.estimates[key]
            if not estimate.contains(value):
                violations.append(
                    f"{key}: measured {value} outside predicted "
                    f"[{estimate.lo:.1f}, {estimate.hi:.1f}] "
                    f"(predicted {estimate.predicted:.1f})"
                )
        return violations

    @staticmethod
    def measured_from(result: object) -> dict[str, float]:
        """Extract the comparable measured components from a RunResult."""
        stats = getattr(result, "stats")
        return {
            "cold": float(stats.total_misses(MissKind.COLD)),
            "conflict": float(stats.total_misses(MissKind.CONFLICT)),
            "capacity": float(stats.total_misses(MissKind.CAPACITY)),
            "sharing": float(
                stats.total_misses(MissKind.TRUE_SHARING)
                + stats.total_misses(MissKind.FALSE_SHARING)
            ),
            "total": float(stats.total_l2_misses()),
        }

    def to_dict(self) -> dict[str, object]:
        return {
            "workload": self.workload,
            "policy": self.policy,
            "num_cpus": self.num_cpus,
            "scale_factor": self.scale_factor,
            "estimates": {k: v.to_dict() for k, v in self.estimates.items()},
            "verification": self.verification.to_dict(),
            "plan": self.plan.to_dict(),
            "analyze_ns": self.analyze_ns,
            "per_loop": {
                f"{phase}/{loop}": dict(values)
                for (phase, loop), values in sorted(self.per_loop.items())
            },
        }


class StaticCheckError(RuntimeError):
    """Raised by the ``static_check`` gate when a measurement escapes its bound."""

    def __init__(
        self, profile: StaticMissProfile, violations: list[str]
    ) -> None:
        super().__init__(
            "static miss prediction violated by simulation:\n  "
            + "\n  ".join(violations)
        )
        self.profile = profile
        self.violations = violations


def _set_id(laddr: int, psz: int, line: int, lpp: int, plan: StaticPlan) -> int:
    """Symbolic cache-set id: ``color * lines_per_page + line_index``.

    This is a relabeling of the machine's physical set index, valid on
    every geometry: ``ColorFunction.set_of`` maps ``(color, k)`` pairs
    bijectively onto the global external-cache sets, so equality of
    ``_set_id`` is equality of the physical set, which is all the
    symbolic simulation depends on.
    """
    vpage = laddr // psz
    k = (laddr % psz) // line
    return plan.color_of(vpage) * lpp + k


def _shared_written_lines(image: ProgramImage) -> dict[int, int]:
    """Line address -> bitmask of CPUs that write it anywhere in the cycle."""
    writers: dict[int, int] = {}
    for loop_image in image.loops:
        for cpu in range(image.num_cpus):
            for laddr, touch in loop_image.lines[cpu].items():
                if touch.written:
                    writers[laddr] = writers.get(laddr, 0) | (1 << cpu)
    return writers


def _simulate_cpu_sets(
    image: ProgramImage,
    plan: StaticPlan,
    cpu: int,
    writers: dict[int, int],
    gated: bool,
    acc_conflict: _KindAcc,
    acc_capacity: _KindAcc,
    acc_sharing: _KindAcc,
    per_loop: Optional[dict[tuple[str, str], dict[str, float]]],
) -> None:
    """Per-set symbolic cache simulation for one processor.

    Two passes over the steady-state cycle: the first settles state (the
    engine's warmup), the second accumulates weighted miss mass.  With
    ``gated=True`` lines whose L1 set is quiet (cycle occupancy within the
    on-chip associativity) never reach the external cache — the estimate
    path.  With ``gated=False`` every visit counts — the upper bound path.

    External-cache sets are identified by :func:`_set_id`'s symbolic
    ``(color, k)`` labels, which relabel the physical sets bijectively on
    every geometry (including sliced XOR-hashed LLCs), so no hash-specific
    logic is needed here.
    """
    config = image.config
    psz = config.page_size
    line = config.l2.line_size
    lpp = psz // line
    assoc = config.l2.associativity
    shadow_cap = config.l2.num_lines

    # On-chip pressure per L1 set (data and instruction caches separately).
    l1d_sets = config.l1d.num_sets
    l1i_sets = config.l1i.num_sets
    l1d_pressure: dict[int, set[int]] = {}
    l1i_pressure: dict[int, set[int]] = {}
    loop_distinct: list[int] = []
    for loop_image in image.loops:
        lines_map = loop_image.lines[cpu]
        loop_distinct.append(len(lines_map))
        for laddr, touch in lines_map.items():
            if touch.instr:
                l1i_pressure.setdefault((laddr // line) % l1i_sets, set()).add(
                    laddr
                )
            else:
                l1d_pressure.setdefault((laddr // line) % l1d_sets, set()).add(
                    laddr
                )

    def is_active(laddr: int, instr: bool) -> bool:
        if not gated:
            return True
        if instr:
            occupancy = l1i_pressure.get((laddr // line) % l1i_sets)
            limit = config.l1i.associativity
        else:
            occupancy = l1d_pressure.get((laddr // line) % l1d_sets)
            limit = config.l1d.associativity
        return occupancy is not None and len(occupancy) > limit

    # Prefix sums of per-loop distinct line counts over two cycles, for
    # the reuse-distance proxy behind the conflict/capacity split.
    n_loops = len(image.loops)
    prefix = [0] * (2 * n_loops + 1)
    for j in range(2 * n_loops):
        prefix[j + 1] = prefix[j] + loop_distinct[j % n_loops]

    # Group each set's touches per loop execution.
    sets: dict[int, list[_SetEvent]] = {}
    for j, loop_image in enumerate(image.loops):
        events_for_loop: dict[int, _SetEvent] = {}
        for laddr, touch in loop_image.lines[cpu].items():
            sid = _set_id(laddr, psz, line, lpp, plan)
            event = events_for_loop.get(sid)
            if event is None:
                event = _SetEvent(loop_index=j, lines=[])
                events_for_loop[sid] = event
                sets.setdefault(sid, []).append(event)
            other_writers = writers.get(laddr, 0) & ~(1 << cpu)
            event.lines.append((laddr, touch.visits, other_writers != 0))

    weights = [loop_image.weight for loop_image in image.loops]
    names = [(loop_image.phase, loop_image.loop) for loop_image in image.loops]

    for events in sets.values():
        resident: list[int] = []  # LRU order, most recent last
        last_touch: dict[int, int] = {}  # line -> global loop position
        instr_lines = {
            laddr
            for event in events
            for (laddr, _v, _s) in event.lines
        }
        cycle_occupancy = len(instr_lines)
        instr_set = bool(instr_lines) and all(
            laddr >= INSTRUCTION_BASE for laddr in instr_lines
        )
        # A set whose cycle-wide line population exceeds the associativity
        # cannot sustain LRU hits against the real reference interleave:
        # merged streams split symbolic visits into several on-chip
        # excursions with same-set touches in between, so repeat visits
        # the symbolic LRU scores as hits miss in practice (confirmed
        # against per-set instrumentation of the simulator).
        contended = cycle_occupancy > assoc
        for measure in (False, True):
            base_pos = n_loops if measure else 0
            for event in events:
                j = event.loop_index
                pos = base_pos + j
                weight = float(weights[j])
                active_lines = [
                    (laddr, visits, shared)
                    for (laddr, visits, shared) in event.lines
                    if visits > 0 and is_active(laddr, instr_set)
                ]
                if not active_lines:
                    continue
                max_visits = max(v for (_a, v, _s) in active_lines)
                loop_ws = loop_distinct[j]
                for round_index in range(max_visits):
                    for laddr, visits, shared in active_lines:
                        if visits <= round_index:
                            continue
                        hit = laddr in resident
                        if hit:
                            resident.remove(laddr)
                            resident.append(laddr)
                        else:
                            resident.append(laddr)
                            if len(resident) > assoc:
                                resident.pop(0)
                        # A symbolic LRU hit survives in the real cache only
                        # when the line was re-touched within roughly one
                        # cache capacity of other references: beyond that,
                        # interleave-split visits and extra same-set traffic
                        # evict it even though the per-set LRU retains it.
                        converted = False
                        if hit and contended:
                            if round_index > 0:
                                converted = True
                            else:
                                last = last_touch.get(laddr)
                                if last is None or last >= pos:
                                    converted = True
                                else:
                                    between = prefix[pos] - prefix[
                                        min(last + 1, pos)
                                    ]
                                    converted = (
                                        between + loop_ws >= shadow_cap
                                    )
                        if measure:
                            if shared:
                                # Invalidations strike regardless of
                                # residency: every visit can miss.
                                acc_sharing.hi += weight
                                if not hit or contended:
                                    acc_sharing.est += weight
                            elif not hit or converted:
                                last = last_touch.get(laddr)
                                _classify_and_add(
                                    weight,
                                    round_index,
                                    last,
                                    pos,
                                    prefix,
                                    loop_ws,
                                    shadow_cap,
                                    acc_conflict,
                                    acc_capacity,
                                    per_loop,
                                    names[j],
                                )
                        last_touch[laddr] = pos


def _classify_and_add(
    weight: float,
    round_index: int,
    last: Optional[int],
    pos: int,
    prefix: list[int],
    loop_ws: int,
    shadow_cap: int,
    acc_conflict: _KindAcc,
    acc_capacity: _KindAcc,
    per_loop: Optional[dict[tuple[str, str], dict[str, float]]],
    name: tuple[str, str],
) -> None:
    """Attribute one predicted miss to a kind with interval widening."""
    if round_index > 0:
        distance = float(loop_ws)  # sweep repeat within the loop
    elif last is None or last >= pos:
        distance = float(loop_ws)
    else:
        between = prefix[pos] - prefix[min(last + 1, pos)]
        distance = float(between + loop_ws)
    if distance <= _CONFLICT_BAND * shadow_cap:
        acc_conflict.est += weight
        acc_conflict.lo += 0.0
        acc_conflict.hi += weight
    elif distance >= _CAPACITY_BAND * shadow_cap:
        acc_capacity.est += weight
        acc_capacity.hi += weight
    else:
        # Ambiguous shadow verdict: split the estimate, widen both sides.
        acc_conflict.est += 0.5 * weight
        acc_conflict.hi += weight
        acc_capacity.est += 0.5 * weight
        acc_capacity.hi += weight
    if per_loop is not None:
        entry = per_loop.setdefault(
            name, {"replacement_predicted": 0.0, "refs": 0.0}
        )
        entry["replacement_predicted"] += weight


def _cold_estimate(
    program: Program,
    layout: Layout,
    config: MachineConfig,
    num_cpus: int,
    profile: SimProfile,
    epochs: int,
) -> MissEstimate:
    """Cold misses in the measured window.

    Initialization writes every data page and the warmup pass touches
    every steady-state line, so with occurrence-invariant footprints the
    measured passes see zero cold misses — exactly.  Phases with
    ``miss_variation`` can grow their footprint between occurrences; the
    upper bound counts the lines between the smallest and largest
    realizable footprint.
    """
    hi = 0.0
    line = config.l2.line_size
    for phase in program.phases:
        if phase.miss_variation <= 0.0:
            continue
        scales = [
            occurrence_scale(phase.miss_variation, occ, phase.name)
            for occ in range(0, epochs + 1)
        ]
        low_scale = min(scales)
        high_scale = max(scales)
        grown = 0
        for loop in phase.loops:
            schedule = schedule_loop(loop, num_cpus)
            small = loop_line_touches(
                loop, schedule, layout, config, profile, low_scale
            )
            large = loop_line_touches(
                loop, schedule, layout, config, profile, high_scale
            )
            for cpu in range(num_cpus):
                grown += max(0, len(large[cpu]) - len(small[cpu]))
        hi += float(phase.occurrences) * grown
        _ = line
    return MissEstimate(predicted=hi / 2.0, lo=0.0, hi=hi)


def predict_program(
    program: Program,
    config: MachineConfig,
    *,
    num_cpus: Optional[int] = None,
    policy: str = "page_coloring",
    cdpc: bool = False,
    profile: Optional[SimProfile] = None,
    seed: int = 0,
    init_jitter: int = 4,
    epochs: int = 1,
    layout: Optional[Layout] = None,
    coloring: Optional[ColoringResult] = None,
) -> StaticMissProfile:
    """Predict a run's external-cache miss profile without simulating it.

    Mirrors the engine's construction pipeline (layout, summary, CDPC
    coloring) when the artifacts are not supplied, derives the realized
    color plan for the requested policy, verifies it, and runs the
    symbolic per-set cache simulation.
    """
    started = time.perf_counter()
    cpus = num_cpus if num_cpus is not None else config.num_cpus
    prof = profile if profile is not None else SimProfile()
    if layout is None:
        from repro.checker.lint import _group_pairs
        from repro.compiler.padding import layout_arrays

        layout = layout_arrays(
            program.arrays,
            config.l2.line_size,
            config.l1d.size,
            aligned=True,
            groups=_group_pairs(program),
        )
    if cdpc and coloring is None:
        from repro.compiler.summaries import extract_summary
        from repro.core.coloring import generate_page_colors

        summary = extract_summary(program, layout)
        coloring = generate_page_colors(
            summary, config.page_size, config.num_colors, cpus
        )
    plan = derive_static_plan(
        program,
        layout,
        config,
        policy=policy,
        cdpc=cdpc,
        coloring=coloring,
        seed=seed,
        init_jitter=init_jitter,
    )
    image = program_image(program, layout, config, cpus, prof, occurrence=1)
    verification = verify_plan(image, plan)

    writers = _shared_written_lines(image)
    acc_conflict = _KindAcc()
    acc_capacity = _KindAcc()
    acc_sharing = _KindAcc()
    hi_conflict = _KindAcc()
    hi_capacity = _KindAcc()
    hi_sharing = _KindAcc()
    per_loop: dict[tuple[str, str], dict[str, float]] = {}
    for loop_image in image.loops:
        for cpu in range(cpus):
            entry = per_loop.setdefault(
                (loop_image.phase, loop_image.loop),
                {"replacement_predicted": 0.0, "refs": 0.0},
            )
            entry["refs"] += float(
                loop_image.weight * loop_image.total_refs(cpu)
            )
    for cpu in range(cpus):
        _simulate_cpu_sets(
            image, plan, cpu, writers, True,
            acc_conflict, acc_capacity, acc_sharing, per_loop,
        )
        _simulate_cpu_sets(
            image, plan, cpu, writers, False,
            hi_conflict, hi_capacity, hi_sharing, None,
        )

    # Interval assembly: the gated simulation is the estimate, the ungated
    # one the ceiling.  Stream interleaving can split one symbolic line
    # visit into several on-chip evictions (and thus several external
    # references), so the replacement ceiling carries a relative slack;
    # sharing reclassification and per-phase integer truncation widen the
    # intervals additively.
    truncation = float(
        len(program.phases) * max(1, epochs) * cpus * 2
    )
    sharing_hi = max(acc_sharing.hi, hi_sharing.hi)
    repl_hi = (hi_conflict.hi + hi_capacity.hi) * (1.0 + _INTERLEAVE_SLACK)
    conflict = MissEstimate(
        predicted=acc_conflict.est,
        lo=0.0,
        hi=max(repl_hi, acc_conflict.est) + sharing_hi + truncation,
    )
    capacity = MissEstimate(
        predicted=acc_capacity.est,
        lo=0.0,
        hi=max(repl_hi, acc_capacity.est) + sharing_hi + truncation,
    )
    sharing = MissEstimate(
        predicted=acc_sharing.est,
        lo=0.0,
        hi=sharing_hi + truncation,
    )
    cold = _cold_estimate(program, layout, config, cpus, prof, max(1, epochs))
    total_hi = (
        repl_hi
        + sharing_hi
        + cold.hi
        + truncation
    )
    total_est = (
        acc_conflict.est + acc_capacity.est + acc_sharing.est + cold.predicted
    )
    total = MissEstimate(
        predicted=total_est, lo=0.0, hi=max(total_hi, total_est)
    )
    label = "cdpc" if cdpc else policy
    profile_out = StaticMissProfile(
        workload=program.name,
        policy=label,
        num_cpus=cpus,
        scale_factor=config.scale_factor,
        estimates={
            "cold": cold,
            "conflict": conflict,
            "capacity": capacity,
            "sharing": sharing,
            "total": total,
        },
        verification=verification,
        plan=plan,
        per_loop=per_loop,
    )
    profile_out.analyze_ns = (time.perf_counter() - started) * 1e9
    return profile_out


def predict_workload(
    name: str,
    config: MachineConfig,
    **kwargs: object,
) -> StaticMissProfile:
    """Build a bundled SPEC95fp workload at the machine's scale and predict it."""
    from repro.workloads.specfp import get_workload

    workload = get_workload(name, scale=config.scale_factor)
    return predict_program(workload.program, config, **kwargs)  # type: ignore[arg-type]


def _iter_kinds() -> Iterator[str]:
    yield from ("cold", "conflict", "capacity", "sharing", "total")


def estimate_keys() -> Iterable[str]:
    """The component keys every :class:`StaticMissProfile` reports."""
    return list(_iter_kinds())
