"""Primitive geometry descriptions shared by config and hierarchy.

:class:`CacheConfig` is the flat single-cache view consumed by the
behavioural cache models; :mod:`repro.machine.hierarchy` composes these
into multi-level geometries and :mod:`repro.machine.config` re-exports
everything, so existing ``from repro.machine.config import CacheConfig``
imports keep working.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


def is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one cache level.

    Sizes are in bytes.  ``associativity`` of 1 means direct-mapped.
    """

    size: int
    line_size: int
    associativity: int = 1

    def __post_init__(self) -> None:
        if not is_power_of_two(self.size):
            raise ValueError(f"cache size must be a power of two, got {self.size}")
        if not is_power_of_two(self.line_size):
            raise ValueError(f"line size must be a power of two, got {self.line_size}")
        if self.associativity < 1:
            raise ValueError("associativity must be >= 1")
        if self.size % (self.line_size * self.associativity) != 0:
            raise ValueError("cache size must be divisible by line_size * associativity")

    @property
    def num_lines(self) -> int:
        return self.size // self.line_size

    @property
    def num_sets(self) -> int:
        return self.num_lines // self.associativity

    def line_address(self, addr: int) -> int:
        """The address of the first byte of the line containing ``addr``."""
        return addr & ~(self.line_size - 1)

    def set_index(self, addr: int) -> int:
        """Which set ``addr`` maps to."""
        return (addr // self.line_size) % self.num_sets

    def word_offset(self, addr: int, word_size: int = 8) -> int:
        """Index of the word within its line (used for false-sharing tests)."""
        return (addr & (self.line_size - 1)) // word_size

    def scaled(self, factor: int) -> "CacheConfig":
        """Divide the cache size by ``factor``.

        Line size and associativity are preserved: shrinking lines below a
        word would destroy spatial locality, while shrinking capacity and
        page size together preserves the number of page colors.
        """
        if self.size % factor:
            raise ValueError(f"cannot scale {self} by {factor}")
        new_size = self.size // factor
        if new_size < self.line_size * self.associativity:
            raise ValueError(f"scaling by {factor} leaves less than one set")
        return replace(self, size=new_size)


@dataclass(frozen=True)
class TlbConfig:
    """TLB geometry.  Misses are serviced by the OS (kernel overhead)."""

    entries: int = 64
    miss_latency_ns: float = 200.0
