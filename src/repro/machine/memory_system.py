"""The multiprocessor memory system: caches, coherence, bus and timing.

This module ties the cache, bus, TLB and prefetch models into the
trace-driven simulator used by :mod:`repro.sim.engine`.  Its design follows
the paper's SimOS configuration:

* Each processor has split 2-way on-chip caches indexed by *virtual*
  address and a large external cache indexed by *physical* address.  Page
  mapping policy therefore affects only the external cache (Section 5.4).
* An invalidate protocol keeps the external caches coherent over a
  split-transaction bus with finite bandwidth.  Dirty remote hits cost the
  cache-to-cache latency (750ns base) instead of the memory latency (500ns).
* External-cache misses are classified into cold, capacity, conflict, true
  sharing and false sharing.  Conflict-vs-capacity uses a per-processor
  fully-associative LRU shadow cache of the same capacity; sharing misses
  use the word-granularity definition of Dubois et al. [8]: a miss caused
  by an invalidation is *true* sharing if the processor reads a word
  actually written by another processor since its last access, and *false*
  sharing otherwise.

Simplifications relative to SimOS (documented in DESIGN.md): on-chip
caches are not back-invalidated on external-cache evictions, and L1
writebacks are not charged to the bus.  Neither affects the external-cache
conflict behaviour that CDPC targets.

Geometry is taken from ``config.hierarchy`` (:mod:`repro.machine.
hierarchy`), which generalizes the paper's machine three ways:

* **Sliced LLC.**  When the geometry's color function is not the classic
  bit-field, every LLC probe routes through its ``line_index`` hash (the
  ``index_fn`` of :class:`~repro.machine.cache.SetAssociativeCache`), so
  the slice hash decides set placement while the rest of the pipeline is
  unchanged.
* **Shared LLC.**  A ``shared`` LLC level is one cache (and one shadow)
  aliased into every CPU's slot.  Write coherence then invalidates only
  the other CPUs' on-chip (and mid-level) copies — the LLC line itself
  stays resident — and an LLC hit registers the reading CPU as a sharer
  and consumes any pending invalidation mask (the reader communicates
  through the shared cache instead of taking a coherence miss).
* **Mid-level cache.**  An optional private mid level is probed between
  the L1s and the LLC; hits cost the level's ``hit_ns`` and are counted
  as external-hierarchy hits.  Mid misses fill the mid on the way to the
  LLC; mid evictions are silent (clean — dirty tracking stays at the
  coherence layer).  Miss classification (shadow, ``_seen``) therefore
  sees only post-mid traffic.
"""

from __future__ import annotations

from collections import defaultdict
from typing import NamedTuple, Optional

from repro.machine.bus import BusTransactionKind, SplitTransactionBus
from repro.machine.cache import FullyAssociativeLRU, SetAssociativeCache
from repro.machine.config import MachineConfig
from repro.machine.prefetch import PrefetchUnit
from repro.machine.stats import CpuStats, MachineStats, MissKind
from repro.machine.tlb import Tlb


class AccessResult(NamedTuple):
    """Outcome of one memory reference."""

    stall_ns: float
    kernel_ns: float
    l1_hit: bool
    l2_hit: bool
    miss_kind: Optional[MissKind]


class MemorySystem:
    """A coherent multiprocessor memory hierarchy driven by address traces.

    ``prefetch_fills_tlb`` implements the paper's footnote 1 (Section 6.2):
    a hypothetical prefetch that, instead of being dropped on a TLB miss,
    fills the TLB entry and proceeds — "may be desirable for large
    matrix-based codes where TLB faults are common".
    """

    def __init__(self, config: MachineConfig, prefetch_fills_tlb: bool = False) -> None:
        self.config = config
        self.prefetch_fills_tlb = prefetch_fills_tlb
        n = config.num_cpus
        self.stats = MachineStats.for_cpus(n)
        self.bus = SplitTransactionBus(config.bus_bandwidth_gb_s)
        self._l1d = [SetAssociativeCache(config.l1d) for _ in range(n)]
        self._l1i = [SetAssociativeCache(config.l1i) for _ in range(n)]
        hierarchy = config.hierarchy
        assert hierarchy is not None
        color_fn = config.color_function
        #: Geometry-supplied LLC set indexing; ``None`` keeps the classic
        #: inline modulo (and the fast path's inline replica of it).
        self._llc_index = None if color_fn.classic else color_fn.line_index
        #: Whether the LLC is one cache shared by every CPU.
        self.llc_shared = hierarchy.llc.shared
        if self.llc_shared:
            shared_llc = SetAssociativeCache(config.l2, self._llc_index)
            shared_shadow = FullyAssociativeLRU(config.l2.num_lines)
            self._l2 = [shared_llc] * n
            self._shadow: list[FullyAssociativeLRU] = [shared_shadow] * n
        else:
            self._l2 = [
                SetAssociativeCache(config.l2, self._llc_index) for _ in range(n)
            ]
            self._shadow = [FullyAssociativeLRU(config.l2.num_lines) for _ in range(n)]
        mid_level = hierarchy.mid
        if mid_level is None:
            self._mid: Optional[list[SetAssociativeCache]] = None
            self._mid_hit_ns = 0.0
        else:
            self._mid = [SetAssociativeCache(mid_level.cache_config) for _ in range(n)]
            self._mid_hit_ns = (
                mid_level.hit_ns if mid_level.hit_ns is not None else 25.0
            )
        # Mid-level hit total (observability; per-CPU stats fold these
        # into l2_hits, so this aggregate never feeds results).
        self.mid_hits = 0
        self._tlb = [Tlb(config.tlb) for _ in range(n)]
        self._prefetch = [PrefetchUnit(config.max_outstanding_prefetches) for _ in range(n)]
        # Coherence directory: physical line -> (set of caching CPUs, dirty CPU).
        self._sharers: dict[int, set[int]] = {}
        self._dirty: dict[int, Optional[int]] = {}
        # Dubois bookkeeping: physical line -> {cpu -> mask of words written by
        # *other* CPUs since that cpu last accessed the line}.
        self._pending: dict[int, dict[int, int]] = {}
        # Lines each CPU has ever referenced, for cold-miss classification.
        self._seen: list[set[int]] = [set() for _ in range(n)]
        # Prefetched lines still in flight: (cpu, line) -> arrival time.
        self._inflight: dict[tuple[int, int], float] = {}
        # Conflict misses per physical frame since the last inspection —
        # the counters a dynamic recoloring policy consumes (Section 2.1).
        self._frame_conflicts: defaultdict[int, int] = defaultdict(int)
        # All external-cache misses per physical frame, never reset — used
        # for per-array miss attribution in run results.
        self.frame_misses: defaultdict[int, int] = defaultdict(int)
        # Demand-miss total maintained at the access layer, independently
        # of the per-frame counters above; the invariant checker verifies
        # the two accounting paths agree (sum(frame_misses) == this).
        self.demand_l2_misses = 0
        # References retired through the vectorized fast path (flushed per
        # chunk by the loop runner).  Pure observability: the per-CPU stats
        # already include these, so the counters never feed results.
        self.fast_retired_data = 0
        self.fast_retired_instr = 0
        # Whole 16-reference column blocks retired in bulk by the
        # columnar kernel (repro.machine.columnar); the per-reference
        # counts above include the references inside these blocks.
        self.fast_retired_blocks = 0
        self._line = config.l2.line_size
        self._line_mask = ~(self._line - 1)
        self._word = config.word_size
        # Hot-path constants (page_size is a validated power of two).
        self._page_shift = config.page_size.bit_length() - 1
        self._tlb_miss_ns = config.tlb.miss_latency_ns

    # ------------------------------------------------------------------
    # Demand accesses

    def access(
        self,
        cpu: int,
        time_ns: float,
        vaddr: int,
        paddr: int,
        is_write: bool,
        is_instr: bool = False,
    ) -> AccessResult:
        """Perform one reference; updates statistics and returns its timing."""
        stats = self.stats.cpus[cpu]
        kernel_ns = 0.0
        if not self._tlb[cpu].access(vaddr >> self._page_shift):
            stats.tlb_misses += 1
            kernel_ns = self._tlb_miss_ns

        vline = vaddr & self._line_mask
        l1 = self._l1i[cpu] if is_instr else self._l1d[cpu]
        l1_hit, _evicted = l1.access_line(vline)
        if l1_hit:
            if is_instr:
                stats.l1i_hits += 1
            else:
                stats.l1d_hits += 1
            if is_write:
                stall = self._write_coherence(cpu, time_ns, paddr, stats)
                return AccessResult(stall, kernel_ns, True, True, None)
            return AccessResult(0.0, kernel_ns, True, True, None)

        if is_instr:
            stats.l1i_misses += 1
        else:
            stats.l1d_misses += 1

        stall, l2_hit, kind = self._l2_access(cpu, time_ns, vaddr, paddr, is_write, stats)
        if kind is not None:
            self.demand_l2_misses += 1
        return AccessResult(stall, kernel_ns, False, l2_hit, kind)

    def _l2_access(
        self,
        cpu: int,
        time_ns: float,
        vaddr: int,
        paddr: int,
        is_write: bool,
        stats: CpuStats,
    ) -> tuple[float, bool, Optional[MissKind]]:
        pline = paddr & self._line_mask
        mid = self._mid
        if mid is not None:
            mid_cache = mid[cpu]
            if mid_cache.lookup(pline):
                self.mid_hits += 1
                stats.l2_hits += 1
                stall = self._mid_hit_ns
                stats.l1_stall_ns += stall
                if is_write:
                    stall += self._write_coherence(cpu, time_ns + stall, paddr, stats)
                return stall, True, None
            # Fill the mid level on the way to the LLC; evictions are
            # silent (clean — dirty tracking lives at the coherence layer).
            mid_cache.insert(pline)
        l2 = self._l2[cpu]
        shadow_hit = self._shadow[cpu].access(pline)
        if l2.lookup(pline):
            if self.llc_shared:
                # The reader may be hitting a line another CPU brought
                # in: register it as a sharer (so later writers
                # invalidate its on-chip copies) and consume any pending
                # invalidation mask — it communicated through the shared
                # cache instead of taking a coherence miss.
                self._sharers.setdefault(pline, set()).add(cpu)
                pending = self._pending.get(pline)
                if pending is not None and cpu in pending:
                    del pending[cpu]
                    if not pending:
                        del self._pending[pline]
            inflight = self._inflight.pop((cpu, pline), None)
            extra = 0.0
            if inflight is not None:
                # The line was prefetched; a demand access before arrival
                # waits for the remainder of the prefetch latency.
                stats.prefetches_useful += 1
                extra = max(0.0, inflight - time_ns)
            stats.l2_hits += 1
            stall = self.config.l2_hit_ns + extra
            stats.l1_stall_ns += stall
            if is_write:
                stall += self._write_coherence(cpu, time_ns + stall, paddr, stats)
            return stall, True, None

        kind = self._classify_miss(cpu, pline, paddr, shadow_hit)
        stats.l2_misses[kind] += 1
        frame = paddr >> self._page_shift
        self.frame_misses[frame] += 1
        if kind is MissKind.CONFLICT:
            self._frame_conflicts[frame] += 1
        self._seen[cpu].add(pline)

        latency = self._fetch_line(cpu, time_ns, pline, stats)
        stats.l2_stall_ns[kind] += latency

        evicted = l2.insert(pline)
        if evicted is not None:
            self._handle_eviction(cpu, time_ns, evicted)
        self._sharers.setdefault(pline, set()).add(cpu)
        if is_write:
            latency += self._write_coherence(cpu, time_ns + latency, paddr, stats)
        return latency, False, kind

    def _classify_miss(
        self, cpu: int, pline: int, paddr: int, shadow_hit: bool
    ) -> MissKind:
        pending = self._pending.get(pline)
        if pending is not None and cpu in pending:
            mask = pending.pop(cpu)
            if not pending:
                del self._pending[pline]
            word_bit = 1 << self.config.l2.word_offset(paddr, self._word)
            return MissKind.TRUE_SHARING if mask & word_bit else MissKind.FALSE_SHARING
        if pline not in self._seen[cpu]:
            return MissKind.COLD
        # Shadow state is sampled *before* this access touched it: a hit
        # there means a fully-associative cache of equal capacity would
        # have held the line, so the miss is due to limited associativity.
        if shadow_hit:
            return MissKind.CONFLICT
        return MissKind.CAPACITY

    def _fetch_line(self, cpu: int, time_ns: float, pline: int, stats: CpuStats) -> float:
        """Fetch a line over the bus; returns total latency including queueing."""
        grant = self.bus.request(time_ns, self._line, BusTransactionKind.DATA)
        queue_delay = grant - time_ns
        dirty_owner = self._dirty.get(pline)
        if dirty_owner is not None and dirty_owner != cpu:
            # Cache-to-cache transfer; the owner's copy reverts to shared
            # and its dirty data is written back.
            base = self.config.remote_latency_ns
            self.bus.request(grant, self._line, BusTransactionKind.WRITEBACK)
            self._dirty[pline] = None
        else:
            base = self.config.mem_latency_ns
        return queue_delay + base

    def _write_coherence(
        self, cpu: int, time_ns: float, paddr: int, stats: CpuStats
    ) -> float:
        """Obtain exclusive ownership of a line for a write."""
        pline = paddr & self._line_mask
        sharers = self._sharers.setdefault(pline, set())
        sharers.add(cpu)
        word_bit = 1 << self.config.l2.word_offset(paddr, self._word)
        stall = 0.0
        others = [other for other in sharers if other != cpu]
        if others or self._dirty.get(pline) not in (cpu, None):
            grant = self.bus.request(time_ns, 0, BusTransactionKind.UPGRADE)
            stall = grant - time_ns
        if others:
            vline = pline  # shared address space: virtual and physical lines
            pending = self._pending.setdefault(pline, {})
            for other in others:
                if not self.llc_shared:
                    # A shared LLC holds one copy for everyone — the
                    # writer's own line must survive; only the other
                    # CPUs' private copies are stale.
                    self._l2[other].invalidate(pline)
                if self._mid is not None:
                    self._mid[other].invalidate(pline)
                self._invalidate_l1(other, pline)
                pending[other] = pending.get(other, 0) | word_bit
                sharers.discard(other)
        # Accumulate this write into every pending mask for the line, so a
        # reader that stays away through several writes still sees the full
        # set of words modified since its last access (Dubois).
        pending = self._pending.get(pline)
        if pending is not None:
            for other in pending:
                if other != cpu:
                    pending[other] |= word_bit
        self._dirty[pline] = cpu
        return stall

    def _invalidate_l1(self, cpu: int, pline: int) -> None:
        # The workloads run as one shared-address-space process, so the
        # virtual line address equals the virtual line of every other
        # processor; we conservatively invalidate using the physical line in
        # both virtually-indexed L1s (identity aliasing is close enough for
        # the page-granularity questions this simulator answers).
        self._l1d[cpu].invalidate(pline)
        self._l1i[cpu].invalidate(pline)

    def _handle_eviction(self, cpu: int, time_ns: float, evicted_line: int) -> None:
        sharers = self._sharers.get(evicted_line)
        if sharers is not None:
            sharers.discard(cpu)
        if self._dirty.get(evicted_line) == cpu:
            self._dirty[evicted_line] = None
            self.bus.request(time_ns, self._line, BusTransactionKind.WRITEBACK)
        self._inflight.pop((cpu, evicted_line), None)

    # ------------------------------------------------------------------
    # Prefetch

    def prefetch(
        self, cpu: int, time_ns: float, vaddr: int, paddr: int, tlb_strict: bool = True
    ) -> float:
        """Issue a software prefetch; returns any CPU stall it causes.

        Prefetches to unmapped TLB pages are dropped (no exception, no
        fill); lines are inserted into the external cache only.

        ``tlb_strict=False`` skips the TLB probe.  The geometric scaling
        shrinks pages relative to lines (2 lines/page instead of 32), so a
        unit-stride prefetch crosses pages far more often than on the real
        machine; the engine therefore enforces the drop rule only for
        accesses the compiler marked TLB-hostile (large strides — the
        applu pathology of Section 6.2), which is where it changes results.
        """
        stats = self.stats.cpus[cpu]
        stats.prefetches_issued += 1
        vpage = vaddr // self.config.page_size
        if tlb_strict and not self._tlb[cpu].probe(vpage):
            if not self.prefetch_fills_tlb:
                stats.prefetches_dropped_tlb += 1
                return 0.0
            # Footnote-1 prefetch: fill the TLB entry and continue.
            self._tlb[cpu].access(vpage)
            stats.tlb_misses += 1
        pline = paddr & self._line_mask
        if self._l2[cpu].contains(pline):
            return 0.0
        latency = self._fetch_line(cpu, time_ns, pline, stats)
        stall = self._prefetch[cpu].issue(time_ns, time_ns + latency)
        if stall:
            stats.prefetch_stalls += 1
            stats.prefetch_stall_ns += stall
        evicted = self._l2[cpu].insert(pline)
        if evicted is not None:
            self._handle_eviction(cpu, time_ns, evicted)
        self._sharers.setdefault(pline, set()).add(cpu)
        self._seen[cpu].add(pline)
        self._shadow[cpu].access(pline)
        self._inflight[(cpu, pline)] = time_ns + stall + latency
        return stall

    # ------------------------------------------------------------------
    # Introspection helpers (used by tests and analysis)

    def fast_path_state(self, cpu: int):
        """Mutable per-CPU structures backing the engine's bulk hit filter.

        Returns ``(tlb, l1d, l1i)``.  The engine probes ``tlb.entries``
        and the caches' ``resident`` sets to prove a reference is an
        on-chip read hit with a TLB hit, then replays exactly the LRU
        effects (``Tlb.entries`` move-to-back, ``SetAssociativeCache.promote``)
        and credits the hit counters in bulk — bypassing :meth:`access`
        for references it would have answered without side effects.
        """
        return self._tlb[cpu], self._l1d[cpu], self._l1i[cpu]

    def l2_utilization(self, cpu: int) -> float:
        return self._l2[cpu].utilization()

    def tlb_stats(self, cpu: int) -> tuple[int, int]:
        tlb = self._tlb[cpu]
        return tlb.hits, tlb.misses

    def line_state(self, paddr: int) -> tuple[frozenset[int], Optional[int]]:
        pline = paddr & self._line_mask
        return frozenset(self._sharers.get(pline, ())), self._dirty.get(pline)

    # ------------------------------------------------------------------
    # Dynamic-recoloring support (Section 2.1's alternative policy)

    def consume_frame_conflicts(self) -> dict[int, int]:
        """Return and reset the per-frame conflict-miss counters."""
        counters = self._frame_conflicts
        self._frame_conflicts = defaultdict(int)
        return counters

    def invalidate_frame(self, frame: int) -> None:
        """Purge every line of a physical frame from all caches.

        Called when a page migrates to a new frame: the old frame's lines
        are gone, and the new frame's contents will fault in cold.
        """
        page = self.config.page_size
        base = frame * page
        for offset in range(0, page, self._line):
            pline = base + offset
            for cpu in range(self.config.num_cpus):
                self._l2[cpu].invalidate(pline)
                self._shadow[cpu].invalidate(pline)
                if self._mid is not None:
                    self._mid[cpu].invalidate(pline)
                self._seen[cpu].discard(pline)
                self._inflight.pop((cpu, pline), None)
            self._sharers.pop(pline, None)
            self._dirty.pop(pline, None)
            self._pending.pop(pline, None)

    def shootdown(self, vpage: int) -> None:
        """Flush a virtual page's TLB entry on every processor."""
        for tlb in self._tlb:
            tlb.invalidate(vpage)

    # ------------------------------------------------------------------
    # Observability

    def emit_metrics(self, registry) -> None:
        """Publish memory-system totals into a ``repro.obs`` registry.

        Called once per run by the engine; complements
        :meth:`MachineStats.emit_metrics` with the accounting only the
        memory system holds (bus traffic, demand-miss cross-check,
        fast-path retirement counters).
        """
        registry.counter("memsys.demand_l2_misses").inc(self.demand_l2_misses)
        registry.counter("memsys.fast_retired_data").inc(self.fast_retired_data)
        registry.counter("memsys.fast_retired_instr").inc(self.fast_retired_instr)
        registry.counter("memsys.fast_retired_blocks").inc(self.fast_retired_blocks)
        for kind in BusTransactionKind:
            registry.counter(f"bus.transactions.{kind.value}").inc(
                self.bus.transactions[kind]
            )
            registry.gauge(f"bus.busy_ns.{kind.value}").set(self.bus.busy_ns[kind])
