"""Memory-hierarchy simulator substrate.

This package stands in for the SimOS machine simulator used in the paper.
It models a bus-based shared-memory multiprocessor at the memory-system
level: split virtually-indexed on-chip caches, a large physically-indexed
external cache per processor, an invalidate coherence protocol on a
split-transaction bus with finite bandwidth, TLBs, and R10000-style
software prefetch.  Misses are classified into cold / capacity / conflict /
true-sharing / false-sharing following Dubois et al., which is what lets
the reproduction separate the replacement misses that CDPC attacks from
the communication misses it cannot.
"""

from repro.machine.bus import BusTransactionKind, SplitTransactionBus
from repro.machine.cache import FullyAssociativeLRU, SetAssociativeCache
from repro.machine.config import (
    MACHINE_PRESETS,
    CacheConfig,
    MachineConfig,
    TlbConfig,
    alpha_server,
    sgi_2way,
    sgi_4mb,
    sgi_8way,
    sgi_base,
    sliced_llc_8x,
    three_level,
)
from repro.machine.hierarchy import (
    BitFieldColor,
    CacheHierarchy,
    CacheLevel,
    ColorFunction,
    SlicedHashColor,
    TableColor,
    xor_slice_masks,
)
from repro.machine.memory_system import AccessResult, MemorySystem
from repro.machine.prefetch import PrefetchUnit
from repro.machine.stats import CpuStats, MachineStats, MissKind
from repro.machine.tlb import Tlb

__all__ = [
    "AccessResult",
    "BitFieldColor",
    "BusTransactionKind",
    "CacheConfig",
    "CacheHierarchy",
    "CacheLevel",
    "ColorFunction",
    "CpuStats",
    "FullyAssociativeLRU",
    "MACHINE_PRESETS",
    "MachineConfig",
    "MachineStats",
    "MemorySystem",
    "MissKind",
    "PrefetchUnit",
    "SetAssociativeCache",
    "SlicedHashColor",
    "SplitTransactionBus",
    "TableColor",
    "Tlb",
    "TlbConfig",
    "alpha_server",
    "sgi_2way",
    "sgi_4mb",
    "sgi_8way",
    "sgi_base",
    "sliced_llc_8x",
    "three_level",
    "xor_slice_masks",
]
