"""Composable cache-hierarchy descriptions and pluggable color functions.

The paper's machine model is a 1996 bus-based SMP: one physically-indexed
external cache per processor, direct-mapped or low-associativity, so a
page color is literally a bit-field of the physical frame number
(Section 2.1).  Modern last-level caches break that assumption twice
over: the LLC is split into *slices* selected by an XOR hash of physical
address bits (the Sandy-Bridge-style hash reverse-engineered in
*Cracking Intel Sandy Bridge's Cache Hash Function*), and capacity is
spread over three levels with different sharing domains.

This module is the geometry vocabulary that lets the rest of the stack
stop assuming ``color = (pfn >> k) & mask``:

* :class:`CacheLevel` — one cache level: capacity, line size,
  associativity, sharing domain (private-per-CPU vs shared), write
  policy, and an optional slice hash.
* :class:`CacheHierarchy` — a composition of levels (split L1s, an
  optional private mid-level cache, and the physically-indexed LLC the
  coloring question is about).
* :class:`ColorFunction` — the protocol the OS/CDPC layers query through
  ``machine.color_of(frame)`` / ``machine.num_colors``; implementations
  are :class:`BitFieldColor` (classic), :class:`SlicedHashColor`
  (XOR-of-address-bits slice hash) and :class:`TableColor` (table-driven
  remap over either).

**Exactness contract.**  Everything downstream — the per-color free
lists, the symbolic miss analyzer's ``(color, line-in-page)`` footprint
bins, the CDPC hint generator — is sound only if two frames of the same
color are *conflict-equivalent*: line ``k`` of both pages lands in the
same cache set, for every ``k``.  Bit-field extraction has this trivially.
An XOR slice hash has it because parity is GF(2)-linear:
``H(frame·P + off) = H(frame·P) XOR H(off)``, so the slice of line ``k``
is the frame's slice XOR'd with a per-``k`` constant, identical for every
frame of the color.  The implementations here are exact by construction,
which is what lets the static analyzer stay keyed on ``(color, k)`` pairs
(they biject onto global cache sets) on every geometry.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterator, Optional, Protocol, runtime_checkable

from repro.machine.config_base import CacheConfig, is_power_of_two

__all__ = [
    "BitFieldColor",
    "CacheHierarchy",
    "CacheLevel",
    "ColorFunction",
    "SlicedHashColor",
    "TableColor",
    "xor_slice_masks",
]


def _parity(value: int) -> int:
    return bin(value).count("1") & 1


@runtime_checkable
class ColorFunction(Protocol):
    """Maps physical frames to page colors, and colors to cache sets.

    ``color_of`` is the OS-facing direction (which free list does a frame
    belong to); ``set_of`` / ``line_index`` are the analyzer- and
    simulator-facing directions (which global cache set does line ``k``
    of a page of this color occupy).  Implementations must be exact:
    ``set_of(color_of(f), k) == line_index(f * page_size + k * line_size)``
    for every frame ``f`` and line ``k``.
    """

    #: Total number of page colors (equivalence classes of frames).
    num_colors: int
    #: True only for plain bit-field extraction, where ``color_of`` is
    #: exactly ``frame % num_colors`` — consumers may then keep their
    #: historical inline arithmetic (the fast path does).
    classic: bool

    def color_of(self, frame: int) -> int:
        """Color of a physical frame number."""
        ...

    def set_of(self, color: int, line_in_page: int) -> int:
        """Global cache-set index of line ``line_in_page`` of a page."""
        ...

    def line_index(self, line_addr: int) -> int:
        """Global cache-set index of a line-aligned physical address."""
        ...

    def frames_of_color(self, color: int) -> Iterator[int]:
        """Physical frames of ``color``, in increasing order (unbounded)."""
        ...


@dataclass(frozen=True)
class BitFieldColor:
    """Classic bit-field color extraction (the paper's machine model).

    ``color = frame % num_colors`` and set ``color * lines_per_page + k``
    — the identity the whole pre-geometry stack hard-coded.
    """

    num_colors: int
    lines_per_page: int
    num_sets: int
    line_shift: int
    classic: bool = True

    def color_of(self, frame: int) -> int:
        return frame % self.num_colors

    def set_of(self, color: int, line_in_page: int) -> int:
        return (color * self.lines_per_page + line_in_page) % self.num_sets

    def line_index(self, line_addr: int) -> int:
        return (line_addr >> self.line_shift) % self.num_sets

    def frames_of_color(self, color: int) -> Iterator[int]:
        frame = color % self.num_colors
        while True:
            yield frame
            frame += self.num_colors


@dataclass(frozen=True)
class SlicedHashColor:
    """Sliced LLC with an XOR-of-address-bits slice hash.

    Slice bit ``i`` of a physical address is the parity of the address
    bits selected by one mask; masks are carried split into a
    frame-number part (``frame_masks``, bits at or above the page) and an
    in-page part (``offset_masks``, bits between the line offset and the
    page).  Within a slice the set is the classic modulo of the line
    address, so a page of ``lines_per_page`` lines covers a contiguous
    run of ``lines_per_page`` sets — but the *slice* of each line varies
    with the in-page hash bits, which is exactly the behaviour that
    breaks naive bit-field coloring on sliced hardware.

    A color is ``(slice-of-frame, set-run-within-slice)`` flattened:
    ``num_colors = slices * span`` where
    ``span = sets_per_slice // lines_per_page``.  GF(2) linearity of the
    parity hash makes colors exact conflict-equivalence classes (module
    docstring), with the per-line slice offsets precomputed in
    ``_offset_slices``.
    """

    slices: int
    sets_per_slice: int
    lines_per_page: int
    line_shift: int
    page_shift: int
    frame_masks: tuple[int, ...]
    offset_masks: tuple[int, ...]
    classic: bool = False

    def __post_init__(self) -> None:
        if not is_power_of_two(self.slices) or self.slices < 2:
            raise ValueError("slices must be a power of two >= 2")
        if len(self.frame_masks) != self.slices.bit_length() - 1:
            raise ValueError("need one frame mask per slice-index bit")
        if len(self.offset_masks) != len(self.frame_masks):
            raise ValueError("need one offset mask per slice-index bit")
        if self.sets_per_slice % self.lines_per_page:
            raise ValueError(
                "sets per slice must be a multiple of lines per page "
                "(each page must cover whole set runs)"
            )

    @property
    def span(self) -> int:
        """Set runs per slice: distinct in-slice positions a page can take."""
        return self.sets_per_slice // self.lines_per_page

    @property
    def num_colors(self) -> int:
        return self.slices * self.span

    @property
    def num_sets(self) -> int:
        return self.slices * self.sets_per_slice

    def _frame_slice(self, frame: int) -> int:
        s = 0
        for i, mask in enumerate(self.frame_masks):
            s |= _parity(frame & mask) << i
        return s

    def _offset_slice(self, offset: int) -> int:
        s = 0
        for i, mask in enumerate(self.offset_masks):
            s |= _parity(offset & mask) << i
        return s

    @property
    def _offset_slices(self) -> tuple[int, ...]:
        """Per-line-in-page slice offsets (memoized on the instance)."""
        table = self.__dict__.get("_offset_slices_cache")
        if table is None:
            table = tuple(
                self._offset_slice(k << self.line_shift)
                for k in range(self.lines_per_page)
            )
            object.__setattr__(self, "_offset_slices_cache", table)
        return table

    def color_of(self, frame: int) -> int:
        return self._frame_slice(frame) * self.span + frame % self.span

    def set_of(self, color: int, line_in_page: int) -> int:
        run = color % self.span
        slice_id = (color // self.span) ^ self._offset_slices[line_in_page]
        return (
            slice_id * self.sets_per_slice
            + run * self.lines_per_page
            + line_in_page
        )

    def line_index(self, line_addr: int) -> int:
        frame = line_addr >> self.page_shift
        offset = line_addr & ((1 << self.page_shift) - 1)
        slice_id = self._frame_slice(frame) ^ self._offset_slice(offset)
        local = (line_addr >> self.line_shift) % self.sets_per_slice
        return slice_id * self.sets_per_slice + local

    def frames_of_color(self, color: int) -> Iterator[int]:
        span = self.span
        run = color % span
        slice_id = color // span
        # Frames of the color recur with period num_colors * slices when
        # the masks are full-rank (xor_slice_masks construction); a plain
        # filtered scan stays correct for arbitrary masks.
        frame = run
        while True:
            if self._frame_slice(frame) == slice_id:
                yield frame
            frame += span

    def frame_table(self, num_frames: int) -> tuple[int, ...]:
        """Precomputed frame → color table (vectorized-kernel support)."""
        return tuple(self.color_of(frame) for frame in range(num_frames))


@dataclass(frozen=True)
class TableColor:
    """A table-driven color map: a permutation over a base function.

    Models firmware- or BIOS-level address scrambling where the color of
    a frame is looked up, not computed.  The table must be a permutation
    of ``range(base.num_colors)`` so colors remain exact equivalence
    classes; global set indices are unchanged (only the *labels* move),
    so the simulator's per-set behaviour is identical to the base.
    """

    base: "SlicedHashColor | BitFieldColor"
    table: tuple[int, ...]
    classic: bool = False

    def __post_init__(self) -> None:
        if sorted(self.table) != list(range(self.base.num_colors)):
            raise ValueError("color table must be a permutation of the colors")
        object.__setattr__(
            self, "_inverse", tuple(
                pair[1] for pair in sorted(
                    (mapped, original) for original, mapped in enumerate(self.table)
                )
            )
        )

    @property
    def num_colors(self) -> int:
        return self.base.num_colors

    def color_of(self, frame: int) -> int:
        return self.table[self.base.color_of(frame)]

    def set_of(self, color: int, line_in_page: int) -> int:
        inverse: tuple[int, ...] = self._inverse  # type: ignore[attr-defined]
        return self.base.set_of(inverse[color], line_in_page)

    def line_index(self, line_addr: int) -> int:
        return self.base.line_index(line_addr)

    def frames_of_color(self, color: int) -> Iterator[int]:
        inverse: tuple[int, ...] = self._inverse  # type: ignore[attr-defined]
        return self.base.frames_of_color(inverse[color])


def xor_slice_masks(
    slices: int, span: int, page_shift: int, line_shift: int
) -> tuple[tuple[int, ...], tuple[int, ...]]:
    """Default slice-hash masks: realistic *and* perfectly color-balanced.

    Hash bit ``i`` is the parity of two frame bits chosen above the
    ``span`` field plus one in-page bit (when the page has spare bits
    above the line offset).  Using frame-bit columns disjoint from the
    span identity bits makes the linear map ``frame -> (hash, frame %
    span)`` full-rank, so every color owns exactly ``1 / num_colors`` of
    any frame pool whose size is a multiple of ``num_colors * slices`` —
    the per-color free lists stay balanced, like contiguous physical
    memory under a bit-field color.
    """
    if not is_power_of_two(slices) or slices < 2:
        raise ValueError("slices must be a power of two >= 2")
    if not is_power_of_two(span):
        raise ValueError("span must be a power of two")
    bits = slices.bit_length() - 1
    low = span.bit_length() - 1
    frame_masks = tuple(
        (1 << (low + i)) | (1 << (low + bits + i)) for i in range(bits)
    )
    page_mask = ((1 << page_shift) - 1) & ~((1 << line_shift) - 1)
    offset_masks = tuple(
        (1 << (line_shift + i)) & page_mask for i in range(bits)
    )
    return frame_masks, offset_masks


@dataclass(frozen=True)
class CacheLevel:
    """One level of the cache hierarchy.

    ``shared`` selects the sharing domain: ``False`` is one cache per
    CPU (the paper's external caches), ``True`` is a single cache shared
    by every CPU (a modern LLC).  ``write_policy`` is descriptive — the
    timing model charges write-back traffic for both spellings (see
    DESIGN.md); it is validated and serialized so geometries round-trip.
    ``slices``/``frame_masks``/``offset_masks`` describe an XOR slice
    hash; ``hit_ns`` overrides the hit latency for mid-level caches.
    """

    size: int
    line_size: int
    associativity: int = 1
    shared: bool = False
    write_policy: str = "writeback"
    hit_ns: Optional[float] = None
    slices: int = 1
    frame_masks: tuple[int, ...] = ()
    offset_masks: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if not is_power_of_two(self.size):
            raise ValueError(f"cache size must be a power of two, got {self.size}")
        if not is_power_of_two(self.line_size):
            raise ValueError(f"line size must be a power of two, got {self.line_size}")
        if self.associativity < 1:
            raise ValueError("associativity must be >= 1")
        if self.write_policy not in ("writeback", "writethrough"):
            raise ValueError(f"unknown write policy {self.write_policy!r}")
        if not is_power_of_two(self.slices):
            raise ValueError("slices must be a power of two")
        if self.size % (self.line_size * self.associativity * self.slices):
            raise ValueError(
                "cache size must be divisible by line_size * associativity * slices"
            )
        if self.slices > 1 and len(self.frame_masks) != self.slices.bit_length() - 1:
            raise ValueError("need one frame mask per slice-index bit")

    @property
    def cache_config(self) -> CacheConfig:
        """The flat geometry view the behavioural cache models consume."""
        return CacheConfig(self.size, self.line_size, self.associativity)

    @property
    def sets_per_slice(self) -> int:
        return self.size // (self.line_size * self.associativity * self.slices)

    def scaled(self, factor: int, new_page_size: int) -> "CacheLevel":
        """Shrink capacity by ``factor``, preserving lines and the hash.

        Frame masks address frame-number bits, which survive scaling
        unchanged (that is what keeps ``num_colors`` invariant); in-page
        offset masks are truncated to the smaller page.
        """
        if self.size % factor:
            raise ValueError(f"cannot scale {self} by {factor}")
        new_size = self.size // factor
        if new_size < self.line_size * self.associativity * self.slices:
            raise ValueError(f"scaling by {factor} leaves less than one set per slice")
        keep = (new_page_size - 1) & ~(self.line_size - 1)
        return replace(
            self,
            size=new_size,
            offset_masks=tuple(mask & keep for mask in self.offset_masks),
        )

    @classmethod
    def from_cache_config(
        cls, config: CacheConfig, shared: bool = False
    ) -> "CacheLevel":
        return cls(config.size, config.line_size, config.associativity, shared=shared)


@dataclass(frozen=True)
class CacheHierarchy:
    """A complete cache hierarchy: split L1s, optional mid level, LLC.

    ``derived=True`` marks a hierarchy synthesized from the legacy
    ``l1d``/``l1i``/``l2`` fields of :class:`~repro.machine.config.
    MachineConfig`; such a hierarchy is re-derived whenever those fields
    are replaced, so ``dataclasses.replace(config, l2=...)`` keeps its
    historical meaning.  An explicitly constructed hierarchy
    (``derived=False``) is authoritative and the flat fields become
    read-only views of its levels.

    ``color_table`` optionally permutes the color labels (the
    :class:`TableColor` map) without changing the underlying sets.
    """

    l1d: CacheLevel
    l1i: CacheLevel
    llc: CacheLevel
    mid: Optional[CacheLevel] = None
    color_table: tuple[int, ...] = ()
    derived: bool = field(default=False, compare=False)

    def __post_init__(self) -> None:
        if self.l1d.shared or self.l1i.shared:
            raise ValueError("L1 caches are per-CPU; shared L1s are not modeled")
        if self.mid is not None and self.mid.shared:
            raise ValueError("the mid-level cache is per-CPU in this model")

    @classmethod
    def classic(
        cls, l1d: CacheConfig, l1i: CacheConfig, l2: CacheConfig
    ) -> "CacheHierarchy":
        """The legacy two-level geometry, marked re-derivable."""
        return cls(
            l1d=CacheLevel.from_cache_config(l1d),
            l1i=CacheLevel.from_cache_config(l1i),
            llc=CacheLevel.from_cache_config(l2),
            derived=True,
        )

    @property
    def levels(self) -> tuple[CacheLevel, ...]:
        """All levels, innermost first (L1s, mid when present, LLC)."""
        if self.mid is not None:
            return (self.l1d, self.l1i, self.mid, self.llc)
        return (self.l1d, self.l1i, self.llc)

    def scaled(self, factor: int, page_size: int) -> "CacheHierarchy":
        new_page = page_size // factor
        return replace(
            self,
            l1d=self.l1d.scaled(factor, new_page),
            l1i=self.l1i.scaled(factor, new_page),
            llc=self.llc.scaled(factor, new_page),
            mid=None if self.mid is None else self.mid.scaled(factor, new_page),
        )

    def color_function(self, page_size: int) -> ColorFunction:
        """Build the color function for this geometry at ``page_size``."""
        llc = self.llc
        if page_size < llc.line_size:
            raise ValueError("page size must be at least one LLC line")
        lines_per_page = page_size // llc.line_size
        line_shift = llc.line_size.bit_length() - 1
        base: SlicedHashColor | BitFieldColor
        if llc.slices > 1:
            base = SlicedHashColor(
                slices=llc.slices,
                sets_per_slice=llc.sets_per_slice,
                lines_per_page=lines_per_page,
                line_shift=line_shift,
                page_shift=page_size.bit_length() - 1,
                frame_masks=llc.frame_masks,
                offset_masks=llc.offset_masks,
            )
        else:
            base = BitFieldColor(
                num_colors=llc.size // (page_size * llc.associativity),
                lines_per_page=lines_per_page,
                num_sets=llc.cache_config.num_sets,
                line_shift=line_shift,
            )
        if self.color_table:
            return TableColor(base, self.color_table)
        return base
