"""Set-associative and fully-associative LRU cache models.

These are behavioural models: they track which line addresses are resident
and which are evicted, not the data itself.  The fully-associative cache is
used as a *shadow* cache to separate conflict misses (miss in the real
cache, hit in a fully-associative cache of the same capacity) from capacity
misses (miss in both), the standard classification the paper relies on.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.machine.config import CacheConfig


class SetAssociativeCache:
    """An LRU set-associative cache of line addresses.

    Lines are identified by their line-aligned byte address.  Each set is a
    small list ordered most-recently-used first, which is fast for the low
    associativities (1-8) the paper studies.
    """

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self._sets: list[list[int]] = [[] for _ in range(config.num_sets)]

    def _set_for(self, line_addr: int) -> list[int]:
        return self._sets[(line_addr // self.config.line_size) % self.config.num_sets]

    def lookup(self, line_addr: int) -> bool:
        """Probe for a line; on a hit the line becomes most recently used."""
        ways = self._set_for(line_addr)
        try:
            ways.remove(line_addr)
        except ValueError:
            return False
        ways.insert(0, line_addr)
        return True

    def contains(self, line_addr: int) -> bool:
        """Probe without disturbing LRU order."""
        return line_addr in self._set_for(line_addr)

    def insert(self, line_addr: int) -> Optional[int]:
        """Insert a line, returning the evicted line address if any."""
        ways = self._set_for(line_addr)
        if line_addr in ways:
            ways.remove(line_addr)
            ways.insert(0, line_addr)
            return None
        ways.insert(0, line_addr)
        if len(ways) > self.config.associativity:
            return ways.pop()
        return None

    def invalidate(self, line_addr: int) -> bool:
        """Remove a line (coherence invalidation).  True if it was present."""
        ways = self._set_for(line_addr)
        try:
            ways.remove(line_addr)
        except ValueError:
            return False
        return True

    def flush(self) -> None:
        for ways in self._sets:
            ways.clear()

    def resident_lines(self) -> Iterator[int]:
        for ways in self._sets:
            yield from ways

    def occupancy(self) -> int:
        """Number of resident lines."""
        return sum(len(ways) for ways in self._sets)

    def utilization(self) -> float:
        """Fraction of the cache's line slots that are occupied."""
        return self.occupancy() / self.config.num_lines


class FullyAssociativeLRU:
    """A fully-associative LRU cache used as a shadow for miss classification.

    Implemented with an insertion-ordered dict: re-inserting moves a key to
    the back, and the front is the least recently used.
    """

    def __init__(self, capacity_lines: int) -> None:
        if capacity_lines < 1:
            raise ValueError("capacity must be at least one line")
        self.capacity = capacity_lines
        self._lines: dict[int, None] = {}

    def access(self, line_addr: int) -> bool:
        """Touch a line; returns True on hit.  Misses insert with LRU eviction."""
        lines = self._lines
        if line_addr in lines:
            del lines[line_addr]
            lines[line_addr] = None
            return True
        lines[line_addr] = None
        if len(lines) > self.capacity:
            del lines[next(iter(lines))]
        return False

    def contains(self, line_addr: int) -> bool:
        return line_addr in self._lines

    def invalidate(self, line_addr: int) -> bool:
        if line_addr in self._lines:
            del self._lines[line_addr]
            return True
        return False

    def __len__(self) -> int:
        return len(self._lines)
