"""Set-associative and fully-associative LRU cache models.

These are behavioural models: they track which line addresses are resident
and which are evicted, not the data itself.  The fully-associative cache is
used as a *shadow* cache to separate conflict misses (miss in the real
cache, hit in a fully-associative cache of the same capacity) from capacity
misses (miss in both), the standard classification the paper relies on.

The set-associative model is on the simulator's per-reference hot path, so
it keeps two redundant views of its contents: the per-set LRU lists that
define replacement behaviour, and a flat ``resident`` set that answers
membership probes in O(1).  The engine's vectorized hit filter
(``docs/performance.md``) relies on ``resident`` and on :meth:`promote`,
which must replay exactly the LRU effect of a :meth:`lookup` hit.

Set selection is pluggable: by default a line maps to set
``(addr >> line_shift) % num_sets`` (the classic physically- or
virtually-indexed modulo), but a sliced LLC passes ``index_fn`` — the
geometry's :meth:`~repro.machine.hierarchy.ColorFunction.line_index` —
so the slice hash decides which global set a line occupies.  The engine's
fast path mirrors whichever indexing the cache uses (it captures the same
``index_fn``), keeping the two paths bit-identical on every geometry.
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional

from repro.machine.config import CacheConfig


class SetAssociativeCache:
    """An LRU set-associative cache of line addresses.

    Lines are identified by their line-aligned byte address.  Each set is a
    small list ordered most-recently-used first, which is fast for the low
    associativities (1-8) the paper studies.
    """

    def __init__(
        self,
        config: CacheConfig,
        index_fn: Optional[Callable[[int], int]] = None,
    ) -> None:
        self.config = config
        num_sets = config.num_sets
        self._sets: list[list[int]] = [[] for _ in range(num_sets)]
        # Hot-path constants, hoisted out of the per-reference lookups:
        # line_size is a validated power of two, so ``// line_size`` is a
        # shift; num_sets may not be (odd associativities), so keep ``%``.
        self._num_sets = num_sets
        self._line_shift = config.line_size.bit_length() - 1
        self._associativity = config.associativity
        #: Geometry-supplied set indexing (``None`` = classic modulo).
        self.index_fn = index_fn
        #: Flat membership view of every resident line (all sets combined).
        #: Kept exactly in sync with the per-set lists.
        self.resident: set[int] = set()

    def index_of(self, line_addr: int) -> int:
        """Which set a line-aligned address maps to."""
        if self.index_fn is not None:
            return self.index_fn(line_addr)
        return (line_addr >> self._line_shift) % self._num_sets

    def _set_for(self, line_addr: int) -> list[int]:
        return self._sets[self.index_of(line_addr)]

    def lookup(self, line_addr: int) -> bool:
        """Probe for a line; on a hit the line becomes most recently used."""
        idx = self.index_fn
        ways = self._sets[
            idx(line_addr) if idx is not None
            else (line_addr >> self._line_shift) % self._num_sets
        ]
        try:
            ways.remove(line_addr)
        except ValueError:
            return False
        ways.insert(0, line_addr)
        return True

    def contains(self, line_addr: int) -> bool:
        """Probe without disturbing LRU order."""
        return line_addr in self.resident

    def insert(self, line_addr: int) -> Optional[int]:
        """Insert a line, returning the evicted line address if any."""
        idx = self.index_fn
        ways = self._sets[
            idx(line_addr) if idx is not None
            else (line_addr >> self._line_shift) % self._num_sets
        ]
        if line_addr in ways:
            ways.remove(line_addr)
            ways.insert(0, line_addr)
            return None
        ways.insert(0, line_addr)
        self.resident.add(line_addr)
        if len(ways) > self._associativity:
            victim = ways.pop()
            self.resident.discard(victim)
            return victim
        return None

    def access_line(self, line_addr: int) -> tuple[bool, Optional[int]]:
        """Combined lookup-then-insert: one set probe per reference.

        Returns ``(hit, evicted)``.  Equivalent to ``lookup`` followed, on
        a miss, by ``insert`` — the form every demand access takes — but
        with a single set indexing.
        """
        idx = self.index_fn
        ways = self._sets[
            idx(line_addr) if idx is not None
            else (line_addr >> self._line_shift) % self._num_sets
        ]
        try:
            ways.remove(line_addr)
        except ValueError:
            ways.insert(0, line_addr)
            self.resident.add(line_addr)
            if len(ways) > self._associativity:
                victim = ways.pop()
                self.resident.discard(victim)
                return False, victim
            return False, None
        ways.insert(0, line_addr)
        return True, None

    def promote(self, line_addr: int) -> None:
        """Make a *known-resident* line most recently used.

        Exactly the state effect of a :meth:`lookup` hit, used by the
        engine's bulk hit filter after it has verified residency through
        ``resident``.  Calling it for a non-resident line is a bug.
        """
        ways = self._set_for(line_addr)
        if ways[0] != line_addr:
            ways.remove(line_addr)
            ways.insert(0, line_addr)

    def invalidate(self, line_addr: int) -> bool:
        """Remove a line (coherence invalidation).  True if it was present."""
        idx = self.index_fn
        ways = self._sets[
            idx(line_addr) if idx is not None
            else (line_addr >> self._line_shift) % self._num_sets
        ]
        try:
            ways.remove(line_addr)
        except ValueError:
            return False
        self.resident.discard(line_addr)
        return True

    def flush(self) -> None:
        for ways in self._sets:
            ways.clear()
        self.resident.clear()

    def resident_lines(self) -> Iterator[int]:
        for ways in self._sets:
            yield from ways

    def occupancy(self) -> int:
        """Number of resident lines."""
        return len(self.resident)

    def utilization(self) -> float:
        """Fraction of the cache's line slots that are occupied."""
        return self.occupancy() / self.config.num_lines


class FullyAssociativeLRU:
    """A fully-associative LRU cache used as a shadow for miss classification.

    Implemented with an insertion-ordered dict: re-inserting moves a key to
    the back, and the front is the least recently used.
    """

    def __init__(self, capacity_lines: int) -> None:
        if capacity_lines < 1:
            raise ValueError("capacity must be at least one line")
        self.capacity = capacity_lines
        self._lines: dict[int, None] = {}

    def access(self, line_addr: int) -> bool:
        """Touch a line; returns True on hit.  Misses insert with LRU eviction."""
        lines = self._lines
        if line_addr in lines:
            del lines[line_addr]
            lines[line_addr] = None
            return True
        lines[line_addr] = None
        if len(lines) > self.capacity:
            del lines[next(iter(lines))]
        return False

    def contains(self, line_addr: int) -> bool:
        return line_addr in self._lines

    def invalidate(self, line_addr: int) -> bool:
        if line_addr in self._lines:
            del self._lines[line_addr]
            return True
        return False

    def __len__(self) -> int:
        return len(self._lines)
