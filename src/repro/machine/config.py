"""Machine configuration: cache geometry, latencies, and preset machines.

The presets mirror the two platforms of the paper plus two modern
geometries the paper could not measure:

* ``sgi_base`` — the SimOS base configuration of Section 3.2: 400MHz
  single-issue R4400-class processors, 32KB two-way split on-chip caches,
  a 1MB direct-mapped external cache with 128-byte lines, a 1.2 GB/s
  split-transaction bus, 500ns memory latency and 750ns remote latency.
* ``alpha_server`` — the validation platform of Section 7: an 8-CPU
  AlphaServer 8400 with 350MHz 21164 processors and a 4MB direct-mapped
  external cache.
* ``sliced_llc_8x`` — the base machine with its external cache split
  into 8 slices selected by a Sandy-Bridge-style XOR hash of physical
  address bits (see :mod:`repro.machine.hierarchy`).
* ``three_level`` — a private 256KB mid-level cache per CPU under a
  single 4MB LLC shared by every CPU.

The machine's *geometry* is a :class:`~repro.machine.hierarchy.
CacheHierarchy`.  For backward compatibility the historical flat fields
(``l1d``/``l1i``/``l2``) remain: constructing a config from them
synthesizes a classic two-level hierarchy, and constructing from an
explicit ``hierarchy=`` makes the flat fields read-only views of its
levels.  Page-color questions go through :attr:`MachineConfig.
color_function` — ``machine.color_of(frame)`` / ``machine.num_colors``
— never through bit arithmetic on the frame number.

Because a pure-Python simulator cannot run reference-sized data sets,
every configuration can be geometrically scaled with
:meth:`MachineConfig.scaled`.  Scaling divides cache size and page size
by the same factor and preserves per-level line sizes, associativities,
slice counts and the frame-bit hash rows, which keeps the quantity CDPC
cares about — the number of page colors — invariant on every geometry.
"""

from __future__ import annotations

import functools
import warnings
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Optional

from repro.machine.config_base import CacheConfig, TlbConfig, is_power_of_two
from repro.machine.hierarchy import CacheHierarchy, CacheLevel, ColorFunction, xor_slice_masks

__all__ = [
    "CacheConfig",
    "MACHINE_PRESETS",
    "MachineConfig",
    "TlbConfig",
    "alpha_server",
    "sgi_2way",
    "sgi_4mb",
    "sgi_8way",
    "sgi_base",
    "sliced_llc_8x",
    "three_level",
]

# Backward-compatible private alias (pre-hierarchy callers imported it).
_is_power_of_two = is_power_of_two


@dataclass(frozen=True)
class MachineConfig:
    """A complete bus-based multiprocessor memory-system configuration."""

    num_cpus: int = 1
    cpu_clock_mhz: float = 400.0
    page_size: int = 4096
    word_size: int = 8
    # On-chip caches are virtually indexed; the external cache is
    # physically indexed (Section 5.4), which is why page mapping matters.
    # With an explicit ``hierarchy=`` these three become views of its
    # levels; without one they define a classic two-level hierarchy.
    l1d: CacheConfig = field(default_factory=lambda: CacheConfig(32 * 1024, 128, 2))
    l1i: CacheConfig = field(default_factory=lambda: CacheConfig(32 * 1024, 128, 2))
    l2: CacheConfig = field(default_factory=lambda: CacheConfig(1024 * 1024, 128, 1))
    tlb: TlbConfig = field(default_factory=TlbConfig)
    # Latencies from Section 3.2.
    l2_hit_ns: float = 50.0
    mem_latency_ns: float = 500.0
    remote_latency_ns: float = 750.0
    bus_bandwidth_gb_s: float = 1.2
    max_outstanding_prefetches: int = 4
    scale_factor: int = 1
    hierarchy: Optional[CacheHierarchy] = None

    def __post_init__(self) -> None:
        if self.num_cpus < 1:
            raise ValueError("num_cpus must be >= 1")
        if not is_power_of_two(self.page_size):
            raise ValueError("page size must be a power of two")
        hierarchy = self.hierarchy
        if hierarchy is None or hierarchy.derived:
            # Legacy spelling (or a replace() of one): the flat fields are
            # authoritative and the hierarchy is re-derived from them.
            hierarchy = CacheHierarchy.classic(self.l1d, self.l1i, self.l2)
            object.__setattr__(self, "hierarchy", hierarchy)
        else:
            object.__setattr__(self, "l1d", hierarchy.l1d.cache_config)
            object.__setattr__(self, "l1i", hierarchy.l1i.cache_config)
            object.__setattr__(self, "l2", hierarchy.llc.cache_config)
        if self.page_size < self.l2.line_size:
            raise ValueError("page size must be at least one L2 line")
        # Building the color function validates the geometry/page-size
        # combination (e.g. a slice must cover whole pages).
        self.color_function

    @functools.cached_property
    def color_function(self) -> ColorFunction:
        """The geometry's frame→color map (see :mod:`repro.machine.hierarchy`)."""
        assert self.hierarchy is not None
        return self.hierarchy.color_function(self.page_size)

    @property
    def cycle_ns(self) -> float:
        """Duration of one CPU cycle in nanoseconds."""
        return 1000.0 / self.cpu_clock_mhz

    @property
    def num_colors(self) -> int:
        """Number of page colors in the physically-indexed external cache.

        Section 2.1 for the classic geometry: cache size / (page size *
        associativity).  Sliced and table-driven geometries answer
        through their color function; the count is always the number of
        conflict-equivalence classes of physical frames.
        """
        return self.color_function.num_colors

    @property
    def bus_ns_per_byte(self) -> float:
        return 1.0 / (self.bus_bandwidth_gb_s * 1e9 / 1e9)

    def page_number(self, addr: int) -> int:
        return addr // self.page_size

    def page_color_of_frame(self, frame: int) -> int:
        """Color of a physical frame number."""
        return self.color_function.color_of(frame)

    def color_of(self, frame: int) -> int:
        """Color of a physical frame number (geometry-aware spelling)."""
        return self.color_function.color_of(frame)

    def scaled(self, factor: int) -> "MachineConfig":
        """Geometrically scale caches, pages and lines down by ``factor``.

        The number of colors is invariant under scaling, so the page-mapping
        behaviour the paper studies is preserved while shrinking simulation
        cost by the same factor.
        """
        if factor == 1:
            return self
        assert self.hierarchy is not None
        if not self.hierarchy.derived:
            return replace(
                self,
                page_size=self.page_size // factor,
                hierarchy=self.hierarchy.scaled(factor, self.page_size),
                scale_factor=self.scale_factor * factor,
            )
        return replace(
            self,
            page_size=self.page_size // factor,
            l1d=self.l1d.scaled(factor),
            l1i=self.l1i.scaled(factor),
            l2=self.l2.scaled(factor),
            scale_factor=self.scale_factor * factor,
        )

    def with_cpus(self, num_cpus: int) -> "MachineConfig":
        return replace(self, num_cpus=num_cpus)

    # ------------------------------------------------------------------
    # Lossless serialization (service requests, result-store fingerprints)

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe dict carrying the full geometry; see :meth:`from_dict`."""
        assert self.hierarchy is not None
        out: dict[str, Any] = {
            "num_cpus": self.num_cpus,
            "cpu_clock_mhz": self.cpu_clock_mhz,
            "page_size": self.page_size,
            "word_size": self.word_size,
            "l1d": _cache_to_dict(self.l1d),
            "l1i": _cache_to_dict(self.l1i),
            "l2": _cache_to_dict(self.l2),
            "tlb": {"entries": self.tlb.entries,
                    "miss_latency_ns": self.tlb.miss_latency_ns},
            "l2_hit_ns": self.l2_hit_ns,
            "mem_latency_ns": self.mem_latency_ns,
            "remote_latency_ns": self.remote_latency_ns,
            "bus_bandwidth_gb_s": self.bus_bandwidth_gb_s,
            "max_outstanding_prefetches": self.max_outstanding_prefetches,
            "scale_factor": self.scale_factor,
        }
        if not self.hierarchy.derived:
            # A derived hierarchy is a pure function of the flat fields
            # above, so omitting it keeps legacy payloads unchanged while
            # the round trip stays lossless.
            out["hierarchy"] = _hierarchy_to_dict(self.hierarchy)
        return out

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "MachineConfig":
        """Inverse of :meth:`to_dict`: ``from_dict(cfg.to_dict()) == cfg``."""
        payload = dict(data)
        hierarchy_data = payload.pop("hierarchy", None)
        tlb_data = payload.pop("tlb", None)
        kwargs: dict[str, Any] = {}
        for name in ("l1d", "l1i", "l2"):
            if name in payload:
                kwargs[name] = _cache_from_dict(payload.pop(name))
        if tlb_data is not None:
            kwargs["tlb"] = TlbConfig(**tlb_data)
        if hierarchy_data is not None:
            kwargs["hierarchy"] = _hierarchy_from_dict(hierarchy_data)
            # The flat fields are views of the hierarchy; drop any copies.
            for name in ("l1d", "l1i", "l2"):
                kwargs.pop(name, None)
        kwargs.update(payload)
        return cls(**kwargs)


def _cache_to_dict(config: CacheConfig) -> dict[str, Any]:
    return {
        "size": config.size,
        "line_size": config.line_size,
        "associativity": config.associativity,
    }


def _cache_from_dict(data: dict[str, Any]) -> CacheConfig:
    return CacheConfig(**data)


def _level_to_dict(level: CacheLevel) -> dict[str, Any]:
    return {
        "size": level.size,
        "line_size": level.line_size,
        "associativity": level.associativity,
        "shared": level.shared,
        "write_policy": level.write_policy,
        "hit_ns": level.hit_ns,
        "slices": level.slices,
        "frame_masks": list(level.frame_masks),
        "offset_masks": list(level.offset_masks),
    }


def _level_from_dict(data: dict[str, Any]) -> CacheLevel:
    payload = dict(data)
    payload["frame_masks"] = tuple(payload.get("frame_masks", ()))
    payload["offset_masks"] = tuple(payload.get("offset_masks", ()))
    return CacheLevel(**payload)


def _hierarchy_to_dict(hierarchy: CacheHierarchy) -> dict[str, Any]:
    return {
        "l1d": _level_to_dict(hierarchy.l1d),
        "l1i": _level_to_dict(hierarchy.l1i),
        "llc": _level_to_dict(hierarchy.llc),
        "mid": None if hierarchy.mid is None else _level_to_dict(hierarchy.mid),
        "color_table": list(hierarchy.color_table),
    }


def _hierarchy_from_dict(data: dict[str, Any]) -> CacheHierarchy:
    return CacheHierarchy(
        l1d=_level_from_dict(data["l1d"]),
        l1i=_level_from_dict(data["l1i"]),
        llc=_level_from_dict(data["llc"]),
        mid=None if data.get("mid") is None else _level_from_dict(data["mid"]),
        color_table=tuple(data.get("color_table", ())),
    )


# ----------------------------------------------------------------------
# Deprecated keyword surface (PR-5 discipline: old spellings keep
# working for one deprecation cycle, warning once per call).

_dataclass_init = MachineConfig.__init__


@functools.wraps(_dataclass_init)
def _shimmed_init(self: MachineConfig, *args: Any, cache: Any = None, **kwargs: Any) -> None:
    if cache is not None:
        if "l2" in kwargs:
            raise TypeError("got both 'cache' (deprecated) and 'l2'")
        warnings.warn(
            "keyword 'cache' is deprecated; use 'l2' (or an explicit hierarchy=)",
            DeprecationWarning,
            stacklevel=2,
        )
        kwargs["l2"] = cache
    _dataclass_init(self, *args, **kwargs)


MachineConfig.__init__ = _shimmed_init  # type: ignore[method-assign]


# ----------------------------------------------------------------------
# Presets


def sgi_base(num_cpus: int = 1) -> MachineConfig:
    """The paper's base SimOS configuration: 1MB direct-mapped external cache."""
    return MachineConfig(num_cpus=num_cpus)


def sgi_2way(num_cpus: int = 1) -> MachineConfig:
    """Base configuration with a two-way set-associative external cache."""
    return replace(sgi_base(num_cpus), l2=CacheConfig(1024 * 1024, 128, 2))


def sgi_4mb(num_cpus: int = 1) -> MachineConfig:
    """Base configuration with a 4MB direct-mapped external cache."""
    return replace(sgi_base(num_cpus), l2=CacheConfig(4 * 1024 * 1024, 128, 1))


def sgi_8way(num_cpus: int = 1) -> MachineConfig:
    """Base configuration with an eight-way set-associative external cache.

    Section 6.1: tomcatv has seven large data structures, so "only an
    eight-way set-associative cache of size 1MB would eliminate all
    conflicts for 16 processors" without CDPC.  This preset exists to test
    that claim.
    """
    return replace(sgi_base(num_cpus), l2=CacheConfig(1024 * 1024, 128, 8))


def alpha_server(num_cpus: int = 1) -> MachineConfig:
    """The AlphaServer 8400 validation platform of Section 7."""
    return MachineConfig(
        num_cpus=num_cpus,
        cpu_clock_mhz=350.0,
        l1d=CacheConfig(8 * 1024, 32, 1),
        l1i=CacheConfig(8 * 1024, 32, 1),
        l2=CacheConfig(4 * 1024 * 1024, 64, 1),
        # The 8400's TLAS bus is faster than the SimOS base bus.
        bus_bandwidth_gb_s=1.6,
        mem_latency_ns=400.0,
        remote_latency_ns=600.0,
    )


def sliced_llc_8x(num_cpus: int = 1) -> MachineConfig:
    """The base machine with an 8-slice XOR-hashed external cache.

    Same 1MB capacity, line size and 256 colors as ``sgi_base`` — only
    the *shape* of a color changes (a (slice, set-run) pair instead of a
    frame bit-field), so policy comparisons against the classic geometry
    isolate the effect of the hash.  The default masks
    (:func:`~repro.machine.hierarchy.xor_slice_masks`) mix frame bits
    with an in-page bit per hash row, so consecutive lines of one page
    spread across slices as on real sliced hardware.
    """
    lines_per_page = 4096 // 128
    sets_per_slice = (1024 * 1024) // (128 * 8)
    frame_masks, offset_masks = xor_slice_masks(
        slices=8,
        span=sets_per_slice // lines_per_page,
        page_shift=12,
        line_shift=7,
    )
    hierarchy = CacheHierarchy(
        l1d=CacheLevel(32 * 1024, 128, 2),
        l1i=CacheLevel(32 * 1024, 128, 2),
        llc=CacheLevel(
            1024 * 1024, 128, 1,
            slices=8, frame_masks=frame_masks, offset_masks=offset_masks,
        ),
    )
    return MachineConfig(num_cpus=num_cpus, hierarchy=hierarchy)


def three_level(num_cpus: int = 1) -> MachineConfig:
    """Three-level geometry: private 256KB mid-level caches, shared 4MB LLC.

    The mid level absorbs part of each CPU's working set at a 25ns hit
    latency; the physically-indexed LLC — the level page coloring is
    about — is one cache shared by every CPU, so colors partition a
    capacity all CPUs compete for.
    """
    hierarchy = CacheHierarchy(
        l1d=CacheLevel(32 * 1024, 128, 2),
        l1i=CacheLevel(32 * 1024, 128, 2),
        mid=CacheLevel(256 * 1024, 128, 4, hit_ns=25.0),
        llc=CacheLevel(4 * 1024 * 1024, 128, 1, shared=True),
    )
    return MachineConfig(num_cpus=num_cpus, hierarchy=hierarchy)


#: Machine models addressable by name (``--machine`` on the CLI, the
#: ``machine`` field of service requests, ``Session(machine=...)``).
MACHINE_PRESETS: dict[str, Callable[[int], MachineConfig]] = {
    "sgi_base": sgi_base,
    "sgi_2way": sgi_2way,
    "sgi_4mb": sgi_4mb,
    "sgi_8way": sgi_8way,
    "alpha_server": alpha_server,
    "sliced_llc_8x": sliced_llc_8x,
    "three_level": three_level,
}
