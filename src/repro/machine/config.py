"""Machine configuration: cache geometry, latencies, and preset machines.

The presets mirror the two platforms of the paper:

* ``sgi_base`` — the SimOS base configuration of Section 3.2: 400MHz
  single-issue R4400-class processors, 32KB two-way split on-chip caches,
  a 1MB direct-mapped external cache with 128-byte lines, a 1.2 GB/s
  split-transaction bus, 500ns memory latency and 750ns remote latency.
* ``alpha_server`` — the validation platform of Section 7: an 8-CPU
  AlphaServer 8400 with 350MHz 21164 processors and a 4MB direct-mapped
  external cache.

Because a pure-Python simulator cannot run reference-sized data sets, every
configuration can be geometrically scaled with :meth:`MachineConfig.scaled`.
Scaling divides cache size, page size and line size by the same factor,
which preserves the quantity CDPC cares about: the number of page colors
(cache size / (page size * associativity)).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one cache level.

    Sizes are in bytes.  ``associativity`` of 1 means direct-mapped.
    """

    size: int
    line_size: int
    associativity: int = 1

    def __post_init__(self) -> None:
        if not _is_power_of_two(self.size):
            raise ValueError(f"cache size must be a power of two, got {self.size}")
        if not _is_power_of_two(self.line_size):
            raise ValueError(f"line size must be a power of two, got {self.line_size}")
        if self.associativity < 1:
            raise ValueError("associativity must be >= 1")
        if self.size % (self.line_size * self.associativity) != 0:
            raise ValueError("cache size must be divisible by line_size * associativity")

    @property
    def num_lines(self) -> int:
        return self.size // self.line_size

    @property
    def num_sets(self) -> int:
        return self.num_lines // self.associativity

    def line_address(self, addr: int) -> int:
        """The address of the first byte of the line containing ``addr``."""
        return addr & ~(self.line_size - 1)

    def set_index(self, addr: int) -> int:
        """Which set ``addr`` maps to."""
        return (addr // self.line_size) % self.num_sets

    def word_offset(self, addr: int, word_size: int = 8) -> int:
        """Index of the word within its line (used for false-sharing tests)."""
        return (addr & (self.line_size - 1)) // word_size

    def scaled(self, factor: int) -> "CacheConfig":
        """Divide the cache size by ``factor``.

        Line size and associativity are preserved: shrinking lines below a
        word would destroy spatial locality, while shrinking capacity and
        page size together preserves the number of page colors.
        """
        if self.size % factor:
            raise ValueError(f"cannot scale {self} by {factor}")
        new_size = self.size // factor
        if new_size < self.line_size * self.associativity:
            raise ValueError(f"scaling by {factor} leaves less than one set")
        return replace(self, size=new_size)


@dataclass(frozen=True)
class TlbConfig:
    """TLB geometry.  Misses are serviced by the OS (kernel overhead)."""

    entries: int = 64
    miss_latency_ns: float = 200.0


@dataclass(frozen=True)
class MachineConfig:
    """A complete bus-based multiprocessor memory-system configuration."""

    num_cpus: int = 1
    cpu_clock_mhz: float = 400.0
    page_size: int = 4096
    word_size: int = 8
    # On-chip caches are virtually indexed; the external cache is
    # physically indexed (Section 5.4), which is why page mapping matters.
    l1d: CacheConfig = field(default_factory=lambda: CacheConfig(32 * 1024, 128, 2))
    l1i: CacheConfig = field(default_factory=lambda: CacheConfig(32 * 1024, 128, 2))
    l2: CacheConfig = field(default_factory=lambda: CacheConfig(1024 * 1024, 128, 1))
    tlb: TlbConfig = field(default_factory=TlbConfig)
    # Latencies from Section 3.2.
    l2_hit_ns: float = 50.0
    mem_latency_ns: float = 500.0
    remote_latency_ns: float = 750.0
    bus_bandwidth_gb_s: float = 1.2
    max_outstanding_prefetches: int = 4
    scale_factor: int = 1

    def __post_init__(self) -> None:
        if self.num_cpus < 1:
            raise ValueError("num_cpus must be >= 1")
        if not _is_power_of_two(self.page_size):
            raise ValueError("page size must be a power of two")
        if self.page_size < self.l2.line_size:
            raise ValueError("page size must be at least one L2 line")

    @property
    def cycle_ns(self) -> float:
        """Duration of one CPU cycle in nanoseconds."""
        return 1000.0 / self.cpu_clock_mhz

    @property
    def num_colors(self) -> int:
        """Number of page colors in the physically-indexed external cache.

        Section 2.1: cache size / (page size * associativity).
        """
        return self.l2.size // (self.page_size * self.l2.associativity)

    @property
    def bus_ns_per_byte(self) -> float:
        return 1.0 / (self.bus_bandwidth_gb_s * 1e9 / 1e9)

    def page_number(self, addr: int) -> int:
        return addr // self.page_size

    def page_color_of_frame(self, frame: int) -> int:
        """Color of a physical frame number."""
        return frame % self.num_colors

    def scaled(self, factor: int) -> "MachineConfig":
        """Geometrically scale caches, pages and lines down by ``factor``.

        The number of colors is invariant under scaling, so the page-mapping
        behaviour the paper studies is preserved while shrinking simulation
        cost by the same factor.
        """
        if factor == 1:
            return self
        return replace(
            self,
            page_size=self.page_size // factor,
            l1d=self.l1d.scaled(factor),
            l1i=self.l1i.scaled(factor),
            l2=self.l2.scaled(factor),
            scale_factor=self.scale_factor * factor,
        )

    def with_cpus(self, num_cpus: int) -> "MachineConfig":
        return replace(self, num_cpus=num_cpus)


def sgi_base(num_cpus: int = 1) -> MachineConfig:
    """The paper's base SimOS configuration: 1MB direct-mapped external cache."""
    return MachineConfig(num_cpus=num_cpus)


def sgi_2way(num_cpus: int = 1) -> MachineConfig:
    """Base configuration with a two-way set-associative external cache."""
    return replace(sgi_base(num_cpus), l2=CacheConfig(1024 * 1024, 128, 2))


def sgi_4mb(num_cpus: int = 1) -> MachineConfig:
    """Base configuration with a 4MB direct-mapped external cache."""
    return replace(sgi_base(num_cpus), l2=CacheConfig(4 * 1024 * 1024, 128, 1))


def sgi_8way(num_cpus: int = 1) -> MachineConfig:
    """Base configuration with an eight-way set-associative external cache.

    Section 6.1: tomcatv has seven large data structures, so "only an
    eight-way set-associative cache of size 1MB would eliminate all
    conflicts for 16 processors" without CDPC.  This preset exists to test
    that claim.
    """
    return replace(sgi_base(num_cpus), l2=CacheConfig(1024 * 1024, 128, 8))


def alpha_server(num_cpus: int = 1) -> MachineConfig:
    """The AlphaServer 8400 validation platform of Section 7."""
    return MachineConfig(
        num_cpus=num_cpus,
        cpu_clock_mhz=350.0,
        l1d=CacheConfig(8 * 1024, 32, 1),
        l1i=CacheConfig(8 * 1024, 32, 1),
        l2=CacheConfig(4 * 1024 * 1024, 64, 1),
        # The 8400's TLAS bus is faster than the SimOS base bus.
        bus_bandwidth_gb_s=1.6,
        mem_latency_ns=400.0,
        remote_latency_ns=600.0,
    )
