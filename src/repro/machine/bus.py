"""Split-transaction bus with finite bandwidth and occupancy accounting.

The paper's base configuration sustains up to 1.2 GB/s of fetch bandwidth;
several benchmarks saturate it at 16 processors, which is why their MCPI
rises even as miss rates fall (Section 4.1).  We model the bus as a single
shared resource: each transaction occupies it for (bytes / bandwidth)
nanoseconds, and a request issued while the bus is busy is delayed until
the bus frees up.  Occupancy is recorded per transaction kind so Figure 2's
bus-utilization graph can be regenerated.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class BusTransactionKind(str, enum.Enum):
    """The transaction kinds of Figure 2's bus-utilization breakdown.

    ``str`` mixin: members hash at C speed, keeping the per-transaction
    accounting dicts cheap in the hot path.
    """

    DATA = "data"  # request/reply pairs for cache fills
    WRITEBACK = "writeback"
    UPGRADE = "upgrade"  # shared -> exclusive ownership requests


@dataclass
class BusTransaction:
    kind: BusTransactionKind
    issue_ns: float
    grant_ns: float
    complete_ns: float


class SplitTransactionBus:
    """A bandwidth-limited shared bus.

    ``request`` returns the time at which the transaction is *granted* the
    bus; the caller adds the memory/remote latency on top.  Contention
    therefore lengthens effective miss latency exactly as the paper
    describes.
    """

    #: Address/command overhead per transaction, in bytes of bus occupancy.
    COMMAND_BYTES = 16

    def __init__(self, bandwidth_gb_s: float) -> None:
        if bandwidth_gb_s <= 0:
            raise ValueError("bandwidth must be positive")
        self.bandwidth_bytes_per_ns = bandwidth_gb_s  # 1 GB/s == 1 byte/ns
        # Work-conserving backlog model: the bus holds `_backlog_ns` of
        # committed occupancy that drains in real time.  A request waits for
        # the current backlog, then occupies the bus itself.  Unlike a
        # single free-at timestamp, this stays correct when processors are
        # simulated slightly out of clock order (their requests see the
        # backlog of genuinely concurrent traffic, not transactions issued
        # from another processor's future).
        self._backlog_ns = 0.0
        self._last_update_ns = 0.0
        self.busy_ns: dict[BusTransactionKind, float] = {
            kind: 0.0 for kind in BusTransactionKind
        }
        self.transactions: dict[BusTransactionKind, int] = {
            kind: 0 for kind in BusTransactionKind
        }
        self.last_complete_ns = 0.0

    def occupancy_ns(self, payload_bytes: int) -> float:
        return (payload_bytes + self.COMMAND_BYTES) / self.bandwidth_bytes_per_ns

    def _drain_to(self, time_ns: float) -> None:
        """Drain backlog for elapsed real time (never rewinds the clock).

        Requests timestamped slightly in the past (processors are simulated
        in small interleaved quanta, so clocks skew by a few microseconds)
        see the current backlog without being charged for the skew itself.
        """
        if time_ns > self._last_update_ns:
            self._backlog_ns = max(
                0.0, self._backlog_ns - (time_ns - self._last_update_ns)
            )
            self._last_update_ns = time_ns

    def request(
        self, time_ns: float, payload_bytes: int, kind: BusTransactionKind
    ) -> float:
        """Issue a transaction at ``time_ns``; returns the grant time."""
        self._drain_to(time_ns)
        grant = time_ns + self._backlog_ns
        duration = self.occupancy_ns(payload_bytes)
        self._backlog_ns += duration
        self.busy_ns[kind] += duration
        self.transactions[kind] += 1
        self.last_complete_ns = max(self.last_complete_ns, grant + duration)
        return grant

    def queue_delay(self, time_ns: float) -> float:
        """How long a request issued now would wait before being granted."""
        return max(0.0, self._backlog_ns - max(0.0, time_ns - self._last_update_ns))

    @property
    def total_busy_ns(self) -> float:
        return sum(self.busy_ns.values())

    def utilization(self, elapsed_ns: float) -> float:
        """Fraction of ``elapsed_ns`` during which the bus was occupied."""
        if elapsed_ns <= 0:
            return 0.0
        return min(1.0, self.total_busy_ns / elapsed_ns)

    def utilization_breakdown(self, elapsed_ns: float) -> dict[str, float]:
        if elapsed_ns <= 0:
            return {kind.value: 0.0 for kind in BusTransactionKind}
        return {
            kind.value: self.busy_ns[kind] / elapsed_ns for kind in BusTransactionKind
        }
