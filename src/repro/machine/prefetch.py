"""R10000-style software prefetch unit (Section 6.2).

The paper's simulated processor supports up to four outstanding prefetches
(a fifth stalls the processor), drops prefetches whose page is not mapped
in the TLB without raising an exception, and inserts prefetched lines into
the external cache but *not* the on-chip cache.  All three properties
matter to the results: the TLB-drop rule is why prefetching does not help
applu, and external-cache-only fills are why CDPC and prefetching compose.
"""

from __future__ import annotations


class PrefetchUnit:
    """Tracks outstanding prefetches for one processor."""

    def __init__(self, max_outstanding: int) -> None:
        if max_outstanding < 1:
            raise ValueError("max_outstanding must be >= 1")
        self.max_outstanding = max_outstanding
        self._completions_ns: list[float] = []

    def outstanding_at(self, time_ns: float) -> int:
        self._retire(time_ns)
        return len(self._completions_ns)

    def _retire(self, time_ns: float) -> None:
        self._completions_ns = [t for t in self._completions_ns if t > time_ns]

    def issue(self, time_ns: float, completion_ns: float) -> float:
        """Record a prefetch; returns the CPU stall incurred (usually zero).

        If the unit already has ``max_outstanding`` prefetches in flight the
        processor stalls until the earliest one completes, matching the
        R10000 behaviour described in the paper.
        """
        self._retire(time_ns)
        stall = 0.0
        if len(self._completions_ns) >= self.max_outstanding:
            earliest = min(self._completions_ns)
            stall = max(0.0, earliest - time_ns)
            self._retire(time_ns + stall)
        self._completions_ns.append(completion_ns)
        return stall

    def reset(self) -> None:
        self._completions_ns.clear()
