"""A per-processor TLB model.

TLB misses contribute to the kernel overhead category of Figure 2 (the
paper notes the kernel time is "primarily servicing TLB faults"), and the
R10000-style prefetch instruction drops prefetches whose page is not mapped
in the TLB — the reason prefetching is ineffective for applu (Section 6.2).
"""

from __future__ import annotations

from repro.machine.config import TlbConfig


class Tlb:
    """Fully-associative LRU TLB over virtual page numbers."""

    def __init__(self, config: TlbConfig) -> None:
        self.config = config
        self._entries: dict[int, None] = {}
        self.hits = 0
        self.misses = 0

    def access(self, vpage: int) -> bool:
        """Translate a page; fills on miss.  Returns True on a hit."""
        entries = self._entries
        if vpage in entries:
            del entries[vpage]
            entries[vpage] = None
            self.hits += 1
            return True
        self.misses += 1
        entries[vpage] = None
        if len(entries) > self.config.entries:
            del entries[next(iter(entries))]
        return False

    def probe(self, vpage: int) -> bool:
        """Check for a mapping without filling (used by prefetch drop logic)."""
        return vpage in self._entries

    @property
    def entries(self) -> dict[int, None]:
        """The live entry table, least recently used first.

        Exposed for the engine's bulk hit filter, which needs O(1)
        membership probes and replays the move-to-back of a hit directly
        (``del entries[vpage]; entries[vpage] = None``) while crediting
        ``hits`` in bulk.  Treat as read-mostly; any mutation must preserve
        the LRU-order invariant ``access`` maintains.
        """
        return self._entries

    def invalidate(self, vpage: int) -> None:
        self._entries.pop(vpage, None)

    def flush(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)
