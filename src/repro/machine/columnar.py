"""The columnar epoch kernel: block-at-a-time retirement of the fast path.

:func:`repro.machine.fast_path.loop_runner` retires guaranteed on-chip
hits one reference at a time — three set lookups, a TLB move-to-back and
an L1 move-to-front per reference, all in Python.  This module lowers
each reference stream into fixed 16-reference *column blocks* (the
engine's scheduling quantum) and retires whole blocks at once:

* **Static lowering** (:func:`block_index`, numpy, once per stream):
  every block whose references all carry a hit-filter kind (no prefetch
  carriers) is summarized into per-block columns — the set of virtual
  pages it touches, the per-L1-set lines it touches in last-touch order,
  and the distinct ``(page, line-offset)`` pairs it writes.  Blocks are
  classified with one ``np.minimum.reduceat`` over the kind column; the
  summaries are memoized on the stream, so the trace cache amortizes
  them across warmup/measured passes and runs.
* **Dynamic tag filter** (:func:`columnar_runner`, per block at run
  time): a block retires in bulk iff its line sets are subsets of the
  live L1 ``resident`` sets, its page set is covered by the TLB *and*
  the engine's page cache, and every written line is exclusively owned
  by this CPU.  These are exactly the per-reference filter predicates of
  the scalar fast path, evaluated as C-level ``frozenset <= set`` /
  ``dict.keys() >= frozenset`` operations.

Bit-identity argument — the same contract as the scalar filter, lifted
from references to blocks:

* A retired reference changes only LRU recency and hit counters — no
  insertion, eviction, invalidation or bus transaction.  Therefore if
  every reference of a block passes the filter against *block-start*
  state, block-start state remains valid for all of them, and checking
  once per block is sound.
* The scalar per-reference LRU updates are replayed in batch with the
  identical final state: the TLB moves the block's pages to the LRU
  tail in last-touch order; each touched L1 set removes the block's
  lines and re-inserts them most-recently-used-first.  (The scalar
  path's ``prev_vpage`` / ``ways[0]`` skips are state no-ops — they
  only elide moves of entries already in position — so the batch replay
  needs no knowledge of them.)
* The clock advances by ``busy_per_ref`` once per reference, as
  *sequential* float additions, preserving the oracle's rounding.
* Any block that fails the static or dynamic filter is delegated,
  whole, to an inner scalar :func:`loop_runner` — the per-reference
  semantics (including partial in-block retirement) are untouched.
  After a bulk block retires, the inner runner's cached ``prev_vpage``
  is invalidated through the shared ``prev_reset`` cell, because the
  bulk replay may have moved other pages to the TLB tail.

The runner speaks the same generator protocol as ``loop_runner`` (prime
with ``next()``, ``send`` ``(start, end, clock, busy_per_ref,
fault_concurrency)``), so the engine selects it per
``EngineOptions.columnar`` without touching the chunk dispatch.

The kernel is deliberately *geometry-blind*: its static lowering and
dynamic filter touch only L1 sets, the TLB, the page cache and the
coherence maps — never the LLC — so sliced, shared and three-level
geometries (:mod:`repro.machine.hierarchy`) need no columnar changes.
Every reference that could reach the LLC falls through to the inner
scalar runner, which carries the geometry's set hash and sharing rules.
"""

from __future__ import annotations

import numpy as np

from repro.machine.fast_path import loop_runner
from repro.machine.memory_system import MemorySystem

__all__ = ["BLOCK", "block_index", "columnar_runner"]

#: References per column block.  Matches the engine's scheduling quantum
#: (``repro.sim.engine._CHUNK``) so a parallel-loop chunk is exactly one
#: block; block starts are BLOCK-aligned from 0 in every stream.
BLOCK = 16

_BLOCK_SHIFT = 4
_BLOCK_LOW = BLOCK - 1


def block_index(stream, geom: tuple) -> list:
    """Static per-block summaries for one reference stream.

    ``geom`` is ``(l1d_shift, l1d_nsets, l1i_shift, l1i_nsets,
    line_mask)`` — the geometry the summaries are specialized to.  The
    result is memoized on the stream (keyed by ``geom``), mirroring how
    ``CpuTrace.ref_stream`` memoizes its column view.

    Entry ``b`` covers references ``[BLOCK*b, BLOCK*b + count)`` and is
    either ``None`` (the block carries a kind-0 reference and must take
    the scalar path) or the tuple::

        (pages_set, pages_lt, d_lines, i_lines,
         d_replay, i_replay, writes, fastd, fasti, count)

    with ``pages_lt`` the pages in last-touch order, ``d_replay`` /
    ``i_replay`` tuples of ``(set_index, lines, mru_lines)`` per touched
    L1 set, and ``writes`` the distinct ``(vpage, line_offset)`` pairs
    needing the exclusive-ownership check.
    """
    cached = stream.__dict__.get("_columnar")
    if cached is not None and cached[0] == geom:
        return cached[1]
    l1d_shift, l1d_nsets, l1i_shift, l1i_nsets, line_mask = geom
    kinds = np.asarray(stream.fast_kinds, dtype=np.int8)
    n = len(kinds)
    nblocks = (n + _BLOCK_LOW) >> _BLOCK_SHIFT
    blocks: list = [None] * nblocks
    if n:
        starts = np.arange(0, n, BLOCK)
        eligible = np.nonzero(np.minimum.reduceat(kinds, starts) > 0)[0]
    else:
        eligible = np.empty(0, dtype=np.int64)
    kind_list = stream.fast_kinds
    vpages = stream.vpages
    vlines = stream.vlines
    offsets = stream.offsets
    for b in eligible.tolist():
        s = b << _BLOCK_SHIFT
        e = min(s + BLOCK, n)
        pages: dict = {}
        d_sets: dict = {}
        i_sets: dict = {}
        writes: dict = {}
        fastd = 0
        fasti = 0
        for i in range(s, e):
            kind = kind_list[i]
            vpage = vpages[i]
            pages.pop(vpage, None)
            pages[vpage] = None
            vline = vlines[i]
            if kind == 2:
                fasti += 1
                touched = i_sets.setdefault((vline >> l1i_shift) % l1i_nsets, {})
            else:
                fastd += 1
                touched = d_sets.setdefault((vline >> l1d_shift) % l1d_nsets, {})
                if kind == 3:
                    writes[(vpage, offsets[i] & line_mask)] = None
            touched.pop(vline, None)
            touched[vline] = None
        blocks[b] = (
            frozenset(pages),
            tuple(pages),
            frozenset(
                line for touched in d_sets.values() for line in touched
            ),
            frozenset(
                line for touched in i_sets.values() for line in touched
            ),
            tuple(
                (si, tuple(touched), tuple(reversed(touched)))
                for si, touched in d_sets.items()
            ),
            tuple(
                (si, tuple(touched), tuple(reversed(touched)))
                for si, touched in i_sets.items()
            ),
            tuple(writes),
            fastd,
            fasti,
            e - s,
        )
    stream.__dict__["_columnar"] = (geom, blocks)
    return blocks


def columnar_runner(ms: MemorySystem, vm, page_cache: dict, cpu: int, stream,
                    fault_watch=None):
    """Block-retiring generator, protocol-compatible with ``loop_runner``.

    Retires statically eligible blocks that pass the dynamic tag filter
    in bulk; delegates contiguous runs of everything else to an inner
    scalar :func:`loop_runner` in single sends (sub-chunking a send is
    bit-identical: integer deltas commute, float accumulators are
    re-seeded from live values, and bus state round-trips through the
    same flush/reload pairs).
    """
    l1d = ms._l1d[cpu]
    l1i = ms._l1i[cpu]
    geom = (
        l1d._line_shift,
        l1d._num_sets,
        l1i._line_shift,
        l1i._num_sets,
        ms._line_mask,
    )
    blocks = block_index(stream, geom)
    prev_reset = [False]
    inner = loop_runner(ms, vm, page_cache, cpu, stream,
                        fault_watch=fault_watch, prev_reset=prev_reset)
    next(inner)
    inner_send = inner.send

    tlb = ms._tlb[cpu]
    tlb_entries = tlb._entries
    tlb_keys = tlb_entries.keys()
    pc_keys = page_cache.keys()
    l1d_sets = l1d._sets
    l1d_resident = l1d.resident
    l1i_sets = l1i._sets
    l1i_resident = l1i.resident
    stats = ms.stats.cpus[cpu]
    sharers_get = ms._sharers.get
    dirty_get = ms._dirty.get
    pending_map = ms._pending

    # Dynamic-filter backoff.  Streaming phases touch new lines in every
    # block, so no block ever has its lines resident and every check
    # fails; after each failure the next ``cooldown`` eligible blocks
    # are delegated *unchecked* (cooldown doubles per consecutive
    # failure, capped at 256 blocks) so those phases degenerate to
    # near-pure scalar execution instead of paying one failed filter per
    # block.  A successful retirement resets the streak.  The backoff
    # survives chunk boundaries, which is what makes it effective inside
    # 16-reference parallel-loop chunks.  It only changes *which* blocks
    # get checked, never how one is executed — bit-identity holds.
    fail_streak = 0
    cooldown = 0
    result = None
    try:
        while True:
            start, end, t, busy_per_ref, fault_concurrency = yield result
            kernel_total = 0.0
            fault_kernel = 0.0
            fastd_total = 0
            fasti_total = 0
            retired_blocks = 0
            pos = start
            while pos < end:
                block = blocks[pos >> _BLOCK_SHIFT] if not pos & _BLOCK_LOW \
                    else None
                if block is not None and not cooldown \
                        and end - pos >= block[9]:
                    if (
                        block[2] <= l1d_resident
                        and block[3] <= l1i_resident
                        and tlb_keys >= block[0]
                        and pc_keys >= block[0]
                    ):
                        ok = True
                        for wpage, woffset in block[6]:
                            pline = page_cache[wpage] + woffset
                            sh = sharers_get(pline)
                            if (
                                sh is None
                                or len(sh) != 1
                                or cpu not in sh
                                or dirty_get(pline) != cpu
                                or pline in pending_map
                            ):
                                ok = False
                                break
                        if ok:
                            fail_streak = 0
                            for vpage in block[1]:
                                del tlb_entries[vpage]
                                tlb_entries[vpage] = None
                            for si, lines, mru in block[4]:
                                ways = l1d_sets[si]
                                for line in lines:
                                    ways.remove(line)
                                ways[0:0] = mru
                            for si, lines, mru in block[5]:
                                ways = l1i_sets[si]
                                for line in lines:
                                    ways.remove(line)
                                ways[0:0] = mru
                            count = block[9]
                            fastd_total += block[7]
                            fasti_total += block[8]
                            retired_blocks += 1
                            for _ in range(count):
                                t += busy_per_ref
                            prev_reset[0] = True
                            pos += count
                            continue
                    cooldown = 1 << min(fail_streak, 8)
                    fail_streak += 1
                # Delegate a run of references to the scalar inner
                # runner: this block (plus any statically ineligible
                # blocks after it), widened to the remaining cooldown.
                npos = min(
                    pos + (max(cooldown, 1) << _BLOCK_SHIFT), end
                )
                while npos < end and blocks[npos >> _BLOCK_SHIFT] is None:
                    npos = min(npos + BLOCK, end)
                if cooldown:
                    delegated = (npos - pos + _BLOCK_LOW) >> _BLOCK_SHIFT
                    cooldown = max(0, cooldown - delegated)
                t, kernel, faults = inner_send(
                    (pos, npos, t, busy_per_ref, fault_concurrency)
                )
                kernel_total += kernel
                fault_kernel += faults
                pos = npos
            if fastd_total or fasti_total:
                tlb.hits += fastd_total + fasti_total
                stats.l1d_hits += fastd_total
                stats.l1i_hits += fasti_total
                ms.fast_retired_data += fastd_total
                ms.fast_retired_instr += fasti_total
                ms.fast_retired_blocks += retired_blocks
            result = (t, kernel_total, fault_kernel)
    finally:
        inner.close()
