"""The engine's flattened fast execution path.

:meth:`repro.machine.memory_system.MemorySystem.access` is the *oracle*:
a layered, readable implementation of one memory reference (TLB -> L1 ->
L2 -> coherence -> bus).  It is also ~a dozen Python calls per miss, and
the simulator executes hundreds of thousands of references per run.  This
module re-implements the oracle's per-chunk reference loop as one flat
generator with every hot structure in a frame local, preceded by the
vectorized hit filter that retires guaranteed on-chip read hits in bulk.

The entry point is :func:`loop_runner`: a generator instantiated once per
engine loop per CPU.  All state capture and column hoisting happens once
at priming time; each scheduling chunk is then a single ``send`` carrying
``(start, end, clock, busy_per_ref, fault_concurrency)``.  This matters
because the engine's scheduling quantum is only 16 references — paying a
40-local setup per chunk would cost more than the references themselves.

Correctness contract — the fast path must be **bit-identical** to the
oracle (``EngineOptions(fast_path=False)``), which the equivalence suite
in ``tests/test_fast_path_equivalence.py`` enforces.  The rules that keep
it sound:

* **Hit filter eligibility.**  A reference may bypass the oracle only if
  it carries no prefetch, its virtual page is in this CPU's TLB *and* in
  the engine's page cache (TLB residency alone is insufficient:
  cold-page reclaim unmaps pages without a TLB shootdown), and its
  L2-aligned virtual line is resident in the matching on-chip cache.
  Reads (data or instruction) meeting those conditions are guaranteed
  hits with no coherence side effect.  A *write* additionally requires
  that the written physical line is already exclusively owned by this
  CPU — sole entry in the sharer set, dirty here, and carrying no
  pending invalidation masks — which makes the oracle's write-coherence
  step a provable no-op with zero stall.  Retiring an eligible reference
  touches only LRU recency (replayed exactly: TLB move-to-back, L1
  move-to-front) and the hit counters.  While a run of hits retires, no
  insertion, eviction or invalidation can occur, so eligibility checked
  against current state stays sound for every reference until the next
  fall-through.
* **Containers are aliased, never copied.**  Dicts, sets and lists (TLB
  entries, cache sets, ``resident`` views, sharers/dirty/pending maps,
  the page cache) are bound to frame locals once per loop; out-of-line
  calls (``vm.fault``, reclaim callbacks, ``ms.prefetch``) mutate the
  same objects in place, so the aliases never go stale.  Structures that
  the engine *replaces* (``ms.stats`` per measured phase,
  ``_frame_conflicts`` per recolor step) only change at phase boundaries,
  and the engine builds fresh runners for every loop.
* **Scalars are either written through immediately or flushed at every
  chunk boundary and around every out-of-line call.**  Bus state
  (backlog, occupancy tallies) is shared between CPUs, so it is reloaded
  at chunk entry and written back at chunk exit as well as around
  ``vm.fault`` / ``ms.prefetch`` — both can issue bus transactions.
  Integer statistics deltas commute and are flushed once per chunk;
  float accumulators (``l1_stall_ns``, per-kind ``l2_stall_ns``) are
  updated in the same order as the oracle's per-event additions so the
  floating-point results match bit for bit.
* **Floating-point expressions are copied verbatim.**  ``t +=
  busy_per_ref + stall + kernel`` per reference (never ``busy * k``),
  ``max(0.0, ...)`` for backlog draining, one division for bus occupancy
  (precomputed — same operands, same single rounding).
* **``prev_vpage`` may persist across chunks.**  The move-to-back skip
  only requires that the previously touched page, when still present, is
  at the LRU tail.  Every slow reference re-inserts its page at the tail
  as its final TLB action, hits keep it there, and foreign effects
  between chunks (shootdowns, reclaim) only *remove* entries — removal
  never changes which entry is at the tail.

What forces the slow (inline oracle replica) path: references carrying a
prefetch, TLB misses, unmapped pages, any reference whose line is not
provably resident, and writes to lines that are shared, clean, foreign-
owned or invalidation-pending.  The replica executes the identical state
transitions as ``MemorySystem.access`` with the call layers removed.
"""

from __future__ import annotations

from repro.machine.bus import BusTransactionKind
from repro.machine.memory_system import MemorySystem
from repro.machine.stats import MissKind

__all__ = ["loop_runner"]

_DATA = BusTransactionKind.DATA
_WRITEBACK = BusTransactionKind.WRITEBACK
_UPGRADE = BusTransactionKind.UPGRADE

_COLD = MissKind.COLD
_CAPACITY = MissKind.CAPACITY
_CONFLICT = MissKind.CONFLICT
_TRUE = MissKind.TRUE_SHARING
_FALSE = MissKind.FALSE_SHARING


def loop_runner(ms: MemorySystem, vm, page_cache: dict, cpu: int, stream,
                fault_watch=None, prev_reset=None):
    """Generator executing ``stream`` chunks for ``cpu``: the oracle, flat.

    Prime with ``next()``, then for each scheduling chunk ``send`` a tuple
    ``(start, end, clock, busy_per_ref, fault_concurrency)``; the yield
    returns ``(new_clock, kernel_ns, fault_kernel_ns)``: the advanced CPU
    clock, the total kernel time incurred (TLB-miss servicing plus page
    faults, what the steady-state engine charges to the kernel overhead
    category), and the page-fault component alone (what the init loop
    charges — it adds TLB service time to the clock but not to overhead).

    ``fault_watch``, when given, is called after every page fault while
    the cached bus state is already flushed — it may mutate the memory
    system and page tables (the engine's adaptive-CDPC watchdog re-plans
    and migrates pages from here).

    ``prev_reset``, when given, is a shared one-element list cell: when
    its flag is set at chunk entry, the cached ``prev_vpage`` is
    invalidated before any reference executes.  The columnar kernel
    (:mod:`repro.machine.columnar`) retires whole blocks *between* this
    runner's chunks; a retired block moves other pages to the TLB tail,
    so the move-to-back skip must not trust a ``prev_vpage`` that
    predates it.

    A runner is valid for one engine loop: everything captured is either
    a constant or a container mutated in place for the loop's lifetime.
    """
    config = ms.config
    tlb = ms._tlb[cpu]
    l1d = ms._l1d[cpu]
    l1i = ms._l1i[cpu]
    l2 = ms._l2[cpu]
    shadow = ms._shadow[cpu]
    stats = ms.stats.cpus[cpu]
    bus = ms.bus

    tlb_entries = tlb._entries
    tlb_cap = tlb.config.entries
    tlb_miss_ns = ms._tlb_miss_ns
    l1d_sets = l1d._sets
    l1d_shift = l1d._line_shift
    l1d_nsets = l1d._num_sets
    l1d_assoc = l1d._associativity
    l1d_resident = l1d.resident
    l1i_sets = l1i._sets
    l1i_shift = l1i._line_shift
    l1i_nsets = l1i._num_sets
    l1i_assoc = l1i._associativity
    l1i_resident = l1i.resident
    l2_sets = l2._sets
    l2_shift = l2._line_shift
    l2_nsets = l2._num_sets
    l2_assoc = l2._associativity
    l2_resident = l2.resident
    # Geometry hooks: a sliced LLC supplies its set hash (None keeps the
    # classic inline modulo); a shared LLC changes the coherence rules;
    # a mid-level cache adds a probe between the L1s and the LLC.
    l2_index = ms._llc_index
    llc_shared = ms.llc_shared
    all_mid = ms._mid
    if all_mid is not None:
        mid_cache = all_mid[cpu]
        mid_sets = all_mid[cpu]._sets
        mid_shift = mid_cache._line_shift
        mid_nsets = mid_cache._num_sets
        mid_assoc = mid_cache._associativity
        mid_resident = mid_cache.resident
        mid_hit_ns = ms._mid_hit_ns
    else:
        mid_sets = None
        mid_shift = mid_nsets = mid_assoc = 0
        mid_resident = None
        mid_hit_ns = 0.0
    shadow_lines = shadow._lines
    shadow_cap = shadow.capacity
    l2_misses = stats.l2_misses
    l2_stall = stats.l2_stall_ns
    bus_busy = bus.busy_ns
    bus_tx = bus.transactions
    sharers = ms._sharers
    dirty = ms._dirty
    pending_map = ms._pending
    seen = ms._seen[cpu]
    inflight = ms._inflight
    frame_misses = ms.frame_misses
    frame_conflicts = ms._frame_conflicts
    line_mask = ms._line_mask
    word = ms._word
    page_shift = ms._page_shift
    l2_hit_ns = config.l2_hit_ns
    mem_ns = config.mem_latency_ns
    remote_ns = config.remote_latency_ns
    # Precomputed bus occupancies: identical to the oracle's
    # (payload + COMMAND_BYTES) / bandwidth — same operands, one
    # division, so bit-identical results.
    data_occ = (ms._line + bus.COMMAND_BYTES) / bus.bandwidth_bytes_per_ns
    cmd_occ = (0 + bus.COMMAND_BYTES) / bus.bandwidth_bytes_per_ns
    all_l1d = ms._l1d
    all_l1i = ms._l1i
    all_l2 = ms._l2

    addrs = stream.addrs  # noqa: F841 — kept for parity with the oracle
    flags = stream.flags
    prefetches = stream.prefetch
    vpages = stream.vpages
    offsets = stream.offsets
    vlines = stream.vlines
    fast_kinds = stream.fast_kinds

    page_table = vm.page_table
    is_mapped = page_table.is_mapped
    frame_of = page_table.frame_of
    fault = vm.fault
    fault_ns = vm.PAGE_FAULT_NS
    page_cache_get = page_cache.get
    sharers_get = sharers.get
    dirty_get = dirty.get
    psz = 1 << page_shift
    line_m1 = ~line_mask  # line_size - 1

    # Bus scalars: localized per chunk, flushed at chunk boundaries and
    # around out-of-line calls.  Declared here so the closures below can
    # bind them as cells of this generator frame.
    bus_backlog = bus._backlog_ns
    bus_last_update = bus._last_update_ns
    bus_last_complete = bus.last_complete_ns
    busy_data = bus_busy[_DATA]
    busy_wb = bus_busy[_WRITEBACK]
    busy_up = bus_busy[_UPGRADE]
    tx_data = bus_tx[_DATA]
    tx_wb = bus_tx[_WRITEBACK]
    tx_up = bus_tx[_UPGRADE]

    def flush_bus() -> None:
        bus._backlog_ns = bus_backlog
        bus._last_update_ns = bus_last_update
        bus.last_complete_ns = bus_last_complete
        bus_busy[_DATA] = busy_data
        bus_busy[_WRITEBACK] = busy_wb
        bus_busy[_UPGRADE] = busy_up
        bus_tx[_DATA] = tx_data
        bus_tx[_WRITEBACK] = tx_wb
        bus_tx[_UPGRADE] = tx_up

    def load_bus() -> tuple:
        return (
            bus._backlog_ns,
            bus._last_update_ns,
            bus.last_complete_ns,
            bus_busy[_DATA],
            bus_busy[_WRITEBACK],
            bus_busy[_UPGRADE],
            bus_tx[_DATA],
            bus_tx[_WRITEBACK],
            bus_tx[_UPGRADE],
        )

    def wcoh(at_ns: float, paddr: int, pline: int) -> float:
        # Inline replica of MemorySystem._write_coherence.
        nonlocal bus_backlog, bus_last_update, bus_last_complete
        nonlocal busy_up, tx_up
        sh = sharers.get(pline)
        if sh is None:
            sh = sharers[pline] = set()
        sh.add(cpu)
        word_bit = 1 << ((paddr & line_m1) // word)
        stall = 0.0
        others = [other for other in sh if other != cpu] if len(sh) > 1 else ()
        d = dirty.get(pline)
        if others or (d is not None and d != cpu):
            # Bus UPGRADE request (zero payload), inline.
            if at_ns > bus_last_update:
                bus_backlog = max(0.0, bus_backlog - (at_ns - bus_last_update))
                bus_last_update = at_ns
            grant = at_ns + bus_backlog
            bus_backlog += cmd_occ
            busy_up += cmd_occ
            tx_up += 1
            bus_last_complete = max(bus_last_complete, grant + cmd_occ)
            stall = grant - at_ns
        if others:
            pend = pending_map.get(pline)
            if pend is None:
                pend = pending_map[pline] = {}
            for other in others:
                if not llc_shared:
                    all_l2[other].invalidate(pline)
                if all_mid is not None:
                    all_mid[other].invalidate(pline)
                all_l1d[other].invalidate(pline)
                all_l1i[other].invalidate(pline)
                pend[other] = pend.get(other, 0) | word_bit
                sh.discard(other)
        pend = pending_map.get(pline)
        if pend is not None:
            for other in pend:
                if other != cpu:
                    pend[other] |= word_bit
        dirty[pline] = cpu
        return stall

    prev_vpage = -1
    result = None
    while True:
        start, end, t, busy_per_ref, fault_concurrency = yield result

        if prev_reset is not None and prev_reset[0]:
            prev_vpage = -1
            prev_reset[0] = False
        # Reload shared bus state (other CPUs ran between our chunks) and
        # reset the per-chunk statistic deltas.
        (
            bus_backlog,
            bus_last_update,
            bus_last_complete,
            busy_data,
            busy_wb,
            busy_up,
            tx_data,
            tx_wb,
            tx_up,
        ) = load_bus()
        kernel_total = 0.0
        fault_kernel = 0.0
        # Integer statistic deltas: commute, flushed once at chunk end.
        # ``fastd_d``/``fasti_d`` count filter retirements, which credit
        # the TLB hit counter and the matching L1 hit counter together.
        fastd_d = 0
        fasti_d = 0
        tlb_hits_d = 0
        tlb_misses_d = 0
        stats_tlb_misses_d = 0
        l1d_hits_d = 0
        l1d_misses_d = 0
        l1i_hits_d = 0
        l1i_misses_d = 0
        l2_hits_d = 0
        mid_hits_d = 0
        demand_d = 0
        # Float accumulator seeded from the live value so the addition
        # order matches the oracle's per-event updates bit for bit.
        l1_stall = stats.l1_stall_ns

        index = start
        while index < end:
            # ---- Vectorized hit filter: guaranteed on-chip hits.  The
            # most selective predicate (L1 residency) runs first so
            # fall-through references reject in one set lookup.
            kind = fast_kinds[index]
            vpage = vpages[index]
            if kind == 3:
                # Write filter: retire only when the written line is
                # already exclusively owned by this CPU (sole sharer,
                # dirty here, no pending invalidation masks) — then the
                # oracle's write-coherence step is a provable no-op with
                # zero stall.
                vline = vlines[index]
                if vline in l1d_resident and vpage in tlb_entries:
                    base = page_cache_get(vpage)
                    if base is not None:
                        pline = (base + offsets[index]) & line_mask
                        sh = sharers_get(pline)
                        if (
                            sh is not None
                            and len(sh) == 1
                            and cpu in sh
                            and dirty_get(pline) == cpu
                            and pline not in pending_map
                        ):
                            if vpage != prev_vpage:
                                del tlb_entries[vpage]
                                tlb_entries[vpage] = None
                                prev_vpage = vpage
                            ways = l1d_sets[(vline >> l1d_shift) % l1d_nsets]
                            if ways[0] != vline:
                                ways.remove(vline)
                                ways.insert(0, vline)
                            fastd_d += 1
                            t += busy_per_ref
                            index += 1
                            continue
            elif kind == 1:
                vline = vlines[index]
                if (
                    vline in l1d_resident
                    and vpage in tlb_entries
                    and vpage in page_cache
                ):
                    if vpage != prev_vpage:
                        del tlb_entries[vpage]
                        tlb_entries[vpage] = None
                        prev_vpage = vpage
                    ways = l1d_sets[(vline >> l1d_shift) % l1d_nsets]
                    if ways[0] != vline:
                        ways.remove(vline)
                        ways.insert(0, vline)
                    fastd_d += 1
                    t += busy_per_ref
                    index += 1
                    continue
            elif kind == 2:
                vline = vlines[index]
                if (
                    vline in l1i_resident
                    and vpage in tlb_entries
                    and vpage in page_cache
                ):
                    if vpage != prev_vpage:
                        del tlb_entries[vpage]
                        tlb_entries[vpage] = None
                        prev_vpage = vpage
                    ways = l1i_sets[(vline >> l1i_shift) % l1i_nsets]
                    if ways[0] != vline:
                        ways.remove(vline)
                        ways.insert(0, vline)
                    fasti_d += 1
                    t += busy_per_ref
                    index += 1
                    continue

            # ---- Slow path: inline replica of the engine's per-reference
            # loop plus MemorySystem.access.
            base = page_cache_get(vpage)
            if base is None:
                if not is_mapped(vpage):
                    flush_bus()
                    fault(vpage, cpu, concurrent_faults=fault_concurrency)
                    if fault_watch is not None:
                        fault_watch()
                    (
                        bus_backlog,
                        bus_last_update,
                        bus_last_complete,
                        busy_data,
                        busy_wb,
                        busy_up,
                        tx_data,
                        tx_wb,
                        tx_up,
                    ) = load_bus()
                    t += fault_ns
                    kernel_total += fault_ns
                    fault_kernel += fault_ns
                base = frame_of(vpage) * psz
                page_cache[vpage] = base
            if prefetches is not None:
                target = prefetches[index]
                if target:
                    tlb_strict = bool(target & 1)
                    target &= ~1
                    tpage = target // psz
                    tbase = page_cache.get(tpage)
                    if tbase is None:
                        # Target page not yet faulted: dropped exactly as
                        # a TLB-missing prefetch is.
                        stats.prefetches_issued += 1
                        stats.prefetches_dropped_tlb += 1
                    else:
                        flush_bus()
                        t += ms.prefetch(
                            cpu, t, target, tbase + target % psz, tlb_strict
                        )
                        # A footnote-1 prefetch may fill a TLB entry,
                        # putting a different page at the LRU tail — the
                        # move-to-back skip must not trust prev_vpage
                        # until the next reference re-establishes it.
                        prev_vpage = -1
                        (
                            bus_backlog,
                            bus_last_update,
                            bus_last_complete,
                            busy_data,
                            busy_wb,
                            busy_up,
                            tx_data,
                            tx_wb,
                            tx_up,
                        ) = load_bus()

            flag = flags[index]
            is_write = flag & 1
            paddr = base + offsets[index]

            # TLB (oracle: Tlb.access).  The move-to-back is skipped when
            # this page was the last one touched: it is already at the
            # LRU tail (same invariant as the hit filter's skip).
            kernel_ns = 0.0
            if vpage in tlb_entries:
                if vpage != prev_vpage:
                    del tlb_entries[vpage]
                    tlb_entries[vpage] = None
                tlb_hits_d += 1
            else:
                tlb_misses_d += 1
                tlb_entries[vpage] = None
                if len(tlb_entries) > tlb_cap:
                    del tlb_entries[next(iter(tlb_entries))]
                stats_tlb_misses_d += 1
                kernel_ns = tlb_miss_ns

            # On-chip cache (oracle: SetAssociativeCache.access_line).
            vline = vlines[index]
            if flag & 2:
                ways = l1i_sets[(vline >> l1i_shift) % l1i_nsets]
                l1_resident = l1i_resident
            else:
                ways = l1d_sets[(vline >> l1d_shift) % l1d_nsets]
                l1_resident = l1d_resident
            if vline in ways:
                ways.remove(vline)
                ways.insert(0, vline)
                if flag & 2:
                    l1i_hits_d += 1
                else:
                    l1d_hits_d += 1
                if is_write:
                    stall = wcoh(t, paddr, paddr & line_mask)
                else:
                    stall = 0.0
                t += busy_per_ref + stall + kernel_ns
                kernel_total += kernel_ns
                prev_vpage = vpage
                index += 1
                continue
            ways.insert(0, vline)
            l1_resident.add(vline)
            if len(ways) > (l1i_assoc if flag & 2 else l1d_assoc):
                l1_resident.discard(ways.pop())
            if flag & 2:
                l1i_misses_d += 1
            else:
                l1d_misses_d += 1

            # External cache (oracle: MemorySystem._l2_access).
            pline = paddr & line_mask
            if mid_sets is not None:
                # Mid-level probe (oracle: the _mid lookup/insert pair).
                mways = mid_sets[(pline >> mid_shift) % mid_nsets]
                if pline in mways:
                    mways.remove(pline)
                    mways.insert(0, pline)
                    mid_hits_d += 1
                    l2_hits_d += 1
                    stall = mid_hit_ns
                    l1_stall += stall
                    if is_write:
                        stall += wcoh(t + stall, paddr, pline)
                    t += busy_per_ref + stall + kernel_ns
                    kernel_total += kernel_ns
                    prev_vpage = vpage
                    index += 1
                    continue
                mways.insert(0, pline)
                mid_resident.add(pline)
                if len(mways) > mid_assoc:
                    mid_resident.discard(mways.pop())
            if pline in shadow_lines:
                del shadow_lines[pline]
                shadow_lines[pline] = None
                shadow_hit = True
            else:
                shadow_lines[pline] = None
                if len(shadow_lines) > shadow_cap:
                    del shadow_lines[next(iter(shadow_lines))]
                shadow_hit = False
            l2_ways = l2_sets[
                (pline >> l2_shift) % l2_nsets if l2_index is None
                else l2_index(pline)
            ]
            if pline in l2_ways:
                l2_ways.remove(pline)
                l2_ways.insert(0, pline)
                if llc_shared:
                    # Oracle's shared-LLC hit bookkeeping: register the
                    # reader as a sharer, consume its pending mask.
                    sh = sharers_get(pline)
                    if sh is None:
                        sharers[pline] = {cpu}
                    else:
                        sh.add(cpu)
                    pend = pending_map.get(pline)
                    if pend is not None and cpu in pend:
                        del pend[cpu]
                        if not pend:
                            del pending_map[pline]
                # ``inflight`` is empty unless prefetching is active, so
                # guard the per-hit tuple construction behind a truth
                # test (x + 0.0 == x exactly for the positive hit
                # latency, so skipping ``extra`` is bit-identical).
                if inflight and (cpu, pline) in inflight:
                    # Demand access caught up with an in-flight prefetch.
                    stats.prefetches_useful += 1
                    extra = max(0.0, inflight.pop((cpu, pline)) - t)
                    stall = l2_hit_ns + extra
                else:
                    stall = l2_hit_ns
                l2_hits_d += 1
                l1_stall += stall
                if is_write:
                    stall += wcoh(t + stall, paddr, pline)
            else:
                # Miss classification (oracle: _classify_miss).
                pend = pending_map.get(pline)
                if pend is not None and cpu in pend:
                    mask = pend.pop(cpu)
                    if not pend:
                        del pending_map[pline]
                    if mask & (1 << ((paddr & line_m1) // word)):
                        miss_kind = _TRUE
                    else:
                        miss_kind = _FALSE
                elif pline not in seen:
                    miss_kind = _COLD
                elif shadow_hit:
                    miss_kind = _CONFLICT
                else:
                    miss_kind = _CAPACITY
                l2_misses[miss_kind] += 1
                frame = paddr >> page_shift
                frame_misses[frame] += 1
                if miss_kind is _CONFLICT:
                    frame_conflicts[frame] += 1
                seen.add(pline)

                # Line fetch (oracle: _fetch_line) — bus DATA request
                # inline.
                if t > bus_last_update:
                    bus_backlog = max(0.0, bus_backlog - (t - bus_last_update))
                    bus_last_update = t
                grant = t + bus_backlog
                bus_backlog += data_occ
                busy_data += data_occ
                tx_data += 1
                bus_last_complete = max(bus_last_complete, grant + data_occ)
                queue_delay = grant - t
                downer = dirty.get(pline)
                if downer is not None and downer != cpu:
                    # Cache-to-cache transfer + owner writeback, inline.
                    if grant > bus_last_update:
                        bus_backlog = max(
                            0.0, bus_backlog - (grant - bus_last_update)
                        )
                        bus_last_update = grant
                    wb_grant = grant + bus_backlog
                    bus_backlog += data_occ
                    busy_wb += data_occ
                    tx_wb += 1
                    bus_last_complete = max(
                        bus_last_complete, wb_grant + data_occ
                    )
                    dirty[pline] = None
                    stall = queue_delay + remote_ns
                else:
                    stall = queue_delay + mem_ns
                l2_stall[miss_kind] += stall

                # Insert + eviction (oracle: insert / _handle_eviction).
                l2_ways.insert(0, pline)
                l2_resident.add(pline)
                if len(l2_ways) > l2_assoc:
                    victim = l2_ways.pop()
                    l2_resident.discard(victim)
                    vsh = sharers.get(victim)
                    if vsh is not None:
                        vsh.discard(cpu)
                    if dirty.get(victim) == cpu:
                        dirty[victim] = None
                        if t > bus_last_update:
                            bus_backlog = max(
                                0.0, bus_backlog - (t - bus_last_update)
                            )
                            bus_last_update = t
                        wb_grant = t + bus_backlog
                        bus_backlog += data_occ
                        busy_wb += data_occ
                        tx_wb += 1
                        bus_last_complete = max(
                            bus_last_complete, wb_grant + data_occ
                        )
                    if inflight and (cpu, victim) in inflight:
                        del inflight[(cpu, victim)]
                sh = sharers.get(pline)
                if sh is None:
                    sharers[pline] = {cpu}
                else:
                    sh.add(cpu)
                if is_write:
                    stall += wcoh(t + stall, paddr, pline)
                demand_d += 1

            t += busy_per_ref + stall + kernel_ns
            kernel_total += kernel_ns
            prev_vpage = vpage
            index += 1

        flush_bus()
        tlb.hits += tlb_hits_d + fastd_d + fasti_d
        tlb.misses += tlb_misses_d
        stats.tlb_misses += stats_tlb_misses_d
        stats.l1d_hits += l1d_hits_d + fastd_d
        stats.l1d_misses += l1d_misses_d
        stats.l1i_hits += l1i_hits_d + fasti_d
        stats.l1i_misses += l1i_misses_d
        stats.l2_hits += l2_hits_d
        stats.l1_stall_ns = l1_stall
        ms.mid_hits += mid_hits_d
        ms.demand_l2_misses += demand_d
        ms.fast_retired_data += fastd_d
        ms.fast_retired_instr += fasti_d
        result = (t, kernel_total, fault_kernel)
