"""Statistics: miss classification and per-CPU time accounting.

The categories mirror the breakdowns the paper reports in Figure 2:

* memory stall time split into on-chip (L1) misses that hit in the external
  cache, and external-cache misses classified as cold / capacity / conflict
  (replacement misses) or true / false sharing (communication misses);
* overhead time split into kernel, load imbalance, sequential, suppressed
  and synchronization;
* bus occupancy split into data transfers, writebacks and upgrades.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class MissKind(str, enum.Enum):
    """Classification of an external-cache miss.

    The ``str`` mixin gives members C-level hashing, which matters because
    the hot simulation loop indexes per-kind counters on every L2 miss.
    """

    COLD = "cold"
    CAPACITY = "capacity"
    CONFLICT = "conflict"
    TRUE_SHARING = "true_sharing"
    FALSE_SHARING = "false_sharing"

    @property
    def is_replacement(self) -> bool:
        """Replacement misses are what page mapping policies can eliminate."""
        return self in (MissKind.CAPACITY, MissKind.CONFLICT)

    @property
    def is_communication(self) -> bool:
        return self in (MissKind.TRUE_SHARING, MissKind.FALSE_SHARING)


#: Overhead categories of Figure 2's second graph.
OVERHEAD_CATEGORIES = (
    "kernel",
    "load_imbalance",
    "sequential",
    "suppressed",
    "synchronization",
)


@dataclass
class CpuStats:
    """Counters for a single processor."""

    instructions: int = 0
    l1d_hits: int = 0
    l1d_misses: int = 0
    l1i_hits: int = 0
    l1i_misses: int = 0
    l2_hits: int = 0
    l2_misses: dict[MissKind, int] = field(
        default_factory=lambda: {kind: 0 for kind in MissKind}
    )
    tlb_misses: int = 0
    prefetches_issued: int = 0
    prefetches_dropped_tlb: int = 0
    prefetches_useful: int = 0
    prefetch_stalls: int = 0
    prefetch_stall_ns: float = 0.0
    # Stall time in nanoseconds, by source.
    l1_stall_ns: float = 0.0
    l2_stall_ns: dict[MissKind, float] = field(
        default_factory=lambda: {kind: 0.0 for kind in MissKind}
    )
    # Overhead time in nanoseconds (Figure 2 categories).
    overhead_ns: dict[str, float] = field(
        default_factory=lambda: {name: 0.0 for name in OVERHEAD_CATEGORIES}
    )
    busy_ns: float = 0.0

    @property
    def total_l2_misses(self) -> int:
        return sum(self.l2_misses.values())

    @property
    def replacement_misses(self) -> int:
        return sum(n for kind, n in self.l2_misses.items() if kind.is_replacement)

    @property
    def communication_misses(self) -> int:
        return sum(n for kind, n in self.l2_misses.items() if kind.is_communication)

    @property
    def memory_stall_ns(self) -> float:
        return self.l1_stall_ns + sum(self.l2_stall_ns.values())

    @property
    def overhead_total_ns(self) -> float:
        return sum(self.overhead_ns.values())

    @property
    def execution_ns(self) -> float:
        """Busy time plus memory stalls (the 'application time' of Figure 2)."""
        return self.busy_ns + self.memory_stall_ns

    @property
    def total_ns(self) -> float:
        return self.execution_ns + self.overhead_total_ns

    def mcpi(self) -> float:
        """Memory cycles per instruction, at a 400MHz-equivalent cycle.

        An MCPI of 1.0 means half the useful execution time is memory stall
        (Section 4.1).  Computed over useful execution only: overhead time
        is excluded, matching the paper's definition.
        """
        if self.instructions == 0:
            return 0.0
        cycle_ns = self.busy_ns / self.instructions if self.busy_ns else 2.5
        return self.memory_stall_ns / cycle_ns / self.instructions

    def mcpi_breakdown(self) -> dict[str, float]:
        """MCPI split by stall source, for Figure 2's third graph."""
        if self.instructions == 0 or self.busy_ns == 0:
            return {}
        cycle_ns = self.busy_ns / self.instructions
        denom = cycle_ns * self.instructions
        parts = {"l1": self.l1_stall_ns / denom}
        for kind in MissKind:
            parts[kind.value] = self.l2_stall_ns[kind] / denom
        return parts


@dataclass
class MachineStats:
    """Aggregated statistics for a whole multiprocessor run."""

    cpus: list[CpuStats]

    @classmethod
    def for_cpus(cls, num_cpus: int) -> "MachineStats":
        return cls(cpus=[CpuStats() for _ in range(num_cpus)])

    def __getitem__(self, cpu: int) -> CpuStats:
        return self.cpus[cpu]

    @property
    def num_cpus(self) -> int:
        return len(self.cpus)

    def total_instructions(self) -> int:
        return sum(cpu.instructions for cpu in self.cpus)

    def total_misses(self, kind: MissKind) -> int:
        return sum(cpu.l2_misses[kind] for cpu in self.cpus)

    def total_l2_misses(self) -> int:
        return sum(cpu.total_l2_misses for cpu in self.cpus)

    def combined_execution_ns(self) -> float:
        """Sum of execution time over all processors (Figure 2's metric)."""
        return sum(cpu.total_ns for cpu in self.cpus)

    def combined_overhead_ns(self) -> dict[str, float]:
        totals = {name: 0.0 for name in OVERHEAD_CATEGORIES}
        for cpu in self.cpus:
            for name, value in cpu.overhead_ns.items():
                totals[name] += value
        return totals

    def mean_mcpi(self) -> float:
        active = [cpu for cpu in self.cpus if cpu.instructions]
        if not active:
            return 0.0
        return sum(cpu.mcpi() for cpu in active) / len(active)

    def miss_breakdown(self) -> dict[str, int]:
        return {kind.value: self.total_misses(kind) for kind in MissKind}

    def emit_metrics(self, registry) -> None:
        """Publish machine-wide totals into a ``repro.obs`` registry.

        Runs once at the end of a simulation (never in the hot loop), so
        it can afford to walk every CPU.  Metric names are stable and
        documented in docs/observability.md.
        """
        registry.counter("machine.instructions").inc(self.total_instructions())
        sums = {
            "machine.l1d_hits": sum(c.l1d_hits for c in self.cpus),
            "machine.l1d_misses": sum(c.l1d_misses for c in self.cpus),
            "machine.l1i_hits": sum(c.l1i_hits for c in self.cpus),
            "machine.l1i_misses": sum(c.l1i_misses for c in self.cpus),
            "machine.l2_hits": sum(c.l2_hits for c in self.cpus),
            "machine.tlb_misses": sum(c.tlb_misses for c in self.cpus),
            "machine.prefetches_issued": sum(c.prefetches_issued for c in self.cpus),
            "machine.prefetches_useful": sum(c.prefetches_useful for c in self.cpus),
        }
        for name, value in sums.items():
            registry.counter(name).inc(value)
        for kind in MissKind:
            registry.counter(f"machine.l2_misses.{kind.value}").inc(
                self.total_misses(kind)
            )
