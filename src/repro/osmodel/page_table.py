"""Per-process page table: virtual page -> physical frame."""

from __future__ import annotations

from typing import Iterator, Optional


class PageTable:
    """A flat virtual-to-physical page map for one address space."""

    def __init__(self, page_size: int) -> None:
        if page_size < 1:
            raise ValueError("page size must be positive")
        self.page_size = page_size
        self._map: dict[int, int] = {}

    def is_mapped(self, vpage: int) -> bool:
        return vpage in self._map

    def map(self, vpage: int, frame: int) -> None:
        if vpage in self._map:
            raise ValueError(f"virtual page {vpage} is already mapped")
        self._map[vpage] = frame

    def unmap(self, vpage: int) -> int:
        try:
            return self._map.pop(vpage)
        except KeyError:
            raise KeyError(f"virtual page {vpage} is not mapped") from None

    def frame_of(self, vpage: int) -> Optional[int]:
        return self._map.get(vpage)

    def translate(self, vaddr: int) -> int:
        """Translate a virtual byte address to a physical byte address."""
        vpage, offset = divmod(vaddr, self.page_size)
        frame = self._map.get(vpage)
        if frame is None:
            raise KeyError(f"virtual address {vaddr:#x} is not mapped")
        return frame * self.page_size + offset

    def mappings(self) -> Iterator[tuple[int, int]]:
        return iter(self._map.items())

    def __len__(self) -> int:
        return len(self._map)
