"""Dynamic page recoloring and the adaptive CDPC re-planner.

Section 2.1 describes dynamic policies that detect conflicts at run time
(via a cache-miss lookaside buffer or TLB state plus miss counters) and
*recolor* a page by copying it to a frame of a different color.  The paper
notes that "the performance of dynamic policies for multiprocessors has
not been studied" and predicts high overheads: every processor's TLB must
be flushed and the copy generates traffic.  :class:`DynamicRecolorer`
implements such a policy so the prediction can be tested against CDPC
(see ``benchmarks/test_ablation_dynamic.py``).

:class:`AdaptiveCdpc` is the middle ground the paper never needed on a
dedicated machine: it keeps the compile-time plan but *re-plans* the
color assignment transactionally when capacity churn (competing address
spaces arriving and departing, the host revoking physical memory) makes
the original colors unhonorable.  The plan's color classes are remapped
bijectively onto the colors that still have capacity — a bijection
preserves the plan's conflict-freedom — and a bounded number of
already-mapped pages migrate to their new colors.

Both recolorers share one transactional migration primitive: the
replacement frame is allocated *before* the page is unmapped, the copy
window is an explicit step (where a capacity revocation may strike), and
every abort path returns the staged frame and leaves the VM→frame
mapping and the free lists exactly as they were.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.machine.memory_system import MemorySystem
from repro.osmodel.physmem import OutOfMemoryError
from repro.osmodel.vm import VirtualMemory

#: Signature of the copy-window hook: ``(vpage, old_frame, new_frame)``.
#: Fault injectors and churn drivers use it to revoke capacity in the
#: worst possible window — after the copy destination is staged, before
#: the remap commits.  Raising :class:`OutOfMemoryError` from the hook
#: aborts the migration transactionally.
MigrationHook = Callable[[int, int, int], None]


def remap_plan_colors(
    plan_colors: dict[int, int],
    capacity_by_color: list[int],
    demand_by_color: Optional[list[int]] = None,
) -> dict[int, int]:
    """Remap a vpage → color plan onto a surviving-capacity distribution.

    Each plan color class carries a *demand* — how many of its pages
    still need a frame (by default the class's page count).  Classes are
    packed onto colors greedily, most demanding class first onto the
    color with the most *remaining* capacity, debiting the capacity as
    it goes.  When capacity is spread evenly this degenerates to a
    permutation that preserves the plan's separation; when churn has
    concentrated the grantable frames on a few colors, classes *fold*
    onto the honorable band — trading some cache-bin separation for
    placements that can actually be honored, which is the right trade
    while capacity is gone (the next re-plan spreads back out once it
    returns).  Classes with zero demand keep their color: all their
    pages are placed, so moving their hint would only trigger migrations
    and burn capacity the faulting classes need.  Ties break toward the
    lowest color so the remap is deterministic.
    """
    num_colors = len(capacity_by_color)
    usage = [0] * num_colors
    for color in plan_colors.values():
        usage[color % num_colors] += 1
    demand = list(demand_by_color) if demand_by_color is not None else usage
    remaining = list(capacity_by_color)
    permutation: dict[int, int] = {}
    for cls in sorted(range(num_colors), key=lambda c: (-demand[c], c)):
        if demand[cls] <= 0:
            permutation[cls] = cls
            continue
        target = max(range(num_colors), key=lambda c: (remaining[c], -c))
        permutation[cls] = target
        remaining[target] -= demand[cls]
    return {
        vpage: permutation[color % num_colors]
        for vpage, color in plan_colors.items()
    }


@dataclass
class RecolorEvent:
    """One page migration."""

    vpage: int
    old_frame: int
    new_frame: int
    conflicts: int


class MigrationAborted(Exception):
    """A migration ran out of memory; the staged frame was returned."""


def migration_cost_ns(vm: VirtualMemory, ms: MemorySystem,
                      shootdown_ns: float) -> float:
    """Cost of one migration: copy both ways over the bus + shootdowns."""
    page = vm.config.page_size
    copy_ns = 2 * page / ms.bus.bandwidth_bytes_per_ns
    return copy_ns + shootdown_ns * vm.config.num_cpus


def migrate_page(
    vm: VirtualMemory,
    ms: MemorySystem,
    vpage: int,
    frame: int,
    new_color: int,
    conflicts: int = 0,
    pre_remap_hook: Optional[MigrationHook] = None,
) -> Optional[RecolorEvent]:
    """Move one mapped page to a frame of ``new_color``, transactionally.

    The transaction order is: stage (allocate the destination frame),
    copy (the window where ``pre_remap_hook`` may revoke capacity or
    fail), verify (the mapping may have moved under a reclaim), commit
    (unmap + map + free the old frame + invalidate its cache lines).

    Returns the :class:`RecolorEvent` on commit, ``None`` when the
    migration was skipped because the mapping changed under us (the
    staged frame is returned to its free list), and raises
    :class:`MigrationAborted` when memory ran out — in every case the
    VM→frame mapping and the free lists are left consistent.
    """
    physmem = vm.physmem
    try:
        new_frame = physmem.alloc(new_color)
    except OutOfMemoryError as exc:
        raise MigrationAborted(str(exc)) from exc
    try:
        # The copy window: two page-sized bus transfers in the model.  A
        # capacity revocation (or an injected failure) may strike here.
        if pre_remap_hook is not None:
            pre_remap_hook(vpage, frame, new_frame)
    except OutOfMemoryError as exc:
        # Abort: return the staged frame; the page stays mapped where it
        # was and the free lists balance.
        physmem.free(new_frame)
        raise MigrationAborted(str(exc)) from exc
    if vm.page_table.frame_of(vpage) != frame:
        # The page moved (or was reclaimed) under us while the allocator
        # ran its reclaim path or during the copy window; drop this
        # migration and return the staged frame.
        physmem.free(new_frame)
        return None
    vm.page_table.unmap(vpage)
    vm.page_table.map(vpage, new_frame)
    physmem.free(frame)
    ms.invalidate_frame(frame)
    return RecolorEvent(vpage, frame, new_frame, conflicts)


@dataclass
class DynamicRecolorer:
    """Miss-counter-driven page recoloring (the dynamic policy of §2.1)."""

    vm: VirtualMemory
    ms: MemorySystem
    #: Conflict misses a page must accumulate (since the last inspection)
    #: before it is considered for recoloring.
    threshold: int = 32
    #: Pages migrated per inspection at most — real implementations bound
    #: this to limit kernel time per interval.
    max_per_step: int = 16
    #: Per-processor TLB-shootdown cost.
    shootdown_ns: float = 3000.0
    events: list[RecolorEvent] = field(default_factory=list)
    #: Inspection intervals cut short because no frame of the target color
    #: could be allocated (graceful degradation: migration is best-effort).
    aborted_steps: int = 0
    #: Optional degradation-event callback: ``(kind, detail)``.
    on_degradation: Optional[Callable[[str, dict], None]] = None
    #: Optional copy-window hook (see :data:`MigrationHook`): called
    #: between staging the destination frame and committing the remap, so
    #: capacity revocation can be injected mid-migration.
    pre_remap_hook: Optional[MigrationHook] = None

    def migration_cost_ns(self) -> float:
        """Cost of one migration: copy both ways over the bus + shootdowns."""
        return migration_cost_ns(self.vm, self.ms, self.shootdown_ns)

    def _least_loaded_color(self) -> int:
        histogram = self.vm.color_histogram()
        return histogram.index(min(histogram))

    def step(self, time_ns: float) -> tuple[list[RecolorEvent], float]:
        """Inspect counters and migrate the worst pages.

        Returns the migrations performed and the total kernel cost.  The
        inspected counters are consumed, so each interval reacts to fresh
        conflicts only.

        Each migration is transactional (see :func:`migrate_page`): the
        replacement frame is staged before the page is unmapped, and a
        failure anywhere in the window — allocation exhaustion, or a
        capacity revocation striking between the copy and the remap —
        returns the staged frame and abandons the remaining migrations
        for this interval (recorded in :attr:`aborted_steps`) with the
        VM→frame mapping and free lists intact.  Recoloring is an
        optimization, not a correctness requirement.
        """
        counters = self.ms.consume_frame_conflicts()
        if not counters:
            return [], 0.0
        reverse = {frame: vpage for vpage, frame in self.vm.page_table.mappings()}
        candidates = sorted(
            (
                (count, frame)
                for frame, count in counters.items()
                if count >= self.threshold and frame in reverse
            ),
            reverse=True,
        )[: self.max_per_step]

        performed: list[RecolorEvent] = []
        total_cost = 0.0
        for count, frame in candidates:
            vpage = reverse[frame]
            new_color = self._least_loaded_color()
            if new_color == self.vm.physmem.color_of(frame):
                continue
            try:
                event = migrate_page(
                    self.vm, self.ms, vpage, frame, new_color,
                    conflicts=count, pre_remap_hook=self.pre_remap_hook,
                )
            except MigrationAborted:
                self.aborted_steps += 1
                if self.on_degradation is not None:
                    self.on_degradation(
                        "aborted_recolor",
                        {"vpage": vpage, "wanted_color": new_color,
                         "migrated_before_abort": len(performed)},
                    )
                break
            if event is None:
                continue
            performed.append(event)
            total_cost += self.migration_cost_ns()
        self.events.extend(performed)
        return performed, total_cost

    @property
    def total_migrations(self) -> int:
        return len(self.events)


@dataclass
class ReplanEvent:
    """One adaptive re-plan: new hints plus the migrations that realized it."""

    #: The fresh vpage → color hint table (bijective remap of the plan).
    hints: dict[int, int]
    #: Migrations committed while realizing the new plan.
    migrations: list[RecolorEvent]
    #: True when the migration pass was cut short by exhaustion.
    aborted: bool
    #: Honor rate observed in the window that triggered the re-plan.
    honor_rate_before: float
    #: Kernel cost of the committed migrations.
    cost_ns: float


@dataclass
class AdaptiveCdpc:
    """Transactional mid-run color re-planning (the adaptive CDPC mode).

    When capacity churn collapses the hint honor rate, the static plan is
    not abandoned (the dynamic-recolorer fallback) but *re-planned*: the
    plan's color classes that still have pages to place are packed onto
    the colors ranked by surviving grantable capacity (free frames plus
    reclaimable held frames), and the hottest stale mapped pages migrate
    to their new colors — each migration transactional, every abort path
    leaving VM/physmem invariants intact.
    """

    vm: VirtualMemory
    ms: MemorySystem
    #: The compile-time vpage → color plan being adapted.
    plan_colors: dict[int, int]
    #: Pages migrated per re-plan at most (bounds kernel time, exactly as
    #: the dynamic recolorer bounds its inspection intervals).
    max_migrations: int = 32
    #: Per-processor TLB-shootdown cost (same model as the recolorer).
    shootdown_ns: float = 3000.0
    events: list[ReplanEvent] = field(default_factory=list)
    aborted_replans: int = 0
    on_degradation: Optional[Callable[[str, dict], None]] = None
    #: Copy-window hook forwarded to every migration.
    pre_remap_hook: Optional[MigrationHook] = None

    def capacity_by_color(self) -> list[int]:
        """Frames per color a fault of this address space can be *granted*.

        Free frames are granted directly.  *Held* frames (a competing
        address space's) count too: the held-frame reclaimer pages out a
        competitor frame of the exact requested color when one exists, so
        a color rich in held frames honors hints nearly as well as a free
        one.  Frames this address space already maps do NOT count —
        cold-page eviction picks the globally coldest page regardless of
        the requested color, so owning frames of a color does not make
        that color honorable.  *Revoked* frames are truly gone.
        """
        physmem = self.vm.physmem
        capacity = [
            physmem.free_frames_of_color(color)
            for color in range(physmem.num_colors)
        ]
        for frame in physmem.held_frames():
            capacity[physmem.color_of(frame)] += 1
        return capacity

    def replan(self, honor_rate: float = 0.0) -> ReplanEvent:
        """Re-map the plan onto surviving capacity and migrate the worst pages.

        The color permutation is computed by :meth:`remap_hints`; the
        migration pass then walks the mapped pages whose current color
        disagrees with the new hint, hottest (most recorded misses)
        first, and moves up to :attr:`max_migrations` of them.  A
        migration abort (exhaustion, or revocation striking in the copy
        window) abandons the rest of the pass — the new hint table is
        still installed, so subsequent faults land on honorable colors.
        """
        hints = self.remap_hints()
        migrations: list[RecolorEvent] = []
        aborted = False
        cost = 0.0
        physmem = self.vm.physmem
        frame_misses = self.ms.frame_misses
        stale = sorted(
            (
                (-frame_misses.get(frame, 0), vpage, frame)
                for vpage, frame in self.vm.page_table.mappings()
                if hints.get(vpage) is not None
                and physmem.color_of(frame) != hints[vpage]
            ),
        )[: self.max_migrations]
        for _priority, vpage, frame in stale:
            try:
                event = migrate_page(
                    self.vm, self.ms, vpage, frame, hints[vpage],
                    pre_remap_hook=self.pre_remap_hook,
                )
            except MigrationAborted:
                aborted = True
                self.aborted_replans += 1
                if self.on_degradation is not None:
                    self.on_degradation(
                        "aborted_replan",
                        {"vpage": vpage, "wanted_color": hints[vpage],
                         "migrated_before_abort": len(migrations)},
                    )
                break
            if event is None:
                continue
            migrations.append(event)
            cost += migration_cost_ns(self.vm, self.ms, self.shootdown_ns)
        outcome = ReplanEvent(
            hints=hints,
            migrations=migrations,
            aborted=aborted,
            honor_rate_before=honor_rate,
            cost_ns=cost,
        )
        self.events.append(outcome)
        if self.on_degradation is not None:
            self.on_degradation(
                "adaptive_replan",
                {"migrations": len(migrations), "aborted": aborted,
                 "honor_rate_before": round(honor_rate, 4)},
            )
        return outcome

    def demand_by_color(self) -> list[int]:
        """Pages per plan class that are *unmapped* — the future faults.

        A page evicted by revocation (or a reclaim cascade) re-faults the
        next time the program touches it; a page that is mapped does not
        fault at all.  Ranking classes by unmapped pages aims the re-plan
        at exactly the demand the new hints will serve.
        """
        num_colors = self.vm.physmem.num_colors
        frame_of = self.vm.page_table.frame_of
        demand = [0] * num_colors
        for vpage, color in self.plan_colors.items():
            if frame_of(vpage) is None:
                demand[color % num_colors] += 1
        return demand

    def remap_hints(self) -> dict[int, int]:
        """Remap the plan's colors onto surviving capacity.

        See :func:`remap_plan_colors`; capacity here is grantable frames
        (free plus reclaimable-with-matching-color held), demand the
        unmapped pages per class.
        """
        return remap_plan_colors(
            self.plan_colors,
            self.capacity_by_color(),
            demand_by_color=self.demand_by_color(),
        )

    @property
    def total_replans(self) -> int:
        return len(self.events)

    @property
    def total_migrations(self) -> int:
        return sum(len(event.migrations) for event in self.events)
