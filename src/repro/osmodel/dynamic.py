"""Dynamic page recoloring — the alternative the paper argues against.

Section 2.1 describes dynamic policies that detect conflicts at run time
(via a cache-miss lookaside buffer or TLB state plus miss counters) and
*recolor* a page by copying it to a frame of a different color.  The paper
notes that "the performance of dynamic policies for multiprocessors has
not been studied" and predicts high overheads: every processor's TLB must
be flushed and the copy generates traffic.  This module implements such a
policy so the prediction can be tested against CDPC (see
``benchmarks/test_ablation_dynamic.py``).

The recolorer inspects per-frame conflict-miss counters accumulated by the
memory system, picks the worst offenders, and migrates each to a frame of
the least-loaded color.  Costs modeled per migration, following the
paper's argument: a page copy (two page-sized bus transfers) plus a TLB
shootdown on every processor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.machine.memory_system import MemorySystem
from repro.osmodel.physmem import OutOfMemoryError
from repro.osmodel.vm import VirtualMemory


@dataclass
class RecolorEvent:
    """One page migration."""

    vpage: int
    old_frame: int
    new_frame: int
    conflicts: int


@dataclass
class DynamicRecolorer:
    """Miss-counter-driven page recoloring (the dynamic policy of §2.1)."""

    vm: VirtualMemory
    ms: MemorySystem
    #: Conflict misses a page must accumulate (since the last inspection)
    #: before it is considered for recoloring.
    threshold: int = 32
    #: Pages migrated per inspection at most — real implementations bound
    #: this to limit kernel time per interval.
    max_per_step: int = 16
    #: Per-processor TLB-shootdown cost.
    shootdown_ns: float = 3000.0
    events: list[RecolorEvent] = field(default_factory=list)
    #: Inspection intervals cut short because no frame of the target color
    #: could be allocated (graceful degradation: migration is best-effort).
    aborted_steps: int = 0
    #: Optional degradation-event callback: ``(kind, detail)``.
    on_degradation: Optional[Callable[[str, dict], None]] = None

    def migration_cost_ns(self) -> float:
        """Cost of one migration: copy both ways over the bus + shootdowns."""
        page = self.vm.config.page_size
        copy_ns = 2 * page / (self.ms.bus.bandwidth_bytes_per_ns)
        return copy_ns + self.shootdown_ns * self.vm.config.num_cpus

    def _least_loaded_color(self) -> int:
        histogram = self.vm.color_histogram()
        return histogram.index(min(histogram))

    def step(self, time_ns: float) -> tuple[list[RecolorEvent], float]:
        """Inspect counters and migrate the worst pages.

        Returns the migrations performed and the total kernel cost.  The
        inspected counters are consumed, so each interval reacts to fresh
        conflicts only.

        The step is transactional per page: the replacement frame is
        allocated *before* the page is unmapped, so a page is never left
        unmapped on allocation failure.  When the allocator is exhausted
        the remaining migrations for this interval are abandoned (recorded
        in :attr:`aborted_steps`) rather than crashing the simulation —
        recoloring is an optimization, not a correctness requirement.
        """
        counters = self.ms.consume_frame_conflicts()
        if not counters:
            return [], 0.0
        reverse = {frame: vpage for vpage, frame in self.vm.page_table.mappings()}
        candidates = sorted(
            (
                (count, frame)
                for frame, count in counters.items()
                if count >= self.threshold and frame in reverse
            ),
            reverse=True,
        )[: self.max_per_step]

        performed: list[RecolorEvent] = []
        total_cost = 0.0
        for count, frame in candidates:
            vpage = reverse[frame]
            new_color = self._least_loaded_color()
            if new_color == self.vm.physmem.color_of(frame):
                continue
            try:
                new_frame = self.vm.physmem.alloc(new_color)
            except OutOfMemoryError:
                self.aborted_steps += 1
                if self.on_degradation is not None:
                    self.on_degradation(
                        "aborted_recolor",
                        {"vpage": vpage, "wanted_color": new_color,
                         "migrated_before_abort": len(performed)},
                    )
                break
            if self.vm.page_table.frame_of(vpage) != frame:
                # The page moved (or was reclaimed) under us while the
                # allocator ran its reclaim path; drop this migration.
                self.vm.physmem.free(new_frame)
                continue
            self.vm.page_table.unmap(vpage)
            self.vm.page_table.map(vpage, new_frame)
            self.vm.physmem.free(frame)
            self.ms.invalidate_frame(frame)
            performed.append(RecolorEvent(vpage, frame, new_frame, count))
            total_cost += self.migration_cost_ns()
        self.events.extend(performed)
        return performed, total_cost

    @property
    def total_migrations(self) -> int:
        return len(self.events)
