"""Page mapping policies (Section 2.1 and Section 5.3).

* :class:`PageColoringPolicy` — IRIX / Windows NT style: consecutive
  virtual pages get consecutive colors, so conflicts only occur between
  pages whose virtual addresses differ by a multiple of the cache set size.
* :class:`BinHoppingPolicy` — Digital UNIX style: colors are assigned
  cyclically in page-*fault* order, exploiting temporal locality.  On a
  multiprocessor, concurrent faults race in the kernel, making the color of
  any given page nondeterministic; the policy models that race with a
  seedable perturbation.
* :class:`CdpcHintPolicy` — the paper's extension: a table of preferred
  colors (installed through the ``madvise``-style interface) consulted
  first, falling back to a native policy for unhinted pages.
* :class:`RandomPolicy` — a strawman baseline useful in ablations.
"""

from __future__ import annotations

import abc
import random
from typing import Optional


class MappingPolicy(abc.ABC):
    """Chooses a preferred color for a faulting virtual page."""

    name: str = "abstract"

    def __init__(self, num_colors: int) -> None:
        if num_colors < 1:
            raise ValueError("need at least one color")
        self.num_colors = num_colors

    @abc.abstractmethod
    def preferred_color(self, vpage: int, cpu: int = 0, concurrent_faults: int = 1) -> int:
        """Preferred color for ``vpage``, faulted by ``cpu``.

        ``concurrent_faults`` is the number of processors faulting in the
        same scheduling round; bin hopping uses it to model its kernel race.
        """

    def reset(self) -> None:
        """Forget accumulated state (e.g. between address spaces)."""


class PageColoringPolicy(MappingPolicy):
    """color = virtual page number mod number of colors."""

    name = "page_coloring"

    def preferred_color(self, vpage: int, cpu: int = 0, concurrent_faults: int = 1) -> int:
        return vpage % self.num_colors


class BinHoppingPolicy(MappingPolicy):
    """Cycle through colors in fault order.

    With ``race_seed`` set and more than one concurrent fault, each fault's
    color is perturbed within the window of concurrently racing faults,
    modeling the nondeterministic kernel race the paper describes.
    """

    name = "bin_hopping"

    def __init__(self, num_colors: int, race_seed: Optional[int] = None) -> None:
        super().__init__(num_colors)
        self._next = 0
        self._rng = random.Random(race_seed) if race_seed is not None else None

    def preferred_color(self, vpage: int, cpu: int = 0, concurrent_faults: int = 1) -> int:
        color = self._next
        if self._rng is not None and concurrent_faults > 1:
            color = (color + self._rng.randrange(concurrent_faults)) % self.num_colors
        self._next = (self._next + 1) % self.num_colors
        return color

    def reset(self) -> None:
        self._next = 0


class CdpcHintPolicy(MappingPolicy):
    """Preferred-color hint table over a fallback native policy.

    Mirrors the IRIX implementation of Section 5.3: the hint table is
    populated through the virtual-memory ``madvise`` extension, consulted
    at fault time, and unhinted pages use the operating system's native
    policy unchanged.
    """

    name = "cdpc"

    def __init__(self, num_colors: int, fallback: MappingPolicy) -> None:
        super().__init__(num_colors)
        if fallback.num_colors != num_colors:
            raise ValueError("fallback policy disagrees on the number of colors")
        self.fallback = fallback
        self._hints: dict[int, int] = {}

    def install_hints(self, hints: dict[int, int]) -> None:
        for vpage, color in hints.items():
            self._hints[vpage] = color % self.num_colors

    def clear_hints(self) -> None:
        self._hints.clear()

    @property
    def num_hints(self) -> int:
        return len(self._hints)

    def hint_for(self, vpage: int) -> Optional[int]:
        return self._hints.get(vpage)

    def preferred_color(self, vpage: int, cpu: int = 0, concurrent_faults: int = 1) -> int:
        hint = self._hints.get(vpage)
        if hint is not None:
            return hint
        return self.fallback.preferred_color(vpage, cpu, concurrent_faults)

    def reset(self) -> None:
        self.fallback.reset()


class RandomPolicy(MappingPolicy):
    """Uniformly random colors — a pessimistic baseline for ablations."""

    name = "random"

    def __init__(self, num_colors: int, seed: int = 0) -> None:
        super().__init__(num_colors)
        self._seed = seed
        self._rng = random.Random(seed)

    def preferred_color(self, vpage: int, cpu: int = 0, concurrent_faults: int = 1) -> int:
        return self._rng.randrange(self.num_colors)

    def reset(self) -> None:
        self._rng = random.Random(self._seed)


def make_policy(
    name: str, num_colors: int, race_seed: Optional[int] = None
) -> MappingPolicy:
    """Factory for the policies compared in the paper's evaluation."""
    if name == "page_coloring":
        return PageColoringPolicy(num_colors)
    if name == "bin_hopping":
        return BinHoppingPolicy(num_colors, race_seed=race_seed)
    if name == "cdpc":
        return CdpcHintPolicy(num_colors, fallback=PageColoringPolicy(num_colors))
    if name == "cdpc_bin_hopping":
        return CdpcHintPolicy(num_colors, fallback=BinHoppingPolicy(num_colors, race_seed))
    if name == "random":
        return RandomPolicy(num_colors, seed=race_seed or 0)
    raise ValueError(f"unknown mapping policy: {name!r}")
