"""Virtual memory manager: page-fault servicing and the CDPC interfaces.

Two CDPC delivery mechanisms from Section 5.3 are modeled:

* ``madvise_colors`` — the IRIX kernel extension: hints go into a table
  consulted by the fault handler (requires a :class:`CdpcHintPolicy`).
* ``touch_pages`` — the Digital UNIX user-level trick: with a bin-hopping
  native policy, faulting pages in a chosen order produces the desired
  mapping without kernel changes, at the cost of serializing the faults.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.machine.config import MachineConfig
from repro.osmodel.page_table import PageTable
from repro.osmodel.physmem import PhysicalMemory
from repro.osmodel.policies import CdpcHintPolicy, MappingPolicy


class VirtualMemory:
    """One address space on one machine, under one mapping policy."""

    #: Cost of servicing a page fault, charged as kernel overhead.
    PAGE_FAULT_NS = 2000.0

    def __init__(
        self,
        config: MachineConfig,
        policy: MappingPolicy,
        physmem: Optional[PhysicalMemory] = None,
        memory_frames: Optional[int] = None,
    ) -> None:
        self.config = config
        self.policy = policy
        if policy.num_colors != config.num_colors:
            raise ValueError(
                f"policy has {policy.num_colors} colors but the machine has "
                f"{config.num_colors}"
            )
        if physmem is None:
            # Default: enough physical memory for 4x the largest working
            # set we simulate, in whole multiples of the color count.
            # Non-classic geometries supply their learned frame->color
            # map; the classic bit-field keeps the allocator's own
            # ``frame % num_colors`` arithmetic (identical results,
            # cheaper per call).
            frames = memory_frames or config.num_colors * 64
            color_function = config.color_function
            color_fn = None if color_function.classic else color_function.color_of
            physmem = PhysicalMemory(frames, config.num_colors, color_fn=color_fn)
        self.physmem = physmem
        self.page_table = PageTable(config.page_size)
        self.faults = 0
        self.fault_ns_total = 0.0

    # ------------------------------------------------------------------
    # Fault path

    def fault(self, vpage: int, cpu: int = 0, concurrent_faults: int = 1) -> int:
        """Service a page fault; returns the allocated frame."""
        if self.page_table.is_mapped(vpage):
            raise ValueError(f"virtual page {vpage} is already mapped")
        color = self.policy.preferred_color(vpage, cpu, concurrent_faults)
        frame = self.physmem.alloc(color)
        self.page_table.map(vpage, frame)
        self.faults += 1
        self.fault_ns_total += self.PAGE_FAULT_NS
        return frame

    def ensure_mapped(self, vpage: int, cpu: int = 0, concurrent_faults: int = 1) -> bool:
        """Map a page if needed.  Returns True when a fault was taken."""
        if self.page_table.is_mapped(vpage):
            return False
        self.fault(vpage, cpu, concurrent_faults)
        return True

    def translate(self, vaddr: int) -> int:
        return self.page_table.translate(vaddr)

    def color_of_vpage(self, vpage: int) -> int:
        frame = self.page_table.frame_of(vpage)
        if frame is None:
            raise KeyError(f"virtual page {vpage} is not mapped")
        return self.physmem.color_of(frame)

    # ------------------------------------------------------------------
    # CDPC interfaces (Section 5.3)

    def madvise_colors(self, hints: dict[int, int]) -> int:
        """Install preferred-color hints via the IRIX-style kernel extension.

        Returns the number of hints installed.  Raises ``TypeError`` when
        the mapping policy has no hint table (i.e. is not CDPC-capable),
        mirroring an OS without the extension.
        """
        if not isinstance(self.policy, CdpcHintPolicy):
            raise TypeError(
                f"policy {self.policy.name!r} does not accept page color hints"
            )
        self.policy.install_hints(hints)
        return len(hints)

    def touch_pages(self, vpages: Sequence[int]) -> int:
        """Fault pages in a specific order (the Digital UNIX user-level CDPC).

        All faults are serialized on one CPU, matching the drawback noted in
        Section 5.3.  Already-mapped pages are skipped.  Returns the number
        of faults taken.
        """
        taken = 0
        for vpage in vpages:
            if self.ensure_mapped(vpage, cpu=0, concurrent_faults=1):
                taken += 1
        return taken

    # ------------------------------------------------------------------
    # Introspection

    def mapped_colors(self, vpages: Iterable[int]) -> list[int]:
        return [self.color_of_vpage(vpage) for vpage in vpages]

    def color_histogram(self) -> list[int]:
        """Number of mapped pages per color, for utilization analysis."""
        histogram = [0] * self.config.num_colors
        for _vpage, frame in self.page_table.mappings():
            histogram[self.physmem.color_of(frame)] += 1
        return histogram
