"""Physical memory manager with per-color free lists.

Operating systems group physical pages into *colors*: two pages have the
same color when they map to the same region of a physically-indexed cache
(Section 2.1).  The manager here keeps one free list per color so a mapping
policy's preferred color can be honored in O(1).  When the preferred color
has no free frames — memory pressure — the allocator falls back to the
nearest color with free frames, so preferred colors remain strictly hints.
"""

from __future__ import annotations

from collections import deque
from typing import Optional


class OutOfMemoryError(RuntimeError):
    """No free physical frames remain."""


class PhysicalMemory:
    """Frame allocator over ``num_frames`` frames and ``num_colors`` colors.

    Frame ``f`` has color ``f % num_colors``, matching contiguous physical
    memory under a direct-mapped (or set-associative) physically-indexed
    cache.
    """

    def __init__(self, num_frames: int, num_colors: int) -> None:
        if num_colors < 1:
            raise ValueError("need at least one color")
        if num_frames < num_colors:
            raise ValueError("need at least one frame per color")
        self.num_frames = num_frames
        self.num_colors = num_colors
        self._free: list[deque[int]] = [deque() for _ in range(num_colors)]
        for frame in range(num_frames):
            self._free[frame % num_colors].append(frame)
        self.allocations = 0
        self.hint_requests = 0
        self.hints_honored = 0

    def color_of(self, frame: int) -> int:
        return frame % self.num_colors

    def free_frames(self) -> int:
        return sum(len(q) for q in self._free)

    def free_frames_of_color(self, color: int) -> int:
        return len(self._free[color])

    def alloc(self, preferred_color: Optional[int] = None) -> int:
        """Allocate a frame, preferring ``preferred_color`` when possible.

        Fallback search spirals outward from the preferred color so that a
        near-miss lands in a nearby cache region rather than a random one.
        """
        self.allocations += 1
        if preferred_color is not None:
            self.hint_requests += 1
            color = preferred_color % self.num_colors
            if self._free[color]:
                self.hints_honored += 1
                return self._free[color].popleft()
            for distance in range(1, self.num_colors):
                for candidate in (
                    (color + distance) % self.num_colors,
                    (color - distance) % self.num_colors,
                ):
                    if self._free[candidate]:
                        return self._free[candidate].popleft()
            raise OutOfMemoryError("no free frames")
        for queue in self._free:
            if queue:
                return queue.popleft()
        raise OutOfMemoryError("no free frames")

    def free(self, frame: int) -> None:
        if not 0 <= frame < self.num_frames:
            raise ValueError(f"frame {frame} out of range")
        self._free[self.color_of(frame)].append(frame)

    def occupy_fraction(self, fraction: float, seed: int = 0) -> list[int]:
        """Simulate memory pressure by removing a fraction of free frames.

        Returns the occupied frames so tests can release them.  Frames are
        taken pseudo-randomly so some colors become scarcer than others,
        which is what defeats hint honoring in practice.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be within [0, 1]")
        import random

        rng = random.Random(seed)
        all_free = [frame for queue in self._free for frame in queue]
        rng.shuffle(all_free)
        taken = all_free[: int(len(all_free) * fraction)]
        taken_set = set(taken)
        for color, queue in enumerate(self._free):
            self._free[color] = deque(f for f in queue if f not in taken_set)
        return taken

    @property
    def hint_honor_rate(self) -> float:
        if self.hint_requests == 0:
            return 1.0
        return self.hints_honored / self.hint_requests
