"""Physical memory manager with per-color free lists.

Operating systems group physical pages into *colors*: two pages have the
same color when they map to the same region of a physically-indexed cache
(Section 2.1).  The manager here keeps one free list per color so a mapping
policy's preferred color can be honored in O(1).  When the preferred color
has no free frames — memory pressure — the allocator falls back to the
nearest color with free frames, so preferred colors remain strictly hints.

Beyond the happy path, the manager models the degradation story of
Section 5.3 explicitly:

* every frame is in exactly one of four states — *free* (on a per-color
  free list), *allocated* (handed out by :meth:`alloc`), *held* (owned
  by a competing address space, see :meth:`seize_frames`), or *revoked*
  (physically removed from the machine's capacity by the host, see
  :meth:`revoke_frames`);
* exhaustion consults a pluggable :class:`ReclaimPolicy` before raising
  :class:`OutOfMemoryError`, so a pressured system can evict cold frames
  instead of crashing;
* hinted allocations record their *fallback distance* (ring distance from
  the preferred color to the color actually granted) in a histogram, so
  degradation under pressure is observable rather than silent;
* an optional ``fail_hook`` lets a fault injector make individual
  allocations behave as if memory were exhausted, exercising the reclaim
  and abort paths deterministically.
"""

from __future__ import annotations

import abc
import random
from collections import deque
from typing import Callable, Optional

#: Signature of the degradation-event callback: ``(kind, detail)``.
EventHook = Callable[[str, dict], None]


class OutOfMemoryError(RuntimeError):
    """No free physical frames remain (and reclaim found nothing)."""


class ReclaimPolicy(abc.ABC):
    """Frees a frame when the allocator is exhausted.

    ``reclaim`` must return a frame that is *now on a free list* (the
    policy performs whatever eviction puts it there — releasing a held
    frame, unmapping a cold page — before returning), or ``None`` when it
    cannot help.  The allocator then claims that exact frame.
    """

    @abc.abstractmethod
    def reclaim(
        self, physmem: "PhysicalMemory", preferred_color: Optional[int]
    ) -> Optional[int]:
        """Evict something and return the freed frame, or ``None``."""


class PhysicalMemory:
    """Frame allocator over ``num_frames`` frames and ``num_colors`` colors.

    By default frame ``f`` has color ``f % num_colors``, matching
    contiguous physical memory under a direct-mapped (or set-associative)
    physically-indexed cache.  Machines whose LLC hashes the physical
    address (:mod:`repro.machine.hierarchy`) pass ``color_fn`` — the
    geometry's ``color_of(frame)`` — so the free lists are built from the
    *learned* color map instead of the bit-field assumption.  The
    allocator never computes a color itself after construction; every
    path goes through :meth:`color_of`.
    """

    def __init__(
        self,
        num_frames: int,
        num_colors: int,
        color_fn: Optional[Callable[[int], int]] = None,
    ) -> None:
        if num_colors < 1:
            raise ValueError("need at least one color")
        if num_frames < num_colors:
            raise ValueError("need at least one frame per color")
        self.num_frames = num_frames
        self.num_colors = num_colors
        self._color_fn = color_fn
        self._free: list[deque[int]] = [deque() for _ in range(num_colors)]
        for frame in range(num_frames):
            self._free[self.color_of(frame)].append(frame)
        if color_fn is not None and any(not queue for queue in self._free):
            empty = [c for c, queue in enumerate(self._free) if not queue]
            raise ValueError(
                f"color function leaves color(s) {empty[:4]} with no frames "
                f"in a pool of {num_frames}; the geometry's hash is "
                "unbalanced for this pool size"
            )
        self._allocated: set[int] = set()
        self._held: set[int] = set()
        self._revoked: set[int] = set()
        self.allocations = 0
        self.hint_requests = 0
        self.hints_honored = 0
        self.reclaims = 0
        self.forced_failures = 0
        self.frames_revoked_total = 0
        self.frames_restored_total = 0
        #: Frames a revocation wanted but could not obtain (free lists dry
        #: and reclaim exhausted) — the shortfall is visible, not silent.
        self.revocation_shortfall = 0
        #: Ring distance from the preferred color to the granted color, per
        #: hinted allocation.  ``{0: n}`` means every hint was honored.
        self.fallback_distance: dict[int, int] = {}
        self.reclaim_policy: Optional[ReclaimPolicy] = None
        #: Reclaim policy consulted by :meth:`revoke_frames` when the free
        #: lists cannot cover a revocation.  Kept separate from the
        #: allocation-path ``reclaim_policy`` because the two answer
        #: different questions: an exhausted *allocation* may evict the
        #: competing address space's frames, but a host *revoking
        #: capacity* must not confiscate another tenant's memory — the
        #: subject's own cold pages pay.  ``None`` falls back to
        #: ``reclaim_policy``.
        self.revocation_policy: Optional[ReclaimPolicy] = None
        self.event_hook: Optional[EventHook] = None
        #: Injected-failure predicate: called with the preferred color;
        #: returning True makes that allocation behave as if memory were
        #: exhausted (free lists skipped, reclaim consulted, else OOM).
        self.fail_hook: Optional[Callable[[Optional[int]], bool]] = None
        #: Observability taps (``repro.obs``).  ``distance_hook`` receives
        #: each hinted allocation's fallback distance; ``profiler`` is a
        #: :class:`repro.obs.SampledProfiler` timing the allocation spiral.
        #: Both default to ``None`` — the unobserved allocator pays one
        #: identity check per call.
        self.distance_hook: Optional[Callable[[float], None]] = None
        self.profiler = None

    # ------------------------------------------------------------------
    # Introspection

    def color_of(self, frame: int) -> int:
        if self._color_fn is not None:
            return self._color_fn(frame)
        return frame % self.num_colors

    def color_distance(self, a: int, b: int) -> int:
        """Ring distance between two colors."""
        d = abs(a - b) % self.num_colors
        return min(d, self.num_colors - d)

    def free_frames(self) -> int:
        return sum(len(q) for q in self._free)

    def free_frames_of_color(self, color: int) -> int:
        return len(self._free[color])

    def allocated_frames(self) -> frozenset[int]:
        return frozenset(self._allocated)

    def held_frames(self) -> frozenset[int]:
        """Frames owned by competing address spaces (memory pressure)."""
        return frozenset(self._held)

    def free_lists(self) -> list[tuple[int, ...]]:
        """Snapshot of the per-color free lists (for the invariant checker)."""
        return [tuple(queue) for queue in self._free]

    def fallback_candidates(self, color: int):
        """Yield ``(distance, candidate_color)`` in spiral fallback order.

        Each color appears at most once: with an even color count the
        ``+distance`` and ``-distance`` probes coincide at
        ``num_colors // 2``, and the dedup here keeps that candidate from
        being probed twice.
        """
        seen = {color}
        for distance in range(1, self.num_colors):
            for candidate in (
                (color + distance) % self.num_colors,
                (color - distance) % self.num_colors,
            ):
                if candidate not in seen:
                    seen.add(candidate)
                    yield distance, candidate

    # ------------------------------------------------------------------
    # Allocation

    def _emit(self, kind: str, detail: dict) -> None:
        if self.event_hook is not None:
            self.event_hook(kind, detail)

    def _claim(self, frame: int) -> int:
        self._allocated.add(frame)
        return frame

    def _record_distance(self, distance: int) -> None:
        self.fallback_distance[distance] = self.fallback_distance.get(distance, 0) + 1
        if self.distance_hook is not None:
            self.distance_hook(distance)

    def _reclaim_into(self, preferred_color: Optional[int]) -> Optional[int]:
        """Ask the reclaim policy for a frame; returns it claimed-ready."""
        if self.reclaim_policy is None:
            return None
        frame = self.reclaim_policy.reclaim(self, preferred_color)
        if frame is None:
            return None
        # The policy must have put the frame on its free list; take it.
        self._free[self.color_of(frame)].remove(frame)
        self.reclaims += 1
        self._emit(
            "reclaim",
            {"frame": frame, "color": self.color_of(frame),
             "preferred_color": preferred_color},
        )
        return frame

    def alloc(self, preferred_color: Optional[int] = None) -> int:
        """Allocate a frame, preferring ``preferred_color`` when possible.

        Fallback search spirals outward from the preferred color so that a
        near-miss lands in a nearby cache region rather than a random one.
        When every free list is empty (or a fault injector forces a miss),
        the reclaim policy is consulted before raising
        :class:`OutOfMemoryError`.
        """
        profiler = self.profiler
        if profiler is None:
            return self._alloc(preferred_color)
        started = profiler.tick()
        try:
            return self._alloc(preferred_color)
        finally:
            if started is not None:
                profiler.observe(started)

    def _alloc(self, preferred_color: Optional[int]) -> int:
        self.allocations += 1
        injected = False
        if self.fail_hook is not None and self.fail_hook(preferred_color):
            injected = True
            self.forced_failures += 1
            self._emit("forced_alloc_failure", {"preferred_color": preferred_color})
        if preferred_color is not None:
            self.hint_requests += 1
            color = preferred_color % self.num_colors
            if not injected:
                if self._free[color]:
                    self.hints_honored += 1
                    self._record_distance(0)
                    return self._claim(self._free[color].popleft())
                for distance, candidate in self.fallback_candidates(color):
                    if self._free[candidate]:
                        self._record_distance(distance)
                        return self._claim(self._free[candidate].popleft())
            frame = self._reclaim_into(color)
            if frame is not None:
                granted = self.color_of(frame)
                if granted == color:
                    self.hints_honored += 1
                self._record_distance(self.color_distance(granted, color))
                return self._claim(frame)
            raise OutOfMemoryError("no free frames")
        if not injected:
            for queue in self._free:
                if queue:
                    return self._claim(queue.popleft())
        frame = self._reclaim_into(None)
        if frame is not None:
            return self._claim(frame)
        raise OutOfMemoryError("no free frames")

    def free(self, frame: int) -> None:
        """Return a frame to its free list.

        Accepts frames handed out by :meth:`alloc` and frames held by a
        competing address space (:meth:`seize_frames` /
        :meth:`occupy_fraction`); freeing a frame that is in neither state
        is a double free and raises ``ValueError``.
        """
        if not 0 <= frame < self.num_frames:
            raise ValueError(f"frame {frame} out of range")
        if frame in self._allocated:
            self._allocated.discard(frame)
        elif frame in self._held:
            self._held.discard(frame)
        else:
            raise ValueError(f"double free of frame {frame}")
        self._free[self.color_of(frame)].append(frame)

    # ------------------------------------------------------------------
    # Competing address spaces (memory pressure)

    def occupy_fraction(self, fraction: float, seed: int = 0) -> list[int]:
        """Simulate memory pressure by removing a fraction of free frames.

        Returns the occupied frames so tests can release them (via
        :meth:`free`).  Frames are taken pseudo-randomly so some colors
        become scarcer than others, which is what defeats hint honoring in
        practice.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be within [0, 1]")
        rng = random.Random(seed)
        all_free = [frame for queue in self._free for frame in queue]
        rng.shuffle(all_free)
        taken = all_free[: int(len(all_free) * fraction)]
        taken_set = set(taken)
        for color, queue in enumerate(self._free):
            self._free[color] = deque(f for f in queue if f not in taken_set)
        self._held.update(taken_set)
        return taken

    def seize_frames(
        self,
        count: int,
        rng: random.Random,
        preferred_colors: Optional[set[int]] = None,
    ) -> list[int]:
        """A competing address space grabs up to ``count`` free frames.

        With ``preferred_colors`` the competitor concentrates on those
        colors first (color-skewed pressure — the case that defeats hints
        hardest), spilling onto the remaining colors only once the
        preferred ones are dry.  Seized frames move to the *held* state and
        come back through :meth:`release_held` or :meth:`free`.
        """
        if count <= 0:
            return []
        skewed: list[int] = []
        rest: list[int] = []
        for color, queue in enumerate(self._free):
            bucket = (
                skewed
                if preferred_colors is not None and color in preferred_colors
                else rest
            )
            bucket.extend(queue)
        rng.shuffle(skewed)
        rng.shuffle(rest)
        taken = (skewed + rest)[:count]
        taken_set = set(taken)
        for color, queue in enumerate(self._free):
            self._free[color] = deque(f for f in queue if f not in taken_set)
        self._held.update(taken_set)
        return taken

    def release_held(self, count: int, rng: random.Random) -> list[int]:
        """The competing address space frees up to ``count`` held frames."""
        if count <= 0 or not self._held:
            return []
        held = sorted(self._held)
        rng.shuffle(held)
        released = held[:count]
        for frame in released:
            self._held.discard(frame)
            self._free[self.color_of(frame)].append(frame)
        return released

    # ------------------------------------------------------------------
    # Capacity revocation (dynamic physical-memory capacity)

    def revoked_frames(self) -> frozenset[int]:
        """Frames the host has revoked from the machine's capacity."""
        return frozenset(self._revoked)

    def capacity_frames(self) -> int:
        """Frames currently part of the machine (total minus revoked)."""
        return self.num_frames - len(self._revoked)

    def _revocation_victim(
        self, free_counts: list[int], protect_colors: Optional[set[int]]
    ) -> Optional[int]:
        """Color-aware victim selection: drain the richest color first.

        Taking frames from the color with the most free frames keeps the
        per-color free lists balanced, so preferred-color hints stay
        honorable for as long as possible.  ``protect_colors`` (e.g. the
        colors a CDPC plan leans on) are only drained once every other
        color is dry.  Deterministic: ties break toward the lowest color.
        """
        best: Optional[int] = None
        best_key: Optional[tuple[int, int]] = None
        for color, count in enumerate(free_counts):
            if count <= 0:
                continue
            protected = (
                1 if protect_colors is not None and color in protect_colors else 0
            )
            key = (protected, -count)
            if best_key is None or key < best_key:
                best, best_key = color, key
        return best

    def revoke_frames(
        self,
        count: int,
        protect_colors: Optional[set[int]] = None,
        reclaim: bool = True,
    ) -> list[int]:
        """The host revokes up to ``count`` frames of physical capacity.

        Revocation is a first-class capacity event, not a fault: revoked
        frames leave the machine entirely (state *revoked*) until
        :meth:`restore_frames` returns them.  Victims are chosen
        color-aware from the free lists; when the free lists cannot cover
        the request and ``reclaim`` is allowed, the reclaim policy is
        consulted (evicting held frames or cold mapped pages) so the
        revocation succeeds by shrinking the tenant instead of failing.
        Any remaining shortfall is recorded in
        :attr:`revocation_shortfall` and reported via the event hook —
        never raised.
        """
        if count <= 0:
            return []
        taken: list[int] = []
        free_counts = [len(queue) for queue in self._free]
        while len(taken) < count:
            color = self._revocation_victim(free_counts, protect_colors)
            if color is None:
                if not reclaim or self._reclaim_for_revocation(protect_colors) is None:
                    break
                free_counts = [len(queue) for queue in self._free]
                continue
            frame = self._free[color].pop()  # newest free frame of the color
            free_counts[color] -= 1
            self._revoked.add(frame)
            taken.append(frame)
        self.frames_revoked_total += len(taken)
        shortfall = count - len(taken)
        if shortfall > 0:
            self.revocation_shortfall += shortfall
        self._emit(
            "capacity_revoked",
            {"requested": count, "revoked": len(taken), "shortfall": shortfall,
             "capacity": self.capacity_frames()},
        )
        return taken

    def _reclaim_for_revocation(
        self, protect_colors: Optional[set[int]]
    ) -> Optional[int]:
        """Free one frame so a revocation can proceed; ``None`` when dry."""
        policy = self.revocation_policy or self.reclaim_policy
        if policy is None:
            return None
        frame = policy.reclaim(self, None)
        if frame is not None:
            self.reclaims += 1
            self._emit(
                "reclaim",
                {"frame": frame, "color": self.color_of(frame),
                 "preferred_color": None},
            )
        return frame

    def restore_frames(self, count: int) -> list[int]:
        """The host restores up to ``count`` revoked frames of capacity.

        Frames return to their color's free list in deterministic
        (sorted) order; color balance recovers naturally because
        revocation drained the richest colors first.
        """
        if count <= 0 or not self._revoked:
            return []
        restored = sorted(self._revoked)[:count]
        for frame in restored:
            self._revoked.discard(frame)
            self._free[self.color_of(frame)].append(frame)
        self.frames_restored_total += len(restored)
        self._emit(
            "capacity_restored",
            {"restored": len(restored), "capacity": self.capacity_frames()},
        )
        return restored

    @property
    def hint_honor_rate(self) -> float:
        if self.hint_requests == 0:
            return 1.0
        return self.hints_honored / self.hint_requests


class HeldFrameReclaimer(ReclaimPolicy):
    """Evict a competing address space's frame (preferring the hint color).

    Models the OS paging out another process under pressure: the victim is
    a *held* frame, ideally of the requested color so the hint is still
    honored — the cheapest graceful-degradation step.
    """

    def reclaim(
        self, physmem: PhysicalMemory, preferred_color: Optional[int]
    ) -> Optional[int]:
        held = physmem.held_frames()
        if not held:
            return None
        victim: Optional[int] = None
        if preferred_color is not None:
            matching = [f for f in held if physmem.color_of(f) == preferred_color]
            if matching:
                victim = min(matching)
        if victim is None:
            victim = min(held)
        physmem.free(victim)
        return victim


class CascadeReclaimer(ReclaimPolicy):
    """Try a sequence of reclaim policies in order."""

    def __init__(self, policies: list[ReclaimPolicy]) -> None:
        self.policies = list(policies)

    def reclaim(
        self, physmem: PhysicalMemory, preferred_color: Optional[int]
    ) -> Optional[int]:
        for policy in self.policies:
            frame = policy.reclaim(physmem, preferred_color)
            if frame is not None:
                return frame
        return None
