"""Operating-system virtual-memory substrate.

Stands in for the two commercial operating systems of the paper: IRIX 5.3
(page coloring policy, extended with a CDPC hint table via ``madvise``) and
Digital UNIX (bin hopping policy, where CDPC is implemented without kernel
changes by touching pages in a chosen order).  The physical memory manager
keeps per-color free lists and treats preferred colors strictly as hints —
under memory pressure a fault falls back to the nearest available color,
exactly the degradation mode Section 5 describes.
"""

from repro.osmodel.dynamic import (
    AdaptiveCdpc,
    DynamicRecolorer,
    MigrationAborted,
    RecolorEvent,
    ReplanEvent,
)
from repro.osmodel.page_table import PageTable
from repro.osmodel.physmem import (
    CascadeReclaimer,
    HeldFrameReclaimer,
    OutOfMemoryError,
    PhysicalMemory,
    ReclaimPolicy,
)
from repro.osmodel.policies import (
    BinHoppingPolicy,
    CdpcHintPolicy,
    MappingPolicy,
    PageColoringPolicy,
    RandomPolicy,
    make_policy,
)
from repro.osmodel.vm import VirtualMemory

__all__ = [
    "AdaptiveCdpc",
    "BinHoppingPolicy",
    "CascadeReclaimer",
    "DynamicRecolorer",
    "HeldFrameReclaimer",
    "MigrationAborted",
    "OutOfMemoryError",
    "RecolorEvent",
    "ReplanEvent",
    "CdpcHintPolicy",
    "MappingPolicy",
    "PageColoringPolicy",
    "PageTable",
    "PhysicalMemory",
    "RandomPolicy",
    "ReclaimPolicy",
    "VirtualMemory",
    "make_policy",
]
