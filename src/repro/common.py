"""Shared vocabulary used by both the compiler and the CDPC runtime.

These definitions sit below both packages so that the compiler (which
*produces* access summaries) and the CDPC core (which *consumes* them)
can share types without a circular dependency.
"""

from __future__ import annotations

import enum


class Partitioning(enum.Enum):
    """How a parallel loop's iterations are divided among processors."""

    EVEN = "even"  # near-equal counts
    BLOCKED = "blocked"  # ceil(N/p) per processor; trailing CPUs may be idle


class Direction(enum.Enum):
    """Whether iterations are assigned from CPU 0 up or CPU p-1 down."""

    FORWARD = "forward"
    REVERSE = "reverse"


class Communication(enum.Enum):
    """Boundary communication shapes supported by the summaries."""

    NONE = "none"
    SHIFT = "shift"  # neighbour exchange without wraparound
    ROTATE = "rotate"  # neighbour exchange with wraparound


def iteration_ranges(
    iterations: int,
    num_cpus: int,
    partitioning: Partitioning = Partitioning.EVEN,
    direction: Direction = Direction.FORWARD,
) -> list[tuple[int, int]]:
    """Half-open iteration range ``[start, end)`` for each processor.

    * **even** — the first ``N mod p`` processors get ``ceil(N/p)``
      iterations, the rest ``floor(N/p)``.
    * **blocked** — every processor gets ``ceil(N/p)`` iterations; the
      final processors may get a short range or none at all (the applu
      load-imbalance case: 33 iterations leave CPUs 11-15 of 16 idle).
    """
    if iterations < 0:
        raise ValueError("iterations must be non-negative")
    if num_cpus < 1:
        raise ValueError("num_cpus must be >= 1")
    ranges: list[tuple[int, int]] = []
    if partitioning is Partitioning.EVEN:
        base, extra = divmod(iterations, num_cpus)
        start = 0
        for cpu in range(num_cpus):
            count = base + (1 if cpu < extra else 0)
            ranges.append((start, start + count))
            start += count
    elif partitioning is Partitioning.BLOCKED:
        chunk = -(-iterations // num_cpus) if iterations else 0
        for cpu in range(num_cpus):
            start = min(cpu * chunk, iterations)
            end = min(start + chunk, iterations)
            ranges.append((start, end))
    else:
        raise ValueError(f"unknown partitioning {partitioning}")
    if direction is Direction.REVERSE:
        ranges.reverse()
    return ranges
