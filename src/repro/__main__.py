"""Command-line interface: run paper benchmarks without writing code.

Examples::

    python -m repro run tomcatv --cpus 8 --policy page_coloring --cdpc
    python -m repro sweep swim --policies page_coloring,bin_hopping,cdpc
    python -m repro lint --format json
    python -m repro lint applu --cpus 16
    python -m repro faults tomcatv --pressure 0.6 --hint-loss 0.2 --check-invariants
    python -m repro bench --fast --workloads tomcatv,swim
    python -m repro list
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import TYPE_CHECKING

from repro.analysis.report import render_table
from repro.checker.staticmiss import StaticCheckError
from repro.machine.config import MACHINE_PRESETS, MachineConfig, alpha_server
from repro.robustness.faults import FaultPlan
from repro.sim.engine import EngineOptions, run_benchmark, run_program
from repro.sim.tracegen import SimProfile
from repro.workloads import WORKLOAD_NAMES, get_workload

if TYPE_CHECKING:  # pragma: no cover
    from repro.harness import CampaignOptions

#: Where ``--resume`` persists results when no ``--store`` is given.
#: Entries are keyed by full task fingerprints, so one directory safely
#: serves every workload/policy/machine combination.
DEFAULT_STORE = ".repro/campaigns"

#: Every preset geometry plus the historical ``alpha`` alias.
_MACHINES = {
    **{name: preset for name, preset in MACHINE_PRESETS.items()},
    "alpha": alpha_server,
}


def _make_config(args) -> MachineConfig:
    return _MACHINES[args.machine](args.cpus).scaled(args.scale)


def _obs_config(args):
    """An ObsConfig when ``--metrics-out``/``--trace-out`` was given."""
    from repro.obs import ObsConfig

    metrics_out = getattr(args, "metrics_out", None)
    trace_out = getattr(args, "trace_out", None)
    if not metrics_out and not trace_out:
        return None
    return ObsConfig(metrics=bool(metrics_out), tracing=bool(trace_out))


def _write_obs_outputs(args, report: dict) -> None:
    """Write the per-run/per-campaign observability files the flags asked for."""
    from repro.obs import write_metrics_json, write_trace_json
    from repro.obs.metrics import MetricsRegistry

    if args.metrics_out:
        snapshot = report.get("metrics")
        if snapshot is None:
            snapshot = MetricsRegistry(scope="run").snapshot()
        write_metrics_json(args.metrics_out, snapshot)
    if args.trace_out:
        write_trace_json(args.trace_out, report.get("trace_events", []))


def _options_for(policy_label: str, args) -> EngineOptions:
    cdpc = policy_label == "cdpc" or args.cdpc
    native = args.policy if policy_label == "cdpc" else policy_label
    if native == "cdpc":
        native = "page_coloring"
    return EngineOptions(
        policy=native,
        cdpc=cdpc,
        prefetch=args.prefetch,
        aligned=not args.unaligned,
        profile=SimProfile.fast() if args.fast else SimProfile(),
        obs=_obs_config(args),
        sampling=getattr(args, "sampling", None),
        static_check=getattr(args, "static_check", False),
    )


def _result_row(label: str, result) -> list:
    return [
        label,
        round(result.wall_ns / 1e6, 2),
        round(result.mcpi(), 2),
        result.miss_breakdown()["conflict"],
        result.miss_breakdown()["capacity"],
        round(result.bus_utilization(), 2),
    ]


def cmd_list(_args) -> int:
    rows = []
    for name in WORKLOAD_NAMES:
        workload = get_workload(name)
        rows.append(
            [workload.spec_id, f"{workload.data_set_mb:.1f}MB",
             workload.description]
        )
    print(render_table(["benchmark", "data set", "description"], rows))
    return 0


def cmd_run(args) -> int:
    config = _make_config(args)
    options = _options_for("cdpc" if args.cdpc else args.policy, args)
    try:
        result = run_benchmark(args.workload, config, options)
    except StaticCheckError as exc:
        print(f"static-check FAILED: {exc}", file=sys.stderr)
        return 1
    if args.metrics_out or args.trace_out:
        _write_obs_outputs(args, result.obs or {})
    if args.json:
        print(json.dumps(result.to_dict(), indent=2))
        return 0
    print(
        render_table(
            ["config", "wall ms", "MCPI", "conflict", "capacity", "bus"],
            [_result_row(result.label(), result)],
        )
    )
    return 0


def cmd_lint(args) -> int:
    """Static race detection + color-plan linting, no simulation."""
    from repro.checker import lint_program

    config = _make_config(args)
    if args.file:
        from repro.compiler.frontend import parse_program

        with open(args.file) as handle:
            program = parse_program(handle.read())
        programs = [program.scaled(args.scale)]
    elif args.workload == "all":
        programs = [
            get_workload(name, scale=args.scale).program
            for name in WORKLOAD_NAMES
        ]
    else:
        programs = [get_workload(args.workload, scale=args.scale).program]

    reports = [
        lint_program(
            program,
            config,
            cdpc=not args.no_cdpc,
            aligned=not args.unaligned,
            static=True,
        )
        for program in programs
    ]
    verifications = None
    if args.verify_plan:
        verifications = [
            _verify_program_plan(program, config, args) for program in programs
        ]
    num_errors = sum(len(report.errors()) for report in reports)
    if args.format == "json":
        payload = {
            "machine": args.machine,
            "cpus": args.cpus,
            "scale": args.scale,
            "num_errors": num_errors,
            "num_warnings": sum(len(r.warnings()) for r in reports),
            "reports": [report.to_dict() for report in reports],
        }
        if verifications is not None:
            payload["verifications"] = [
                {"program": program.name, **verification.to_dict()}
                for program, verification in zip(programs, verifications)
            ]
        print(json.dumps(payload, indent=2))
    else:
        print("\n\n".join(report.render_text() for report in reports))
        if verifications is not None:
            for program, verification in zip(programs, verifications):
                print(_render_verification(program.name, verification))
    if args.strict and num_errors:
        return 1
    return 0


def _verify_program_plan(program, config, args):
    """Derive the plan the OS would realize and verify it symbolically."""
    from repro.checker.lint import _group_pairs
    from repro.checker.staticmiss import (
        derive_static_plan,
        program_image,
        verify_plan,
    )
    from repro.compiler.padding import layout_arrays
    from repro.compiler.summaries import extract_summary
    from repro.core.coloring import generate_page_colors

    layout = layout_arrays(
        program.arrays,
        config.l2.line_size,
        config.l1d.size,
        aligned=not args.unaligned,
        groups=_group_pairs(program),
    )
    coloring = None
    if not args.no_cdpc:
        summary = extract_summary(program, layout)
        coloring = generate_page_colors(
            summary, config.page_size, config.num_colors, args.cpus
        )
    image = program_image(program, layout, config, args.cpus)
    plan = derive_static_plan(
        program,
        layout,
        config,
        policy="page_coloring",
        cdpc=coloring is not None,
        coloring=coloring,
    )
    return verify_plan(image, plan)


def _render_verification(name, verification) -> str:
    if verification.conflict_free:
        return (
            f"{name}: plan PROVEN conflict-free "
            f"({verification.sets_checked} bins checked, "
            f"max occupancy {verification.max_occupancy})"
        )
    worst = verification.witnesses[0] if verification.witnesses else None
    detail = ""
    if worst is not None:
        detail = (
            f"; worst: cpu {worst.cpu} color {worst.color} line "
            f"{worst.line_index} holds {len(worst.pages)} pages "
            f"({'/'.join(worst.arrays)})"
        )
    return (
        f"{name}: plan NOT conflict-free — "
        f"{len(verification.witnesses)} witness(es), "
        f"max occupancy {verification.max_occupancy}{detail}"
    )


def cmd_predict(args) -> int:
    """Symbolic miss prediction, optionally cross-validated by simulation."""
    from repro.checker.staticmiss import StaticMissProfile, predict_workload

    config = _make_config(args)
    names = (
        list(WORKLOAD_NAMES) if args.workload == "all" else [args.workload]
    )
    labels = [p.strip() for p in args.policies.split(",") if p.strip()]
    profile = SimProfile.fast() if args.fast else SimProfile()
    rows = []
    payloads = []
    violation_count = 0
    for name in names:
        for label in labels:
            cdpc = label == "cdpc"
            # "cdpc" is the STANDARD_POLICIES label: bin_hopping base
            # with compiler hints delivered by touching pages in order.
            native = "bin_hopping" if cdpc else label
            prediction = predict_workload(
                name,
                config,
                num_cpus=args.cpus,
                policy=native,
                cdpc=cdpc,
                profile=profile,
            )
            total = prediction.estimate("total")
            payload = prediction.to_dict()
            row = [
                f"{name}/{label}",
                round(prediction.predicted_total()),
                round(total.hi),
                f"{prediction.analyze_ns / 1e6:.0f}",
            ]
            if args.check:
                result = run_benchmark(
                    name,
                    config,
                    EngineOptions(policy=native, cdpc=cdpc, profile=profile),
                )
                measured = StaticMissProfile.measured_from(result)
                violations = prediction.check(result)
                violation_count += len(violations)
                payload["measured"] = measured
                payload["violations"] = violations
                row.extend(
                    [
                        round(measured["total"]),
                        "FAIL" if violations else "ok",
                    ]
                )
            rows.append(row)
            payloads.append(payload)
    if args.json:
        print(json.dumps({"predictions": payloads}, indent=2))
    else:
        headers = ["config", "predicted", "bound hi", "analyze ms"]
        if args.check:
            headers.extend(["measured", "check"])
        print(render_table(headers, rows))
    return 1 if violation_count else 0


def _campaign_options(args) -> "CampaignOptions":
    """Fault-tolerance options shared by the campaign-running commands."""
    from repro.harness import CampaignOptions, RetryPolicy

    store = args.store
    if args.resume and store is None:
        store = DEFAULT_STORE
    return CampaignOptions(
        store=store,
        resume=args.resume or store is not None,
        retry=RetryPolicy(max_attempts=max(1, args.retries + 1)),
        timeout_s=args.timeout,
        strict=args.strict,
    )


def cmd_sweep(args) -> int:
    """Compare mapping policies as one fault-tolerant campaign.

    Completed runs are durable the moment they finish when a store is
    configured (``--store``/``--resume``); Ctrl-C flushes what finished
    and prints the partial report instead of a traceback.
    """
    from dataclasses import replace as dc_replace

    from repro.obs import ProgressLine, Tracer
    from repro.sim.sweeps import run_task_campaign

    if args.machines:
        return _cmd_sweep_geometries(args)

    config = _make_config(args)
    labels = args.policies.split(",")
    tasks = [
        (args.workload, config, _options_for(label, args)) for label in labels
    ]
    tracer = Tracer() if args.trace_out else None
    progress = ProgressLine(label="sweep", force=args.progress)
    campaign = dc_replace(
        _campaign_options(args), tracer=tracer, on_progress=progress.update
    )
    try:
        outcome = run_task_campaign(
            tasks, max_workers=args.workers, campaign=campaign
        )
    except KeyboardInterrupt:
        # strict mode re-raises after flushing completed results.
        progress.finish()
        print("\nrepro sweep: interrupted", file=sys.stderr)
        return 130
    finally:
        progress.finish()
    report = outcome.report

    if args.metrics_out or args.trace_out:
        from repro.harness.campaign import campaign_obs_report

        _write_obs_outputs(args, campaign_obs_report(outcome, tracer=tracer) or {})

    rows = []
    payload: dict = {}
    for label, result in zip(labels, outcome.results):
        if result is None:
            continue
        rows.append(_result_row(label, result))
        payload[label] = result.to_dict()
    if args.json:
        payload["campaign"] = report.to_dict()
        print(json.dumps(payload, indent=2))
    else:
        if rows:
            print(
                render_table(
                    ["policy", "wall ms", "MCPI", "conflict", "capacity", "bus"],
                    rows,
                )
            )
            from repro.analysis.figures import grouped_bar_chart

            cells = {
                args.machine: {
                    label: result.wall_ns / 1e6
                    for label, result in zip(labels, outcome.results)
                    if result is not None
                }
            }
            print()
            print(grouped_bar_chart(cells, unit="ms"))
        print(f"\ncampaign: {report.summary()}")
        for failure in report.failures:
            print(
                f"  FAILED {failure.label}: {failure.kind} "
                f"after {failure.attempts} attempt(s) {failure.message}",
                file=sys.stderr,
            )
    if report.interrupted:
        return 130
    return 0 if report.ok else 1


def _cmd_sweep_geometries(args) -> int:
    """Cross-geometry policy comparison (``sweep --machines a,b,c``)."""
    from repro.analysis.geometry import compare_geometries
    from repro.sim.engine import EngineOptions
    from repro.sim.sweeps import STANDARD_POLICIES

    machines = args.machines.split(",")
    unknown = sorted(set(machines) - set(_MACHINES))
    if unknown:
        print(
            f"repro sweep: unknown machine(s): {', '.join(unknown)}",
            file=sys.stderr,
        )
        return 2
    labels = args.policies.split(",")
    bad = [label for label in labels if label not in STANDARD_POLICIES]
    if bad:
        print(
            f"repro sweep: --machines supports the standard policy labels "
            f"({', '.join(STANDARD_POLICIES)}); got {', '.join(bad)}",
            file=sys.stderr,
        )
        return 2
    # ``alpha`` is a CLI alias, not a preset name the analysis layer knows.
    machines = ["alpha_server" if name == "alpha" else name for name in machines]
    base = EngineOptions(
        prefetch=args.prefetch,
        aligned=not args.unaligned,
        profile=SimProfile.fast() if args.fast else SimProfile(),
        obs=_obs_config(args),
        sampling=getattr(args, "sampling", None),
    )
    try:
        comparison = compare_geometries(
            args.workload,
            machines,
            policies={label: STANDARD_POLICIES[label] for label in labels},
            cpus=args.cpus,
            scale=args.scale,
            options=base,
            max_workers=args.workers,
            campaign=_campaign_options(args),
        )
    except KeyboardInterrupt:
        print("\nrepro sweep: interrupted", file=sys.stderr)
        return 130
    report = comparison.campaign.report
    if args.json:
        print(json.dumps(comparison.to_dict(), indent=2))
    else:
        rows = [
            [machine, policy, *_result_row(policy, result)[1:]]
            for (machine, policy), result in comparison.results.items()
        ]
        print(
            render_table(
                ["machine", "policy", "wall ms", "MCPI", "conflict",
                 "capacity", "bus"],
                rows,
            )
        )
        print()
        print(comparison.figure())
        print(f"\ncampaign: {report.summary()}")
        for failure in report.failures:
            print(
                f"  FAILED {failure.label}: {failure.kind} "
                f"after {failure.attempts} attempt(s) {failure.message}",
                file=sys.stderr,
            )
    if report.interrupted:
        return 130
    return 0 if report.ok else 1


def _scenario_spec(args):
    """The one scenario a ``scenario run`` invocation names."""
    from repro.scenarios import ScenarioSpec, preset

    if getattr(args, "spec", None):
        with open(args.spec) as handle:
            return ScenarioSpec.from_dict(json.load(handle))
    return preset(args.name)


def _scenario_row(scenario: str, label: str, result, degradation) -> list:
    return [
        scenario,
        label,
        round(result.wall_ns / 1e6, 2),
        round(result.mcpi(), 2),
        round(result.hint_honor_rate, 4),
        degradation.get("adaptive_replans", 0) if degradation else 0,
        degradation.get("watchdog_trips", 0) if degradation else 0,
    ]


_SCENARIO_COLUMNS = ["scenario", "mode", "wall ms", "MCPI", "honor",
                     "replans", "trips"]


def cmd_scenario(args) -> int:
    """Multi-programmed dynamic-capacity churn scenarios.

    ``run`` executes one scenario (a preset or a ``--spec`` JSON file)
    across the three comparison modes; ``sweep`` executes several presets
    as one crash-safe campaign.  Both inherit the sweep command's
    durability flags (``--store``/``--resume``/``--retries``/
    ``--timeout``/``--strict``).
    """
    if args.scenario_command == "list":
        from repro.scenarios import iter_presets

        rows = []
        for name, spec in iter_presets():
            rows.append([
                name,
                spec.workload,
                spec.seed,
                len(spec.jobs),
                len(spec.capacity_events),
                compile_horizon(spec),
            ])
        print(render_table(
            ["preset", "workload", "seed", "jobs", "capacity events", "beats"],
            rows,
        ))
        return 0

    from dataclasses import replace as dc_replace

    from repro.obs import ProgressLine, Tracer
    from repro.scenarios import preset, run_scenario, scenario_tasks
    from repro.sim.sweeps import run_task_campaign

    config = _make_config(args)
    base = EngineOptions(
        profile=SimProfile.fast() if args.fast else SimProfile(),
        check_invariants=args.check_invariants,
        obs=_obs_config(args),
    )
    tracer = Tracer() if args.trace_out else None
    progress = ProgressLine(label="scenario", force=args.progress)
    campaign = dc_replace(
        _campaign_options(args), tracer=tracer, on_progress=progress.update
    )

    if args.scenario_command == "run":
        spec = _scenario_spec(args)
        try:
            report = run_scenario(
                spec, config, options=base,
                max_workers=args.workers, campaign=campaign,
            )
        except KeyboardInterrupt:
            progress.finish()
            print("\nrepro scenario: interrupted", file=sys.stderr)
            return 130
        finally:
            progress.finish()
        if args.metrics_out or args.trace_out:
            from repro.harness.campaign import campaign_obs_report

            _write_obs_outputs(
                args, campaign_obs_report(report.campaign, tracer=tracer) or {}
            )
        if args.json:
            print(json.dumps(report.to_dict(), indent=2))
        else:
            degradation = report.degradation_summary()
            rows = [
                _scenario_row(spec.name, label, result,
                              degradation.get(label))
                for label, result in report.results.items()
            ]
            print(render_table(_SCENARIO_COLUMNS, rows))
            print()
            print(report.figure(width=args.width))
            summary = report.campaign.report
            print(f"\ncampaign: {summary.summary()}")
        summary = report.campaign.report
        if summary.interrupted:
            return 130
        return 0 if summary.ok else 1

    # sweep: several presets, one campaign.
    specs = [preset(name.strip()) for name in args.scenarios.split(",")]
    labels: list[tuple[str, str]] = []
    tasks = []
    for spec in specs:
        mode_labels, spec_tasks = scenario_tasks(spec, config, options=base)
        labels.extend((spec.name, mode) for mode in mode_labels)
        tasks.extend(spec_tasks)
    try:
        outcome = run_task_campaign(
            tasks, max_workers=args.workers, campaign=campaign
        )
    except KeyboardInterrupt:
        progress.finish()
        print("\nrepro scenario: interrupted", file=sys.stderr)
        return 130
    finally:
        progress.finish()
    if args.metrics_out or args.trace_out:
        from repro.harness.campaign import campaign_obs_report

        _write_obs_outputs(args, campaign_obs_report(outcome, tracer=tracer) or {})
    report = outcome.report
    if args.json:
        payload: dict = {
            "scenarios": {
                f"{scenario}/{mode}": result.to_dict()
                for (scenario, mode), result in zip(labels, outcome.results)
                if result is not None
            },
            "campaign": report.to_dict(),
        }
        print(json.dumps(payload, indent=2))
    else:
        rows = [
            _scenario_row(
                scenario, mode, result,
                result.degradation.to_dict() if result.degradation else None,
            )
            for (scenario, mode), result in zip(labels, outcome.results)
            if result is not None
        ]
        print(render_table(_SCENARIO_COLUMNS, rows))
        print(f"\ncampaign: {report.summary()}")
        for failure in report.failures:
            print(
                f"  FAILED {failure.label}: {failure.kind} "
                f"after {failure.attempts} attempt(s) {failure.message}",
                file=sys.stderr,
            )
    if report.interrupted:
        return 130
    return 0 if report.ok else 1


def compile_horizon(spec) -> int:
    from repro.scenarios import compile_churn

    return compile_churn(spec).horizon


def cmd_runfile(args) -> int:
    from repro.compiler.frontend import parse_program

    with open(args.file) as handle:
        program = parse_program(handle.read())
    # Workload files declare full-scale sizes; scale them to the machine.
    program = program.scaled(args.scale)
    config = _make_config(args)
    options = EngineOptions(
        policy=args.policy,
        cdpc=args.cdpc,
        prefetch=args.prefetch,
        aligned=not args.unaligned,
        profile=SimProfile.fast() if args.fast else SimProfile(),
    )
    result = run_program(program, config, options)
    if args.json:
        print(json.dumps(result.to_dict(), indent=2))
        return 0
    print(
        render_table(
            ["config", "wall ms", "MCPI", "conflict", "capacity", "bus"],
            [_result_row(result.label(), result)],
        )
    )
    return 0


def _degradation_rows(report) -> list[list]:
    return [
        ["reclaims", report.reclaims],
        ["watchdog trips", report.watchdog_trips],
        ["aborted recolor steps", report.aborted_recolor_steps],
        ["forced alloc failures", report.forced_alloc_failures],
        ["dropped hints", report.dropped_hints],
        ["pressure events", report.pressure_events],
        ["frames seized", report.frames_seized],
        ["frames released", report.frames_released],
        ["fallback allocations", report.fallback_allocations],
        ["invariant checks passed", report.invariant_checks],
    ]


def _histogram_lines(report, per_line: int = 12) -> str:
    entries = [
        f"{distance}:{count}"
        for distance, count in sorted(report.fallback_distance_histogram.items())
        if distance > 0
    ]
    if not entries:
        return "(every hint honored at distance 0)"
    return "\n".join(
        "  " + " ".join(entries[i : i + per_line])
        for i in range(0, len(entries), per_line)
    )


def cmd_faults(args) -> int:
    config = _make_config(args)
    try:
        plan = FaultPlan(
            seed=args.seed,
            pressure=args.pressure,
            pressure_color_skew=args.color_skew,
            pressure_period=args.pressure_period,
            hint_loss=args.hint_loss,
            alloc_failure_rate=args.alloc_failure_rate,
            race_storm=args.race_storm,
        )
    except ValueError as exc:
        print(f"repro faults: error: {exc}", file=sys.stderr)
        return 2
    options = EngineOptions(
        policy=args.policy,
        cdpc=not args.no_cdpc,
        prefetch=args.prefetch,
        aligned=not args.unaligned,
        profile=SimProfile() if args.full else SimProfile.fast(),
        fault_plan=plan,
        check_invariants=args.check_invariants,
        hint_watchdog=args.watchdog,
        # Amplified fault races need a seeded bin-hopping RNG to matter.
        race_seed=args.seed if args.race_storm > 0 else None,
        seed=args.seed,
    )
    result = run_benchmark(args.workload, config, options)
    if args.json:
        payload = result.to_dict()
        payload["fault_plan"] = plan.to_dict()
        print(json.dumps(payload, indent=2))
        return 0
    print(
        render_table(
            ["config", "wall ms", "MCPI", "conflict", "capacity", "bus"],
            [_result_row(result.label(), result)],
        )
    )
    print(f"\nhint honor rate: {result.hint_honor_rate:.3f}")
    print("\ndegradation report:")
    print(render_table(["event", "value"], _degradation_rows(result.degradation)))
    print("\nfallback distance histogram (distance:count):")
    print(_histogram_lines(result.degradation))
    return 0


def cmd_obs_check(args) -> int:
    """Validate observability output files; exit nonzero on violation."""
    from repro.obs import validate_metrics_file, validate_trace_file

    if not args.metrics and not args.trace:
        print("repro obs-check: error: pass --metrics and/or --trace",
              file=sys.stderr)
        return 2
    status = 0
    for label, path, check in (
        ("metrics", args.metrics, validate_metrics_file),
        ("trace", args.trace, validate_trace_file),
    ):
        if path is None:
            continue
        try:
            check(path)
        except (OSError, ValueError) as exc:
            # SchemaError and json.JSONDecodeError are both ValueErrors.
            print(f"repro obs-check: {label} {path}: {exc}", file=sys.stderr)
            status = 1
        else:
            print(f"{label} {path}: OK")
    return status


def cmd_bench(args) -> int:
    from repro.sim.bench import run_bench, write_bench

    config = _make_config(args)
    workloads = (
        list(WORKLOAD_NAMES)
        if args.workloads == "all"
        else args.workloads.split(",")
    )
    for name in workloads:
        if name not in WORKLOAD_NAMES:
            print(f"repro bench: error: unknown workload {name!r}", file=sys.stderr)
            return 2
    options = EngineOptions(
        profile=SimProfile.fast() if args.fast else SimProfile(),
    )
    payload = run_bench(
        config, workloads, options=options, max_workers=args.workers
    )
    write_bench(payload, args.output)
    ref = payload["reference"]
    fast = payload["fast"]
    sampled = payload["sampled"]
    print(
        render_table(
            ["leg", "wall s", "refs/s", "workers"],
            [
                ["reference", round(ref["wall_s"], 3),
                 int(ref["refs_per_sec"]), ref["max_workers"]],
                ["fast (cold)", round(fast["cold"]["wall_s"], 3),
                 int(fast["cold"]["refs_per_sec"]), fast["max_workers"]],
                ["fast (warm)", round(fast["warm"]["wall_s"], 3),
                 int(fast["warm"]["refs_per_sec"]), fast["max_workers"]],
                ["sampled", round(sampled["wall_s"], 3),
                 int(sampled["refs_per_sec"]), sampled["max_workers"]],
            ],
        )
    )
    print(
        f"\nspeedup: {payload['speedup']:.2f}x cold, "
        f"{payload['speedup_warm']:.2f}x warm, "
        f"{payload['speedup_sampled']:.2f}x sampled  ({args.output})"
    )
    print(
        f"sampled accuracy: max MCPI error "
        f"{sampled['mcpi_max_rel_error']:.1%}, mean "
        f"{sampled['mcpi_mean_rel_error']:.1%}, "
        + ("all runs within their error bounds"
           if sampled["within_bound"]
           else f"BOUND VIOLATIONS: {', '.join(sampled['bound_violations'])}")
    )
    counters = fast.get("campaign", {})
    if counters.get("retries") or counters.get("pool_restarts"):
        print(
            f"campaign: {counters.get('retries', 0)} retries, "
            f"{counters.get('pool_restarts', 0)} pool restarts"
        )
    service = payload.get("service")
    status = 0
    if service:
        print(
            f"service: p50 {service['latency_ms']['p50']:.2f}ms, "
            f"p99 {service['latency_ms']['p99']:.2f}ms, "
            f"{int(service['throughput_rps'])} req/s, "
            f"cache hit rate {service['cache_hit_rate']:.0%}, "
            + ("zero loss" if service["zero_loss"] else "REQUESTS LOST")
        )
        if not service["zero_loss"]:
            print(
                f"repro bench: service leg lost {service['lost']} request(s)",
                file=sys.stderr,
            )
            status = 1
    if not payload["equivalent"]:
        print("repro bench: FAST PATH DIVERGED FROM REFERENCE:", file=sys.stderr)
        for line in payload["divergences"]:
            print(f"  {line}", file=sys.stderr)
        status = 1
    else:
        print("fast path bit-identical to reference on every run")
    if args.max_sampled_error is not None:
        if sampled["mcpi_max_rel_error"] > args.max_sampled_error:
            print(
                f"repro bench: sampled MCPI error "
                f"{sampled['mcpi_max_rel_error']:.1%} exceeds "
                f"--max-sampled-error {args.max_sampled_error:.1%}",
                file=sys.stderr,
            )
            status = 1
        if not sampled["within_bound"]:
            print(
                "repro bench: sampled miss totals escaped their error "
                "bounds: " + ", ".join(sampled["bound_violations"]),
                file=sys.stderr,
            )
            status = 1
    return status


def _service_from_args(args, engine: str):
    """A ColoringService configured from the shared serve/loadgen flags."""
    from repro.harness.retry import RetryPolicy
    from repro.obs import MetricsRegistry, Tracer
    from repro.service import ColoringService

    tracer = Tracer() if getattr(args, "trace_out", None) else None
    return ColoringService(
        engine=engine,
        workers=args.workers or 1,
        queue_limit=args.queue_limit,
        max_batch=args.max_batch,
        batch_window_s=args.batch_window,
        quota_rate=args.quota_rate,
        quota_burst=args.quota_burst,
        breaker_threshold=args.breaker_threshold,
        breaker_recovery_s=args.breaker_recovery,
        default_deadline_s=args.deadline,
        task_timeout_s=args.timeout,
        retry=RetryPolicy(max_attempts=args.retries + 1),
        store=args.store,
        registry=MetricsRegistry(scope="service"),
        tracer=tracer,
    )


def _write_service_obs(args, service) -> None:
    from repro.obs import write_metrics_json, write_trace_json

    if getattr(args, "metrics_out", None):
        write_metrics_json(args.metrics_out, service.metrics_snapshot())
    if getattr(args, "trace_out", None):
        write_trace_json(args.trace_out, service.tracer.export())


def cmd_serve(args) -> int:
    """Run the coloring service on a TCP JSON-lines socket until stopped."""
    import asyncio
    import signal as _signal

    from repro.service.transport import ServiceListener

    interrupted = False

    async def serve() -> None:
        nonlocal interrupted
        service = _service_from_args(args, args.engine)
        await service.start()
        listener = await ServiceListener.start(
            service, host=args.host, port=args.port
        )
        print(
            f"repro serve: listening on {listener.host}:{listener.port} "
            f"(engine={args.engine}, workers={service.workers}, "
            f"queue_limit={service.queue_limit})"
        )
        sys.stdout.flush()
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()

        def request_stop(is_interrupt: bool) -> None:
            nonlocal interrupted
            interrupted = interrupted or is_interrupt
            stop.set()

        handled: list = []
        for sig, is_interrupt in (
            (_signal.SIGINT, True),
            (_signal.SIGTERM, False),
        ):
            try:
                loop.add_signal_handler(sig, request_stop, is_interrupt)
                handled.append(sig)
            except (NotImplementedError, RuntimeError):
                pass
        try:
            await stop.wait()
        except asyncio.CancelledError:
            pass
        finally:
            for sig in handled:
                loop.remove_signal_handler(sig)
            print("repro serve: draining...", file=sys.stderr)
            await listener.close()
            await service.drain()
            _write_service_obs(args, service)
            counters = service.metrics_snapshot()["counters"]
            print(
                "repro serve: done — "
                f"{counters.get('service.requests.submitted', 0)} submitted, "
                f"{counters.get('service.responses.ok', 0)} ok, "
                f"{counters.get('service.responses.degraded', 0)} degraded, "
                f"{counters.get('service.responses.rejected', 0)} rejected, "
                f"{counters.get('service.cache.hits', 0)} cache hits",
                file=sys.stderr,
            )

    try:
        asyncio.run(serve())
    except KeyboardInterrupt:
        interrupted = True
    return 130 if interrupted else 0


def cmd_loadgen(args) -> int:
    """Drive a load shape at the service; report SLO + zero-loss."""
    import asyncio
    import tempfile

    from repro.service import LoadSpec, run_loadgen
    from repro.service.transport import ServiceClient

    spec = LoadSpec(
        requests=args.requests,
        tenants=args.tenants,
        concurrency=args.concurrency,
        cached_fraction=args.cached_fraction,
        hot_keys=args.hot_keys,
        delay_ms=args.delay_ms,
        kill_every=args.kill_every,
        hang_every=args.hang_every,
        fail_every=args.fail_every,
        hang_s=args.hang_s,
        deadline_s=args.request_deadline,
        flood_requests=args.flood,
        seed=args.seed,
        max_p99_ms=args.max_p99_ms,
        max_shed_rate=args.max_shed_rate,
    )
    chaos_needs_pool = bool(args.kill_every or args.hang_every)
    if chaos_needs_pool and args.connect is None and args.timeout is None:
        # kill/hang chaos must run in pool workers under a watchdog —
        # in-thread execution would take the whole process down.
        args.timeout = 5.0

    async def drive() -> dict:
        if args.connect is not None:
            host, _, port = args.connect.rpartition(":")
            clients = [
                await ServiceClient.connect(host or "127.0.0.1", int(port))
                for _ in range(min(spec.concurrency, 16))
            ]
            pool: asyncio.Queue = asyncio.Queue()
            for client in clients:
                pool.put_nowait(client)

            async def submit(request):
                client = await pool.get()
                try:
                    return await client.submit(request)
                finally:
                    pool.put_nowait(client)

            try:
                report = await run_loadgen(submit, spec, scratch=args.scratch)
            finally:
                for client in clients:
                    await client.close()
            return report.to_dict()
        service = _service_from_args(args, "synthetic")
        async with service:
            scratch = args.scratch
            if scratch is None and chaos_needs_pool:
                scratch = tempfile.mkdtemp(prefix="repro-loadgen-")
            report = await run_loadgen(service.submit, spec, scratch=scratch)
        _write_service_obs(args, service)
        payload = report.to_dict()
        payload["service_metrics"] = {
            key: value
            for key, value in service.metrics_snapshot()["counters"].items()
            if key.startswith("service.")
        }
        return payload

    payload = asyncio.run(drive())
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        latency = payload["latency_ms"]
        print(
            render_table(
                ["metric", "value"],
                [
                    ["sent", payload["sent"]],
                    ["answered ok/degraded", payload["answered"]],
                    ["rejected", payload["by_status"].get("rejected", 0)],
                    ["failed", payload["by_status"].get("failed", 0)],
                    ["lost", len(payload["lost"])],
                    ["cache hit rate", f"{payload['cache_hit_rate']:.1%}"],
                    ["coalesced", payload["coalesced"]],
                    ["shed rate (well-behaved)", f"{payload['shed_rate']:.1%}"],
                    ["p50 ms", f"{latency['p50']:.2f}"],
                    ["p99 ms", f"{latency['p99']:.2f}"],
                    ["throughput req/s", int(payload["throughput_rps"])],
                ],
            )
        )
        if payload["flood"]["sent"]:
            flood = payload["flood"]
            print(
                f"flood tenant: {flood['rejected']}/{flood['sent']} rejected"
            )
    slo = payload["slo"]
    if not slo["ok"]:
        for violation in slo["violations"]:
            print(f"repro loadgen: SLO violation: {violation}", file=sys.stderr)
        return 1
    print("loadgen: SLO ok, zero loss", file=sys.stderr)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Compiler-directed page coloring reproduction (ASPLOS 1996)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the SPEC95fp workload models")

    def add_common(p):
        p.add_argument("workload", choices=WORKLOAD_NAMES)
        p.add_argument("--cpus", type=int, default=8)
        p.add_argument("--machine", choices=sorted(_MACHINES), default="sgi_base")
        p.add_argument("--scale", type=int, default=16,
                       help="geometric scale factor (default 16)")
        p.add_argument("--policy", default="page_coloring",
                       choices=["page_coloring", "bin_hopping"])
        p.add_argument("--cdpc", action="store_true")
        p.add_argument("--prefetch", action="store_true")
        p.add_argument("--unaligned", action="store_true")
        p.add_argument("--fast", action="store_true",
                       help="single-sweep fast simulation profile")
        p.add_argument(
            "--sampling", default=None, choices=["access_vector"],
            help="approximate sampled simulation: cluster trace windows "
            "by access-vector signature and replay representatives "
            "(reports an error bound; results are not bit-exact)",
        )
        p.add_argument("--json", action="store_true",
                       help="emit the result as JSON instead of a table")

    def add_obs(p):
        p.add_argument(
            "--metrics-out", default=None, metavar="FILE",
            help="write the run's metric-registry snapshot as JSON "
            "(repro.obs.metrics/v1)",
        )
        p.add_argument(
            "--trace-out", default=None, metavar="FILE",
            help="write span trace events as chrome://tracing JSON "
            "(repro.obs.trace/v1)",
        )

    run_parser = sub.add_parser("run", help="run one configuration")
    add_common(run_parser)
    add_obs(run_parser)
    run_parser.add_argument(
        "--static-check", action="store_true",
        help="cross-validate the run against the symbolic miss "
        "prediction; nonzero exit if any measured miss component "
        "escapes its predicted interval",
    )

    sweep_parser = sub.add_parser("sweep", help="compare mapping policies")
    add_common(sweep_parser)
    add_obs(sweep_parser)
    sweep_parser.add_argument(
        "--progress", action="store_true",
        help="force the live progress line even when stderr is not a TTY",
    )
    sweep_parser.add_argument(
        "--policies", default="page_coloring,bin_hopping,cdpc",
        help="comma-separated: page_coloring, bin_hopping, cdpc",
    )
    sweep_parser.add_argument(
        "--machines", default=None, metavar="NAMES",
        help="comma-separated machine presets for a cross-geometry "
        "comparison (e.g. sgi_base,sliced_llc_8x,three_level); renders "
        "one policy-comparison block per geometry",
    )
    sweep_parser.add_argument(
        "--resume", action="store_true",
        help="persist completed runs durably and skip any already in the "
        f"store (default store: {DEFAULT_STORE})",
    )
    sweep_parser.add_argument(
        "--store", default=None, metavar="DIR",
        help="result-store directory (implies result persistence; "
        "completed runs are written atomically as they finish)",
    )
    sweep_parser.add_argument(
        "--workers", type=int, default=None,
        help="process-pool size (default: CPUs this process may use)",
    )
    sweep_parser.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-run wall-clock deadline; hung workers are killed and "
        "the run retried (parallel mode only)",
    )
    sweep_parser.add_argument(
        "--retries", type=int, default=2,
        help="retries per run after a crash or timeout (default 2)",
    )
    sweep_parser.add_argument(
        "--strict", action="store_true",
        help="fail fast on the first unrecoverable run failure instead "
        "of reporting the completed subset",
    )

    lint_parser = sub.add_parser(
        "lint",
        help="static race detection and color-plan linting (no simulation)",
    )
    lint_parser.add_argument(
        "workload", nargs="?", default="all",
        choices=[*WORKLOAD_NAMES, "all"],
        help="bundled workload to lint, or 'all' (default)",
    )
    lint_parser.add_argument(
        "--file", default=None,
        help="lint a workload described in the text format instead",
    )
    lint_parser.add_argument("--cpus", type=int, default=16,
                             help="processor count to check against (default 16)")
    lint_parser.add_argument("--machine", choices=sorted(_MACHINES),
                             default="sgi_base")
    lint_parser.add_argument("--scale", type=int, default=16,
                             help="geometric scale factor (default 16)")
    lint_parser.add_argument(
        "--format", choices=["text", "json"], default="text",
        help="output format (json is stable-ordered for CI diffing)",
    )
    lint_parser.add_argument(
        "--no-cdpc", action="store_true",
        help="skip the CDPC coloring (color-plan rules needing it are skipped)",
    )
    lint_parser.add_argument("--unaligned", action="store_true",
                             help="lint the packed unaligned layout")
    lint_parser.add_argument(
        "--strict", action="store_true",
        help="exit nonzero when ERROR-severity diagnostics exist",
    )
    lint_parser.add_argument(
        "--verify-plan", action="store_true",
        help="symbolically verify the realized color plan: prove it "
             "conflict-free or report occupancy witnesses",
    )

    predict_parser = sub.add_parser(
        "predict",
        help="static miss prediction from the symbolic footprint engine "
             "(no simulation unless --check)",
    )
    predict_parser.add_argument(
        "workload", nargs="?", default="all",
        choices=[*WORKLOAD_NAMES, "all"],
        help="bundled workload to predict, or 'all' (default)",
    )
    predict_parser.add_argument("--cpus", type=int, default=8)
    predict_parser.add_argument("--machine", choices=sorted(_MACHINES),
                                default="sgi_base")
    predict_parser.add_argument("--scale", type=int, default=16,
                                help="geometric scale factor (default 16)")
    predict_parser.add_argument(
        "--policies", default="page_coloring,bin_hopping,cdpc",
        help="comma-separated policy labels to predict "
             "(default page_coloring,bin_hopping,cdpc)",
    )
    predict_parser.add_argument(
        "--fast", action="store_true",
        help="predict for the reduced-sweep simulation profile",
    )
    predict_parser.add_argument(
        "--check", action="store_true",
        help="cross-validate: simulate each configuration and exit "
             "nonzero if any measured component leaves its interval",
    )
    predict_parser.add_argument("--json", action="store_true",
                                help="emit the full profiles as JSON")

    faults_parser = sub.add_parser(
        "faults",
        help="run one configuration under deterministic fault injection",
    )
    add_common(faults_parser)
    faults_parser.add_argument(
        "--pressure", type=float, default=0.0,
        help="peak fraction of free frames seized by competing address spaces",
    )
    faults_parser.add_argument(
        "--hint-loss", type=float, default=0.0,
        help="fraction of CDPC hints dropped before delivery",
    )
    faults_parser.add_argument(
        "--alloc-failure-rate", type=float, default=0.0,
        help="probability an allocation transiently behaves as exhausted",
    )
    faults_parser.add_argument(
        "--race-storm", type=int, default=0,
        help="extra concurrent faulters amplifying the bin-hopping race",
    )
    faults_parser.add_argument(
        "--color-skew", type=float, default=0.75,
        help="fraction of seized frames concentrated on a color band",
    )
    faults_parser.add_argument(
        "--pressure-period", type=int, default=2,
        help="phase boundaries between seize/release oscillations",
    )
    faults_parser.add_argument(
        "--seed", type=int, default=0,
        help="fault-plan seed (same seed reproduces identical results)",
    )
    faults_parser.add_argument(
        "--watchdog", type=float, default=0.5,
        help="hint-honor-rate threshold tripping the dynamic-recolor fallback",
    )
    faults_parser.add_argument(
        "--check-invariants", action="store_true",
        help="run the page-table/physmem consistency sweep every epoch",
    )
    faults_parser.add_argument(
        "--no-cdpc", action="store_true",
        help="run without CDPC hints (faults still fire; default is CDPC on)",
    )
    faults_parser.add_argument(
        "--full", action="store_true",
        help="use the full two-sweep simulation profile instead of fast",
    )

    bench_parser = sub.add_parser(
        "bench",
        help="time the Figure 6 policy sweep on both engine paths and "
        "write BENCH_engine.json",
    )
    bench_parser.add_argument("--cpus", type=int, default=8)
    bench_parser.add_argument("--machine", choices=sorted(_MACHINES),
                              default="sgi_base")
    bench_parser.add_argument("--scale", type=int, default=16,
                              help="geometric scale factor (default 16)")
    bench_parser.add_argument(
        "--workloads", default="all",
        help="comma-separated workload names, or 'all' (default)",
    )
    bench_parser.add_argument(
        "--workers", type=int, default=None,
        help="process-pool size for the fast leg (default: os.cpu_count())",
    )
    bench_parser.add_argument(
        "--fast", action="store_true",
        help="single-sweep fast simulation profile",
    )
    bench_parser.add_argument(
        "--output", default="BENCH_engine.json",
        help="where to write the JSON report (default: BENCH_engine.json)",
    )
    bench_parser.add_argument(
        "--max-sampled-error", type=float, default=None, metavar="FRAC",
        help="fail (exit 1) if the sampled leg's maximum relative MCPI "
        "error against the oracle exceeds this fraction (e.g. 0.05)",
    )

    scenario_parser = sub.add_parser(
        "scenario",
        help="multi-programmed dynamic-capacity churn scenarios "
        "(CDPC-adaptive vs dynamic-recolor vs bin-hopping)",
    )
    scn_sub = scenario_parser.add_subparsers(
        dest="scenario_command", required=True
    )
    scn_sub.add_parser("list", help="list the scenario presets")

    def add_scenario_common(p):
        p.add_argument("--cpus", type=int, default=8)
        p.add_argument("--machine", choices=sorted(_MACHINES),
                       default="sgi_base")
        p.add_argument("--scale", type=int, default=16,
                       help="geometric scale factor (default 16)")
        p.add_argument("--fast", action="store_true",
                       help="single-sweep fast simulation profile")
        p.add_argument("--json", action="store_true",
                       help="emit the report as JSON instead of tables")
        p.add_argument(
            "--progress", action="store_true",
            help="force the live progress line even when stderr is not a TTY",
        )
        p.add_argument(
            "--resume", action="store_true",
            help="persist completed runs durably and skip any already in "
            f"the store (default store: {DEFAULT_STORE})",
        )
        p.add_argument(
            "--store", default=None, metavar="DIR",
            help="result-store directory (implies result persistence)",
        )
        p.add_argument(
            "--workers", type=int, default=None,
            help="process-pool size (default: CPUs this process may use)",
        )
        p.add_argument(
            "--timeout", type=float, default=None, metavar="SECONDS",
            help="per-run wall-clock deadline (parallel mode only)",
        )
        p.add_argument(
            "--retries", type=int, default=2,
            help="retries per run after a crash or timeout (default 2)",
        )
        p.add_argument(
            "--strict", action="store_true",
            help="fail fast on the first unrecoverable run failure",
        )
        p.add_argument(
            "--check-invariants", action="store_true",
            help="verify page-table/physmem invariants after init and "
            "every epoch of every mode",
        )
        add_obs(p)

    scn_run = scn_sub.add_parser(
        "run", help="run one scenario across the comparison modes"
    )
    from repro.scenarios import PRESETS

    scn_run.add_argument(
        "name", nargs="?", default="smoke", choices=sorted(PRESETS),
        help="scenario preset name (default smoke; see 'scenario list')",
    )
    scn_run.add_argument(
        "--spec", default=None, metavar="FILE",
        help="run a ScenarioSpec JSON file instead of a preset",
    )
    scn_run.add_argument(
        "--width", type=int, default=40,
        help="bar width of the churn figure (default 40)",
    )
    add_scenario_common(scn_run)

    scn_sweep = scn_sub.add_parser(
        "sweep", help="run several scenario presets as one campaign"
    )
    scn_sweep.add_argument(
        "--scenarios", default="smoke,churn",
        help="comma-separated preset names (default: smoke,churn)",
    )
    add_scenario_common(scn_sweep)

    obs_parser = sub.add_parser(
        "obs-check",
        help="validate --metrics-out / --trace-out files against the "
        "checked-in schemas",
    )
    obs_parser.add_argument(
        "--metrics", default=None, metavar="FILE",
        help="metrics snapshot file to validate",
    )
    obs_parser.add_argument(
        "--trace", default=None, metavar="FILE",
        help="trace file to validate",
    )

    def add_service_common(p):
        p.add_argument("--workers", type=int, default=None,
                       help="harness pool size per batch (default 1)")
        p.add_argument("--queue-limit", type=int, default=64,
                       help="bounded admission queue depth (default 64)")
        p.add_argument("--max-batch", type=int, default=8,
                       help="max requests batched into one campaign (default 8)")
        p.add_argument("--batch-window", type=float, default=0.005,
                       metavar="SECONDS",
                       help="how long to gather a batch (default 0.005)")
        p.add_argument("--quota-rate", type=float, default=50.0,
                       help="per-tenant admission tokens per second (default 50)")
        p.add_argument("--quota-burst", type=float, default=100.0,
                       help="per-tenant token-bucket burst (default 100)")
        p.add_argument("--breaker-threshold", type=int, default=3,
                       help="consecutive failures tripping a workload-class "
                       "circuit breaker (default 3)")
        p.add_argument("--breaker-recovery", type=float, default=5.0,
                       metavar="SECONDS",
                       help="breaker open time before a recovery probe "
                       "(default 5)")
        p.add_argument("--deadline", type=float, default=None,
                       metavar="SECONDS",
                       help="default per-request deadline (admission to answer)")
        p.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                       help="per-task watchdog; forces pool-mode execution")
        p.add_argument("--retries", type=int, default=2,
                       help="retries per task after crash/timeout (default 2)")
        p.add_argument("--store", default=None, metavar="DIR",
                       help="durable result store (answers survive restarts)")
        add_obs(p)

    serve_parser = sub.add_parser(
        "serve",
        help="run the coloring service on a TCP JSON-lines socket "
        "(admission control, batching, caching, degradation)",
    )
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument("--port", type=int, default=0,
                              help="TCP port (default 0 = pick a free one)")
    serve_parser.add_argument(
        "--engine", choices=["harness", "synthetic"], default="harness",
        help="synthetic accepts loadgen/chaos requests (default harness)",
    )
    add_service_common(serve_parser)

    loadgen_parser = sub.add_parser(
        "loadgen",
        help="drive a seedable load shape (optionally fault-injected) at "
        "the service and check SLO + zero-loss",
    )
    loadgen_parser.add_argument(
        "--connect", default=None, metavar="HOST:PORT",
        help="drive a running 'repro serve' instead of an in-process service",
    )
    loadgen_parser.add_argument("--requests", type=int, default=200)
    loadgen_parser.add_argument("--tenants", type=int, default=4)
    loadgen_parser.add_argument("--concurrency", type=int, default=16)
    loadgen_parser.add_argument(
        "--cached-fraction", type=float, default=0.7,
        help="fraction of requests drawn from the hot key set (default 0.7)",
    )
    loadgen_parser.add_argument("--hot-keys", type=int, default=8)
    loadgen_parser.add_argument(
        "--delay-ms", type=float, default=0.0,
        help="synthetic service time per request (default 0)",
    )
    loadgen_parser.add_argument(
        "--kill-every", type=int, default=0, metavar="N",
        help="every Nth request SIGKILLs its pool worker (0 = never)",
    )
    loadgen_parser.add_argument(
        "--hang-every", type=int, default=0, metavar="N",
        help="every Nth request hangs past the watchdog (0 = never)",
    )
    loadgen_parser.add_argument(
        "--fail-every", type=int, default=0, metavar="N",
        help="every Nth request raises deterministically (0 = never)",
    )
    loadgen_parser.add_argument("--hang-s", type=float, default=30.0)
    loadgen_parser.add_argument(
        "--request-deadline", type=float, default=None, metavar="SECONDS",
        help="per-request deadline carried on each generated request",
    )
    loadgen_parser.add_argument(
        "--flood", type=int, default=0, metavar="N",
        help="extra requests from one flooding tenant (quota-shed food)",
    )
    loadgen_parser.add_argument("--seed", type=int, default=0)
    loadgen_parser.add_argument(
        "--max-p99-ms", type=float, default=None,
        help="SLO gate: fail (exit 1) if answered p99 exceeds this",
    )
    loadgen_parser.add_argument(
        "--max-shed-rate", type=float, default=None,
        help="SLO gate: fail if well-behaved tenants' rejection rate "
        "exceeds this fraction",
    )
    loadgen_parser.add_argument(
        "--scratch", default=None, metavar="DIR",
        help="chaos marker directory (kill/hang fire once per request); "
        "default: a fresh temp dir for in-process kill/hang runs",
    )
    loadgen_parser.add_argument("--json", action="store_true",
                                help="emit the full loadgen report as JSON")
    add_service_common(loadgen_parser)

    file_parser = sub.add_parser(
        "runfile", help="run a workload described in the text format"
    )
    file_parser.add_argument("file")
    file_parser.add_argument("--cpus", type=int, default=8)
    file_parser.add_argument("--machine", choices=sorted(_MACHINES),
                             default="sgi_base")
    file_parser.add_argument("--scale", type=int, default=16)
    file_parser.add_argument("--policy", default="page_coloring",
                             choices=["page_coloring", "bin_hopping"])
    file_parser.add_argument("--cdpc", action="store_true")
    file_parser.add_argument("--prefetch", action="store_true")
    file_parser.add_argument("--unaligned", action="store_true")
    file_parser.add_argument("--fast", action="store_true")
    file_parser.add_argument("--json", action="store_true")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "list": cmd_list,
        "run": cmd_run,
        "sweep": cmd_sweep,
        "runfile": cmd_runfile,
        "faults": cmd_faults,
        "bench": cmd_bench,
        "lint": cmd_lint,
        "predict": cmd_predict,
        "obs-check": cmd_obs_check,
        "scenario": cmd_scenario,
        "serve": cmd_serve,
        "loadgen": cmd_loadgen,
    }
    try:
        return handlers[args.command](args)
    except KeyboardInterrupt:
        # Uniform interrupt discipline: every verb exits 130 on ^C.
        # (sweep/scenario/serve catch it earlier to publish partial
        # results or drain cleanly, then return 130 themselves.)
        print(f"repro {args.command}: interrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":
    sys.exit(main())
