"""Synthetic SPEC95fp workload models.

The paper evaluates the ten SPEC95fp benchmarks parallelized by SUIF.  The
binaries and reference inputs are not available here, so each benchmark is
modeled as a :class:`repro.compiler.ir.Program`: its arrays (matching the
reference data-set sizes of Table 1), its steady-state phase structure
(Section 3.2), and per-loop access declarations that reproduce the
behaviours the paper attributes to it — e.g. su2cor's non-contiguous
per-processor accesses, applu's 33-iteration blocked loops and tiling,
fpppp's instruction-cache-bound sequential execution, and apsi/wave5's
suppressed fine-grain parallelism.
"""

from repro.workloads.base import WorkloadModel
from repro.workloads.specfp import (
    SPEC_REFERENCE_TIMES,
    WORKLOAD_NAMES,
    data_set_mb,
    get_workload,
    iter_workloads,
)

__all__ = [
    "SPEC_REFERENCE_TIMES",
    "WORKLOAD_NAMES",
    "WorkloadModel",
    "data_set_mb",
    "get_workload",
    "iter_workloads",
]
