"""125.turb3d — turbulence simulation (24MB reference data set).

The paper's representative-execution-window example: four phases occurring
11, 66, 100 and 120 times in the steady state (Section 3.2).  FFT-based
loops have strong temporal reuse (small per-occurrence working sets), so
replacement misses are few and CDPC shows only slight improvement above
four processors.
"""

from __future__ import annotations

from repro.compiler.ir import (
    ArrayDecl,
    Loop,
    LoopKind,
    PartitionedAccess,
    Phase,
    Program,
)
from repro.workloads.base import WorkloadModel

MB = 1024 * 1024
_PLANES = 64


def _fft(name: str, fields: tuple[str, ...], writes: int,
         fraction: float) -> Loop:
    # FFT butterflies revisit each tile several times with O(N log N)
    # compute per element: high reuse, high instruction density — the
    # reason turb3d has few replacement misses (Section 6.1).
    accesses = tuple(
        PartitionedAccess(f, units=_PLANES, is_write=(i >= len(fields) - writes),
                          fraction=fraction, sweeps=3.0)
        for i, f in enumerate(fields)
    )
    return Loop(name, LoopKind.PARALLEL, accesses, instructions_per_word=14.0)


def build(scale: int = 1) -> WorkloadModel:
    names = ("u", "v", "w", "ox", "oy", "oz")
    # 1040 pages per field: complex-grid padding leaves the arrays 16
    # colors off the 1024-color cycle, so their FFT tiles mostly avoid
    # each other in the cache — matching the paper's small replacement
    # miss counts for turb3d.
    arrays = tuple(ArrayDecl(name, 1040 * 4096 // scale) for name in names)

    xyfft = _fft("xyfft", ("u", "v", "w"), writes=3, fraction=0.14)
    zfft = _fft("zfft", ("ox", "oy", "oz"), writes=3, fraction=0.14)
    nonlin = _fft("nonlin", ("u", "v", "w", "ox", "oy", "oz"), writes=3,
                  fraction=0.08)
    energy = Loop(
        name="energy",
        kind=LoopKind.PARALLEL,
        accesses=(
            PartitionedAccess("u", units=_PLANES, fraction=0.10),
            PartitionedAccess("v", units=_PLANES, fraction=0.10),
            PartitionedAccess("w", units=_PLANES, fraction=0.10),
        ),
        instructions_per_word=3.0,
    )

    program = Program(
        name="turb3d",
        arrays=arrays,
        phases=(
            Phase("phase_a", (xyfft,), occurrences=11),
            Phase("phase_b", (zfft,), occurrences=66),
            Phase("phase_c", (nonlin,), occurrences=100),
            Phase("phase_d", (energy,), occurrences=120),
        ),
        init_groups=(("u", "v", "w"), ("ox", "oy", "oz")),
        sequential_fraction=0.02,
    )
    return WorkloadModel(
        spec_id="125.turb3d",
        program=program,
        reference_time_s=4100.0,
        steady_state_repeats=3.0,
        description="Turbulence FFTs; 4 phases x (11, 66, 100, 120).",
    )
