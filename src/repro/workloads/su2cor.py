"""103.su2cor — quantum physics Monte Carlo (23MB reference data set).

The paper singles out su2cor as the case where CDPC slightly *degrades*
performance: "each processor does not access contiguous regions of some
important data structures.  CDPC is only applied to the remaining data
structures, but the mapping happens to conflict with the other data
structures" (Section 6.1).  We model that with two 4MB gauge-field arrays
accessed with a cyclic (strided) distribution — which the compiler cannot
summarize — alongside five contiguously-partitioned 3MB work arrays that
do get CDPC hints.
"""

from __future__ import annotations

from repro.compiler.ir import (
    ArrayDecl,
    Loop,
    LoopKind,
    PartitionedAccess,
    Phase,
    Program,
    StridedAccess,
)
from repro.workloads.base import WorkloadModel

MB = 1024 * 1024
_COLUMNS = 384


def build(scale: int = 1) -> WorkloadModel:
    gauge = tuple(ArrayDecl(name, 4 * MB // scale) for name in ("u1", "u2"))
    # 740 pages each: deliberately *not* a multiple of the color count, so
    # the page-coloring baseline has no aligned-conflict pathology on the
    # contiguous arrays — matching the paper, where su2cor's problem is the
    # unanalyzable gauge arrays rather than aligned work arrays.
    work = tuple(
        ArrayDecl(name, 740 * 4096 // scale) for name in ("w1", "w2", "w3", "w4", "w5")
    )
    arrays = gauge + work
    block = max(64, 2048 // scale)

    gauge_update = Loop(
        name="gauge_update",
        kind=LoopKind.PARALLEL,
        accesses=(
            StridedAccess("u1", block_bytes=block, is_write=True, sweeps=2.0),
            StridedAccess("u2", block_bytes=block, sweeps=2.0),
            PartitionedAccess("w1", units=_COLUMNS),
            PartitionedAccess("w2", units=_COLUMNS, is_write=True),
        ),
        instructions_per_word=12.0,
    )
    matmul = Loop(
        name="matmul",
        kind=LoopKind.PARALLEL,
        accesses=(
            PartitionedAccess("w1", units=_COLUMNS),
            PartitionedAccess("w2", units=_COLUMNS),
            PartitionedAccess("w3", units=_COLUMNS, is_write=True),
            PartitionedAccess("w4", units=_COLUMNS),
            PartitionedAccess("w5", units=_COLUMNS, is_write=True),
        ),
        instructions_per_word=15.0,
    )
    sweep = Loop(
        name="sweep",
        kind=LoopKind.PARALLEL,
        accesses=(
            StridedAccess("u1", block_bytes=block),
            PartitionedAccess("w3", units=_COLUMNS),
            PartitionedAccess("w4", units=_COLUMNS, is_write=True),
        ),
        instructions_per_word=10.0,
    )

    program = Program(
        name="su2cor",
        arrays=arrays,
        phases=(
            Phase("trajectory", (gauge_update, matmul), occurrences=8),
            Phase("measure", (sweep,), occurrences=4),
        ),
        init_groups=(("u1", "u2"), ("w1", "w2", "w3", "w4", "w5")),
        sequential_fraction=0.03,
    )
    return WorkloadModel(
        spec_id="103.su2cor",
        program=program,
        reference_time_s=1400.0,
        steady_state_repeats=40.0,
        description="Monte Carlo; cyclic-distributed gauge arrays defeat CDPC.",
    )
