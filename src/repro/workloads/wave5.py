"""146.wave5 — plasma particle-in-cell simulation (40MB reference data set).

The largest data set of the suite.  The paper notes wave5 shows little
benefit from parallelization (its fine-grain parallelism is suppressed,
like apsi) and little sensitivity to page mapping policy; it is also the
one benchmark whose phase behaviour varies between occurrences (a 30%
cache-miss variation in one phase, Section 3.2), modeled here as two
particle phases with different working-set fractions.
"""

from __future__ import annotations

from repro.compiler.ir import (
    ArrayDecl,
    Loop,
    LoopKind,
    PartitionedAccess,
    Phase,
    Program,
    StridedAccess,
)
from repro.workloads.base import WorkloadModel

MB = 1024 * 1024


def build(scale: int = 1) -> WorkloadModel:
    fields = tuple(ArrayDecl(name, 4 * MB // scale) for name in ("ex", "ey", "rho", "phi"))
    particles = tuple(ArrayDecl(name, 6 * MB // scale) for name in ("px", "py", "pvx", "pvy"))
    arrays = fields + particles
    block = max(64, 4096 // scale)

    field_solve = Loop(
        name="field_solve",
        kind=LoopKind.PARALLEL,
        accesses=(
            PartitionedAccess("rho", units=128),
            PartitionedAccess("phi", units=128, is_write=True),
            PartitionedAccess("ex", units=128, is_write=True),
            PartitionedAccess("ey", units=128, is_write=True),
        ),
        instructions_per_word=10.0,
    )
    # Particle pushes gather/scatter at particle order: strided, suppressed.
    push_a = Loop(
        name="push_a",
        kind=LoopKind.SUPPRESSED,
        accesses=(
            StridedAccess("px", block_bytes=block, is_write=True),
            StridedAccess("py", block_bytes=block, is_write=True),
            PartitionedAccess("ex", units=128, fraction=0.6),
        ),
        instructions_per_word=12.0,
    )
    push_b = Loop(
        name="push_b",
        kind=LoopKind.SUPPRESSED,
        accesses=(
            StridedAccess("pvx", block_bytes=block, is_write=True),
            StridedAccess("pvy", block_bytes=block, is_write=True),
            PartitionedAccess("ey", units=128, fraction=0.9),
        ),
        instructions_per_word=12.0,
    )

    program = Program(
        name="wave5",
        arrays=arrays,
        phases=(
            Phase("field", (field_solve,), occurrences=10),
            Phase("particles_a", (push_a,), occurrences=6),
            # The paper's outlier: this phase's cache behaviour varies ~30%
            # between occurrences (particles migrate between cells).
            Phase("particles_b", (push_b,), occurrences=4,
                  miss_variation=0.3),
        ),
        init_groups=(("ex", "ey", "rho", "phi"), ("px", "py", "pvx", "pvy")),
        sequential_fraction=0.10,
    )
    return WorkloadModel(
        spec_id="146.wave5",
        program=program,
        reference_time_s=3000.0,
        steady_state_repeats=25.0,
        description="Particle-in-cell; suppressed particle pushes, 40MB.",
    )
